#!/usr/bin/env python
"""TSV vs MemOrder surfaces: why Tsvd's recipe does not transfer.

Runs a preparation-style recording of every benchmark application's
test suite and contrasts the two instrumentation surfaces (Table 2's
intuition): thread-unsafe API call sites are scarce; heap-object
accesses are everywhere. Then shows Figure 2's timing asymmetry on a
microbenchmark: a TSV manifests only for delays inside a bounded
window, a MemOrder bug for every delay past the gap.

Run::

    python examples/tsvd_vs_waffle.py
"""

from repro.apps import all_apps
from repro.core.config import DEFAULT_CONFIG
from repro.harness import experiments, tables
from repro.harness.runner import run_recording


def site_census():
    print("Instrumentation surface per application (averages per test):")
    print("%-20s %-10s %-10s %-8s" % ("app", "TSV sites", "MO sites", "ratio"))
    for app in all_apps().values():
        tsv_total = mo_total = 0
        for test in app.multithreaded_tests:
            _, trace = run_recording(test, DEFAULT_CONFIG, seed=0)
            mo_total += len(trace.static_sites(memorder=True))
            tsv_total += len(trace.static_sites(memorder=False))
        count = len(app.multithreaded_tests)
        ratio = (mo_total / tsv_total) if tsv_total else float("inf")
        print(
            "%-20s %-10.1f %-10.1f %-8.1f"
            % (app.display_name, tsv_total / count, mo_total / count, ratio)
        )


def timing_conditions():
    print()
    print("Figure 2's timing asymmetry (microbenchmark):")
    points = experiments.figure2_timing_conditions(
        delays_ms=(0, 4, 8, 10, 12, 16, 24, 40), seed=0
    )
    print(tables.render_figure2(points))


def main():
    site_census()
    timing_conditions()
    print()
    print(
        "Takeaway: MemOrder instrumentation sites outnumber TSV sites by\n"
        "roughly an order of magnitude, and exposing a MemOrder bug needs\n"
        "a delay longer than the whole gap rather than inside a window --\n"
        "the two observations that drove Waffle's redesign (sections 3-4)."
    )


if __name__ == "__main__":
    main()
