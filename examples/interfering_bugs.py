#!/usr/bin/env python
"""Figure 4a: interfering bugs (ApplicationInsights issue #1106).

Two bug candidates live on the same listener object: a real
use-before-initialization (the constructor races the event pump) and a
false use-after-free (the teardown path, actually join-protected). A
fixed-length-delay tool delays both sides at once, cancelling itself;
Waffle's interference set tells it to skip the use-side delay while the
constructor delay is ongoing, exposing the bug in its first detection
run.

Run::

    python examples/interfering_bugs.py
"""

from repro import Waffle, WaffleBasic, WaffleConfig
from repro.apps import get_bug, bug_workload

ATTEMPTS = 5
BUDGET = 25


def main():
    bug = get_bug("Bug-10")
    test = bug_workload("Bug-10")
    print("Scenario:", bug.description)
    print()

    print("%-8s %-28s %-28s" % ("seed", "Waffle (runs to expose)", "WaffleBasic"))
    waffle_wins = basic_misses = 0
    for seed in range(1, ATTEMPTS + 1):
        config = WaffleConfig(seed=seed)
        wa = Waffle(config).detect(test, max_detection_runs=BUDGET)
        wb = WaffleBasic(config).detect(test, max_detection_runs=BUDGET)

        wa_result = str(wa.runs_to_expose) if wa.bug_found else "missed"
        wb_result = str(wb.runs_to_expose) if wb.bug_found else "missed (%d runs)" % BUDGET
        print("%-8d %-28s %-28s" % (seed, wa_result, wb_result))

        waffle_wins += wa.bug_found
        basic_misses += not wb.bug_found

    print()
    print(
        "Waffle exposed the bug in %d/%d attempts; WaffleBasic's delays "
        "cancelled each other in %d/%d." % (waffle_wins, ATTEMPTS, basic_misses, ATTEMPTS)
    )

    # Show the interference pair Waffle's analyzer discovered.
    config = WaffleConfig(seed=1)
    outcome = Waffle(config).detect(test, max_detection_runs=2)
    print()
    print("Interference pairs from the preparation-run analysis:")
    for pair in sorted(outcome.plan.interference, key=sorted):
        print("  {%s}" % ", ".join(sorted(pair)))


if __name__ == "__main__":
    main()
