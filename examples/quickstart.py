#!/usr/bin/env python
"""Quickstart: find a use-after-free in 30 lines of simulated code.

A worker thread sends one last packet on a connection that the main
thread tears down concurrently. The natural timing always lets the send
win; Waffle's injected delay reverses the order and exposes the bug.

Run::

    python examples/quickstart.py
"""

from repro import Waffle, WaffleConfig, Workload


def my_app(sim):
    """One test input: build the simulated program for one run."""
    connection = sim.ref("connection")

    def worker(sim):
        yield from sim.sleep(3.0)  # drain the send buffer
        yield from sim.use(connection, member="Send", loc="myapp.Worker.send:10")

    def main(sim):
        yield from sim.assign(connection, sim.new("Connection"), loc="myapp.Client.open:1")
        thread = sim.fork(worker(sim), name="sender")
        yield from sim.sleep(7.0)  # the worker's send normally wins
        yield from sim.dispose(connection, loc="myapp.Client.close:20")
        yield from sim.join(thread)

    return main(sim)


def main():
    outcome = Waffle(WaffleConfig(seed=1)).detect(Workload("myapp", my_app))

    print("Runs executed:")
    for record in outcome.runs:
        print(
            "  run %d (%s): %.2f virtual ms, %d delays injected"
            % (record.index, record.kind, record.virtual_time_ms, record.delays_injected)
        )

    assert outcome.bug_found, "expected the planted use-after-free to be exposed"
    report = outcome.reports[0]
    print()
    print("Bug exposed after %d runs (prep + detection):" % outcome.runs_to_expose)
    print("  " + report.summary())
    print()
    print("Candidate pair that predicted it:")
    for pair in report.matched_pairs:
        print("  " + str(pair))


if __name__ == "__main__":
    main()
