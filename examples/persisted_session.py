#!/usr/bin/env python
"""The section 5 workflow, split across 'processes' via files on disk.

Waffle's components are separable: the instrumented preparation run
produces a trace file; the trace analyzer turns it into an injection
plan (candidate set S, per-site delay lengths, interference set I);
detection runs bootstrap from the persisted plan and write updated
decay probabilities back after every run. This script performs each
stage explicitly, round-tripping everything through JSON.

Run::

    python examples/persisted_session.py
"""

import tempfile
from pathlib import Path

from repro import Simulation, WaffleConfig
from repro.apps import bug_workload
from repro.core.analyzer import analyze_trace
from repro.core.delay_policy import DecayState
from repro.core.persistence import load_session, save_session
from repro.core.runtime import PlannedInjectionHook
from repro.core.trace import RecordingHook, Trace


def main():
    config = WaffleConfig(seed=7)
    test = bug_workload("Bug-1")
    workdir = Path(tempfile.mkdtemp(prefix="waffle-session-"))

    # ---- Stage 1: preparation run, trace to disk --------------------
    recorder = RecordingHook(record_overhead_ms=config.record_overhead_ms)
    sim = Simulation(seed=config.seed, hook=recorder)
    result = sim.run(test.build(sim))
    trace_path = workdir / "prep_trace.jsonl"
    with open(trace_path, "w") as fp:
        count = recorder.trace.dump(fp)
    print("prep run: %.1f virtual ms, %d events -> %s" % (result.virtual_time, count, trace_path))

    # ---- Stage 2: offline analysis of the reloaded trace ------------
    with open(trace_path) as fp:
        trace = Trace.load(fp)
    plan = analyze_trace(trace, config)
    session_path = workdir / "session.json"
    save_session(plan, DecayState(config.decay_lambda), session_path)
    print(
        "analysis: %d candidate pairs, %d injection sites, %d interference pairs -> %s"
        % (
            plan.stats.candidate_pairs,
            plan.stats.injection_sites,
            len(plan.interference),
            session_path,
        )
    )
    for site, gap in sorted(plan.delay_lengths.items()):
        print("  delay length %-34s alpha * %.2f ms = %.2f ms" % (site, gap, config.alpha * gap))

    # ---- Stage 3: detection run from the persisted session ----------
    loaded_plan, loaded_decay = load_session(session_path)
    hook = PlannedInjectionHook(loaded_plan, config, loaded_decay, seed=config.seed * 7919 + 1)
    sim = Simulation(seed=config.seed + 1, hook=hook)
    result = sim.run(test.build(sim))
    print(
        "detection run: %.1f virtual ms, %d delays injected, crashed=%s"
        % (result.virtual_time, hook.delays_injected, result.crashed)
    )
    if result.crashed:
        error = result.first_failure()
        print("  exposed: %s at %s" % (type(error).__name__, error.location))

    # ---- Stage 4: persist updated probabilities for the next run ----
    save_session(loaded_plan, loaded_decay, session_path)
    print("updated decay state persisted:", {
        site: round(loaded_decay.probability(site), 2) for site in loaded_decay.known_sites()
    })


if __name__ == "__main__":
    main()
