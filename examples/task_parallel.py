#!/usr/bin/env python
"""Waffle over task-parallel code (the section 4.1 async-local note).

The paper observes that .NET's async-local storage propagates state
from a parent to a child *task* irrespective of which thread runs it —
exactly what Waffle's vector clocks need. This example builds a small
task-parallel request handler on the simulator's :class:`TaskPool`:

* one request is (buggily) submitted *before* its payload is
  initialized — a real use-before-init race across tasks;
* dozens of requests are submitted *after* their payloads — ordered by
  the submission edge, which the vector clocks carry through the
  async-local context and prune, so Waffle wastes no delays on them.

Run::

    python examples/task_parallel.py
"""

from repro import Waffle, WaffleConfig, Workload


def request_handler_app(sim):
    racy_payload = sim.ref("racy_payload")

    def racy_handler(pool):
        yield from sim.sleep(2.0)
        yield from sim.use(racy_payload, member="Process", loc="tasks.Handler.process:9")

    def ordered_handler(pool, ref, index):
        yield from sim.sleep(0.4)
        yield from sim.use(ref, member="Process", loc="tasks.Handler.ordered:%d" % (index % 3))

    def main(sim):
        pool = sim.task_pool(workers=3, name="requests")
        handles = []

        # The bug: the handler task is submitted while the payload is
        # still being built; only rare timing makes the init lose.
        handles.append(pool.submit(racy_handler(pool), name="racy"))
        yield from sim.sleep(0.8)
        yield from sim.assign(racy_payload, sim.new("Payload"), loc="tasks.Dispatcher.accept:4")

        # The bulk: payloads initialized before submission -- ordered.
        for index in range(12):
            ref = sim.ref("payload_%d" % index)
            yield from sim.assign(ref, sim.new("Payload"), loc="tasks.Dispatcher.accept:4")
            handles.append(pool.submit(ordered_handler(pool, ref, index), name="r%d" % index))

        yield from pool.wait_all(handles)
        yield from pool.close()

    return main(sim)


def main():
    outcome = Waffle(WaffleConfig(seed=3)).detect(
        Workload("task_requests", request_handler_app), max_detection_runs=5
    )

    plan = outcome.plan
    print("Preparation-run analysis over the task-parallel workload:")
    print("  candidate pairs kept:   %d" % plan.stats.candidate_pairs)
    print("  fork/submission-ordered pairs pruned: %d" % plan.stats.pruned_parent_child)
    print("  delay sites: %s" % sorted(plan.delay_sites))
    print()
    assert outcome.bug_found
    print("Exposed after %d runs: %s" % (outcome.runs_to_expose, outcome.reports[0].summary()))
    print()
    print(
        "All %d submission-ordered handler pairs were pruned through the\n"
        "async-local vector clocks; only the genuinely racy dispatcher\n"
        "site was ever delayed." % plan.stats.pruned_parent_child
    )


if __name__ == "__main__":
    main()
