#!/usr/bin/env python
"""The same Waffle core, on real Python threads.

The simulator is the measurement substrate, but Waffle's algorithms
only ever see an event stream and answer "delay this operation by d
milliseconds" -- so the paper's section 5 porting story (swap the
instrumentation layer, keep the algorithms) holds here too. This
example plants a use-after-free with a 50 ms wall-clock gap between
two genuine ``threading`` threads, shows it never manifests under
stress, then lets the unchanged core find it.

Run::

    python examples/real_threads.py
"""

import time

from repro.pythreads import RealThreadsRuntime, RealThreadsWaffle


def connection_teardown(rt: RealThreadsRuntime):
    """A sender thread races the main thread's connection close."""
    conn = rt.ref("connection")
    conn.assign(rt.new("Connection"), loc="realapp.Client.open:1")

    def sender():
        time.sleep(0.030)  # serialize the payload
        conn.use(member="Send", loc="realapp.Sender.send:10")

    thread = rt.spawn(sender, name="sender")
    time.sleep(0.080)  # the close normally waits long enough... just
    conn.dispose(loc="realapp.Client.close:20")
    thread.join()


def main():
    waffle = RealThreadsWaffle()

    crashes = waffle.stress(connection_teardown, runs=5)
    print("5 delay-free stress runs: %d crashes" % crashes)

    start = time.monotonic()
    outcome = waffle.detect(connection_teardown, max_detection_runs=3)
    elapsed = time.monotonic() - start

    print()
    print("Waffle over real threads (%.2fs wall):" % elapsed)
    for record in outcome.runs:
        print(
            "  run %d (%s): %.1f ms wall, %d ops, %d delays%s"
            % (
                record.index,
                record.kind,
                record.wall_time_ms,
                record.op_count,
                record.delays_injected,
                ", CRASHED" if record.crashed else "",
            )
        )
    if outcome.bug_found:
        print()
        print("Exposed:", outcome.reports[0].summary())
        print(
            "Measured wall-clock gap drove the delay: %.1f ms x %.2f"
            % (
                outcome.plan.delay_lengths["realapp.Sender.send:10"],
                1.15,
            )
        )


if __name__ == "__main__":
    main()
