#!/usr/bin/env python
"""Figure 4b: interfering dynamic instances (NetMQ issue #814).

The cleanup thread executes the *same static site* (``ChkDisposed``)
right before disposing the poller that the worker thread is still
checking. A tool that delays every dynamic instance of the site shifts
both threads equally -- order preserved, bug hidden -- until its
probabilities happen to diverge. Waffle's interference set contains the
self-pair (ChkDisposed, ChkDisposed), so only the first instance gets
delayed and the bug manifests immediately.

Run::

    python examples/interfering_instances.py
"""

from repro import Waffle, WaffleBasic, WaffleConfig
from repro.apps import bug_workload, get_bug

ATTEMPTS = 8
BUDGET = 30


def main():
    bug = get_bug("Bug-11")
    test = bug_workload("Bug-11")
    print("Scenario:", bug.description)
    print()

    waffle_runs = []
    basic_runs = []
    for seed in range(1, ATTEMPTS + 1):
        config = WaffleConfig(seed=seed)
        wa = Waffle(config).detect(test, max_detection_runs=BUDGET)
        wb = WaffleBasic(config).detect(test, max_detection_runs=BUDGET)
        waffle_runs.append(wa.runs_to_expose)
        basic_runs.append(wb.runs_to_expose)

    print("Runs needed per attempt (both tools expose it eventually):")
    print("  Waffle:      ", waffle_runs)
    print("  WaffleBasic: ", basic_runs)
    print()

    found = [r for r in basic_runs if r is not None]
    print(
        "Waffle is reliable (always prep + 1 detection); WaffleBasic's "
        "delays at the two dynamic instances cancel until the decayed "
        "probabilities diverge (median %s runs here; the paper saw 5)."
        % (sorted(found)[len(found) // 2] if found else "-")
    )

    # Demonstrate the self-interference entry in Waffle's plan.
    outcome = Waffle(WaffleConfig(seed=1)).detect(test, max_detection_runs=2)
    self_pairs = [p for p in outcome.plan.interference if len(p) == 1]
    print()
    print("Self-interference entries in I:", [sorted(p)[0] for p in self_pairs])


if __name__ == "__main__":
    main()
