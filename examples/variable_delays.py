#!/usr/bin/env python
"""Section 4.3: why one fixed delay length cannot win.

Two use-after-free bugs in one program: a short-gap one (use 5 ms
before its disposal) and a long-gap one (use 108 ms before its
disposal). Sweep fixed delay lengths and observe that no single value
exposes both cheaply: short delays miss the long-gap bug, long delays
waste hundreds of milliseconds at every short-gap site. Waffle's
per-location proportional delays get both with a fraction of the
injected time.

Run::

    python examples/variable_delays.py
"""

from repro import Simulation, Waffle, WaffleConfig, Workload
from repro.sim.instrument import InstrumentationHook


def two_gap_app(sim):
    """A session with a short-gap race and a queue with a long-gap one."""
    session = sim.ref("session")
    queue_a = sim.ref("queue_a")  # benign sibling: sets the observed gap
    queue_b = sim.ref("queue_b")  # vulnerable: 108 ms gap

    def session_user(sim):
        yield from sim.sleep(4.0)
        yield from sim.use(session, member="Send", loc="vd.Session.send:1")

    def queue_worker_a(sim):
        yield from sim.sleep(14.2)
        yield from sim.use(queue_a, member="Dequeue", loc="vd.Queue.deq:1")

    def queue_worker_b(sim):
        yield from sim.sleep(3.0)
        yield from sim.use(queue_b, member="Dequeue", loc="vd.Queue.deq:1")

    def main(sim):
        yield from sim.assign(session, sim.new("Session"), loc="vd.Session.open:1")
        yield from sim.assign(queue_a, sim.new("Queue"), loc="vd.Queue.ctor:1")
        yield from sim.assign(queue_b, sim.new("Queue"), loc="vd.Queue.ctor:1")
        su = sim.fork(session_user(sim), name="session-user")
        qa = sim.fork(queue_worker_a(sim), name="queue-a")
        qb = sim.fork(queue_worker_b(sim), name="queue-b")
        yield from sim.sleep(9.0)
        yield from sim.dispose(session, loc="vd.Session.close:1")  # 5 ms after the use
        yield from sim.sleep(102.0)
        yield from sim.dispose(queue_b, loc="vd.Queue.dispose:1")  # 108 ms after B's use
        yield from sim.join(qa)
        yield from sim.sleep(0.2)
        yield from sim.dispose(queue_a, loc="vd.Queue.dispose:1")  # join-protected
        yield from sim.join(su)
        yield from sim.join(qb)

    return main(sim)


class FixedEverywhere(InstrumentationHook):
    """Inject one fixed delay length at both use sites."""

    SITES = ("vd.Session.send:1", "vd.Queue.deq:1")

    def __init__(self, delay_ms):
        self.delay_ms = delay_ms
        self.injected_ms = 0.0

    def before_access(self, pending):
        if pending.location.site in self.SITES:
            self.injected_ms += self.delay_ms
            return self.delay_ms
        return 0.0


def main():
    print("Fixed-length sweep (delays at both use sites):")
    print("%-12s %-12s %-12s %-14s" % ("delay (ms)", "short-gap", "long-gap", "injected (ms)"))
    for delay in (2.0, 10.0, 50.0, 100.0, 115.0):
        hook = FixedEverywhere(delay)
        sim = Simulation(seed=1, hook=hook)
        result = sim.run(two_gap_app(sim))
        fault = result.first_failure()
        short = fault is not None and "Session" in str(fault)
        long_ = fault is not None and "queue_b" in str(fault)
        print(
            "%-12.0f %-12s %-12s %-14.0f"
            % (delay, "EXPOSED" if short else "-", "EXPOSED" if long_ else "-", hook.injected_ms)
        )

    print()
    print("Waffle (proportional per-site delays, one session):")
    outcome = Waffle(WaffleConfig(seed=1)).detect(
        Workload("two_gaps", two_gap_app), max_detection_runs=6
    )
    print("  measured delay lengths:", {
        site: round(1.15 * gap, 1) for site, gap in outcome.plan.delay_lengths.items()
    })
    print("  exposed: %s after %s runs, %.0f ms of delay injected in total"
          % (outcome.reports[0].fault_site if outcome.bug_found else "nothing",
             outcome.runs_to_expose, outcome.total_delay_ms))


if __name__ == "__main__":
    main()
