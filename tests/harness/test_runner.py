"""Runner primitives: timeout handling and state threading."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.apps import get_app
from repro.core.candidates import CandidateKind, CandidatePair, CandidateSet, GapObservation
from repro.core.config import WaffleConfig
from repro.core.delay_policy import DecayState
from repro.core.detector import Workload
from repro.harness.runner import (
    run_baseline,
    run_online_detection,
    run_planned_detection,
    run_recording,
)
from repro.sim.instrument import Location


def slow_workload(duration_ms=100.0):
    def build(sim):
        ref = sim.ref("r")

        def main(sim):
            yield from sim.assign(ref, sim.new("T"), loc="rt.init:1")
            for _ in range(20):
                yield from sim.sleep(duration_ms / 20)
                yield from sim.use(ref, member="M", loc="rt.use:1")

        return main(sim)

    return Workload("slow", build)


class TestTimeouts:
    def test_recording_respects_time_limit(self, config):
        run, trace = run_recording(slow_workload(), config, seed=1, time_limit_ms=30.0)
        assert run.timed_out
        assert len(trace) < 21  # cut off mid-run

    def test_baseline_not_limited(self):
        run = run_baseline(slow_workload(), seed=1)
        assert not run.timed_out
        assert run.virtual_time_ms >= 100.0

    def test_online_detection_time_limit(self, config):
        decay = DecayState(config.decay_lambda)
        candidates = CandidateSet()
        # Seed a candidate so run 1 injects 100 ms delays, exceeding the
        # limit quickly.
        pair = CandidatePair(
            kind=CandidateKind.USE_AFTER_FREE,
            delay_location=Location("rt.use:1"),
            other_location=Location("rt.dispose:9"),
        )
        candidates.add(pair)
        decay.register("rt.use:1")
        run, _ = run_online_detection(
            slow_workload(), config, decay, candidates, seed=1, time_limit_ms=120.0
        )
        assert run.timed_out


class TestStateThreading:
    def test_decay_persists_between_online_runs(self, config):
        test = get_app("sshnet").test("disconnect_during_keepalive")
        decay = DecayState(config.decay_lambda)
        candidates = CandidateSet()
        run_online_detection(test, config, decay, candidates, seed=1, hook_seed=5)
        probabilities_after_one = {
            site: decay.probability(site) for site in decay.known_sites()
        }
        run_online_detection(test, config, decay, candidates, seed=2, hook_seed=6)
        # Second run decayed at least one site further (it injected).
        assert any(
            decay.probability(site) < p for site, p in probabilities_after_one.items()
        )


class TestCandidateSetProperties:
    sites = st.text(alphabet="abcdef.:0123456789", min_size=1, max_size=8)

    @given(
        entries=st.lists(
            st.tuples(sites, sites, st.floats(min_value=0.0, max_value=100.0)),
            min_size=0,
            max_size=20,
        )
    )
    def test_merge_is_superset_with_max_gaps(self, entries):
        left = CandidateSet()
        right = CandidateSet()
        for index, (delay, other, gap) in enumerate(entries):
            target = left if index % 2 == 0 else right
            pair = CandidatePair(
                kind=CandidateKind.USE_AFTER_FREE,
                delay_location=Location(delay),
                other_location=Location(other),
            )
            target.add(
                pair,
                GapObservation(
                    gap_ms=gap,
                    timestamp_first=0.0,
                    timestamp_second=gap,
                    object_id=1,
                    thread_first=1,
                    thread_second=2,
                ),
            )
        merged = CandidateSet()
        merged.merge(left)
        merged.merge(right)
        for source in (left, right):
            for pair in source:
                assert pair in merged
                assert merged.max_gap(pair) >= source.max_gap(pair)

    @given(
        entries=st.lists(st.tuples(sites, sites), min_size=1, max_size=15),
        victim_index=st.integers(min_value=0),
    )
    def test_remove_with_delay_location_is_complete(self, entries, victim_index):
        candidates = CandidateSet()
        for delay, other in entries:
            candidates.add(
                CandidatePair(
                    kind=CandidateKind.USE_BEFORE_INIT,
                    delay_location=Location(delay),
                    other_location=Location(other),
                )
            )
        victim = Location(entries[victim_index % len(entries)][0])
        candidates.remove_with_delay_location(victim)
        assert candidates.pairs_for_delay_location(victim) == []
        assert victim not in candidates.delay_locations
