"""Shared artifact store: atomic publication, checksum-verified fetch."""

from __future__ import annotations

import json

import pytest

from repro.harness import faults
from repro.harness.store import ArtifactStore, RESULT_PREFIX, RESULT_SUFFIX


@pytest.fixture(autouse=True)
def chaos_off():
    faults.disable()
    yield
    faults.disable()


KEY = "a" * 32
OTHER = "b" * 32


class TestPublishFetch:
    def test_roundtrip(self, tmp_path):
        store = ArtifactStore(tmp_path, fsync=False)
        published = store.publish(KEY, "ok", {"rows": [1, 2, 3]}, attempts=2, worker="w1")
        fetched = store.fetch(KEY)
        assert fetched is not None
        assert fetched.ok
        assert fetched.result == {"rows": [1, 2, 3]}
        assert fetched.attempts == 2
        assert fetched.worker == "w1"
        assert fetched.sha256 == published.sha256
        assert store.stats.publishes == 1
        assert store.stats.hits == 1

    def test_missing_is_a_counted_miss(self, tmp_path):
        store = ArtifactStore(tmp_path, fsync=False)
        assert store.fetch(KEY) is None
        assert store.stats.misses == 1
        assert store.fetch(KEY, count_stats=False) is None
        assert store.stats.misses == 1

    def test_degraded_tombstones_carry_no_result(self, tmp_path):
        store = ArtifactStore(tmp_path, fsync=False)
        store.publish(KEY, "quarantined", None, attempts=1)
        store.publish(OTHER, "failed", None, attempts=3)
        assert store.fetch(KEY).status == "quarantined"
        record = store.fetch(OTHER)
        assert record.status == "failed"
        assert not record.ok
        assert record.result is None

    def test_first_writer_wins(self, tmp_path):
        first = ArtifactStore(tmp_path, fsync=False)
        second = ArtifactStore(tmp_path, fsync=False)
        first.publish(KEY, "ok", "original", worker="w1")
        kept = second.publish(KEY, "ok", "racing duplicate", worker="w2")
        # The existing bytes stand; the racer gets them back.
        assert kept.result == "original"
        assert kept.worker == "w1"
        assert second.stats.races == 1
        assert second.fetch(KEY).result == "original"

    def test_fsync_mode_roundtrips_identically(self, tmp_path):
        store = ArtifactStore(tmp_path, fsync=True)
        store.publish(KEY, "ok", [1.5, "x"])
        assert store.fetch(KEY).result == [1.5, "x"]

    def test_keys_sorted(self, tmp_path):
        store = ArtifactStore(tmp_path, fsync=False)
        store.publish(OTHER, "ok", 2)
        store.publish(KEY, "ok", 1)
        assert list(store.keys()) == [KEY, OTHER]


class TestIntegrity:
    def _target(self, tmp_path):
        return tmp_path / (RESULT_PREFIX + KEY + RESULT_SUFFIX)

    def test_flipped_payload_byte_quarantines_as_miss(self, tmp_path):
        store = ArtifactStore(tmp_path, fsync=False)
        store.publish(KEY, "ok", {"value": 42})
        target = self._target(tmp_path)
        blob = bytearray(target.read_bytes())
        blob[-1] ^= 0xFF
        target.write_bytes(bytes(blob))
        assert store.fetch(KEY) is None
        assert store.stats.corrupt == 1
        assert store.stats.misses == 1
        assert not target.exists()
        assert target.with_name(target.name + ".corrupt").exists()

    def test_torn_header_quarantines_as_miss(self, tmp_path):
        store = ArtifactStore(tmp_path, fsync=False)
        self._target(tmp_path).write_bytes(b'{"v": 1, "key":')
        assert store.fetch(KEY) is None
        assert store.stats.corrupt == 1

    def test_wrong_key_in_header_quarantines(self, tmp_path):
        store = ArtifactStore(tmp_path, fsync=False)
        store.publish(OTHER, "ok", 7)
        source = tmp_path / (RESULT_PREFIX + OTHER + RESULT_SUFFIX)
        # A record renamed onto the wrong key (misplaced rsync, copy
        # typo) must not masquerade as that key's result.
        source.rename(self._target(tmp_path))
        assert store.fetch(KEY) is None
        assert store.stats.corrupt == 1

    def test_unknown_format_version_quarantines(self, tmp_path):
        store = ArtifactStore(tmp_path, fsync=False)
        store.publish(KEY, "ok", 7)
        target = self._target(tmp_path)
        head, _, payload = target.read_bytes().partition(b"\n")
        header = json.loads(head)
        header["v"] = 99
        target.write_bytes(json.dumps(header).encode() + b"\n" + payload)
        assert store.fetch(KEY) is None
        assert store.stats.corrupt == 1

    def test_chaos_corruption_site_fires(self, tmp_path):
        store = ArtifactStore(tmp_path, fsync=False)
        store.publish(KEY, "ok", list(range(50)))
        faults.configure("seed=1,cache_corrupt=1.0")
        assert store.fetch(KEY) is None
        assert store.stats.corrupt == 1

    def test_publish_repairs_over_a_corrupt_record(self, tmp_path):
        store = ArtifactStore(tmp_path, fsync=False)
        store.publish(KEY, "ok", "good")
        target = self._target(tmp_path)
        target.write_bytes(b"garbage with no header newline at all")
        repaired = store.publish(KEY, "ok", "good")
        assert repaired.result == "good"
        assert store.fetch(KEY).result == "good"
