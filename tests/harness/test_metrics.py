"""Statistics helpers."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.harness import metrics


class TestMedianMean:
    def test_median_odd(self):
        assert metrics.median([3, 1, 2]) == 2

    def test_median_even(self):
        assert metrics.median([1, 2, 3, 4]) == 2.5

    def test_median_single(self):
        assert metrics.median([7]) == 7

    def test_median_empty_rejected(self):
        with pytest.raises(ValueError):
            metrics.median([])

    def test_mean(self):
        assert metrics.mean([1, 2, 3]) == 2.0

    def test_mean_empty_rejected(self):
        with pytest.raises(ValueError):
            metrics.mean([])

    @given(st.lists(st.floats(min_value=-1e6, max_value=1e6), min_size=1, max_size=50))
    def test_median_between_min_and_max(self, values):
        m = metrics.median(values)
        assert min(values) <= m <= max(values)


class TestMajorityRuns:
    def test_unanimous(self):
        assert metrics.majority_runs_to_expose([2] * 15) == 2

    def test_majority_single_value(self):
        assert metrics.majority_runs_to_expose([2] * 11 + [3] * 4) == 2

    def test_mostly_missed_reports_none(self):
        assert metrics.majority_runs_to_expose([None] * 10 + [5] * 5) is None

    def test_flaky_bug_reports_median(self):
        runs = [3, 4, 5, 6, 7, 8, 9, 3, 4, 5, 6, 7, 8, 9, 5]
        assert metrics.majority_runs_to_expose(runs) == 6

    def test_empty(self):
        assert metrics.majority_runs_to_expose([]) is None

    def test_boundary_two_thirds(self):
        # Exactly 10/15 successes meets the 2/3 majority.
        assert metrics.majority_runs_to_expose([2] * 10 + [None] * 5) == 2
        assert metrics.majority_runs_to_expose([2] * 9 + [None] * 6) is None


class TestOverheadSlowdown:
    def test_overhead_percent(self):
        assert metrics.overhead_percent(150.0, 100.0) == pytest.approx(50.0)
        assert metrics.overhead_percent(100.0, 100.0) == pytest.approx(0.0)

    def test_overhead_invalid_baseline(self):
        with pytest.raises(ValueError):
            metrics.overhead_percent(10.0, 0.0)

    def test_slowdown(self):
        assert metrics.slowdown(250.0, 100.0) == pytest.approx(2.5)

    def test_slowdown_invalid_baseline(self):
        with pytest.raises(ValueError):
            metrics.slowdown(10.0, -1.0)


class TestOverlapRatio:
    def test_disjoint_zero(self):
        assert metrics.overlap_ratio_from_intervals([(0, 5), (10, 15)]) == pytest.approx(0.0)

    def test_identical_half(self):
        assert metrics.overlap_ratio_from_intervals([(0, 10), (0, 10)]) == pytest.approx(0.5)

    def test_empty(self):
        assert metrics.overlap_ratio_from_intervals([]) == 0.0

    def test_matches_ledger_implementation(self):
        """Both overlap implementations must agree."""
        from repro.core.interference import ActiveDelayLedger

        intervals = [(0.0, 10.0), (5.0, 12.0), (30.0, 31.0)]
        ledger = ActiveDelayLedger()
        for i, (start, end) in enumerate(intervals):
            ledger.register("s%d" % i, i, start, end - start)
        assert metrics.overlap_ratio_from_intervals(intervals) == pytest.approx(
            ledger.overlap_ratio()
        )

    @given(
        st.lists(
            st.tuples(st.floats(0, 100), st.floats(0.1, 50)),
            min_size=1,
            max_size=20,
        )
    )
    def test_ratio_in_unit_interval(self, raw):
        intervals = [(start, start + length) for start, length in raw]
        ratio = metrics.overlap_ratio_from_intervals(intervals)
        assert 0.0 <= ratio < 1.0
