"""Campaign supervisor semantics: retry, quarantine, watchdog, resume.

Cells here are deliberately toy module-level functions (deterministic
values, controllable failures) so each property is pinned in
milliseconds; the end-to-end chaos campaign over a real experiment
driver lives in the CLI tests and CI's chaos smoke cell.
"""

import json
import os
import signal
import subprocess
import sys
import threading
import time

import pytest

from repro.harness import faults, parallel, supervisor
from repro.harness.supervisor import (
    CampaignJournal,
    RetryPolicy,
    Supervisor,
    cell_key,
    supervised,
)

# Serial-path failure scripting: cells run in-process, so a module
# global can count attempts per key.
ATTEMPTS = {}


def square(x):
    return x * x


def flaky(x, fail_times):
    """Raise a retryable fault on the first ``fail_times`` calls."""
    count = ATTEMPTS.get(x, 0)
    ATTEMPTS[x] = count + 1
    if count < fail_times:
        raise faults.TransientIOFault("transient #%d for %s" % (count + 1, x))
    return x * 10


def broken(x):
    raise ValueError("deterministic schema error for %s" % x)


def sleeper(x, seconds):
    time.sleep(seconds)
    return x


@pytest.fixture(autouse=True)
def clean_state():
    ATTEMPTS.clear()
    faults.disable()
    supervisor.deactivate()
    yield
    ATTEMPTS.clear()
    faults.disable()
    supervisor.deactivate()


def no_sleep(_s):
    pass


class TestCellKey:
    def test_stable_across_calls(self):
        assert cell_key(square, (3,)) == cell_key(square, (3,))

    def test_sensitive_to_fn_and_args(self):
        assert cell_key(square, (3,)) != cell_key(square, (4,))
        assert cell_key(square, (3,)) != cell_key(flaky, (3,))

    def test_dataclass_args_are_canonical(self):
        from repro.core.config import DEFAULT_CONFIG

        a = cell_key(square, (DEFAULT_CONFIG, "id", 1))
        b = cell_key(square, (DEFAULT_CONFIG, "id", 1))
        assert a == b
        assert a != cell_key(square, (DEFAULT_CONFIG.with_seed(99), "id", 1))


class TestRetryPolicy:
    def test_schedule_is_deterministic_for_a_seed(self):
        a = RetryPolicy(max_attempts=5, seed=7).backoff_schedule("cell-key")
        b = RetryPolicy(max_attempts=5, seed=7).backoff_schedule("cell-key")
        assert a == b
        assert RetryPolicy(max_attempts=5, seed=8).backoff_schedule("cell-key") != a

    def test_jitter_stays_within_band_and_grows_exponentially(self):
        policy = RetryPolicy(
            max_attempts=4, backoff_base_s=0.1, backoff_factor=2.0,
            backoff_max_s=10.0, jitter=0.25, seed=0,
        )
        for attempt, nominal in ((1, 0.1), (2, 0.2), (3, 0.4)):
            value = policy.backoff_s("k", attempt)
            assert nominal * 0.75 <= value <= nominal * 1.25

    def test_backoff_is_capped(self):
        policy = RetryPolicy(backoff_base_s=1.0, backoff_factor=10.0,
                             backoff_max_s=2.0, jitter=0.0)
        assert policy.backoff_s("k", 5) == 2.0

    def test_keys_get_distinct_jitter(self):
        policy = RetryPolicy(jitter=0.25, seed=0)
        assert policy.backoff_s("a", 1) != policy.backoff_s("b", 1)

    def test_total_cap_bounds_the_cumulative_schedule(self):
        policy = RetryPolicy(
            max_attempts=10, backoff_base_s=1.0, backoff_factor=2.0,
            backoff_max_s=60.0, backoff_total_max_s=5.0, jitter=0.0,
        )
        schedule = policy.backoff_schedule("k")
        assert sum(schedule) <= 5.0 + 1e-9
        # Once the budget is spent, every later attempt sleeps zero.
        assert policy.backoff_s("k", 9) == 0.0

    def test_total_cap_none_disables(self):
        policy = RetryPolicy(
            max_attempts=6, backoff_base_s=1.0, backoff_factor=2.0,
            backoff_max_s=60.0, backoff_total_max_s=None, jitter=0.0,
        )
        assert policy.backoff_s("k", 5) == 16.0

    def test_generous_budget_leaves_the_raw_schedule_untouched(self):
        capped = RetryPolicy(backoff_total_max_s=100.0, jitter=0.25, seed=3)
        raw = RetryPolicy(backoff_total_max_s=None, jitter=0.25, seed=3)
        for attempt in (1, 2):
            assert capped.backoff_s("k", attempt) == pytest.approx(
                raw.backoff_s("k", attempt)
            )


class TestDrain:
    def test_interruptible_sleep_wakes_on_shutdown(self):
        sup = Supervisor(policy=RetryPolicy(max_attempts=2, seed=1))
        timer = threading.Timer(0.05, sup.request_shutdown)
        timer.start()
        started = time.monotonic()
        sup._interruptible_sleep(60.0)
        timer.join()
        assert time.monotonic() - started < 10.0

    def test_drain_finalizes_the_retry_tail_as_failed(self):
        # Default (interruptible) sleep: with shutdown already requested
        # the backoff returns immediately and the cell is finalized
        # failed after its first fault instead of burning the budget.
        sup = Supervisor(policy=RetryPolicy(max_attempts=5, seed=1))
        sup.request_shutdown()
        assert sup.map(flaky, [(7, 99)]) == [None]
        assert ATTEMPTS[7] == 1
        assert sup.stats.failed == 1
        assert sup.stats.retried == 0


class TestRetryAndQuarantine:
    def test_retry_until_budget_succeeds(self):
        sup = Supervisor(policy=RetryPolicy(max_attempts=3, seed=1), sleep=no_sleep)
        assert sup.map(flaky, [(1, 2)]) == [10]  # fails twice, third try ok
        assert ATTEMPTS[1] == 3
        assert sup.stats.ok == 1
        assert sup.stats.retried == 1
        assert sup.stats.fault_counts == {"transient_io": 2}

    def test_budget_exhaustion_degrades_to_none(self):
        sup = Supervisor(policy=RetryPolicy(max_attempts=2, seed=1), sleep=no_sleep)
        assert sup.map(flaky, [(2, 99)]) == [None]
        assert ATTEMPTS[2] == 2  # exactly the budget, no more
        assert sup.stats.failed == 1
        assert sup.stats.ok == 0

    def test_deterministic_failure_quarantines_without_retry(self):
        sup = Supervisor(policy=RetryPolicy(max_attempts=5, seed=1), sleep=no_sleep)
        results = sup.map(broken, [(1,)])
        assert results == [None]
        assert sup.stats.quarantined == 1
        assert sup.stats.fault_counts == {"deterministic": 1}

    def test_quarantine_does_not_poison_the_rest(self):
        sup = Supervisor(policy=RetryPolicy(max_attempts=2, seed=1), sleep=no_sleep)

        def mixed(x):
            if x == 1:
                raise AssertionError("deterministic")
            return x * x

        assert sup.map(mixed, [(0,), (1,), (2,)]) == [0, None, 4]
        assert sup.stats.ok == 2
        assert sup.stats.quarantined == 1

    def test_backoff_uses_the_policy_schedule(self):
        slept = []
        policy = RetryPolicy(max_attempts=3, seed=4)
        sup = Supervisor(policy=policy, sleep=slept.append)
        sup.map(flaky, [(3, 2)])
        key = cell_key(flaky, (3, 2))
        assert slept == [policy.backoff_s(key, 1), policy.backoff_s(key, 2)]


class TestWatchdog:
    def test_explicit_timeout_wins(self):
        assert Supervisor(cell_timeout_s=1.5).watchdog_s() == 1.5

    def test_warmup_deadline_before_samples(self):
        sup = Supervisor()
        assert sup.watchdog_s() == supervisor.WATCHDOG_WARMUP_S

    def test_adapts_to_median_cell_time_with_floor(self):
        sup = Supervisor()
        sup._wall_times = [0.01, 0.02, 0.03]
        assert sup.watchdog_s() == supervisor.WATCHDOG_FLOOR_S  # floored
        sup._wall_times = [1.0, 2.0, 3.0]
        assert sup.watchdog_s() == pytest.approx(2.0 * 30.0)  # TIMEOUT_FACTOR

    @pytest.mark.tier2
    def test_serial_watchdog_kills_a_wedged_cell(self):
        sup = Supervisor(
            policy=RetryPolicy(max_attempts=1), cell_timeout_s=0.2, sleep=no_sleep
        )
        started = time.monotonic()
        assert sup.map(sleeper, [(1, 30.0)]) == [None]
        assert time.monotonic() - started < 5.0
        assert sup.stats.fault_counts == {"hang": 1}

    @pytest.mark.tier2
    def test_parallel_watchdog_kills_a_wedged_worker(self):
        sup = Supervisor(
            policy=RetryPolicy(max_attempts=1), cell_timeout_s=0.5, sleep=no_sleep
        )
        started = time.monotonic()
        results = sup.map(sleeper, [(1, 0.01), (2, 30.0), (3, 0.01)], jobs=3)
        assert results == [1, None, 3]
        assert time.monotonic() - started < 10.0
        assert sup.stats.fault_counts == {"hang": 1}
        assert sup.stats.ok == 2


class TestJournal:
    def test_roundtrip_with_checksum(self, tmp_path):
        journal = CampaignJournal(tmp_path)
        journal.record("k1", "ok", attempts=1, fault_list=[], result={"rows": [1, 2]})
        reopened = CampaignJournal(tmp_path)
        assert reopened.load_result("k1") == {"rows": [1, 2]}
        assert reopened.entries["k1"]["status"] == "ok"

    def test_corrupt_result_pickle_is_detected(self, tmp_path):
        journal = CampaignJournal(tmp_path)
        journal.record("k1", "ok", attempts=1, fault_list=[], result=[1, 2, 3])
        journal.result_path("k1").write_bytes(b"garbage")
        reopened = CampaignJournal(tmp_path)
        with pytest.raises(faults.CorruptRecordFault):
            reopened.load_result("k1")

    def test_torn_tail_line_is_recovered(self, tmp_path):
        journal = CampaignJournal(tmp_path)
        journal.record("k1", "ok", attempts=1, fault_list=[], result=1)
        with open(journal.path, "a") as fp:
            fp.write('{"key": "k2", "status"')  # killed mid-append
        reopened = CampaignJournal(tmp_path)
        assert reopened.recovered_truncated == 1
        assert set(reopened.entries) == {"k1"}

    def test_interior_corruption_raises(self, tmp_path):
        journal = CampaignJournal(tmp_path)
        journal.path.write_text('not json\n{"key": "k1", "status": "ok", "attempts": 1}\n')
        with pytest.raises(faults.CorruptRecordFault):
            CampaignJournal(tmp_path)


class TestCheckpointResume:
    def test_resume_completes_exactly_the_remainder(self, tmp_path):
        units = [(x,) for x in range(5)]
        clean = Supervisor(sleep=no_sleep).map(square, units)

        # Campaign "killed" after 3 cells: only those reach the journal.
        first = Supervisor(journal=CampaignJournal(tmp_path), sleep=no_sleep)
        first.map(square, units[:3])

        ATTEMPTS.clear()
        executed = []

        def counting_square(x):
            executed.append(x)
            return x * x

        counting_square.__module__ = square.__module__
        counting_square.__qualname__ = square.__qualname__  # same cell keys
        resumed = Supervisor(journal=CampaignJournal(tmp_path), sleep=no_sleep)
        results = resumed.map(counting_square, units)
        assert results == clean  # bit-identical to an uninterrupted run
        assert executed == [3, 4]  # exactly the remainder ran
        assert resumed.stats.resumed == 3
        assert resumed.stats.ok == 2

    def test_failure_tail_is_reattempted(self, tmp_path):
        journal = CampaignJournal(tmp_path)
        first = Supervisor(
            policy=RetryPolicy(max_attempts=1), journal=journal, sleep=no_sleep
        )
        assert first.map(flaky, [(7, 99)]) == [None]  # exhausts its budget

        ATTEMPTS.clear()  # the fault was transient: next campaign succeeds
        second = Supervisor(journal=CampaignJournal(tmp_path), sleep=no_sleep)
        assert second.map(flaky, [(7, 0)]) == [70]
        assert second.stats.resumed == 0  # failed cells are never skipped
        assert second.stats.ok == 1

    def test_corrupt_journaled_result_reruns_the_cell(self, tmp_path):
        journal = CampaignJournal(tmp_path)
        Supervisor(journal=journal, sleep=no_sleep).map(square, [(6,)])
        journal.result_path(cell_key(square, (6,))).write_bytes(b"rot")
        resumed = Supervisor(journal=CampaignJournal(tmp_path), sleep=no_sleep)
        assert resumed.map(square, [(6,)]) == [36]
        assert resumed.stats.resumed == 0
        assert resumed.stats.ok == 1

    @pytest.mark.tier2
    def test_resume_after_sigkill_is_bit_identical(self, tmp_path):
        """Kill a real campaign process mid-run; resuming completes the
        remainder and the merged results match an uninterrupted run."""
        journal_dir = tmp_path / "journal"
        out_path = tmp_path / "results.json"
        script = (
            "import json, sys, time\n"
            "from repro.harness.supervisor import CampaignJournal, Supervisor\n"
            "from tests.harness.test_supervisor import slow_square\n"
            "sup = Supervisor(journal=CampaignJournal(%r))\n"
            "results = sup.map(slow_square, [(x,) for x in range(6)])\n"
            "json.dump(results, open(%r, 'w'))\n" % (str(journal_dir), str(out_path))
        )
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            p for p in ("src", ".", env.get("PYTHONPATH", "")) if p
        )
        proc = subprocess.Popen([sys.executable, "-c", script], env=env)
        # Wait until at least one cell is journaled, then kill -9.
        deadline = time.monotonic() + 30.0
        journal_path = journal_dir / "journal.jsonl"
        while time.monotonic() < deadline:
            if journal_path.exists() and journal_path.read_text().count("\n") >= 1:
                break
            time.sleep(0.02)
        proc.send_signal(signal.SIGKILL)
        proc.wait()
        assert not out_path.exists()  # the first campaign never finished

        resumed = Supervisor(journal=CampaignJournal(journal_dir))
        results = resumed.map(slow_square, [(x,) for x in range(6)])
        assert results == [x * x for x in range(6)]
        assert resumed.stats.resumed >= 1  # the killed campaign's progress held


def slow_square(x):
    time.sleep(0.15)
    return x * x


class TestChaosCampaign:
    def test_parallel_chaos_campaign_is_bit_identical(self):
        units = [(x,) for x in range(8)]
        clean = [x * x for x in range(8)]
        faults.configure("seed=3,worker_crash=0.6,hang=0.4,hang_s=30")
        sup = Supervisor(
            policy=RetryPolicy(max_attempts=3, seed=0),
            cell_timeout_s=1.0,
            sleep=no_sleep,
        )
        results = sup.map(square, units, jobs=4)
        assert results == clean
        assert sup.stats.ok == 8
        assert sup.stats.retried >= 1  # the chaos spec guarantees firings
        assert set(sup.stats.fault_counts) <= {"worker_crash", "hang"}

    def test_serial_chaos_campaign_is_bit_identical(self):
        units = [(x,) for x in range(8)]
        faults.configure("seed=3,worker_crash=0.7,hang=0.3,hang_s=30")
        sup = Supervisor(
            policy=RetryPolicy(max_attempts=3, seed=0),
            cell_timeout_s=1.0,
            sleep=no_sleep,
        )
        assert sup.map(square, units, jobs=1) == [x * x for x in range(8)]
        assert sup.stats.retried >= 1

    def test_crash_dossiers_are_written(self, tmp_path):
        faults.configure("seed=1,worker_crash=1.0")
        sup = Supervisor(
            journal=CampaignJournal(tmp_path),
            policy=RetryPolicy(max_attempts=2, seed=0),
            sleep=no_sleep,
        )
        assert sup.map(square, [(5,)]) == [25]
        dossiers = list(tmp_path.glob("crash-*.json"))
        assert len(dossiers) == 1
        payload = json.loads(dossiers[0].read_text())["record"]
        assert payload["fault"]["kind"] == "worker_crash"
        assert payload["attempt"] == 1


class TestMapUnitsIntegration:
    def test_map_units_routes_through_active_supervisor(self):
        with supervised(sleep=no_sleep) as sup:
            assert parallel.map_units(square, [(2,), (3,)]) == [4, 9]
        assert sup.stats.ok == 2

    def test_map_units_unsupervised_path_unchanged(self):
        assert supervisor.current() is None
        assert parallel.map_units(square, [(2,), (3,)]) == [4, 9]

    def test_summary_line_format(self):
        sup = Supervisor(sleep=no_sleep)
        sup.map(square, [(1,), (2,)])
        line = sup.stats.summary_line()
        assert line == "supervisor: 2 cells ok, 0 retried, 0 quarantined"
