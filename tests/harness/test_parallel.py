"""Serial/parallel equivalence: the correctness anchor of --jobs.

Every experiment cell is a deterministic function of picklable inputs
and results merge in submission order, so ``jobs=4`` must reproduce the
``jobs=1`` tables bit for bit.
"""

from repro.harness import experiments
from repro.harness.parallel import chunked, map_units, resolve_jobs


def _square(x):
    return x * x


class TestMapUnits:
    def test_serial_matches_builtin_map(self):
        assert map_units(_square, [(i,) for i in range(8)], jobs=1) == [
            i * i for i in range(8)
        ]

    def test_parallel_preserves_submission_order(self):
        assert map_units(_square, [(i,) for i in range(8)], jobs=4) == [
            i * i for i in range(8)
        ]

    def test_single_unit_bypasses_pool(self):
        assert map_units(_square, [(3,)], jobs=4) == [9]

    def test_empty_units(self):
        assert map_units(_square, [], jobs=4) == []

    def test_resolve_jobs(self):
        assert resolve_jobs(None) == 1
        assert resolve_jobs(1) == 1
        assert resolve_jobs(-3) == 1
        assert resolve_jobs(7) == 7
        assert resolve_jobs(0) >= 1  # AUTO_JOBS -> cpu count

    def test_chunked(self):
        assert chunked(range(5), 2) == [[0, 1], [2, 3], [4]]
        assert chunked([], 3) == []


class TestSerialParallelIdentity:
    """ISSUE acceptance: --jobs 1 and --jobs 4 rows are identical."""

    def test_table4_rows_identical(self):
        kwargs = dict(attempts=2, budget=8, bugs=["Bug-1"], base_seed=0)
        serial = experiments.table4_detection(jobs=1, **kwargs)
        parallel = experiments.table4_detection(jobs=4, **kwargs)
        assert repr(serial) == repr(parallel)

    def test_table6_rows_identical(self):
        serial = experiments.table6_delays(apps=["nsubstitute"], seed=1, jobs=1)
        parallel = experiments.table6_delays(apps=["nsubstitute"], seed=1, jobs=4)
        assert repr(serial) == repr(parallel)

    def test_table2_rows_identical(self):
        serial = experiments.table2_sites(apps=["nsubstitute"], seed=1, jobs=1)
        parallel = experiments.table2_sites(apps=["nsubstitute"], seed=1, jobs=4)
        assert repr(serial) == repr(parallel)

    def test_figure2_points_identical(self):
        serial = experiments.figure2_timing_conditions(delays_ms=(0, 9, 11, 30), jobs=1)
        parallel = experiments.figure2_timing_conditions(delays_ms=(0, 9, 11, 30), jobs=4)
        assert repr(serial) == repr(parallel)

    def test_parallel_with_cache_identical(self, tmp_path):
        kwargs = dict(apps=["nsubstitute"], seed=1)
        serial = experiments.table6_delays(jobs=1, **kwargs)
        cached = experiments.table6_delays(jobs=4, cache_dir=str(tmp_path), **kwargs)
        rewarmed = experiments.table6_delays(jobs=4, cache_dir=str(tmp_path), **kwargs)
        assert repr(serial) == repr(cached) == repr(rewarmed)
