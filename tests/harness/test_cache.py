"""The content-addressed run cache: hits skip simulation, keys invalidate.

The determinism of the virtual-time simulator makes memoization sound;
these tests pin the contract: a warm hit returns *equal* results without
re-running anything (asserted via the runner's process-local run
counters), and any config change flips the key.
"""

import json

import pytest

from repro.core.config import DEFAULT_CONFIG
from repro.core import persistence
from repro.harness import faults, runner
from repro.harness.cache import PlanCache, config_hash, open_cache
from repro.harness.runner import baseline_run, online_pair, prepare_test
from repro.apps import get_app


@pytest.fixture(autouse=True)
def chaos_off():
    faults.disable()
    yield
    faults.disable()


@pytest.fixture
def test_case():
    return get_app("nsubstitute").multithreaded_tests[0]


@pytest.fixture
def cache(tmp_path):
    return PlanCache(tmp_path / "cache")


class TestConfigHash:
    def test_stable(self):
        assert config_hash(DEFAULT_CONFIG) == config_hash(DEFAULT_CONFIG)

    def test_seed_excluded_by_default(self):
        assert config_hash(DEFAULT_CONFIG.with_seed(1)) == config_hash(
            DEFAULT_CONFIG.with_seed(2)
        )

    def test_seed_included_on_request(self):
        assert config_hash(
            DEFAULT_CONFIG.with_seed(1), include_seed=True
        ) != config_hash(DEFAULT_CONFIG.with_seed(2), include_seed=True)

    def test_any_field_changes_hash(self):
        import dataclasses

        changed = dataclasses.replace(
            DEFAULT_CONFIG, near_miss_window_ms=DEFAULT_CONFIG.near_miss_window_ms + 1.0
        )
        assert config_hash(changed) != config_hash(DEFAULT_CONFIG)


class TestSharedMode:
    def test_shared_put_roundtrips_identically(self, tmp_path):
        # Shared (fsync-before-rename) mode changes durability, not
        # content: the record bytes and the read path are the same.
        plain = PlanCache(tmp_path / "plain")
        shared = PlanCache(tmp_path / "shared", shared=True)
        payload = {"rows": [1, 2, 3], "nested": {"x": 0.5}}
        plain.put("prep", {"k": 1}, payload)
        shared.put("prep", {"k": 1}, payload)
        assert shared.get("prep", {"k": 1}) == payload
        name = plain._path("prep", plain._digest("prep", {"k": 1})).name
        assert (tmp_path / "plain" / name).read_bytes() == (
            tmp_path / "shared" / name
        ).read_bytes()

    def test_open_cache_shared_defaults_from_env(self, tmp_path, monkeypatch):
        monkeypatch.setenv("WAFFLE_CACHE_SHARED", "1")
        assert open_cache(tmp_path).shared
        monkeypatch.delenv("WAFFLE_CACHE_SHARED")
        assert not open_cache(tmp_path).shared
        # Explicit argument wins over the environment.
        monkeypatch.setenv("WAFFLE_CACHE_SHARED", "1")
        assert not open_cache(tmp_path, shared=False).shared

    def test_unreadable_record_is_a_quarantined_miss(self, cache):
        # An OSError on read (here: the record path is a directory, as a
        # stand-in for shared-filesystem permission/stat hiccups) must
        # degrade to a miss, never crash the campaign.
        key = {"k": 1}
        cache.put("prep", key, {"v": 1})
        path = cache._path("prep", cache._digest("prep", key))
        path.unlink()
        path.mkdir()
        fresh = PlanCache(cache.directory)
        assert fresh.get("prep", key) is None
        assert fresh.stats.corrupt == 1
        assert fresh.stats.misses == 1


class TestPlanCache:
    def test_miss_then_hit(self, cache):
        key = {"test": "a:b", "seed": 0}
        assert cache.get("baseline", key) is None
        cache.put("baseline", key, {"x": 1})
        assert cache.get("baseline", key) == {"x": 1}
        assert cache.stats.misses == 1
        assert cache.stats.hits == 1
        assert cache.stats.writes == 1

    def test_survives_reopen(self, tmp_path):
        a = PlanCache(tmp_path)
        a.put("prep", {"k": 1}, {"v": [1, 2, 3]})
        b = PlanCache(tmp_path)
        assert b.get("prep", {"k": 1}) == {"v": [1, 2, 3]}

    def test_kind_partitions_keyspace(self, cache):
        cache.put("baseline", {"k": 1}, {"v": "base"})
        assert cache.get("prep", {"k": 1}) is None

    def test_torn_file_is_a_miss(self, cache):
        key = {"k": 1}
        cache.put("prep", key, {"v": 1})
        path = cache._path("prep", cache._digest("prep", key))
        path.write_text("{not json")
        fresh = PlanCache(cache.directory)
        assert fresh.get("prep", key) is None

    def test_format_version_bump_invalidates(self, cache, monkeypatch, tmp_path):
        key = {"k": 1}
        cache.put("prep", key, {"v": 1})
        path = cache._path("prep", cache._digest("prep", key))
        payload = json.loads(path.read_text())
        payload["version"] = persistence.FORMAT_VERSION + 1
        path.write_text(json.dumps(payload))
        fresh = PlanCache(cache.directory)
        assert fresh.get("prep", key) is None

    def test_corrupted_record_is_quarantined(self, cache):
        key = {"k": 1}
        cache.put("prep", key, {"v": 1})
        path = cache._path("prep", cache._digest("prep", key))
        blob = bytearray(path.read_bytes())
        blob[len(blob) // 2] ^= 0xFF  # single flipped bit-rot byte
        path.write_bytes(bytes(blob))

        fresh = PlanCache(cache.directory)
        assert fresh.get("prep", key) is None  # a miss, never a crash
        assert fresh.stats.corrupt == 1
        assert fresh.stats.misses == 1
        assert not path.exists()
        assert path.with_name(path.name + ".corrupt").exists()
        # Quarantined entries are never re-read: the recomputed record
        # replaces them cleanly.
        fresh.put("prep", key, {"v": 1})
        assert PlanCache(cache.directory).get("prep", key) == {"v": 1}

    def test_truncated_record_is_quarantined(self, cache):
        key = {"k": 2}
        cache.put("prep", key, {"v": [1, 2, 3]})
        path = cache._path("prep", cache._digest("prep", key))
        path.write_bytes(path.read_bytes()[:-16])  # torn write
        fresh = PlanCache(cache.directory)
        assert fresh.get("prep", key) is None
        assert fresh.stats.corrupt == 1
        assert path.with_name(path.name + ".corrupt").exists()

    def test_checksum_mismatch_on_valid_json_is_quarantined(self, cache):
        # The payload parses fine but was silently altered: only the
        # checksum catches this class.
        key = {"k": 3}
        cache.put("prep", key, {"v": 1})
        path = cache._path("prep", cache._digest("prep", key))
        record = json.loads(path.read_text())
        record["record"]["payload"]["v"] = 2
        path.write_text(json.dumps(record))
        fresh = PlanCache(cache.directory)
        assert fresh.get("prep", key) is None
        assert fresh.stats.corrupt == 1

    def test_chaos_cache_corrupt_site(self, cache):
        key = {"k": 4}
        cache.put("prep", key, {"v": "payload"})
        faults.configure("seed=9,cache_corrupt=1.0")
        fresh = PlanCache(cache.directory)  # cold: forces the file read
        assert fresh.get("prep", key) is None  # chaos corrupted the read
        assert fresh.stats.corrupt == 1
        # Chaos fires once per file; the recomputed record then sticks.
        fresh.put("prep", key, {"v": "payload"})
        assert fresh.get("prep", key) == {"v": "payload"}

    def test_memo_hits_skip_integrity_io(self, cache):
        # In-process memo hits never touch the file, so post-put
        # corruption is invisible until a fresh process reads the disk.
        key = {"k": 5}
        cache.put("prep", key, {"v": 1})
        path = cache._path("prep", cache._digest("prep", key))
        path.write_bytes(b"garbage")
        assert cache.get("prep", key) == {"v": 1}
        assert cache.stats.corrupt == 0

    def test_open_cache_none_and_env(self, tmp_path, monkeypatch):
        monkeypatch.delenv("WAFFLE_CACHE_DIR", raising=False)
        assert open_cache(None) is None
        monkeypatch.setenv("WAFFLE_CACHE_DIR", str(tmp_path / "envcache"))
        via_env = open_cache(None)
        assert via_env is not None
        assert via_env.directory == tmp_path / "envcache"


class TestPrepareTestCaching:
    def test_hit_returns_equal_plan_without_rerunning(self, test_case, cache):
        cold = prepare_test(test_case, DEFAULT_CONFIG, seed=3, cache=cache, test_id="n:t")
        recordings = runner.RECORDING_RUNS
        warm = prepare_test(test_case, DEFAULT_CONFIG, seed=3, cache=cache, test_id="n:t")
        assert runner.RECORDING_RUNS == recordings  # no new simulation
        assert warm.plan.to_dict() == cold.plan.to_dict()
        assert warm.run == cold.run
        assert warm.mo_sites == cold.mo_sites
        assert warm.tsv_sites == cold.tsv_sites
        assert warm.tsv_injection_sites == cold.tsv_injection_sites
        assert warm.init_instance_counts == cold.init_instance_counts
        assert warm.event_count == cold.event_count

    def test_disk_roundtrip_is_exact(self, test_case, tmp_path):
        first = PlanCache(tmp_path)
        cold = prepare_test(test_case, DEFAULT_CONFIG, seed=3, cache=first, test_id="n:t")
        reopened = PlanCache(tmp_path)  # no in-memory memo: forces file read
        warm = prepare_test(test_case, DEFAULT_CONFIG, seed=3, cache=reopened, test_id="n:t")
        assert warm.plan.to_dict() == cold.plan.to_dict()
        assert reopened.stats.hits == 1

    def test_config_change_invalidates(self, test_case, cache):
        import dataclasses

        prepare_test(test_case, DEFAULT_CONFIG, seed=3, cache=cache, test_id="n:t")
        recordings = runner.RECORDING_RUNS
        changed = dataclasses.replace(
            DEFAULT_CONFIG, near_miss_window_ms=DEFAULT_CONFIG.near_miss_window_ms * 2
        )
        prepare_test(test_case, changed, seed=3, cache=cache, test_id="n:t")
        assert runner.RECORDING_RUNS == recordings + 1  # re-simulated

    def test_seed_change_invalidates(self, test_case, cache):
        prepare_test(test_case, DEFAULT_CONFIG, seed=3, cache=cache, test_id="n:t")
        recordings = runner.RECORDING_RUNS
        prepare_test(test_case, DEFAULT_CONFIG, seed=4, cache=cache, test_id="n:t")
        assert runner.RECORDING_RUNS == recordings + 1

    def test_matches_uncached_result(self, test_case, cache):
        # Object ids come from a process-lifetime counter, so two fresh
        # runs differ in that provenance field (it is never consumed by
        # injection decisions); compare the plans modulo object_id.
        def norm(value):
            if isinstance(value, dict):
                return {
                    k: norm(v) for k, v in value.items() if k != "object_id"
                }
            if isinstance(value, list):
                return [norm(v) for v in value]
            return value

        cached = prepare_test(test_case, DEFAULT_CONFIG, seed=3, cache=cache, test_id="n:t")
        plain = prepare_test(test_case, DEFAULT_CONFIG, seed=3)
        assert norm(cached.plan.to_dict()) == norm(plain.plan.to_dict())
        assert cached.run == plain.run


class TestBaselineAndOnlinePairCaching:
    def test_baseline_hit_skips_run(self, test_case, cache):
        cold = baseline_run(test_case, seed=5, cache=cache, test_id="n:t")
        count = runner.BASELINE_RUNS
        warm = baseline_run(test_case, seed=5, cache=cache, test_id="n:t")
        assert runner.BASELINE_RUNS == count
        assert warm == cold

    def test_online_pair_hit_is_equal(self, test_case, cache):
        cold = online_pair(test_case, DEFAULT_CONFIG, seed=5, cache=cache, test_id="n:t")
        warm = online_pair(test_case, DEFAULT_CONFIG, seed=5, cache=cache, test_id="n:t")
        assert warm == cold
        plain = online_pair(test_case, DEFAULT_CONFIG, seed=5)
        assert warm == plain

    def test_tsv_mode_partitions_key(self, test_case, cache):
        basic = online_pair(test_case, DEFAULT_CONFIG, seed=5, cache=cache, test_id="n:t")
        tsv = online_pair(
            test_case, DEFAULT_CONFIG, seed=5, tsv_mode=True, cache=cache, test_id="n:t"
        )
        # Both cached under distinct keys; re-reads return the right one.
        assert online_pair(
            test_case, DEFAULT_CONFIG, seed=5, cache=cache, test_id="n:t"
        ) == basic
        assert online_pair(
            test_case, DEFAULT_CONFIG, seed=5, tsv_mode=True, cache=cache, test_id="n:t"
        ) == tsv
