"""Fleet campaigns: leases, work stealing, and the serial/fleet/chaos
byte-identity matrix."""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.harness import faults, fleet, parallel
from repro.harness.fleet import FleetDrained, FleetWorker
from repro.harness.supervisor import RetryPolicy, cell_key
from repro.obs import eventbus


@pytest.fixture(autouse=True)
def clean_slate():
    faults.disable()
    fleet.deactivate()
    yield
    faults.disable()
    fleet.deactivate()
    eventbus.disable()


def fast_policy(max_attempts: int = 3) -> RetryPolicy:
    return RetryPolicy(max_attempts=max_attempts, backoff_base_s=0.0, jitter=0.0)


def make_worker(tmp_path, worker_id="w-test", role="worker", **kwargs):
    kwargs.setdefault("policy", fast_policy())
    kwargs.setdefault("poll_s", 0.02)
    return FleetWorker(tmp_path / "fleet", worker_id=worker_id, role=role, **kwargs)


def square(x):
    return x * x


_FLAKY_CALLS = {"n": 0}


def flaky_square(x):
    _FLAKY_CALLS["n"] += 1
    if _FLAKY_CALLS["n"] == 1:
        raise OSError("transient wobble")
    return x * x


def always_deterministic_failure(x):
    raise ValueError("same inputs, same crash")


def always_transient_failure(x):
    raise OSError("the disk is never there")


KEY = "f" * 32


class TestLeaseProtocol:
    def test_acquire_is_exclusive(self, tmp_path):
        a = make_worker(tmp_path, "a")
        b = make_worker(tmp_path, "b")
        assert a._try_acquire(KEY, attempt=1)
        assert not b._try_acquire(KEY, attempt=1)
        lease = b._read_lease(KEY)
        assert lease["worker"] == "a"
        assert lease["attempt"] == 1

    def test_release_requires_ownership(self, tmp_path):
        a = make_worker(tmp_path, "a")
        b = make_worker(tmp_path, "b")
        a._try_acquire(KEY, attempt=1)
        assert not b._release_lease(KEY)
        assert a._read_lease(KEY) is not None
        assert a._release_lease(KEY)
        assert a._read_lease(KEY) is None
        # Double release is a no-op, not a second ledger event.
        assert not a._release_lease(KEY)

    def test_steal_requires_expiry_and_has_one_winner(self, tmp_path):
        victim = make_worker(tmp_path, "victim", lease_ttl_s=0.15)
        thief = make_worker(tmp_path, "thief", lease_ttl_s=0.15)
        victim._try_acquire(KEY, attempt=1)
        fresh = thief._read_lease(KEY)
        assert fresh["deadline_unix"] > time.time()  # not stealable yet
        time.sleep(0.25)
        stale = thief._read_lease(KEY)
        assert stale["deadline_unix"] < time.time()
        assert thief._try_steal(KEY, stale) == 2  # victim attempt + 1
        # The rename-to-tombstone is the mutex: the second steal loses.
        assert thief._try_steal(KEY, stale) is None
        tombstones = list((tmp_path / "fleet" / "expired").iterdir())
        assert len(tombstones) == 1
        assert thief._read_lease(KEY)["worker"] == "thief"

    def test_zombie_owner_cannot_resurrect_a_stolen_lease(self, tmp_path):
        victim = make_worker(tmp_path, "victim", lease_ttl_s=0.1)
        thief = make_worker(tmp_path, "thief", lease_ttl_s=0.1)
        victim._try_acquire(KEY, attempt=1)
        time.sleep(0.2)
        assert thief._try_steal(KEY, thief._read_lease(KEY)) == 2
        # The presumed-dead owner wakes up: renewal and release both
        # refuse (the steal's termination already balanced its lease).
        assert not victim._renew_lease(KEY)
        assert not victim._release_lease(KEY)
        assert thief._read_lease(KEY)["worker"] == "thief"

    def test_heartbeat_rearms_the_deadline(self, tmp_path):
        worker = make_worker(tmp_path, "hb", lease_ttl_s=0.3)
        worker._try_acquire(KEY, attempt=1)
        first = worker._read_lease(KEY)["deadline_unix"]
        beat = fleet._Heartbeat(worker, KEY)
        beat.start()
        time.sleep(0.45)  # several beat intervals (ttl/3) past the ttl
        beat.stop()
        beat.join(timeout=2.0)
        lease = worker._read_lease(KEY)
        assert lease["deadline_unix"] > first
        assert lease["deadline_unix"] > time.time() - 0.1
        assert beat.beats >= 1


class TestMapCells:
    def test_results_in_submission_order(self, tmp_path):
        worker = make_worker(tmp_path, "solo")
        units = [(x,) for x in range(7)]
        assert worker.map_cells(square, units) == [x * x for x in range(7)]
        assert worker.stats.executed == 7
        assert worker.stats.fetched == 0
        # Leases all released, results all published.
        assert not list((tmp_path / "fleet" / "leases").iterdir())
        assert len(list(worker.store.keys())) == 7

    def test_second_worker_fetches_instead_of_re_executing(self, tmp_path):
        units = [(x,) for x in range(5)]
        make_worker(tmp_path, "first").map_cells(square, units)
        second = make_worker(tmp_path, "second")
        assert second.map_cells(square, units) == [x * x for x in range(5)]
        assert second.stats.executed == 0
        assert second.stats.fetched == 5

    def test_journal_records_every_execution_once(self, tmp_path):
        worker = make_worker(tmp_path, "journaled")
        worker.map_cells(square, [(x,) for x in range(4)])
        lines = [json.loads(l) for l in worker.journal_path.read_text().splitlines()]
        assert len(lines) == 4
        assert {l["key"] for l in lines} == {
            cell_key(square, (x,)) for x in range(4)
        }
        assert all(l["status"] == "ok" and l["worker"] == "journaled" for l in lines)

    def test_transient_failure_retries_to_success(self, tmp_path):
        _FLAKY_CALLS["n"] = 0
        worker = make_worker(tmp_path, "retrier")
        assert worker.map_cells(flaky_square, [(6,)]) == [36]
        assert worker.stats.retried == 1
        record = worker.store.fetch(cell_key(flaky_square, (6,)))
        assert record.ok and record.attempts == 2

    def test_deterministic_failure_quarantines_with_tombstone(self, tmp_path):
        worker = make_worker(tmp_path, "quarantiner")
        assert worker.map_cells(always_deterministic_failure, [(1,)]) == [None]
        assert worker.stats.quarantined == 1
        record = worker.store.fetch(cell_key(always_deterministic_failure, (1,)))
        assert record.status == "quarantined"
        assert record.result is None

    def test_attempt_budget_exhaustion_fails_the_cell(self, tmp_path):
        worker = make_worker(tmp_path, "exhausted", policy=fast_policy(max_attempts=2))
        assert worker.map_cells(always_transient_failure, [(1,)]) == [None]
        assert worker.stats.failed == 1
        record = worker.store.fetch(cell_key(always_transient_failure, (1,)))
        assert record.status == "failed"
        assert record.attempts == 2

    def test_waiter_sees_anothers_tombstone_instead_of_spinning(self, tmp_path):
        make_worker(tmp_path, "first").map_cells(always_deterministic_failure, [(1,)])
        second = make_worker(tmp_path, "second")
        assert second.map_cells(always_deterministic_failure, [(1,)]) == [None]
        assert second.stats.executed == 0

    def test_drain_request_raises_and_releases(self, tmp_path):
        worker = make_worker(tmp_path, "drainer")
        worker.request_shutdown()
        with pytest.raises(FleetDrained):
            worker.map_cells(square, [(x,) for x in range(3)])
        assert not list((tmp_path / "fleet" / "leases").iterdir())

    def test_chaos_crash_in_coordinator_is_retried_in_process(self, tmp_path):
        faults.configure("seed=1,worker_crash=1.0,attempts=1")
        worker = make_worker(tmp_path, "coord", role="coordinator")
        assert worker.map_cells(square, [(x,) for x in range(3)]) == [0, 1, 4]
        assert worker.stats.retried == 3  # every cell crashed once, then ran clean
        assert worker.stats.fault_counts.get("worker_crash") == 3

    def test_map_units_routes_through_an_active_fleet(self, tmp_path):
        worker = make_worker(tmp_path, "routed")
        fleet.activate(worker)
        try:
            assert parallel.map_units(square, [(3,)], jobs=4) == [9]
        finally:
            fleet.deactivate()
        assert worker.stats.executed == 1

    def test_steal_resumes_a_dead_workers_cell(self, tmp_path):
        dead = make_worker(tmp_path, "dead", lease_ttl_s=0.15)
        key = cell_key(square, (5,))
        dead._try_acquire(key, attempt=1)  # ... and then the host dies
        live = make_worker(tmp_path, "live", lease_ttl_s=0.15,
                           drain_timeout_s=10.0)
        assert live.map_cells(square, [(5,)]) == [25]
        assert live.stats.stolen == 1
        assert live.store.fetch(key).attempts == 2


class TestLeaseLedger:
    def _ledger(self, directory):
        view_events = []
        for stream in eventbus.load_streams(directory):
            view_events.extend(stream.events)
        counts = {}
        for event in view_events:
            counts[event["type"]] = counts.get(event["type"], 0) + 1
        return counts

    def test_clean_run_balances(self, tmp_path):
        eventbus.configure(tmp_path / "fleet")
        worker = make_worker(tmp_path, "ledgered")
        worker.map_cells(square, [(x,) for x in range(4)])
        eventbus.flush()
        counts = self._ledger(tmp_path / "fleet")
        assert counts.get("lease_acquire", 0) == 4
        assert counts.get("lease_release", 0) == 4
        assert "lease_expire" not in counts
        assert "lease_steal" not in counts

    def test_steal_emits_expire_and_steal_exactly_once(self, tmp_path):
        eventbus.configure(tmp_path / "fleet")
        dead = make_worker(tmp_path, "dead", lease_ttl_s=0.15)
        dead._try_acquire(cell_key(square, (9,)), attempt=1)
        live = make_worker(tmp_path, "live", lease_ttl_s=0.15)
        live.map_cells(square, [(9,)])
        eventbus.flush()
        counts = self._ledger(tmp_path / "fleet")
        # Conservation: acquire + steal == release + expire.
        assert counts["lease_acquire"] == 1  # the dead worker's claim
        assert counts["lease_steal"] == 1
        assert counts["lease_expire"] == 1
        assert counts["lease_release"] == 1  # the thief's finalize

    def test_sweep_reclaims_publish_then_die_leases(self, tmp_path):
        eventbus.configure(tmp_path / "fleet")
        worker = make_worker(tmp_path, "died-after-publish", role="coordinator")
        key = cell_key(square, (2,))
        worker._try_acquire(key, attempt=1)
        worker.store.publish(key, "ok", 4)
        worker._held.clear()  # simulate the owner dying before release
        assert worker.sweep_stale_leases() == 1
        eventbus.flush()
        counts = self._ledger(tmp_path / "fleet")
        assert counts["lease_acquire"] == 1
        assert counts["lease_release"] == 1
        # An unfinished cell's lease (no published record) is never swept.
        worker._try_acquire("9" * 32, attempt=1)
        worker._held.clear()
        assert worker.sweep_stale_leases() == 0


class TestCampaignManifest:
    def test_mixed_campaigns_are_refused(self, tmp_path):
        target = tmp_path / "campaign.json"
        fleet._write_manifest(target, ["fuzz", "--seed-range", "0:4"], 1.0, 0.1, 3, 60.0)
        reloaded = fleet._write_manifest(
            target, ["fuzz", "--seed-range", "0:4"], 9.0, 0.9, 5, 90.0
        )
        assert reloaded["lease_ttl_s"] == 1.0  # the original manifest stands
        with pytest.raises(SystemExit):
            fleet._write_manifest(target, ["fuzz", "--seed-range", "0:8"], 1.0, 0.1, 3, 60.0)

    def test_nested_fleet_commands_are_refused(self, tmp_path):
        with pytest.raises(SystemExit):
            fleet._dispatch_inner(
                ["campaign", "status", "somewhere"], tmp_path / "cache"
            )


def _run(argv, cwd, env_extra=None, check=True, timeout=240):
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (str(Path(__file__).resolve().parents[2] / "src"),
                    env.get("PYTHONPATH", "")) if p
    )
    env.pop("WAFFLE_CHAOS", None)
    env.pop("WAFFLE_CACHE_SHARED", None)
    if env_extra:
        env.update(env_extra)
    proc = subprocess.run(
        [sys.executable, "-m", "repro"] + argv,
        cwd=str(cwd), env=env, capture_output=True, text=True, timeout=timeout,
    )
    if check and proc.returncode != 0:
        raise AssertionError(
            "command %r failed rc=%d\nstdout:\n%s\nstderr:\n%s"
            % (argv, proc.returncode, proc.stdout, proc.stderr)
        )
    return proc


INNER = ["fuzz", "--seed-range", "0:6", "--budget", "4", "--no-replay",
         "--out", "out.txt", "--cache-dir", "cache"]


@pytest.mark.tier2
class TestFleetMatrix:
    """The acceptance anchor: the same campaign serial, 2-worker, and
    chaos-killed-mid-lease produces byte-identical artifacts.

    Every run uses its own working directory with identical *relative*
    paths, so content-addressed cell keys (which hash the argument
    strings) agree across runs.
    """

    def test_serial_fleet_and_chaos_runs_are_byte_identical(self, tmp_path):
        # 1. Serial: the coordinator is the only executor.
        serial = tmp_path / "serial"
        serial.mkdir()
        _run(["campaign", "run", "--fleet-dir", "fleet", "--workers", "0",
              "--"] + INNER, cwd=serial)

        # 2. Two spawned workers plus the coordinator.
        two = tmp_path / "two"
        two.mkdir()
        _run(["campaign", "run", "--fleet-dir", "fleet", "--workers", "2",
              "--min-workers", "2", "--"] + INNER, cwd=two)

        # 3. Chaos: a doomed worker claims a lease and is killed by
        # chaos mid-cell (os._exit, the real thing); the coordinator
        # must steal the expired lease and finish.
        chaos = tmp_path / "chaos"
        chaos.mkdir()
        fleet_dir = chaos / "fleet"
        paths = fleet._fleet_paths(fleet_dir)
        paths["root"].mkdir(parents=True)
        fleet._write_manifest(paths["manifest"], INNER, 1.0, 0.1, 3, 120.0)
        doomed = _run(
            ["campaign", "worker", "--fleet-dir", "fleet", "--wait", "10",
             "--worker-id", "doomed"],
            cwd=chaos,
            env_extra={"WAFFLE_CHAOS": "seed=1,worker_crash=1.0"},
            check=False,
        )
        assert doomed.returncode == faults.CHAOS_CRASH_EXIT
        stale = list(paths["leases"].glob("lease-*.json"))
        assert len(stale) == 1, "the doomed worker should die holding its lease"
        _run(["campaign", "run", "--fleet-dir", "fleet", "--workers", "0",
              "--"] + INNER, cwd=chaos)

        # -- Byte identity: user tables and the canonical merged journal.
        outs = [(d / "out.txt").read_bytes() for d in (serial, two, chaos)]
        assert outs[0] == outs[1] == outs[2]
        journals = [
            (d / "fleet" / fleet.MERGED_JOURNAL_NAME).read_bytes()
            for d in (serial, two, chaos)
        ]
        assert journals[0] == journals[1] == journals[2]
        assert len(journals[0].splitlines()) == 6

        # -- Byte identity: merged event *analytics* (the deterministic
        # work-product plane; raw timelines legitimately differ).
        from repro.obs import campaign as campaign_mod

        texts = []
        for d in (serial, two, chaos):
            view, _ = campaign_mod.load_view(d / "fleet")
            assert not view.warnings, view.warnings
            texts.append(campaign_mod.render_analytics(view, source="matrix"))
        assert texts[0] == texts[1] == texts[2]

        # -- The chaos run really exercised reclamation.
        chaos_view, _ = campaign_mod.load_view(chaos / "fleet")
        assert chaos_view.lease_stolen == 1
        assert chaos_view.lease_expired == 1
        assert (
            chaos_view.lease_acquired + chaos_view.lease_stolen
            == chaos_view.lease_released + chaos_view.lease_expired
        )
        assert not list((chaos / "fleet" / "leases").iterdir())
        assert len(list((chaos / "fleet" / "expired").iterdir())) == 1

        # -- No cell executed twice: the per-worker journals are the
        # execution ledger, and each key appears exactly once across
        # the whole fleet (the chaos kill happened *before* the doomed
        # worker journaled anything).
        for d in (serial, two, chaos):
            executed = []
            for journal in (d / "fleet").glob("journal-*.jsonl"):
                if journal.name == fleet.MERGED_JOURNAL_NAME:
                    continue
                executed.extend(
                    json.loads(line)["key"]
                    for line in journal.read_text().splitlines()
                )
            assert len(executed) == len(set(executed)) == 6, d

        # -- The ledger reconciliation gate passes on every run.
        script = Path(__file__).resolve().parents[2] / "scripts" / "check_obs.py"
        for d in (serial, two, chaos):
            proc = subprocess.run(
                [sys.executable, str(script), "--events-only", str(d / "fleet")],
                capture_output=True, text=True,
                env={**os.environ,
                     "PYTHONPATH": str(Path(__file__).resolve().parents[2] / "src")},
            )
            assert proc.returncode == 0, proc.stdout + proc.stderr

    def test_sigterm_drains_a_worker(self, tmp_path):
        """A worker told to stop releases its leases and exits with the
        drain code instead of finishing the campaign."""
        fleet_dir = tmp_path / "fleet"
        paths = fleet._fleet_paths(fleet_dir)
        paths["root"].mkdir(parents=True)
        # Plenty of cells so the worker is still busy when signalled.
        inner = ["fuzz", "--seed-range", "0:40", "--budget", "6",
                 "--no-replay", "--out", "out.txt", "--cache-dir", "cache"]
        fleet._write_manifest(paths["manifest"], inner, 30.0, 0.1, 3, 120.0)
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            p for p in (str(Path(__file__).resolve().parents[2] / "src"),
                        env.get("PYTHONPATH", "")) if p
        )
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "campaign", "worker",
             "--fleet-dir", "fleet", "--wait", "10", "--worker-id", "drainee"],
            cwd=str(tmp_path), env=env,
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
        )
        # Wait for real progress (first published cell), then SIGTERM.
        store_dir = paths["store"]
        deadline = time.monotonic() + 60.0
        while time.monotonic() < deadline:
            if store_dir.exists() and any(store_dir.glob("cell-*.res")):
                break
            time.sleep(0.05)
        proc.send_signal(signal.SIGTERM)
        out, _ = proc.communicate(timeout=60)
        assert proc.returncode == fleet.DRAIN_EXIT, out.decode()
        assert not list(paths["leases"].glob("lease-*.json"))
        published = len(list(store_dir.glob("cell-*.res")))
        assert 0 < published < 40, "drained mid-campaign, not at either edge"
