"""Fault taxonomy and the deterministic chaos harness."""

import pytest

from repro.harness import faults
from repro.obs import telemetry


@pytest.fixture(autouse=True)
def chaos_off():
    faults.disable()
    yield
    faults.disable()


class TestTaxonomy:
    def test_telemetry_mirror_matches(self):
        # telemetry.py cannot import the harness at module scope, so it
        # carries a copy of the taxonomy; the copies must never drift.
        assert telemetry.FAULT_KINDS == faults.FAULT_KINDS

    def test_harness_faults_carry_their_own_verdict(self):
        for exc, kind, retryable in (
            (faults.WorkerCrashFault("x"), faults.WORKER_CRASH, True),
            (faults.CellHangFault("x"), faults.HANG, True),
            (faults.TransientIOFault("x"), faults.TRANSIENT_IO, True),
            (faults.CorruptRecordFault("x"), faults.CORRUPT_RECORD, True),
        ):
            assert faults.classify(exc) == (kind, retryable)

    def test_os_errors_are_transient(self):
        assert faults.classify(OSError("disk sneeze")) == (faults.TRANSIENT_IO, True)
        assert faults.classify(EOFError()) == (faults.TRANSIENT_IO, True)

    def test_application_errors_are_deterministic(self):
        for exc in (AssertionError("x"), ValueError("x"), TypeError("x"), KeyError("x")):
            kind, retryable = faults.classify(exc)
            assert kind == faults.DETERMINISTIC
            assert not retryable

    def test_describe_is_json_safe(self):
        import json

        record = faults.describe(faults.WorkerCrashFault("boom", exitcode=9))
        json.dumps(record)
        assert record["kind"] == "worker_crash"
        assert record["retryable"] is True
        assert record["error"] == "WorkerCrashFault"

    def test_hang_error_names_threads_and_sites(self):
        err = faults.HangError(
            [{"name": "sender", "tid": 2, "site": "rt.send:10"},
             {"name": "closer", "tid": 3, "site": None}],
            timeout_s=1.5,
        )
        message = str(err)
        assert "sender" in message and "rt.send:10" in message
        assert "closer" in message and "no instrumented op" in message
        assert err.timeout_s == 1.5
        assert faults.classify(err) == (faults.HANG, True)


class TestChaosSpec:
    def test_parse_full_spec(self):
        config = faults.parse_chaos(
            "seed=7, worker_crash=0.5, hang=0.25, hang_s=2.0, cache_corrupt=1.0, attempts=2"
        )
        assert config.seed == 7
        assert config.max_attempt == 2
        assert config.hang_s == 2.0
        assert config.rates == {"worker_crash": 0.5, "hang": 0.25, "cache_corrupt": 1.0}

    def test_bad_tokens_raise(self):
        with pytest.raises(ValueError):
            faults.parse_chaos("worker_crash")
        with pytest.raises(ValueError):
            faults.parse_chaos("nonsense_site=0.5")
        with pytest.raises(ValueError):
            faults.parse_chaos("hang=1.5")

    def test_env_configures_on_import_path(self, monkeypatch):
        monkeypatch.setenv(faults.CHAOS_ENV, "seed=3,hang=0.5")
        faults._configure_from_env()
        assert faults.active()
        assert faults.chaos().rates["hang"] == 0.5


class TestDeterministicFiring:
    def test_pure_function_of_seed_site_key_attempt(self):
        faults.configure("seed=11,worker_crash=0.5")
        first = [faults.should_fire("worker_crash", "cell-%d" % i) for i in range(64)]
        faults.configure("seed=11,worker_crash=0.5")
        second = [faults.should_fire("worker_crash", "cell-%d" % i) for i in range(64)]
        assert first == second
        assert any(first) and not all(first)  # rate 0.5 actually discriminates

    def test_seed_changes_the_draw(self):
        faults.configure("seed=11,worker_crash=0.5")
        a = [faults.should_fire("worker_crash", "cell-%d" % i) for i in range(64)]
        faults.configure("seed=12,worker_crash=0.5")
        b = [faults.should_fire("worker_crash", "cell-%d" % i) for i in range(64)]
        assert a != b

    def test_retries_fire_only_up_to_max_attempt(self):
        faults.configure("seed=1,worker_crash=1.0,attempts=1")
        assert faults.should_fire("worker_crash", "k", attempt=1)
        assert not faults.should_fire("worker_crash", "k2", attempt=2)

    def test_site_key_fires_at_most_once_per_process(self):
        faults.configure("seed=1,cache_corrupt=1.0")
        assert faults.should_fire("cache_corrupt", "record.json")
        assert not faults.should_fire("cache_corrupt", "record.json")

    def test_off_means_never(self):
        assert not faults.should_fire("worker_crash", "k")


class TestActuators:
    def test_serial_prelude_raises_instead_of_exiting(self):
        faults.configure("seed=1,worker_crash=1.0")
        with pytest.raises(faults.WorkerCrashFault):
            faults.cell_prelude("some-cell", attempt=1, in_child=False)

    def test_corrupt_file_flips_one_deterministic_byte(self, tmp_path):
        target = tmp_path / "record.json"
        target.write_bytes(b"A" * 100)
        faults.configure("seed=5,cache_corrupt=1.0")
        assert faults.corrupt_file(target, "record.json")
        mutated = target.read_bytes()
        diffs = [i for i in range(100) if mutated[i] != ord("A")]
        assert len(diffs) == 1
        position = diffs[0]

        target.write_bytes(b"A" * 100)
        faults.corrupt_file(target, "record.json")
        assert [i for i in range(100) if target.read_bytes()[i] != ord("A")] == [position]

    def test_maybe_truncate_drops_the_tail(self, tmp_path):
        target = tmp_path / "telemetry-1.jsonl"
        target.write_bytes(b"x" * 100)
        faults.configure("seed=1,truncate=1.0")
        assert faults.maybe_truncate_file(target, drop_bytes=16)
        assert target.stat().st_size == 84
