"""Experiment drivers: smoke tests on restricted subsets plus shape
assertions that mirror the paper's qualitative claims."""

import pytest

from repro.harness import experiments, tables
from repro.harness.runner import (
    analyze_test,
    run_baseline,
    run_online_detection,
    run_planned_detection,
    run_recording,
)
from repro.harness.runner import test_time_limit as compute_time_limit
from repro.apps import get_app
from repro.core.candidates import CandidateSet
from repro.core.config import DEFAULT_CONFIG
from repro.core.delay_policy import DecayState


class TestRunner:
    def test_baseline_run(self):
        test = get_app("sshnet").test("disconnect_during_keepalive")
        run = run_baseline(test, seed=1)
        assert run.virtual_time_ms > 0
        assert not run.crashed
        assert run.delays_injected == 0

    def test_recording_run_and_plan(self, config):
        test = get_app("sshnet").test("disconnect_during_keepalive")
        run, trace = run_recording(test, config, seed=1)
        assert len(trace) == run.op_count
        plan = analyze_test(test, config, seed=1)
        assert plan.delay_sites

    def test_planned_detection_crashes_bug_test(self, config):
        test = get_app("sshnet").test("disconnect_during_keepalive")
        plan = analyze_test(test, config, seed=1)
        run, hook = run_planned_detection(
            test, plan, config, DecayState(config.decay_lambda), seed=2, hook_seed=99
        )
        assert run.crashed
        assert run.delays_injected >= 1

    def test_online_detection_persists_state(self, config):
        test = get_app("sshnet").test("disconnect_during_keepalive")
        decay = DecayState(config.decay_lambda)
        candidates = CandidateSet()
        run1, _ = run_online_detection(test, config, decay, candidates, seed=1, hook_seed=11)
        assert len(candidates) > 0
        run2, _ = run_online_detection(test, config, decay, candidates, seed=2, hook_seed=12)
        assert run2.delays_injected >= 1

    def test_time_limit_floor_and_factor(self):
        assert compute_time_limit(1.0) == 3000.0
        assert compute_time_limit(1000.0) == 30_000.0


class TestTable2:
    def test_shape(self):
        rows = experiments.table2_sites(apps=["nsubstitute", "netmq"], seed=1)
        assert len(rows) == 2
        for row in rows:
            # MemOrder sites dominate TSV sites (the section 3.3 claim).
            assert row.mo_instr_sites > 3 * row.tsv_instr_sites
            assert row.mo_instr_sites > 0


class TestFigure2:
    def test_conditions(self):
        points = experiments.figure2_timing_conditions(delays_ms=(0, 9, 11, 30), seed=1)
        by_delay = {p.delay_ms: p for p in points}
        # No delay: nothing manifests.
        assert not by_delay[0].tsv_exposed and not by_delay[0].memorder_exposed
        # Bounded window: TSV only.
        assert by_delay[9].tsv_exposed and not by_delay[9].memorder_exposed
        # Past the full gap: MemOrder; overshoots the TSV window.
        assert by_delay[30].memorder_exposed and not by_delay[30].tsv_exposed

    def test_memorder_exposure_is_monotone_in_delay(self):
        """Once the delay exceeds the gap, longer only stays exposed --
        the fundamental asymmetry of Figure 2."""
        points = experiments.figure2_timing_conditions(
            delays_ms=tuple(range(0, 40, 2)), seed=1
        )
        seen_exposed = False
        for point in points:
            if seen_exposed:
                assert point.memorder_exposed
            seen_exposed = seen_exposed or point.memorder_exposed
        assert seen_exposed


class TestSection33:
    def test_overlap_rows(self):
        rows = experiments.overlap_ratios(apps=["nsubstitute"], seed=1)
        assert len(rows) == 1
        assert 0.0 <= rows[0].tsvd_overlap < 1.0
        assert 0.0 <= rows[0].wafflebasic_overlap < 1.0

    def test_dynamic_instances(self):
        rows, overall = experiments.dynamic_instances(apps=["nsubstitute", "sshnet"], seed=1)
        assert len(rows) == 2
        assert overall >= 1.0
        for row in rows:
            assert row.init_sites > 0


class TestTable4:
    def test_single_bug_row(self):
        rows = experiments.table4_detection(attempts=3, budget=8, bugs=["Bug-1"], base_seed=0)
        (row,) = rows
        assert row.bug.bug_id == "Bug-1"
        assert row.waffle_runs == 2
        assert row.basic_runs == 2
        assert row.waffle_slowdown is not None and row.waffle_slowdown > 1.0

    def test_missed_bug_row(self):
        rows = experiments.table4_detection(attempts=3, budget=8, bugs=["Bug-10"], base_seed=0)
        (row,) = rows
        assert row.basic_runs is None
        assert row.waffle_runs == 2


class TestTables567:
    def test_table5_shape(self):
        rows = experiments.table5_overhead(apps=["nsubstitute"], seed=1)
        (row,) = rows
        assert row.baseline_ms > 0
        # Waffle's detection run is cheaper than WaffleBasic's.
        assert row.waffle_run2_pct < row.basic_run2_pct

    def test_table6_shape(self):
        rows = experiments.table6_delays(apps=["nsubstitute"], seed=1)
        (row,) = rows
        # Variable-length delays: far less cumulative duration.
        assert row.waffle_duration_ms < row.basic_duration_ms

    def test_table7_runs(self):
        rows = experiments.table7_ablations(
            attempts=1, budget=4, base_seed=0, apps_for_perf=["nsubstitute"]
        )
        assert len(rows) == 4
        points = {r.design_point for r in rows}
        assert points == {
            "parent_child_analysis",
            "preparation_run",
            "custom_delay_length",
            "interference_control",
        }


class TestStressControl:
    def test_no_spontaneous_manifestations(self):
        rows = experiments.stress_control(runs=5, bugs=["Bug-1", "Bug-11"], base_seed=0)
        assert len(rows) == 2
        for row in rows:
            assert row.spontaneous_manifestations == 0
            assert row.runs == 5


class TestRenderers:
    def test_design_matrix_mentions_tools(self):
        text = tables.design_matrix()
        assert "Tsvd" in text and "Waffle" in text

    def test_render_each_table(self):
        t2 = experiments.table2_sites(apps=["nsubstitute"], seed=1)
        assert "NSubstitute" in tables.render_table2(t2)
        fig2 = experiments.figure2_timing_conditions(delays_ms=(0, 11), seed=1)
        assert "delay" in tables.render_figure2(fig2)
        t4 = experiments.table4_detection(attempts=1, budget=4, bugs=["Bug-1"])
        assert "Bug-1" in tables.render_table4(t4)
        t5 = experiments.table5_overhead(apps=["nsubstitute"], seed=1)
        assert "%" in tables.render_table5(t5)
        t6 = experiments.table6_delays(apps=["nsubstitute"], seed=1)
        assert "delays" in tables.render_table6(t6)
        stress = experiments.stress_control(runs=2, bugs=["Bug-1"])
        assert "Bug-1" in tables.render_stress(stress)
