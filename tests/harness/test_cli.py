"""CLI behavior (fast subcommands only)."""

import pytest

from repro.harness.cli import build_parser, main


class TestParser:
    def test_all_subcommands_registered(self):
        parser = build_parser()
        sub = next(a for a in parser._actions if hasattr(a, "choices") and a.choices)
        expected = {
            "table1", "table2", "figure2", "overlap", "dynamic",
            "table4", "table5", "table6", "table7", "stress", "all", "detect",
        }
        assert expected <= set(sub.choices)

    def test_detect_requires_target(self, capsys):
        with pytest.raises(SystemExit):
            main(["detect"])

    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out
        assert "Waffle" in out

    def test_figure2(self, capsys):
        assert main(["figure2"]) == 0
        out = capsys.readouterr().out
        assert "MemOrder exposed" in out

    def test_detect_bug(self, capsys):
        assert main(["detect", "--bug", "Bug-1", "--budget", "5", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "BUG EXPOSED" in out
        assert "prep" in out

    def test_detect_app_test_stress(self, capsys):
        assert (
            main(
                [
                    "detect",
                    "--tool",
                    "stress",
                    "--app",
                    "sshnet",
                    "--test",
                    "packet_counter_lock",
                    "--budget",
                    "2",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "no bug exposed" in out

    def test_out_file(self, tmp_path, capsys):
        out_file = tmp_path / "results.txt"
        main(["--out", str(out_file), "table1"])
        capsys.readouterr()
        assert "Table 1" in out_file.read_text()

    def test_table4_restricted(self, capsys):
        assert (
            main(["table4", "--bugs", "Bug-1", "--attempts", "1", "--budget", "4"]) == 0
        )
        out = capsys.readouterr().out
        assert "Bug-1" in out


class TestTraceCommand:
    def test_trace_bug(self, capsys):
        assert main(["trace", "--bug", "Bug-11"]) == 0
        out = capsys.readouterr().out
        assert "candidate pairs" in out
        assert "ChkDisposed" in out

    def test_trace_saves_artifacts(self, tmp_path, capsys):
        trace_file = tmp_path / "trace.jsonl"
        plan_file = tmp_path / "plan.json"
        assert (
            main(
                [
                    "trace",
                    "--bug",
                    "Bug-1",
                    "--save-trace",
                    str(trace_file),
                    "--save-plan",
                    str(plan_file),
                ]
            )
            == 0
        )
        capsys.readouterr()
        assert trace_file.exists() and trace_file.stat().st_size > 0
        assert plan_file.exists()
        # The saved plan round-trips through the persistence layer.
        from repro.core.persistence import load_plan

        plan = load_plan(plan_file)
        assert plan.delay_sites

    def test_trace_requires_target(self):
        import pytest

        with pytest.raises(SystemExit):
            main(["trace"])


class TestListingAndJson:
    def test_apps_listing(self, capsys):
        assert main(["apps"]) == 0
        out = capsys.readouterr().out
        assert "netmq" in out and "Bug-11" in out

    def test_apps_verbose_lists_tests(self, capsys):
        assert main(["apps", "-v"]) == 0
        out = capsys.readouterr().out
        assert "runtime_abrupt_termination" in out

    def test_bugs_listing(self, capsys):
        assert main(["bugs"]) == 0
        out = capsys.readouterr().out
        assert out.count("Bug-") == 18
        assert "use_after_free" in out

    def test_json_output_parses(self, capsys):
        import json

        assert main(["table2", "--apps", "nsubstitute", "--json"]) == 0
        out = capsys.readouterr().out
        payload = json.loads(out)
        assert "table2" in payload
        (row,) = payload["table2"]
        assert row["app"] == "NSubstitute"
        assert row["mo_instr_sites"] > row["tsv_instr_sites"]

    def test_json_table4_serializes_bug_metadata(self, capsys):
        import json

        assert main(["table4", "--bugs", "Bug-1", "--attempts", "1", "--budget", "4", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        (row,) = payload["table4"]
        assert row["bug"]["bug_id"] == "Bug-1"
        assert row["waffle_runs"] == 2


class TestJsonConversion:
    def test_to_jsonable_handles_rich_values(self):
        import dataclasses

        from repro.harness.cli import _to_jsonable
        from repro.sim.instrument import Location

        @dataclasses.dataclass
        class Row:
            name: str
            values: list

        payload = _to_jsonable(
            {
                "row": Row("x", [1, 2.5, None, True]),
                "loc": Location("a.b:1"),
                "pairs": {frozenset({"a", "b"})},
                "tuple": (1, "two"),
            }
        )
        assert payload["row"] == {"name": "x", "values": [1, 2.5, None, True]}
        assert payload["loc"] == "a.b:1"
        assert payload["pairs"] == [["a", "b"]]
        assert payload["tuple"] == [1, "two"]

    def test_to_jsonable_falls_back_to_str(self):
        from repro.harness.cli import _to_jsonable

        class Opaque:
            def __repr__(self):
                return "<opaque>"

        assert _to_jsonable(Opaque()) == "<opaque>"

    def test_to_jsonable_nested_location_in_dataclass(self):
        import dataclasses

        from repro.harness.cli import _to_jsonable
        from repro.sim.instrument import Location

        @dataclasses.dataclass
        class Holder:
            where: Location

        assert _to_jsonable(Holder(Location("x.y:3"))) == {"where": "x.y:3"}


class TestSupervisedCampaigns:
    """The resilience flags route experiments through the supervisor
    without changing a single table row."""

    @pytest.fixture(autouse=True)
    def clean_supervision(self):
        from repro.harness import faults, supervisor

        faults.disable()
        supervisor.deactivate()
        yield
        faults.disable()
        supervisor.deactivate()

    @staticmethod
    def table_lines(out):
        return [l for l in out.splitlines() if not l.startswith("supervisor:")]

    def test_retries_flag_prints_degradation_summary(self, capsys):
        assert main(["table2", "--apps", "nsubstitute", "--retries", "2"]) == 0
        out = capsys.readouterr().out
        assert "Table 2" in out
        assert "supervisor:" in out and "cells ok" in out

    def test_supervised_output_matches_unsupervised(self, capsys):
        main(["table2", "--apps", "nsubstitute", "--seed", "1"])
        plain = capsys.readouterr().out
        main(["table2", "--apps", "nsubstitute", "--seed", "1", "--retries", "2"])
        supervised_out = capsys.readouterr().out
        assert self.table_lines(supervised_out) == plain.splitlines()

    def test_chaos_env_activates_the_supervisor(self, capsys):
        from repro.harness import faults

        main(["table2", "--apps", "nsubstitute", "--seed", "1"])
        plain = capsys.readouterr().out

        faults.configure("seed=3,worker_crash=0.5")
        assert main(["table2", "--apps", "nsubstitute", "--seed", "1"]) == 0
        chaotic = capsys.readouterr().out
        assert "supervisor:" in chaotic  # chaos implies the fault boundary
        assert self.table_lines(chaotic) == plain.splitlines()

    def test_resume_skips_finished_cells(self, tmp_path, capsys):
        journal = str(tmp_path / "journal")
        assert main(["table2", "--apps", "nsubstitute", "--resume", journal]) == 0
        first = capsys.readouterr().out
        assert main(["table2", "--apps", "nsubstitute", "--resume", journal]) == 0
        second = capsys.readouterr().out
        assert "resumed from journal" in second
        assert self.table_lines(first) == self.table_lines(second)
