"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.core.config import WaffleConfig
from repro.sim.api import Simulation


@pytest.fixture
def sim() -> Simulation:
    """A fresh simulation with a fixed seed and no instrumentation hook."""
    return Simulation(seed=42)


@pytest.fixture
def config() -> WaffleConfig:
    return WaffleConfig(seed=42)


def run_root(sim: Simulation, gen_fn, *args, **kwargs):
    """Convenience: run ``gen_fn(sim, *args)`` as the root thread."""
    return sim.run(gen_fn(sim, *args, **kwargs))
