"""Replay every committed regression fixture, forever.

Each ``regressions/regression-*.json`` is a shrunken workload spec that
once exposed (or guards the shape of) a detector/generator defect. CI
re-runs the full oracle on each: the fixture's invariant class must
hold with zero violations. Promoting a new fixture = committing the
file the fuzz CLI's ``--shrink-dir`` wrote (see docs/TESTING.md).
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.core.config import WaffleConfig
from repro.gen.oracle import evaluate_spec
from repro.gen.shrink import load_regression_dir

REGRESSION_DIR = Path(__file__).parent / "regressions"

FIXTURES = load_regression_dir(REGRESSION_DIR)


def test_corpus_is_present():
    # The corpus must never silently vanish (e.g. a bad glob after a
    # directory move would turn the whole suite into a no-op).
    assert len(FIXTURES) >= 2


@pytest.mark.parametrize(
    "fixture", FIXTURES, ids=[Path(f["spec_hash"][:12]).name for f in FIXTURES]
)
def test_regression_fixture_holds(fixture):
    spec = fixture["spec_obj"]
    result = evaluate_spec(spec, WaffleConfig(seed=spec.seed), check_replay=True)
    assert result.ok, "fixture %s (%s) regressed: %s" % (
        fixture["spec_hash"][:12],
        fixture["reason"],
        result.violations,
    )
    for bug_id, reproduced in result.replays.items():
        assert reproduced, "fixture %s: %s dossier did not replay" % (
            fixture["spec_hash"][:12],
            bug_id,
        )
