"""The fuzz driver and CLI subcommand: identity, caching, events, exit codes."""

from __future__ import annotations

import json

import pytest

from repro.core.config import WaffleConfig
from repro.harness import fuzz
from repro.harness.cache import PlanCache
from repro.harness.cli import main
from repro.obs import eventbus
from repro.obs.campaign import fuzz_analytics, load_view

CONFIG = WaffleConfig(seed=0)


@pytest.fixture(autouse=True)
def _quiet_bus():
    """CLI invocations configure the process-global bus; always reset."""
    yield
    eventbus.disable()


class TestFuzzRange:
    def test_rows_in_seed_order_with_expected_fields(self):
        rows = fuzz.fuzz_range(0, 4, config=CONFIG, check_replay=False)
        assert [r["seed"] for r in rows] == [0, 1, 2, 3]
        for row in rows:
            assert row["ok"] and not row["violations"]
            assert row["spec_hash"]

    def test_digest_identical_serial_vs_parallel(self):
        serial = fuzz.fuzz_range(0, 6, config=CONFIG, jobs=1, check_replay=False)
        parallel = fuzz.fuzz_range(0, 6, config=CONFIG, jobs=2, check_replay=False)
        assert fuzz.fuzz_digest(serial) == fuzz.fuzz_digest(parallel)

    def test_digest_identical_cold_vs_warm_cache(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        cold = fuzz.fuzz_range(0, 4, config=CONFIG, cache_dir=cache_dir, check_replay=False)
        warm = fuzz.fuzz_range(0, 4, config=CONFIG, cache_dir=cache_dir, check_replay=False)
        assert fuzz.fuzz_digest(cold) == fuzz.fuzz_digest(warm)
        cache = PlanCache(cache_dir)
        assert cache.stats.hits == 0  # fresh handle: counts only its own traffic
        assert len(list((tmp_path / "cache").rglob("*.json"))) >= 4

    def test_budget_is_part_of_the_cache_key(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        fuzz.fuzz_range(0, 2, config=CONFIG, budget=8, cache_dir=cache_dir, check_replay=False)
        before = len(list((tmp_path / "cache").rglob("*.json")))
        fuzz.fuzz_range(0, 2, config=CONFIG, budget=9, cache_dir=cache_dir, check_replay=False)
        after = len(list((tmp_path / "cache").rglob("*.json")))
        assert after > before

    def test_topology_table_rates(self):
        rows = fuzz.fuzz_range(0, 8, config=CONFIG, check_replay=False)
        table = fuzz.topology_table(rows)
        assert sum(b["workloads"] for b in table) == 8
        for bucket in table:
            assert bucket["detection_rate"] == 1.0


class TestViolationPlumbing:
    def _failing_row(self):
        return {
            "seed": 99, "topology": "pool", "planted": 1, "detectable": 1,
            "found": [], "sessions": 1, "runs": 8, "virtual_ms": 1.0,
            "violations": ["recall: detectable bug B1 not found"],
            "replays": {}, "ok": False, "spec_hash": "deadbeef",
        }

    def test_render_lists_violations(self):
        rows = [self._failing_row()]
        text = fuzz.render_fuzz(rows, fuzz.fuzz_digest(rows))
        assert "INVARIANT VIOLATIONS" in text
        assert "recall: detectable bug B1" in text

    def test_violation_classes(self):
        assert fuzz._violation_classes(
            ["recall: x", "soundness: y", "recall: z"]
        ) == frozenset({"recall", "soundness"})


class TestCli:
    def test_exit_zero_and_digest_printed(self, capsys):
        rc = main(["fuzz", "--seed-range", "0:3", "--no-replay"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "fuzz digest:" in out
        assert "recall 100.0%" in out

    def test_json_output(self, capsys):
        rc = main(["fuzz", "--seed-range", "0:2", "--no-replay", "--json"])
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert len(payload["fuzz"]["rows"]) == 2
        assert payload["fuzz"]["digest"]

    def test_bad_seed_range_rejected(self):
        with pytest.raises(SystemExit):
            main(["fuzz", "--seed-range", "5"])
        with pytest.raises(SystemExit):
            main(["fuzz", "--seed-range", "3:3"])

    def test_events_stream_feeds_analytics(self, tmp_path, capsys):
        events_dir = str(tmp_path / "events")
        rc = main(["fuzz", "--seed-range", "0:4", "--no-replay",
                   "--events-dir", events_dir])
        assert rc == 0
        capsys.readouterr()
        view, streams = load_view(events_dir)
        assert streams
        generated = fuzz_analytics(view)
        assert generated["workloads"] == 4
        assert generated["failed"] == 0

    def test_rerun_dedups_in_analytics(self, tmp_path, capsys):
        events_dir = str(tmp_path / "events")
        for _ in range(2):
            assert main(["fuzz", "--seed-range", "0:3", "--no-replay",
                         "--events-dir", events_dir]) == 0
            eventbus.disable()
        capsys.readouterr()
        view, _ = load_view(events_dir)
        assert fuzz_analytics(view)["workloads"] == 3
