"""The builder layer: names, oracles, and runnable workload contract."""

from __future__ import annotations

import pytest

from repro.gen.builder import (
    build_workload,
    bug_sites,
    parse_workload_name,
    planted_oracle,
    workload_name,
)
from repro.gen.spec import generate_spec
from repro.harness.runner import run_baseline


def _spec_with_bugs(max_seed: int = 40, want_detectable: bool = True):
    for seed in range(max_seed):
        spec = generate_spec(seed)
        if want_detectable and spec.detectable_bugs:
            return spec
        if not want_detectable and spec.bugs and not spec.detectable_bugs:
            return spec
    raise AssertionError("no suitable seed below %d" % max_seed)


class TestNames:
    def test_round_trip_plain(self):
        spec = generate_spec(12)
        assert parse_workload_name(workload_name(spec)) == (12, frozenset())

    def test_round_trip_defused(self):
        spec = _spec_with_bugs()
        defused = frozenset(b.bug_id for b in spec.detectable_bugs)
        name = workload_name(spec, defused)
        assert parse_workload_name(name) == (spec.seed, defused)

    def test_defused_set_is_sorted_in_name(self):
        spec = generate_spec(1)
        ids = {b.bug_id for b in spec.bugs}
        if len(ids) < 2:
            pytest.skip("seed 1 plants fewer than 2 bugs")
        name = workload_name(spec, frozenset(ids))
        inside = name.split("defused[", 1)[1].rstrip("]")
        assert inside == ",".join(sorted(ids))

    def test_non_generated_names_rejected(self):
        assert parse_workload_name("netmq:pubsub") is None
        assert parse_workload_name("gen-3:other") is None


class TestOracle:
    def test_pair_orientation_by_kind(self):
        for seed in range(40):
            spec = generate_spec(seed)
            for entry, bug in zip(planted_oracle(spec), spec.bugs):
                sites = bug_sites(spec, bug)
                assert entry["fault_site"] == sites["use"]
                if bug.kind == "use_after_dispose":
                    assert entry["pair"] == (sites["use"], sites["dispose"])
                else:
                    assert entry["pair"] == (sites["init"], sites["use"])

    def test_detectability_tracks_window(self):
        spec = _spec_with_bugs()
        bug = spec.detectable_bugs[0]
        wide = {e["bug_id"]: e["detectable"] for e in planted_oracle(spec, 100.0)}
        narrow = {e["bug_id"]: e["detectable"] for e in planted_oracle(spec, bug.gap_ms)}
        assert wide[bug.bug_id] is True
        assert narrow[bug.bug_id] is False  # gap no longer < window

    def test_sites_disjoint_across_bugs(self):
        for seed in range(40):
            spec = generate_spec(seed)
            seen = set()
            for bug in spec.bugs:
                sites = frozenset(bug_sites(spec, bug).values())
                assert not (sites & seen)
                seen |= sites


class TestBuildWorkload:
    def test_contract_and_ground_truth_rides_along(self):
        spec = generate_spec(4)
        test = build_workload(spec)
        assert test.name == workload_name(spec)
        assert test.multithreaded
        assert "generated" in test.tags and spec.topology in test.tags
        assert test.spec == spec
        assert test.planted_bugs() == planted_oracle(spec)

    def test_unknown_defused_id_rejected(self):
        with pytest.raises(ValueError):
            build_workload(generate_spec(4), frozenset({"B99"}))

    def test_armed_workload_runs_clean_without_delays(self):
        # The planted gaps hold under the delay-free schedule: nothing
        # crashes until Waffle actively injects.
        spec = _spec_with_bugs()
        record = run_baseline(build_workload(spec), seed=3)
        assert not record.crashed

    def test_defused_workload_runs_clean(self):
        spec = _spec_with_bugs()
        defused = frozenset(b.bug_id for b in spec.bugs)
        record = run_baseline(build_workload(spec, defused), seed=3)
        assert not record.crashed

    def test_run_is_deterministic(self):
        spec = generate_spec(9)
        a = run_baseline(build_workload(spec), seed=5)
        b = run_baseline(build_workload(spec), seed=5)
        assert a.virtual_time_ms == b.virtual_time_ms
        assert a.crashed == b.crashed
