"""The spec layer: determinism, round-tripping, hashing, distributions."""

from __future__ import annotations

import pytest

from repro.gen.spec import (
    BUG_KINDS,
    DETECTABLE_GAP_MS,
    TOPOLOGIES,
    UNDETECTABLE_GAP_MS,
    WorkloadSpec,
    generate_spec,
    shrunk_copy,
    spec_hash,
)


class TestGenerateSpec:
    def test_same_seed_same_spec(self):
        assert generate_spec(7) == generate_spec(7)
        assert spec_hash(generate_spec(7)) == spec_hash(generate_spec(7))

    def test_different_seeds_differ(self):
        hashes = {spec_hash(generate_spec(seed)) for seed in range(50)}
        assert len(hashes) == 50

    def test_topology_cycles_through_all(self):
        seen = {generate_spec(seed).topology for seed in range(8)}
        assert seen == set(TOPOLOGIES)

    def test_every_bug_owns_a_component(self):
        for seed in range(30):
            spec = generate_spec(seed)
            indices = {c.index for c in spec.components}
            for bug in spec.bugs:
                assert bug.component in indices
                assert bug.kind in BUG_KINDS

    def test_gap_bands_are_disjoint(self):
        lo_d, hi_d = DETECTABLE_GAP_MS
        lo_u, hi_u = UNDETECTABLE_GAP_MS
        assert hi_d < lo_u  # the analytic detectability margin
        for seed in range(60):
            for bug in generate_spec(seed).bugs:
                if bug.detectable:
                    assert bug.gap_ms < 100.0  # inside the near-miss window
                else:
                    assert lo_u <= bug.gap_ms <= hi_u

    def test_detectable_flag_matches_window_predicate(self):
        for seed in range(60):
            for bug in generate_spec(seed).bugs:
                assert bug.detectable == bug.detectable_under(100.0)


class TestRoundTrip:
    def test_dict_round_trip_is_identity(self):
        for seed in (0, 3, 11, 42):
            spec = generate_spec(seed)
            assert WorkloadSpec.from_dict(spec.to_dict()) == spec

    def test_hash_survives_round_trip(self):
        spec = generate_spec(5)
        assert spec_hash(WorkloadSpec.from_dict(spec.to_dict())) == spec_hash(spec)

    def test_version_mismatch_rejected(self):
        payload = generate_spec(1).to_dict()
        payload["version"] = 999
        with pytest.raises(ValueError):
            WorkloadSpec.from_dict(payload)


class TestShrunkCopy:
    def test_replacing_components_changes_hash(self):
        spec = generate_spec(2)
        reduced = shrunk_copy(spec, components=spec.components[:1])
        assert spec_hash(reduced) != spec_hash(spec)
        assert reduced.seed == spec.seed
