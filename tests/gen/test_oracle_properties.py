"""Property-based verification of the detector against planted oracles.

Every property runs the *real* Waffle detector over procedurally
generated workloads whose ground truth is analytic:

* recall -- every planted detectable bug is found within budget;
* soundness -- nothing outside the planted set is ever reported;
* identity -- the fuzz row is bit-identical across happens-before
  engines and across repeated evaluation (pure function of the seed).

Hypothesis drives the seed space (reproducible: ``derandomize`` keeps
CI deterministic); a fixed-seed sweep pins a broader band cheaply.
"""

from __future__ import annotations

import json

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.config import WaffleConfig
from repro.gen.oracle import evaluate_spec, expected_fault_sites
from repro.gen.spec import generate_spec

#: One detector config per workload seed, mirroring the fuzz driver's
#: derived-seed convention.
def _config(seed: int, engine: str = "vector") -> WaffleConfig:
    return WaffleConfig(seed=seed, hb_engine=engine)


_PROPERTY_SETTINGS = settings(
    max_examples=12,
    deadline=None,
    derandomize=True,  # CI must not explore a different corpus per run
    suppress_health_check=[HealthCheck.too_slow],
)


@given(seed=st.integers(min_value=0, max_value=10_000))
@_PROPERTY_SETTINGS
def test_recall_and_soundness_hold(seed):
    result = evaluate_spec(generate_spec(seed), _config(seed))
    assert result.violations == []
    assert result.recall == 1.0


@given(seed=st.integers(min_value=0, max_value=10_000))
@_PROPERTY_SETTINGS
def test_found_sites_are_planted_sites(seed):
    spec = generate_spec(seed)
    result = evaluate_spec(spec, _config(seed))
    legal = expected_fault_sites(spec)
    for verdict in result.found.values():
        assert verdict["fault_site"] in legal


@given(seed=st.integers(min_value=0, max_value=2_000))
@_PROPERTY_SETTINGS
def test_row_identical_across_hb_engines(seed):
    spec = generate_spec(seed)
    vector = evaluate_spec(spec, _config(seed, "vector")).to_row()
    tree = evaluate_spec(spec, _config(seed, "tree")).to_row()
    assert vector == tree


@given(seed=st.integers(min_value=0, max_value=2_000))
@_PROPERTY_SETTINGS
def test_evaluation_is_a_pure_function_of_the_seed(seed):
    spec = generate_spec(seed)
    first = json.dumps(evaluate_spec(spec, _config(seed)).to_row(), sort_keys=True)
    second = json.dumps(evaluate_spec(spec, _config(seed)).to_row(), sort_keys=True)
    assert first == second


class TestFixedSeedSweep:
    """A deterministic band on top of the hypothesis corpus."""

    SEEDS = range(0, 24)

    def test_zero_violations_across_band(self):
        for seed in self.SEEDS:
            result = evaluate_spec(generate_spec(seed), _config(seed))
            assert result.ok, "seed %d: %s" % (seed, result.violations)

    def test_sessions_bounded_by_detectable_count(self):
        for seed in self.SEEDS:
            spec = generate_spec(seed)
            result = evaluate_spec(spec, _config(seed))
            assert result.sessions <= len(spec.detectable_bugs) + 1

    def test_replay_reproduces_every_detection(self):
        # Replay is the expensive leg; a narrower band keeps it cheap.
        for seed in range(0, 8):
            result = evaluate_spec(
                generate_spec(seed), _config(seed), check_replay=True
            )
            assert result.ok, "seed %d: %s" % (seed, result.violations)
            for bug_id, reproduced in result.replays.items():
                assert reproduced, "seed %d: %s dossier did not replay" % (seed, bug_id)

    def test_undetectable_bugs_never_found(self):
        hit = 0
        for seed in self.SEEDS:
            spec = generate_spec(seed)
            undetectable = {b.bug_id for b in spec.bugs if not b.detectable}
            if not undetectable:
                continue
            hit += 1
            result = evaluate_spec(spec, _config(seed))
            assert not (undetectable & set(result.found))
        assert hit > 0  # the band must actually exercise the control arm
