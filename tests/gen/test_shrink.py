"""The shrinker: greedy reduction, minimality, fixture persistence."""

from __future__ import annotations

import json

import pytest

from repro.gen.shrink import (
    MAX_SHRINK_EVALS,
    load_regression,
    load_regression_dir,
    save_regression,
    shrink_spec,
)
from repro.gen.spec import generate_spec, spec_hash


def _seed_with(predicate, max_seed=60):
    for seed in range(max_seed):
        spec = generate_spec(seed)
        if predicate(spec):
            return spec
    raise AssertionError("no suitable seed below %d" % max_seed)


class TestShrinkSpec:
    def test_predicate_always_holds_on_result(self):
        spec = _seed_with(lambda s: len(s.bugs) >= 2 and len(s.components) >= 3)
        target = spec.bugs[0].bug_id

        def still_fails(candidate):
            return any(b.bug_id == target for b in candidate.bugs)

        minimal = shrink_spec(spec, still_fails)
        assert still_fails(minimal)

    def test_reduces_to_single_bug_component(self):
        spec = _seed_with(lambda s: len(s.bugs) >= 2 and len(s.components) >= 4)
        target = spec.bugs[0].bug_id

        def still_fails(candidate):
            return any(b.bug_id == target for b in candidate.bugs)

        minimal = shrink_spec(spec, still_fails)
        # 1-minimal under the move set: only the target bug and its
        # dedicated component survive.
        assert [b.bug_id for b in minimal.bugs] == [target]
        assert len(minimal.components) == 1

    def test_never_returns_empty_workload(self):
        spec = _seed_with(lambda s: s.bugs)
        minimal = shrink_spec(spec, lambda candidate: True)
        assert minimal.components  # the move set refuses the empty spec

    def test_eval_budget_is_respected(self):
        spec = _seed_with(lambda s: len(s.components) >= 3)
        calls = []

        def counting(candidate):
            calls.append(1)
            return False  # nothing reduces; every candidate is tried once

        shrink_spec(spec, counting, max_evals=5)
        assert len(calls) <= 5

    def test_unshrinkable_spec_returned_unchanged(self):
        spec = generate_spec(0)
        assert shrink_spec(spec, lambda candidate: False) == spec


class TestRegressionFixtures:
    def test_save_load_round_trip(self, tmp_path):
        spec = generate_spec(3)
        path = save_regression(
            spec, tmp_path, reason="unit test", invariant="recall", source_seed=3
        )
        payload = load_regression(path)
        assert payload["spec_obj"] == spec
        assert payload["invariant"] == "recall"
        assert payload["source_seed"] == 3
        assert payload["spec_hash"] == spec_hash(spec)

    def test_hash_drift_detected(self, tmp_path):
        spec = generate_spec(3)
        path = save_regression(
            spec, tmp_path, reason="unit test", invariant="recall", source_seed=3
        )
        payload = json.loads(path.read_text())
        payload["spec"]["density"] = 99.0  # silently edited fixture
        path.write_text(json.dumps(payload))
        with pytest.raises(ValueError, match="drift"):
            load_regression(path)

    def test_directory_loads_sorted_and_complete(self, tmp_path):
        for seed in (5, 9):
            save_regression(
                generate_spec(seed), tmp_path, reason="r", invariant="soundness",
                source_seed=seed,
            )
        fixtures = load_regression_dir(tmp_path)
        assert len(fixtures) == 2
        assert load_regression_dir(tmp_path / "missing") == []
