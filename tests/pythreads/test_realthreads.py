"""Real-threads adapter: the unchanged core over ``threading``.

These tests use generous (tens of ms) wall-clock gaps so OS scheduling
noise cannot flip orderings; the whole module still runs in about a
second.
"""

import threading
import time

import pytest

from repro.core.vector_clock import concurrent, leq
from repro.pythreads import RealThreadsRuntime, RealThreadsWaffle
from repro.sim.errors import NullReferenceError, ObjectDisposedError
from repro.sim.instrument import AccessType, InstrumentationHook


class Recorder(InstrumentationHook):
    def __init__(self):
        self.events = []

    def after_access(self, event):
        self.events.append(event)


def uaf_workload(use_at_s=0.030, dispose_at_s=0.080):
    def workload(rt: RealThreadsRuntime):
        conn = rt.ref("connection")
        conn.assign(rt.new("Connection"), loc="rt.open:1")

        def worker():
            time.sleep(use_at_s)
            conn.use(member="Send", loc="rt.send:10")

        thread = rt.spawn(worker, name="sender")
        time.sleep(dispose_at_s)
        conn.dispose(loc="rt.close:20")
        thread.join()

    return workload


class TestRuntime:
    @pytest.mark.tier2
    def test_events_recorded_with_wall_timestamps(self):
        recorder = Recorder()
        rt = RealThreadsRuntime(hook=recorder)
        ref = rt.ref("r")
        ref.assign(rt.new("T"), loc="rt.init:1")
        time.sleep(0.01)
        ref.use(member="M", loc="rt.use:2")
        assert [e.access_type for e in recorder.events] == [AccessType.INIT, AccessType.USE]
        assert recorder.events[1].timestamp - recorder.events[0].timestamp >= 8.0

    def test_null_use_raises(self):
        rt = RealThreadsRuntime()
        ref = rt.ref("r")
        with pytest.raises(NullReferenceError):
            ref.use(member="M", loc="rt.use:1")

    def test_disposed_use_raises(self):
        rt = RealThreadsRuntime()
        ref = rt.ref("r")
        ref.assign(rt.new("T"), loc="rt.init:1")
        ref.dispose(loc="rt.dispose:2")
        with pytest.raises(ObjectDisposedError):
            ref.use(member="M", loc="rt.use:3")

    def test_worker_exceptions_captured(self):
        rt = RealThreadsRuntime()
        ref = rt.ref("r")

        def worker():
            ref.use(member="M", loc="rt.use:1")

        rt.spawn(worker, name="boom")
        rt.join_all()
        assert len(rt.failures) == 1
        assert isinstance(rt.failures[0][1], NullReferenceError)

    def test_unregistered_thread_rejected(self):
        rt = RealThreadsRuntime()
        errors = []

        def rogue():
            ref = rt.ref("r")
            try:
                ref.assign(rt.new("T"), loc="rt.init:1")
            except RuntimeError as exc:
                errors.append(exc)

        thread = threading.Thread(target=rogue)
        thread.start()
        thread.join()
        assert errors

    def test_vector_clocks_track_real_forks(self):
        rt = RealThreadsRuntime()
        recorder = Recorder()
        rt.hook = recorder
        ref = rt.ref("r")
        ref.assign(rt.new("T"), loc="rt.init:1")  # parent, pre-fork

        def worker():
            ref.use(member="M", loc="rt.use:2")

        thread = rt.spawn(worker, name="child")
        thread.join()
        ref.use(member="M", loc="rt.post:3")  # parent, post-fork

        init, child_use, parent_post = recorder.events
        assert leq(init.vc_snapshot, child_use.vc_snapshot)  # fork-ordered
        assert concurrent(parent_post.vc_snapshot, child_use.vc_snapshot)

    @pytest.mark.tier2
    def test_delay_injected_via_hook(self):
        class DelayUse(InstrumentationHook):
            def before_access(self, pending):
                return 40.0 if pending.location.site == "rt.use:1" else 0.0

        rt = RealThreadsRuntime(hook=DelayUse())
        ref = rt.ref("r")
        ref.assign(rt.new("T"), loc="rt.init:1")
        start = time.monotonic()
        ref.use(member="M", loc="rt.use:1")
        assert (time.monotonic() - start) >= 0.035


class TestJoinAllHangReport:
    """A wedged thread turns into a structured HangError, not a silent
    fall-through that poisons every later measurement."""

    @pytest.fixture(autouse=True)
    def clean_recorder(self):
        from repro.obs import flightrec

        flightrec.uninstall()
        yield
        flightrec.uninstall()

    def make_wedged_runtime(self):
        rt = RealThreadsRuntime()
        release = threading.Event()
        reached = threading.Event()
        ref = rt.ref("conn")
        ref.assign(rt.new("Connection"), loc="rt.open:1")

        def wedged():
            ref.use(member="Send", loc="rt.send:10")
            reached.set()  # the instrumented op is on record
            release.wait(10.0)

        rt.spawn(wedged, name="sender")
        # Event-driven rendezvous (not a sleep): the join below must not
        # race the worker still warming up on a loaded machine.
        assert reached.wait(5.0)
        return rt, release

    def test_join_all_raises_structured_hang_error(self):
        from repro.harness.faults import HangError

        rt, release = self.make_wedged_runtime()
        try:
            with pytest.raises(HangError) as excinfo:
                rt.join_all(timeout_s=0.05)
        finally:
            release.set()
        error = excinfo.value
        assert error.timeout_s == 0.05
        assert [t["name"] for t in error.threads] == ["sender"]
        assert error.threads[0]["site"] == "rt.send:10"  # last-seen site
        message = str(error)
        assert "sender" in message and "rt.send:10" in message
        # The hang is also recorded as a degraded-run failure.
        assert rt.failures and rt.failures[0][0] == "<join_all>"
        assert rt.failures[0][1] is error

    def test_hang_emits_a_flight_mark(self):
        from repro.harness.faults import HangError
        from repro.obs import flightrec

        rec = flightrec.install()
        rt, release = self.make_wedged_runtime()
        try:
            with pytest.raises(HangError):
                rt.join_all(timeout_s=0.05)
        finally:
            release.set()
        hangs = rec.events("hang")
        assert len(hangs) == 1
        assert hangs[0]["threads"][0]["name"] == "sender"
        assert hangs[0]["timeout_s"] == 0.05

    def test_clean_join_is_unchanged(self):
        rt = RealThreadsRuntime()
        rt.spawn(lambda: None, name="quick")
        rt.join_all(timeout_s=5.0)
        assert rt.failures == []

    def test_detection_degrades_instead_of_crashing(self):
        """A hang inside a detection run is absorbed by the driver: the
        run is marked crashed (the hang IS the failure signal), later
        runs proceed, and the campaign never unwinds."""
        release = threading.Event()

        def wedging_workload(rt: RealThreadsRuntime):
            conn = rt.ref("connection")
            conn.assign(rt.new("Connection"), loc="rt.open:1")

            def worker():
                conn.use(member="Send", loc="rt.send:10")
                release.wait(10.0)

            rt.spawn(worker, name="sender")

        waffle = RealThreadsWaffle(join_timeout_s=0.05)
        try:
            outcome = waffle.detect(wedging_workload, max_detection_runs=2)
        finally:
            release.set()
        assert len(outcome.runs) == 3  # prep + both detection attempts ran
        assert outcome.runs[0].crashed  # the hang degraded the prep run
        assert not outcome.bug_found  # a hang is not a manifested UAF


@pytest.mark.tier2
class TestRealThreadsWaffle:
    """Wall-clock gap engineering (30/80 ms) is the test input here:
    inherently timing-dependent, so CI runs these in the tier-2 step."""

    def test_stress_never_crashes(self):
        crashes = RealThreadsWaffle().stress(uaf_workload(), runs=3)
        assert crashes == 0

    def test_detects_real_uaf(self):
        outcome = RealThreadsWaffle().detect(uaf_workload(), max_detection_runs=3)
        assert outcome.bug_found
        assert outcome.runs[0].kind == "prep"
        assert outcome.runs[0].delays_injected == 0
        report = outcome.reports[0]
        assert report.fault_site == "rt.send:10"
        assert report.delay_induced
        # The measured gap drives the delay length: ~50 ms plus noise.
        assert 35.0 <= outcome.plan.delay_lengths["rt.send:10"] <= 70.0

    def test_plan_prunes_fork_ordered_pairs(self):
        """The (open, send) pair is parent-child ordered; only the
        (send, close) use-after-free pair survives analysis."""
        outcome = RealThreadsWaffle().detect(uaf_workload(), max_detection_runs=1)
        sites = outcome.plan.delay_sites
        assert sites == {"rt.send:10"}
        assert outcome.plan.stats.pruned_parent_child >= 1


@pytest.mark.tier2
class TestObservabilityParity:
    """Real-threads runs speak the same telemetry dialect as the sim.
    Tier-2: drives the same wall-clock uaf_workload as the class above."""

    @pytest.fixture(autouse=True)
    def clean_recorder(self):
        from repro.obs import flightrec

        flightrec.uninstall()
        yield
        flightrec.uninstall()

    def test_run_records_carry_the_skip_taxonomy(self):
        outcome = RealThreadsWaffle().detect(uaf_workload(), max_detection_runs=3)
        detect_runs = [r for r in outcome.runs if r.kind == "detect"]
        assert detect_runs
        for record in detect_runs:
            # Same field names and non-negative counts as the sim
            # detector's RunRecord skip-reason taxonomy.
            assert record.skipped_interference >= 0
            assert record.skipped_decay >= 0
            assert record.skipped_budget >= 0

    def test_flight_recorder_sees_the_sim_event_stream(self):
        from repro.obs import flightrec

        rec = flightrec.install()
        outcome = RealThreadsWaffle().detect(uaf_workload(), max_detection_runs=3)
        assert outcome.bug_found
        kinds = {e["k"] for e in rec.snapshot()}
        assert kinds <= set(flightrec.EVENT_KINDS)
        # The same lifecycle/decision dialect the sim scheduler emits.
        assert {"run_start", "thread_start", "thread_end"} <= kinds
        run_kinds = [e["run_kind"] for e in rec.events("run_start")]
        assert run_kinds[0] == "prep"
        assert "detect" in run_kinds

    def test_fault_events_carry_site_and_thread(self):
        from repro.obs import flightrec

        rec = flightrec.install()
        RealThreadsWaffle().detect(uaf_workload(), max_detection_runs=3)
        faults = rec.events("fault")
        assert faults  # the exposed bug manifests as a fault event
        fault = faults[-1]
        assert fault["site"] == "rt.send:10"
        # Disposed-use manifests as ObjectDisposedError (a
        # NullReferenceError subclass); both are the same oracle.
        assert fault["error"] in ("NullReferenceError", "ObjectDisposedError")
        assert fault["thread"] == "sender"

    def test_thread_start_links_parent_and_child(self):
        from repro.obs import flightrec

        rec = flightrec.install()
        rt = RealThreadsRuntime()

        def worker():
            pass

        rt.spawn(worker, name="child")
        rt.join_all()
        starts = rec.events("thread_start")
        assert len(starts) == 2
        main, child = starts
        assert main["parent"] is None
        assert child["parent"] == main["tid"]
        assert child["name"] == "child"
        ends = rec.events("thread_end")
        assert len(ends) == 1 and ends[0]["failed"] is False
