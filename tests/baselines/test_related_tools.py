"""Simplified Table 1 tool models (RaceFuzzer/CTrigger/RaceMob/DataCollider)."""

import pytest

from repro.apps import all_bugs, bug_workload
from repro.baselines import RELATED_TOOLS, CTrigger, DataCollider, RaceFuzzer, RaceMob
from repro.core.config import WaffleConfig
from repro.core.detector import Workload


def _bug(bug_id):
    return next(b for b in all_bugs() if b.bug_id == bug_id)


def clean_workload():
    def build(sim):
        def main(sim):
            ref = sim.ref("r")
            yield from sim.assign(ref, sim.new("T"), loc="rc.init:1")
            yield from sim.use(ref, member="M", loc="rc.use:1")

        return main(sim)

    return Workload("clean", build)


class TestCommonBehavior:
    @pytest.mark.parametrize("name", sorted(RELATED_TOOLS))
    def test_clean_workload_never_reported(self, name):
        tool = RELATED_TOOLS[name](WaffleConfig(seed=1))
        outcome = tool.detect(clean_workload(), max_detection_runs=5)
        assert not outcome.bug_found

    @pytest.mark.parametrize("name", sorted(RELATED_TOOLS))
    def test_exposes_plain_uaf(self, name):
        bug = _bug("Bug-1")
        tool = RELATED_TOOLS[name](WaffleConfig(seed=1))
        outcome = tool.detect(bug_workload("Bug-1"), max_detection_runs=30)
        assert outcome.bug_found
        assert bug.matches(outcome.reports[0])
        assert outcome.reports[0].delay_induced


class TestAnalysisDrivenTools:
    def test_racefuzzer_first_run_is_prep(self):
        outcome = RaceFuzzer(WaffleConfig(seed=1)).detect(
            bug_workload("Bug-1"), max_detection_runs=10
        )
        assert outcome.runs[0].kind == "prep"
        assert outcome.runs[0].delays_injected == 0

    def test_single_delay_per_run(self):
        outcome = RaceFuzzer(WaffleConfig(seed=1)).detect(
            bug_workload("Bug-16"), max_detection_runs=10
        )
        for record in outcome.runs:
            if record.kind == "detect":
                assert record.delays_injected <= 1

    def test_one_delay_per_run_beats_interference_blindness(self):
        """Section 4.4's observation: the naive one-delay-per-run
        strategy is immune to delay interference -- it does expose the
        Figure 4a bug WaffleBasic misses -- at the price of sweeping
        candidates one run at a time."""
        bug = _bug("Bug-10")
        outcome = RaceFuzzer(WaffleConfig(seed=1)).detect(
            bug_workload("Bug-10"), max_detection_runs=30
        )
        assert outcome.bug_found and bug.matches(outcome.reports[0])

    def test_sweep_cost_on_dense_apps(self):
        """The section 7 claim, quantified: one candidate per run means
        the dense apps take an order of magnitude more runs than
        Waffle's three."""
        outcome = RaceFuzzer(WaffleConfig(seed=1)).detect(
            bug_workload("Bug-16"), max_detection_runs=60
        )
        assert outcome.bug_found
        assert outcome.runs_to_expose > 10

    def test_ctrigger_small_window_ranking(self):
        """CTrigger tries small-gap candidates first; on a workload
        whose exposable pair has the smallest gap it wins quickly."""
        outcome = CTrigger(WaffleConfig(seed=1)).detect(
            bug_workload("Bug-1"), max_detection_runs=10
        )
        assert outcome.bug_found
        assert outcome.runs_to_expose <= 4

    def test_gives_up_after_full_sweep(self):
        """A candidate list with nothing exposable is swept once, not
        ground through the whole budget."""
        outcome = RaceFuzzer(WaffleConfig(seed=1)).detect(
            clean_workload(), max_detection_runs=50
        )
        # prep + at most |S| detection runs, far below the budget.
        assert len(outcome.runs) < 10


class TestSamplingTools:
    def test_racemob_short_delays_miss_long_gaps(self):
        """RaceMob's cheap 40 ms pauses cannot bridge a 108 ms gap."""
        bug = _bug("Bug-15")
        outcome = RaceMob(WaffleConfig(seed=1)).detect(
            bug_workload("Bug-15"), max_detection_runs=40
        )
        found = outcome.bug_found and bug.matches(outcome.reports[0])
        assert not found

    def test_datacollider_needs_no_analysis_run(self):
        outcome = DataCollider(WaffleConfig(seed=1)).detect(
            bug_workload("Bug-1"), max_detection_runs=20
        )
        assert all(r.kind == "detect" for r in outcome.runs)

    def test_datacollider_sampling_is_seeded(self):
        a = DataCollider(WaffleConfig(seed=5)).detect(bug_workload("Bug-1"), max_detection_runs=10)
        b = DataCollider(WaffleConfig(seed=5)).detect(bug_workload("Bug-1"), max_detection_runs=10)
        assert a.runs_to_expose == b.runs_to_expose
