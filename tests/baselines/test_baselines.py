"""WaffleBasic, Tsvd, stress runner, and ablation factories."""

import pytest

from repro.baselines import (
    ALL_ABLATIONS,
    DESIGN_POINTS,
    StressRunner,
    Tsvd,
    WaffleBasic,
    baseline_time_ms,
    make_ablation,
)
from repro.core.config import WaffleConfig
from repro.core.detector import Waffle, Workload


def repeated_ubi_workload():
    """A multi-instance init/use race: WaffleBasic can expose it in one
    run; Waffle needs prep + detection."""

    def build(sim):
        requests = sim.channel("q")

        def consumer(sim):
            while True:
                ref = yield from requests.get()
                if ref is None:
                    return
                yield from sim.sleep(1.2)
                yield from sim.use(ref, member="Route", loc="bl.use:1")

        def main(sim):
            t = sim.fork(consumer(sim), name="consumer")
            for i in range(6):
                yield from sim.sleep(4.0)
                ref = sim.ref("r%d" % i)
                requests.put(ref)
                yield from sim.assign(ref, sim.new("T"), loc="bl.init:1")
            requests.close()
            yield from sim.join(t)

        return main(sim)

    return Workload("repeated_ubi", build)


def tsv_workload():
    """Two thread-unsafe calls whose windows never overlap naturally,
    sized so that Tsvd's fixed 100 ms delay falls inside the Figure 2
    exposure range (T3 - T2, T4 - T1): call A at [0, 4], call B at
    [95, 107] -> range (91, 107) contains 100."""

    def build(sim):
        table = sim.unsafe_dict()

        def caller(sim, key, start, duration):
            yield from sim.sleep(start)
            yield from sim.unsafe_call(
                table, "add", key, 1, loc="bl.call:%s" % key, duration=duration
            )

        def main(sim):
            a = sim.fork(caller(sim, "a", 0.0, 4.0), name="a")
            b = sim.fork(caller(sim, "b", 95.0, 12.0), name="b")
            yield from sim.join(a)
            yield from sim.join(b)

        return main(sim)

    return Workload("tsv", build)


class TestWaffleBasic:
    def test_exposes_repeated_race_in_first_run(self):
        outcome = WaffleBasic(WaffleConfig(seed=2)).detect(
            repeated_ubi_workload(), max_detection_runs=5
        )
        assert outcome.bug_found
        assert outcome.runs_to_expose == 1
        assert outcome.tool == "wafflebasic"

    def test_all_runs_are_detection_runs(self):
        outcome = WaffleBasic(WaffleConfig(seed=2)).detect(
            repeated_ubi_workload(), max_detection_runs=3
        )
        assert all(r.kind == "detect" for r in outcome.runs)

    def test_state_persists_across_runs(self):
        """A single-instance race is undetectable in run 1 (identified
        only after the fact) but exposed in run 2 via persisted S."""

        def build(sim):
            ref = sim.ref("h")
            started = sim.event("st")

            def handler(sim):
                started.set()
                yield from sim.sleep(3.0)
                yield from sim.use(ref, member="OnEvent", loc="bl2.use:1")

            def main(sim):
                t = sim.fork(handler(sim), name="handler")
                yield from started.wait()
                yield from sim.sleep(1.0)
                yield from sim.assign(ref, sim.new("T"), loc="bl2.init:1")
                yield from sim.join(t)

            return main(sim)

        outcome = WaffleBasic(WaffleConfig(seed=2)).detect(
            Workload("single_ubi", build), max_detection_runs=5
        )
        assert outcome.bug_found
        assert outcome.runs_to_expose == 2


class TestTsvd:
    def test_exposes_tsv_with_delays(self):
        outcome = Tsvd(WaffleConfig(seed=1)).detect(tsv_workload(), max_detection_runs=10)
        assert outcome.tsv_found
        assert outcome.violations

    def test_never_reports_memorder_workloads(self):
        outcome = Tsvd(WaffleConfig(seed=1)).detect(
            repeated_ubi_workload(), max_detection_runs=3
        )
        assert not outcome.tsv_found
        # Tsvd instruments only unsafe calls; it injects nothing here.
        assert all(r.delays_injected == 0 for r in outcome.runs)


class TestStressRunner:
    def test_rare_bug_never_manifests(self):
        runner = StressRunner(WaffleConfig(seed=1))
        outcome = runner.detect(repeated_ubi_workload(), max_detection_runs=25)
        assert runner.spontaneous_manifestations(outcome) == 0
        assert len(outcome.runs) == 25
        assert not outcome.bug_found

    def test_baseline_time_positive(self):
        assert baseline_time_ms(repeated_ubi_workload(), seed=1) > 0


class TestAblations:
    def test_factories_cover_all_design_points(self):
        assert set(ALL_ABLATIONS) == set(DESIGN_POINTS)

    @pytest.mark.parametrize("point", DESIGN_POINTS)
    def test_each_ablation_disables_its_flag(self, point):
        driver = make_ablation(point, WaffleConfig(seed=1))
        assert isinstance(driver, Waffle)
        assert getattr(driver.config, point) is False
        assert "off" in driver.name

    def test_unknown_design_point_rejected(self):
        with pytest.raises(ValueError):
            make_ablation("bogus")

    def test_no_custom_delay_ablation_still_finds_short_gap_bug(self):
        driver = make_ablation("custom_delay_length", WaffleConfig(seed=1))
        outcome = driver.detect(repeated_ubi_workload(), max_detection_runs=5)
        assert outcome.bug_found
