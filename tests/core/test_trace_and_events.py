"""Trace recording, censuses, and JSONL serialization."""

import io

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.events import dump_events, event_from_dict, event_to_dict, load_events
from repro.core.trace import RecordingHook, Trace
from repro.sim.api import Simulation
from repro.sim.instrument import AccessEvent, AccessType, Location


def ev(site="s", access=AccessType.USE, oid=1, tid=1, ts=0.0, **kw):
    return AccessEvent(
        location=Location(site),
        access_type=access,
        object_id=oid,
        thread_id=tid,
        timestamp=ts,
        **kw,
    )


class TestEventSerialization:
    def test_roundtrip_minimal(self):
        event = ev()
        restored = event_from_dict(event_to_dict(event))
        assert restored.location == event.location
        assert restored.access_type == event.access_type
        assert restored.object_id == event.object_id
        assert restored.thread_id == event.thread_id
        assert restored.timestamp == event.timestamp

    def test_roundtrip_full(self):
        event = ev(
            site="a.b:1",
            access=AccessType.UNSAFE_CALL,
            ref_name="r",
            member="Add",
            duration=1.5,
            injected_delay=3.0,
            vc_snapshot={1: 2, 9: 4},
        )
        restored = event_from_dict(event_to_dict(event))
        assert restored.ref_name == "r"
        assert restored.member == "Add"
        assert restored.duration == 1.5
        assert restored.injected_delay == 3.0
        assert restored.vc_snapshot == {1: 2, 9: 4}

    def test_optional_fields_omitted_when_default(self):
        payload = event_to_dict(ev())
        assert "dur" not in payload
        assert "delay" not in payload
        assert "vc" not in payload

    def test_jsonl_stream_roundtrip(self):
        events = [ev(site="s%d" % i, ts=float(i)) for i in range(5)]
        buffer = io.StringIO()
        assert dump_events(events, buffer) == 5
        buffer.seek(0)
        restored = list(load_events(buffer))
        assert [e.location.site for e in restored] == ["s0", "s1", "s2", "s3", "s4"]

    def test_blank_lines_skipped(self):
        buffer = io.StringIO("\n" + '{"loc":"x","type":"use","oid":1,"tid":1,"ts":0.5}' + "\n\n")
        restored = list(load_events(buffer))
        assert len(restored) == 1

    @given(
        site=st.text(min_size=1, max_size=20).filter(lambda s: "\n" not in s),
        oid=st.integers(-1, 10_000),
        tid=st.integers(1, 500),
        ts=st.floats(min_value=0, max_value=1e6),
        access=st.sampled_from(list(AccessType)),
    )
    def test_roundtrip_property(self, site, oid, tid, ts, access):
        event = ev(site=site, access=access, oid=oid, tid=tid, ts=round(ts, 6))
        restored = event_from_dict(event_to_dict(event))
        assert restored.key() == event.key()
        assert restored.timestamp == pytest.approx(event.timestamp)


class TestTrace:
    def _sample_trace(self):
        trace = Trace()
        trace.append(ev(site="init", access=AccessType.INIT, ts=2.0))
        trace.append(ev(site="use", access=AccessType.USE, ts=1.0))
        trace.append(ev(site="call", access=AccessType.UNSAFE_CALL, ts=3.0))
        trace.append(ev(site="init", access=AccessType.INIT, ts=4.0))
        return trace

    def test_sorted_events(self):
        trace = self._sample_trace()
        assert [e.timestamp for e in trace.sorted_events()] == [1.0, 2.0, 3.0, 4.0]

    def test_memorder_vs_unsafe_partition(self):
        trace = self._sample_trace()
        assert len(trace.memorder_events()) == 3
        assert len(trace.unsafe_call_events()) == 1

    def test_static_sites(self):
        trace = self._sample_trace()
        assert trace.static_sites(memorder=True) == {Location("init"), Location("use")}
        assert trace.static_sites(memorder=False) == {Location("call")}

    def test_dynamic_instances(self):
        trace = self._sample_trace()
        assert trace.dynamic_instances(Location("init")) == 2
        assert trace.dynamic_instances(Location("use")) == 1
        assert trace.dynamic_instances(Location("missing")) == 0

    def test_init_instance_counts(self):
        trace = self._sample_trace()
        assert trace.init_instance_counts() == [2]

    def test_dump_load_roundtrip(self):
        trace = self._sample_trace()
        buffer = io.StringIO()
        trace.dump(buffer)
        buffer.seek(0)
        restored = Trace.load(buffer)
        assert len(restored) == 4
        assert restored.duration_ms == pytest.approx(4.0)  # max end timestamp
        assert restored.static_sites(memorder=True) == trace.static_sites(memorder=True)


class TestRecordingHook:
    def test_records_all_ops_with_clocks(self):
        hook = RecordingHook(record_overhead_ms=0.01)
        sim = Simulation(seed=1, hook=hook)
        ref = sim.ref("r")

        def child(sim):
            yield from sim.use(ref, member="M", loc="t.use:1")

        def main(sim):
            yield from sim.assign(ref, sim.new("T"), loc="t.init:1")
            t = sim.fork(child(sim), name="child")
            yield from sim.join(t)
            yield from sim.dispose(ref, loc="t.dispose:1")

        sim.run(main(sim))
        trace = hook.trace
        assert len(trace) == 3
        assert all(e.vc_snapshot is not None for e in trace.events)
        assert trace.thread_names[1] == "main"
        assert trace.parents[2] == 1
        assert trace.duration_ms > 0

    def test_vector_clocks_optional(self):
        hook = RecordingHook(track_vector_clocks=False)
        sim = Simulation(seed=1, hook=hook)
        ref = sim.ref("r")

        def main(sim):
            yield from sim.assign(ref, sim.new("T"), loc="t.init:1")

        sim.run(main(sim))
        assert hook.trace.events[0].vc_snapshot is None

    def test_recording_overhead_charged(self):
        def run(overhead):
            hook = RecordingHook(record_overhead_ms=overhead)
            sim = Simulation(seed=1, hook=hook)
            ref = sim.ref("r")

            def main(sim):
                for _ in range(10):
                    yield from sim.assign(ref, sim.new("T"), loc="t.init:1")

            return sim.run(main(sim)).virtual_time

        assert run(1.0) > run(0.0) + 9.0
