"""The Waffle detector end-to-end: prep run, analysis, detection runs."""

import pytest

from repro.core.config import WaffleConfig
from repro.core.detector import (
    DetectionOutcome,
    RunRecord,
    Waffle,
    Workload,
    as_workload,
)
from repro.sim.api import Simulation


def uaf_workload(use_at=4.0, dispose_at=9.0):
    """A plain use-after-free: exposable by delaying the use."""

    def build(sim):
        ref = sim.ref("session")

        def user(sim):
            yield from sim.sleep(use_at)
            yield from sim.use(ref, member="Send", loc="dw.use:1")

        def main(sim):
            yield from sim.assign(ref, sim.new("T"), loc="dw.init:1")
            t = sim.fork(user(sim), name="user")
            yield from sim.sleep(dispose_at)
            yield from sim.dispose(ref, loc="dw.dispose:1")
            yield from sim.join(t)

        return main(sim)

    return Workload("uaf", build)


def clean_workload():
    def build(sim):
        def main(sim):
            ref = sim.ref("r")
            yield from sim.assign(ref, sim.new("T"), loc="cw.init:1")
            yield from sim.use(ref, member="M", loc="cw.use:1")

        return main(sim)

    return Workload("clean", build)


class TestWorkloadCoercion:
    def test_workload_passthrough(self):
        w = Workload("x", lambda sim: None)
        assert as_workload(w) is w

    def test_callable_coerced(self):
        def my_test(sim):
            return None

        w = as_workload(my_test)
        assert w.name == "my_test"

    def test_invalid_rejected(self):
        with pytest.raises(TypeError):
            as_workload(42)


class TestWaffleDetect:
    def test_finds_plain_uaf_in_two_runs(self):
        outcome = Waffle(WaffleConfig(seed=1)).detect(uaf_workload(), max_detection_runs=5)
        assert outcome.bug_found
        assert outcome.runs_to_expose == 2
        assert outcome.runs[0].kind == "prep"
        assert outcome.runs[0].delays_injected == 0
        assert outcome.runs[1].kind == "detect"
        report = outcome.reports[0]
        assert report.fault_site == "dw.use:1"
        assert report.delay_induced
        assert report.error_type in ("ObjectDisposedError", "NullReferenceError")

    def test_report_matches_candidate_pair(self):
        outcome = Waffle(WaffleConfig(seed=1)).detect(uaf_workload(), max_detection_runs=5)
        pairs = outcome.reports[0].matched_pairs
        assert any(p.delay_location.site == "dw.use:1" for p in pairs)

    def test_clean_workload_no_bug(self):
        outcome = Waffle(WaffleConfig(seed=1)).detect(clean_workload(), max_detection_runs=3)
        assert not outcome.bug_found
        assert outcome.runs_to_expose is None
        assert len(outcome.runs) == 4  # prep + 3 detection runs

    def test_plan_attached_to_outcome(self):
        outcome = Waffle(WaffleConfig(seed=1)).detect(uaf_workload(), max_detection_runs=2)
        assert outcome.plan is not None
        assert "dw.use:1" in outcome.plan.delay_sites
        assert outcome.trace is not None
        assert len(outcome.trace) > 0

    def test_deterministic_given_seed(self):
        a = Waffle(WaffleConfig(seed=9)).detect(uaf_workload(), max_detection_runs=5)
        b = Waffle(WaffleConfig(seed=9)).detect(uaf_workload(), max_detection_runs=5)
        assert a.runs_to_expose == b.runs_to_expose
        assert a.total_time_ms == pytest.approx(b.total_time_ms)

    def test_no_prep_run_ablation_still_detects_repeated_race(self):
        """Without a preparation run Waffle identifies online; a
        single-instance race needs at least two runs (state persists)."""
        config = WaffleConfig(seed=1).without("preparation_run")
        outcome = Waffle(config).detect(uaf_workload(), max_detection_runs=10)
        assert outcome.bug_found
        assert outcome.runs[0].kind == "detect"

    def test_outcome_aggregates(self):
        outcome = Waffle(WaffleConfig(seed=1)).detect(uaf_workload(), max_detection_runs=5)
        assert outcome.total_time_ms == pytest.approx(
            sum(r.virtual_time_ms for r in outcome.runs)
        )
        assert outcome.total_delays == sum(r.delays_injected for r in outcome.runs)
        assert outcome.slowdown_vs(100.0) == pytest.approx(outcome.total_time_ms / 100.0)
        assert outcome.slowdown_vs(0.0) == float("inf")

    def test_stop_at_first_bug_false_keeps_running(self):
        from dataclasses import replace

        config = replace(WaffleConfig(seed=1), stop_at_first_bug=False)
        outcome = Waffle(config).detect(uaf_workload(), max_detection_runs=4)
        assert outcome.bug_found
        assert len(outcome.runs) == 5  # prep + all 4 detection runs
        assert len(outcome.reports) >= 2


class TestZeroFalsePositives:
    def test_spontaneous_crash_not_claimed(self):
        """A crash in a run with zero injected delays must not produce a
        bug report (section 6.4: no false positives)."""

        def build(sim):
            ref = sim.ref("r")

            def main(sim):
                yield from sim.use(ref, member="M", loc="fp.use:1")

            return main(sim)

        outcome = Waffle(WaffleConfig(seed=1)).detect(
            Workload("alwayscrash", build), max_detection_runs=2
        )
        # Every run crashes, but never because of a delay.
        assert all(r.crashed for r in outcome.runs)
        assert not outcome.bug_found
