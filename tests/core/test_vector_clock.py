"""Vector clocks over inheritable TLS: fork-ordering semantics.

Includes property-based tests checking the happens-before laws that the
parent-child pruning of section 4.1 depends on.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.vector_clock import (
    TLS_KEY,
    CounterCell,
    ThreadVectorClock,
    concurrent,
    leq,
    ordered,
)
from repro.sim.api import Simulation


class _FakeThread:
    def __init__(self, tid):
        self.tid = tid


class TestCounterCell:
    def test_starts_at_one(self):
        assert CounterCell().value == 1

    def test_increment(self):
        cell = CounterCell()
        cell.increment()
        assert cell.value == 2


class TestThreadVectorClock:
    def test_fresh_clock_snapshot(self):
        clock = ThreadVectorClock(tid=5)
        assert clock.snapshot() == {5: 1}

    def test_inherit_appends_child_entry(self):
        parent = ThreadVectorClock(tid=1)
        child = parent.inherit_to(_FakeThread(1), _FakeThread(2))
        assert child.snapshot() == {1: 1, 2: 1}

    def test_inherit_bumps_parent_counter(self):
        parent = ThreadVectorClock(tid=1)
        parent.inherit_to(_FakeThread(1), _FakeThread(2))
        assert parent.snapshot() == {1: 2}

    def test_child_entry_frozen_against_later_forks(self):
        """The paper-critical clarification: a later fork by the parent
        must not retroactively advance an earlier child's view."""
        parent = ThreadVectorClock(tid=1)
        first = parent.inherit_to(_FakeThread(1), _FakeThread(2))
        parent.inherit_to(_FakeThread(1), _FakeThread(3))
        assert first.snapshot()[1] == 1
        assert parent.snapshot() == {1: 3}

    def test_grandchild_carries_ancestor_entries(self):
        root = ThreadVectorClock(tid=1)
        child = root.inherit_to(_FakeThread(1), _FakeThread(2))
        grandchild = child.inherit_to(_FakeThread(2), _FakeThread(3))
        assert grandchild.snapshot() == {1: 1, 2: 1, 3: 1}


class TestOrdering:
    def test_parent_prefork_ordered_before_child(self):
        parent = ThreadVectorClock(tid=1)
        before_fork = parent.snapshot()
        child = parent.inherit_to(_FakeThread(1), _FakeThread(2))
        assert ordered(before_fork, child.snapshot())
        assert leq(before_fork, child.snapshot())

    def test_parent_postfork_concurrent_with_child(self):
        parent = ThreadVectorClock(tid=1)
        child = parent.inherit_to(_FakeThread(1), _FakeThread(2))
        after_fork = parent.snapshot()
        assert concurrent(after_fork, child.snapshot())

    def test_siblings_concurrent(self):
        parent = ThreadVectorClock(tid=1)
        a = parent.inherit_to(_FakeThread(1), _FakeThread(2))
        b = parent.inherit_to(_FakeThread(1), _FakeThread(3))
        assert concurrent(a.snapshot(), b.snapshot())

    def test_missing_snapshots_treated_as_unordered(self):
        assert not ordered(None, {1: 1})
        assert not ordered({1: 1}, None)
        assert concurrent(None, None)

    def test_reflexive(self):
        snap = {1: 2, 2: 1}
        assert ordered(snap, snap)


class TestHypothesisLaws:
    snapshots = st.dictionaries(
        st.integers(min_value=1, max_value=6),
        st.integers(min_value=1, max_value=8),
        min_size=0,
        max_size=6,
    )

    @given(a=snapshots, b=snapshots)
    def test_ordered_is_symmetric(self, a, b):
        assert ordered(a, b) == ordered(b, a)

    @given(a=snapshots)
    def test_leq_reflexive(self, a):
        assert leq(a, a)

    @given(a=snapshots, b=snapshots, c=snapshots)
    def test_leq_transitive(self, a, b, c):
        if leq(a, b) and leq(b, c):
            assert leq(a, c)

    @given(a=snapshots, b=snapshots)
    def test_concurrent_is_negation_of_ordered(self, a, b):
        assert concurrent(a, b) == (not ordered(a, b))

    @given(tids=st.lists(st.integers(min_value=2, max_value=50), max_size=8, unique=True))
    @settings(max_examples=50)
    def test_fork_chain_snapshots_totally_ordered_along_chain(self, tids):
        """Along a fork chain, each ancestor's pre-fork snapshot is
        ordered before every descendant's snapshot."""
        clock = ThreadVectorClock(tid=1)
        history = [clock.snapshot()]
        current = clock
        current_tid = 1
        for tid in tids:
            current = current.inherit_to(_FakeThread(current_tid), _FakeThread(tid))
            current_tid = tid
            history.append(current.snapshot())
        for i in range(len(history)):
            for j in range(i + 1, len(history)):
                assert leq(history[i], history[j])


class TestEndToEndWithSimulation:
    def test_fork_tree_clocks_via_itls(self):
        """Install a root clock in inheritable TLS and verify fork-tree
        ordering laws over a real simulated thread tree."""
        sim = Simulation(seed=3)
        snaps = {}

        def leaf(sim, name):
            snaps[name] = sim.itls_get(TLS_KEY).snapshot()
            yield from sim.sleep(0)

        def mid(sim, name):
            snaps[name + ".pre"] = sim.itls_get(TLS_KEY).snapshot()
            t = sim.fork(leaf(sim, name + ".leaf"), name=name + ".leaf")
            snaps[name + ".post"] = sim.itls_get(TLS_KEY).snapshot()
            yield from sim.join(t)

        def main(sim):
            sim.itls_set(TLS_KEY, ThreadVectorClock(sim.current_thread.tid))
            snaps["root.pre"] = sim.itls_get(TLS_KEY).snapshot()
            a = sim.fork(mid(sim, "a"), name="a")
            b = sim.fork(mid(sim, "b"), name="b")
            yield from sim.join(a)
            yield from sim.join(b)

        sim.run(main(sim))
        # Root's pre-fork snapshot precedes everything.
        for name, snap in snaps.items():
            if name != "root.pre":
                assert leq(snaps["root.pre"], snap), name
        # Pre-fork mid precedes its own leaf...
        assert leq(snaps["a.pre"], snaps["a.leaf"])
        # ... post-fork mid is concurrent with its leaf ...
        assert concurrent(snaps["a.post"], snaps["a.leaf"])
        # ... and the two subtrees are mutually concurrent.
        assert concurrent(snaps["a.leaf"], snaps["b.leaf"])
        assert concurrent(snaps["a.pre"], snaps["b.pre"])
