"""Probability decay and delay-length policies."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.delay_policy import (
    DecayState,
    FixedDelayPolicy,
    ProportionalDelayPolicy,
)


class TestDecayState:
    def test_register_defaults_to_one(self):
        decay = DecayState(0.1)
        assert decay.register("a") == 1.0
        assert decay.probability("a") == 1.0

    def test_unknown_site_probability_zero(self):
        assert DecayState(0.1).probability("missing") == 0.0

    def test_register_preserves_existing(self):
        decay = DecayState(0.1)
        decay.register("a")
        decay.decay("a")
        assert decay.register("a") == pytest.approx(0.9)

    def test_register_reset(self):
        decay = DecayState(0.1)
        decay.register("a")
        decay.decay("a")
        assert decay.register("a", reset=True) == 1.0

    def test_decay_sequence_reaches_exact_zero(self):
        """Float residue must not leave a site limping at p=1e-16
        (the retire/rediscover cycle depends on exact zero)."""
        decay = DecayState(0.1)
        decay.register("a")
        for _ in range(10):
            last = decay.decay("a")
        assert last == 0.0
        assert decay.retired("a")

    def test_decay_does_not_go_negative(self):
        decay = DecayState(0.4)
        decay.register("a")
        for _ in range(5):
            decay.decay("a")
        assert decay.probability("a") == 0.0

    def test_invalid_lambda_rejected(self):
        with pytest.raises(ValueError):
            DecayState(0.0)
        with pytest.raises(ValueError):
            DecayState(1.5)

    def test_known_sites(self):
        decay = DecayState(0.1)
        decay.register("a")
        decay.register("b")
        assert sorted(decay.known_sites()) == ["a", "b"]

    def test_roundtrip(self):
        decay = DecayState(0.2)
        decay.register("a")
        decay.decay("a")
        restored = DecayState.from_dict(decay.to_dict())
        assert restored.decay_lambda == 0.2
        assert restored.probability("a") == pytest.approx(0.8)

    @given(lam=st.floats(min_value=0.01, max_value=1.0), steps=st.integers(0, 200))
    def test_probability_always_in_unit_interval(self, lam, steps):
        decay = DecayState(lam)
        decay.register("s")
        for _ in range(steps):
            p = decay.decay("s")
            assert 0.0 <= p <= 1.0

    @given(lam=st.floats(min_value=0.01, max_value=0.5))
    def test_monotone_nonincreasing(self, lam):
        decay = DecayState(lam)
        decay.register("s")
        prev = 1.0
        for _ in range(30):
            cur = decay.decay("s")
            assert cur <= prev
            prev = cur


class TestFixedDelayPolicy:
    def test_same_length_everywhere(self):
        policy = FixedDelayPolicy(100.0)
        assert policy.length_for("anything") == 100.0
        assert policy.length_for("else") == 100.0

    def test_invalid_length_rejected(self):
        with pytest.raises(ValueError):
            FixedDelayPolicy(0.0)


class TestProportionalDelayPolicy:
    def test_alpha_scaling(self):
        policy = ProportionalDelayPolicy({"a": 10.0}, alpha=1.15, min_delay_ms=0.5)
        assert policy.length_for("a") == pytest.approx(11.5)

    def test_min_delay_floor(self):
        policy = ProportionalDelayPolicy({"a": 0.1}, alpha=1.15, min_delay_ms=0.5)
        assert policy.length_for("a") == 0.5

    def test_unknown_site_gets_floor(self):
        policy = ProportionalDelayPolicy({}, alpha=1.15, min_delay_ms=0.5)
        assert policy.length_for("missing") == 0.5

    def test_update_keeps_max(self):
        policy = ProportionalDelayPolicy({}, alpha=1.0, min_delay_ms=0.0)
        policy.update("a", 5.0)
        policy.update("a", 3.0)
        assert policy.length_for("a") == 5.0
        policy.update("a", 8.0)
        assert policy.length_for("a") == 8.0

    def test_alpha_below_one_rejected(self):
        with pytest.raises(ValueError):
            ProportionalDelayPolicy({}, alpha=0.9, min_delay_ms=0.5)

    @given(
        gaps=st.dictionaries(
            st.text(min_size=1, max_size=5),
            st.floats(min_value=0.0, max_value=1000.0),
            max_size=10,
        ),
        alpha=st.floats(min_value=1.0, max_value=3.0),
    )
    def test_delay_always_covers_observed_gap(self, gaps, alpha):
        """The core section 4.3 property: alpha >= 1 means the injected
        delay is never shorter than the largest observed gap."""
        policy = ProportionalDelayPolicy(gaps, alpha=alpha, min_delay_ms=0.5)
        for site, gap in gaps.items():
            assert policy.length_for(site) >= gap
