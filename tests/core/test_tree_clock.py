"""Differential tests: tree clocks must be observationally equal to
vector clocks on every ordering query.

The tree-clock engine (:mod:`repro.core.tree_clock`) re-represents the
section 4.1 fork clocks as structurally shared ancestor chains. These
tests drive both engines through identical seeded fork/capture
histories and assert equal verdicts on *every* capture pair, in every
representation mix (stamp/stamp, dict/dict, stamp/dict), plus the
structural invariants the O(log) jump-pointer walk depends on.
"""

from __future__ import annotations

import random

import pytest

from repro.core.tree_clock import (
    HB_ENGINES,
    ThreadTreeClock,
    TreeClockStamp,
    make_clock,
)
from repro.core.vector_clock import ThreadVectorClock, concurrent, leq, ordered


class _T:
    __slots__ = ("tid",)

    def __init__(self, tid):
        self.tid = tid


def grow_pair(seed, n_threads, fork_bias=0.6, captures_per_thread=2):
    """Grow one random fork tree under both engines simultaneously.

    Returns (captures, clock maps): ``captures`` is a list of
    ``(tid, stamp, dict)`` triples taken at interleaved points -- each
    tree-clock stamp paired with the vector-clock dict captured at the
    same instant of the same history.
    """
    rng = random.Random(seed)
    tree = {1: ThreadTreeClock(1)}
    vec = {1: ThreadVectorClock(1)}
    tids = [1]
    captures = []
    newest = 1
    next_tid = 2
    while len(tids) < n_threads:
        parent = newest if rng.random() < fork_bias else rng.choice(tids)
        # Interleave captures with forks so stamps at different
        # own-counter values of the same thread appear.
        for tid in rng.sample(tids, min(len(tids), captures_per_thread)):
            captures.append((tid, tree[tid].stamp(), vec[tid].capture()))
        child = next_tid
        next_tid += 1
        tree[child] = tree[parent].inherit_to(None, _T(child))
        vec[child] = vec[parent].inherit_to(None, _T(child))
        newest = child
        tids.append(child)
    for tid in tids:
        captures.append((tid, tree[tid].stamp(), vec[tid].capture()))
    return captures, tree, vec


class TestDifferentialOrdering:
    @pytest.mark.parametrize("seed", range(6))
    def test_every_pair_agrees_across_engines_and_representations(self, seed):
        captures, _, _ = grow_pair(seed, n_threads=24)
        for i, (_, stamp_a, dict_a) in enumerate(captures):
            for _, stamp_b, dict_b in captures[i:]:
                expect = leq(dict_a, dict_b)
                assert stamp_a.leq(stamp_b) == expect
                assert leq(stamp_a, dict_b) == expect  # mixed
                assert leq(dict_a, stamp_b) == expect  # mixed, flipped
                assert ordered(stamp_a, stamp_b) == ordered(dict_a, dict_b)
                assert concurrent(stamp_a, stamp_b) == concurrent(dict_a, dict_b)

    def test_deep_spine_agrees(self):
        # A pure spine maximizes chain depth: every walk exercises the
        # jump pointers across large depth differences.
        captures, _, _ = grow_pair(11, n_threads=120, fork_bias=1.0)
        for i, (_, stamp_a, dict_a) in enumerate(captures):
            for _, stamp_b, dict_b in captures[i:]:
                assert stamp_a.leq(stamp_b) == leq(dict_a, dict_b)
                assert stamp_b.leq(stamp_a) == leq(dict_b, dict_a)

    @pytest.mark.parametrize("seed", range(4))
    def test_snapshot_dicts_identical(self, seed):
        _, tree, vec = grow_pair(seed, n_threads=40)
        for tid, clock in tree.items():
            assert clock.snapshot() == vec[tid].snapshot()
            assert dict(clock.stamp().items()) == vec[tid].capture()


class TestStampStructure:
    def test_stamp_is_frozen_across_later_forks(self):
        root = ThreadTreeClock(1)
        before = root.stamp()
        child = root.inherit_to(None, _T(2))
        after = root.stamp()
        # The pre-fork stamp precedes the child; the post-fork one is
        # concurrent with it (standard fork rule).
        assert before.leq(child.stamp())
        assert not after.leq(child.stamp())
        assert before.mapping() == {1: 1}
        assert after.mapping() == {1: 2}

    def test_jump_pointers_cover_spine(self):
        clock = ThreadTreeClock(1)
        for tid in range(2, 260):
            clock = clock.inherit_to(None, _T(tid))
        # Invariants: jumps never overshoot the parent chain's order,
        # always land on the same chain, and the walk from any depth to
        # any shallower depth terminates at the exact node.
        node = clock.chain
        while node is not None:
            if node.jump is not None:
                assert node.jump.depth < node.depth
            node = node.parent
        deep = clock.stamp()
        for target in (0, 1, 7, 63, 128, 200, deep.depth - 1):
            walk = deep.chain
            hops = 0
            while walk is not None and walk.depth > target:
                jump = walk.jump
                walk = jump if jump is not None and jump.depth >= target else walk.parent
                hops += 1
            assert walk is not None and walk.depth == target
            # O(log) bound: a 260-deep spine must never need a linear walk.
            assert hops <= 2 * deep.depth.bit_length()

    def test_same_thread_program_order(self):
        clock = ThreadTreeClock(5)
        a = clock.stamp()
        clock.inherit_to(None, _T(6))
        b = clock.stamp()
        assert a.leq(b) and not b.leq(a)
        assert a.ordered_with(b)


class TestEngineSelection:
    def test_make_clock_constructs_both_engines(self):
        assert isinstance(make_clock("tree", 1), ThreadTreeClock)
        assert isinstance(make_clock("vector", 1), ThreadVectorClock)

    def test_make_clock_rejects_unknown(self):
        with pytest.raises(ValueError):
            make_clock("lamport", 1)

    def test_engine_registry(self):
        assert HB_ENGINES == ("vector", "tree")

    def test_capture_types(self):
        assert isinstance(make_clock("tree", 1).capture(), TreeClockStamp)
        assert isinstance(make_clock("vector", 1).capture(), dict)
