"""Injection runtimes: the delay-or-not engine, planned and online hooks."""

import random

import pytest

from repro.core.analyzer import InjectionPlan, AnalysisStats
from repro.core.candidates import CandidateKind, CandidatePair, CandidateSet, GapObservation
from repro.core.config import WaffleConfig
from repro.core.delay_policy import DecayState, FixedDelayPolicy
from repro.core.interference import InterferenceIndex
from repro.core.runtime import InjectionEngine, OnlineInjectionHook, PlannedInjectionHook
from repro.sim.api import Simulation
from repro.sim.instrument import AccessType, Location, PendingAccess


def make_pair(delay="l1", other="l2", kind=CandidateKind.USE_AFTER_FREE):
    return CandidatePair(kind=kind, delay_location=Location(delay), other_location=Location(other))


def pending(site="l1", access=AccessType.USE, tid=1, ts=0.0, oid=1):
    return PendingAccess(
        location=Location(site),
        access_type=access,
        object_id=oid,
        thread_id=tid,
        timestamp=ts,
    )


def make_engine(config=None, pairs=(), interference=None, decay=None):
    config = config or WaffleConfig()
    candidates = CandidateSet()
    for pair in pairs:
        candidates.add(pair)
    return InjectionEngine(
        config=config,
        candidates=candidates,
        decay=decay or DecayState(config.decay_lambda),
        delay_policy=FixedDelayPolicy(config.fixed_delay_ms),
        interference=interference,
        rng=random.Random(0),
    )


class TestInjectionEngine:
    def test_non_candidate_site_never_delayed(self):
        engine = make_engine(pairs=[make_pair(delay="l1")])
        assert engine.decide(pending(site="other")) == 0.0

    def test_candidate_site_delayed_at_full_probability(self):
        engine = make_engine(pairs=[make_pair(delay="l1")])
        assert engine.decide(pending(site="l1")) == 100.0
        assert engine.ledger.count == 1

    def test_injection_decays_probability(self):
        engine = make_engine(pairs=[make_pair(delay="l1")])
        engine.decide(pending(site="l1", ts=0.0))
        assert engine.decay.probability("l1") == pytest.approx(0.9)

    def test_retired_site_removes_pairs(self):
        config = WaffleConfig(decay_lambda=1.0)
        engine = make_engine(config=config, pairs=[make_pair(delay="l1")])
        # First injection decays 1.0 -> 0.0 and retires the site.
        assert engine.decide(pending(site="l1", ts=0.0)) == 100.0
        assert engine.candidates.pairs_for_delay_location(Location("l1")) == []
        assert engine.decide(pending(site="l1", ts=200.0)) == 0.0

    def test_interference_skip(self):
        index = InterferenceIndex([frozenset({"l1", "lx"})])
        engine = make_engine(
            pairs=[make_pair(delay="l1"), make_pair(delay="lx", other="ly")],
            interference=index,
        )
        # A delay goes active at lx...
        assert engine.decide(pending(site="lx", ts=0.0)) == 100.0
        # ... so a concurrent delay at l1 is skipped, without decaying.
        assert engine.decide(pending(site="l1", ts=50.0)) == 0.0
        assert engine.skipped_interference == 1
        assert engine.decay.probability("l1") == 1.0

    def test_interference_expired_no_skip(self):
        index = InterferenceIndex([frozenset({"l1", "lx"})])
        engine = make_engine(
            pairs=[make_pair(delay="l1"), make_pair(delay="lx", other="ly")],
            interference=index,
        )
        engine.decide(pending(site="lx", ts=0.0))
        assert engine.decide(pending(site="l1", ts=150.0)) == 100.0

    def test_self_interference(self):
        index = InterferenceIndex([frozenset({"l1"})])
        engine = make_engine(pairs=[make_pair(delay="l1")], interference=index)
        assert engine.decide(pending(site="l1", ts=0.0, tid=1)) == 100.0
        assert engine.decide(pending(site="l1", ts=10.0, tid=2)) == 0.0
        assert engine.skipped_interference == 1

    def test_interference_control_flag_off(self):
        config = WaffleConfig().without("interference_control")
        index = InterferenceIndex([frozenset({"l1"})])
        engine = make_engine(config=config, pairs=[make_pair(delay="l1")], interference=index)
        engine.decide(pending(site="l1", ts=0.0, tid=1))
        assert engine.decide(pending(site="l1", ts=10.0, tid=2)) == 100.0

    def test_probability_draw_can_skip(self):
        engine = make_engine(pairs=[make_pair(delay="l1")])
        engine.decay.register("l1")
        for _ in range(9):
            engine.decay.decay("l1")  # p = 0.1
        injected = sum(
            1 for i in range(100) if engine.decide(pending(site="l1", ts=1000.0 * i)) > 0
        )
        # With p around 0.1, roughly 10 of 100 injections fire.
        assert 0 < injected < 40


class TestPlannedInjectionHook:
    def _plan(self, config):
        candidates = CandidateSet()
        pair = make_pair(delay="p.use:1", other="p.dispose:2")
        candidates.add(
            pair,
            GapObservation(
                gap_ms=10.0,
                timestamp_first=0.0,
                timestamp_second=10.0,
                object_id=1,
                thread_first=1,
                thread_second=2,
            ),
        )
        return InjectionPlan(
            candidates=candidates,
            delay_lengths={"p.use:1": 10.0},
            interference=set(),
            stats=AnalysisStats(),
        )

    def test_variable_delay_length(self, config):
        hook = PlannedInjectionHook(self._plan(config), config, DecayState(config.decay_lambda))
        delay = hook.before_access(pending(site="p.use:1"))
        assert delay == pytest.approx(config.alpha * 10.0)

    def test_fixed_length_when_custom_disabled(self, config):
        cfg = config.without("custom_delay_length")
        hook = PlannedInjectionHook(self._plan(cfg), cfg, DecayState(cfg.decay_lambda))
        assert hook.before_access(pending(site="p.use:1")) == cfg.fixed_delay_ms

    def test_unsafe_calls_not_delayed(self, config):
        hook = PlannedInjectionHook(self._plan(config), config, DecayState(config.decay_lambda))
        assert hook.before_access(pending(site="p.use:1", access=AccessType.UNSAFE_CALL)) == 0.0

    def test_stats_accessors(self, config):
        hook = PlannedInjectionHook(self._plan(config), config, DecayState(config.decay_lambda))
        hook.before_access(pending(site="p.use:1"))
        assert hook.delays_injected == 1
        assert hook.total_delay_ms > 0
        assert len(hook.delay_intervals) == 1
        assert hook.overlap_ratio() == 0.0


class TestOnlineInjectionHook:
    def test_discovers_and_delays_in_same_run(self, config):
        """The WaffleBasic property: a repeated init/use race is both
        identified and delayed within a single run."""
        decay = DecayState(config.decay_lambda)
        hook = OnlineInjectionHook(config, decay, seed=1)
        sim = Simulation(seed=1, hook=hook)
        requests = sim.channel("q")

        def consumer(sim):
            while True:
                ref = yield from requests.get()
                if ref is None:
                    return
                yield from sim.sleep(1.0)
                yield from sim.use(ref, member="M", loc="on.use:1")

        def main(sim):
            t = sim.fork(consumer(sim), name="consumer")
            for i in range(6):
                yield from sim.sleep(4.0)
                ref = sim.ref("r%d" % i)
                requests.put(ref)
                yield from sim.assign(ref, sim.new("T"), loc="on.init:1")
            requests.close()
            yield from sim.join(t)

        result = sim.run(main(sim))
        # After iteration 1 identifies the pair, iteration 2's init is
        # delayed 100 ms, so the consumer's use hits a null reference.
        assert result.crashed
        assert hook.delays_injected >= 1

    def test_tsv_mode_only_delays_unsafe_calls(self, config):
        decay = DecayState(config.decay_lambda)
        hook = OnlineInjectionHook(config, decay, seed=1, tsv_mode=True)
        assert hook.before_access(pending(site="x", access=AccessType.USE)) == 0.0

    def test_hb_inference_removes_ordered_pair(self, config):
        """A delay at l1 whose paired l2 lands just after the delay ends
        (without executing during it) is inferred as ordered."""
        decay = DecayState(config.decay_lambda)
        candidates = CandidateSet()
        hook = OnlineInjectionHook(config, decay, candidates=candidates, seed=1, hb_inference=True)
        sim = Simulation(seed=1, hook=hook)
        ref = sim.ref("r")
        gate = sim.event("gate")

        def consumer(sim):
            yield from gate.wait()
            yield from sim.use(ref, member="M", loc="hb.use:2")

        def main(sim):
            yield from sim.assign(ref, sim.new("T"), loc="hb.seed:0")
            t = sim.fork(consumer(sim), name="consumer")
            # Round 1: near-miss (init@hb.init:1, use@hb.use:2).
            yield from sim.assign(ref, sim.new("T"), loc="hb.init:1")
            gate.set()
            yield from sim.join(t)
            # Round 2: the init is delayed; the gate means the use lands
            # right after the delay ends -> happens-before inferred.
            gate.clear()
            t2 = sim.fork(consumer(sim), name="consumer2")
            yield from sim.assign(ref, sim.new("T"), loc="hb.init:1")
            gate.set()
            yield from sim.join(t2)

        sim.run(main(sim))
        assert candidates.pruned_hb_inference >= 1

    def test_parent_child_mode_attaches_clocks(self, config):
        decay = DecayState(config.decay_lambda)
        hook = OnlineInjectionHook(config, decay, seed=1, parent_child=True, hb_inference=False)
        sim = Simulation(seed=1, hook=hook)
        ref = sim.ref("r")

        def child(sim):
            yield from sim.use(ref, member="M", loc="pc.use:1")

        def main(sim):
            yield from sim.assign(ref, sim.new("T"), loc="pc.init:1")
            t = sim.fork(child(sim), name="child")
            yield from sim.join(t)

        result = sim.run(main(sim))
        assert not result.crashed
        # The fork-ordered (init, use) pair was pruned online.
        assert len(hook.candidates) == 0
        assert hook.candidates.pruned_parent_child >= 1
