"""Differential tests for the batched analyzer and both HB engines.

The batched columnar passes (``batched_analysis=True``) and the
tree-clock engine (``hb_engine="tree"``) are performance features: both
must leave the injection plan bit-identical to the per-event
vector-clock baseline. These tests compare serialized plans across all
four engine/mode combinations on

* seeded synthetic traces (:mod:`repro.core.synthtrace`), where both
  engines annotate one shared event list; and
* the full differential matrix -- every bundled application plus a band
  of procedurally generated workloads, times all four engine/mode
  combinations, each cell asserted bit-identical to its workload's
  vector/per-event reference plan. Real traces are re-recorded per
  engine with the process-global object-id/event-id counters reset so
  the traces line up event-for-event; the serialized plan includes the
  full stats census, so table-facing numbers are pinned too.
"""

from __future__ import annotations

import itertools
import json

import pytest

from repro.apps import all_apps, get_app
from repro.core.analyzer import InjectionPlan, analyze_trace
from repro.core.config import WaffleConfig
from repro.core.synthtrace import attach_clocks, generate_trace
from repro.harness.runner import run_recording
from repro.sim import instrument, refs

COMBOS = [(engine, batched) for engine in ("vector", "tree") for batched in (False, True)]


def plan_bits(trace, engine, batched):
    config = WaffleConfig(hb_engine=engine, batched_analysis=batched)
    return json.dumps(analyze_trace(trace, config).to_dict(), sort_keys=True)


def _reset_id_counters():
    # Object ids and event ids are process-global streams; re-recording
    # the same workload must restart them or the two engines' traces
    # would differ in ids alone (and so would their plans).
    refs.HeapObject._oid_counter = itertools.count(1)
    instrument._event_seq = itertools.count()


def record_trace(test, engine, seed=0):
    _reset_id_counters()
    _, trace = run_recording(test, WaffleConfig(hb_engine=engine), seed=seed)
    return trace


class TestSyntheticTraces:
    @pytest.mark.parametrize("seed", range(3))
    def test_all_four_combos_bit_identical(self, seed):
        synth = generate_trace(
            seed=seed, n_threads=48, n_objects=220, fork_bias=0.85, related_fraction=0.7
        )
        reference = None
        for engine, batched in COMBOS:
            attach_clocks(synth, engine)
            bits = plan_bits(synth.trace, engine, batched)
            if reference is None:
                reference = bits
            assert bits == reference, "plan diverged for %s/%s" % (engine, batched)

    def test_plan_survives_round_trip_with_stats(self):
        synth = generate_trace(seed=5, n_threads=32, n_objects=120)
        attach_clocks(synth, "tree")
        plan = analyze_trace(synth.trace, WaffleConfig(hb_engine="tree"))
        restored = InjectionPlan.from_dict(plan.to_dict())
        assert restored.delay_lengths == plan.delay_lengths
        assert restored.stats.candidate_pairs == plan.stats.candidate_pairs
        assert restored.stats.pruned_parent_child == plan.stats.pruned_parent_child
        assert restored.stats.memorder_sites == plan.stats.memorder_sites
        assert restored.stats.init_instance_counts == plan.stats.init_instance_counts

    def test_generator_is_deterministic(self):
        a = generate_trace(seed=9, n_threads=24, n_objects=60)
        b = generate_trace(seed=9, n_threads=24, n_objects=60)
        assert a.schedule == b.schedule
        assert [e.location.site for e in a.trace.events] == [
            e.location.site for e in b.trace.events
        ]
        attach_clocks(a, "vector")
        attach_clocks(b, "vector")
        assert [e.vc_snapshot for e in a.trace.events] == [
            e.vc_snapshot for e in b.trace.events
        ]


#: Generated-workload seeds joining the matrix (one per topology).
GENERATED_SEEDS = (0, 1, 2, 3)

#: Matrix rows: every bundled application plus the generated band.
WORKLOADS = tuple("app:%s" % name for name in sorted(all_apps())) + tuple(
    "gen:%d" % seed for seed in GENERATED_SEEDS
)


def _matrix_test(workload: str):
    kind, _, name = workload.partition(":")
    if kind == "gen":
        from repro.gen.builder import build_workload
        from repro.gen.spec import generate_spec

        return build_workload(generate_spec(int(name)))
    app = get_app(name)
    tests = app.multithreaded_tests or app.tests
    return tests[0]


#: (workload, engine) -> recorded trace; each engine's trace is
#: recorded once and analyzed in both modes, like the experiment
#: drivers do.
_TRACES = {}

#: workload -> the vector/per-event reference plan bits.
_REFERENCE = {}


def _trace_for(workload: str, engine: str):
    key = (workload, engine)
    if key not in _TRACES:
        _TRACES[key] = record_trace(_matrix_test(workload), engine)
    return _TRACES[key]


def _reference_bits(workload: str) -> str:
    if workload not in _REFERENCE:
        _REFERENCE[workload] = plan_bits(_trace_for(workload, "vector"), "vector", False)
    return _REFERENCE[workload]


class TestDifferentialMatrix:
    """One parametrized suite over workloads x engine/mode combos."""

    @pytest.mark.parametrize("engine,batched", COMBOS,
                             ids=["%s-%s" % (e, "batched" if b else "per_event")
                                  for e, b in COMBOS])
    @pytest.mark.parametrize("workload", WORKLOADS)
    def test_cell_matches_reference_plan(self, workload, engine, batched):
        bits = plan_bits(_trace_for(workload, engine), engine, batched)
        assert bits == _reference_bits(workload), (
            "plan diverged from the vector/per-event reference for %s under %s/%s"
            % (workload, engine, "batched" if batched else "per_event")
        )

    def test_matrix_covers_all_bundled_apps(self):
        assert sum(1 for w in WORKLOADS if w.startswith("app:")) == len(all_apps())

    def test_generated_rows_cover_every_topology(self):
        from repro.gen.spec import TOPOLOGIES, generate_spec

        seen = {generate_spec(seed).topology for seed in GENERATED_SEEDS}
        assert seen == set(TOPOLOGIES)
