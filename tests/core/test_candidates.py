"""Candidate set S: pairs, gap bookkeeping, removal rules, round-trip."""

import pytest

from repro.core.candidates import (
    CandidateKind,
    CandidatePair,
    CandidateSet,
    GapObservation,
)
from repro.sim.instrument import AccessType, Location


def _pair(kind=CandidateKind.USE_AFTER_FREE, delay="l1", other="l2"):
    return CandidatePair(kind=kind, delay_location=Location(delay), other_location=Location(other))


def _obs(gap=5.0, t1=0.0, oid=1, thd1=1, thd2=2):
    return GapObservation(
        gap_ms=gap,
        timestamp_first=t1,
        timestamp_second=t1 + gap,
        object_id=oid,
        thread_first=thd1,
        thread_second=thd2,
    )


class TestCandidateKind:
    def test_init_then_use_is_ubi(self):
        assert (
            CandidateKind.from_access_pair(AccessType.INIT, AccessType.USE)
            is CandidateKind.USE_BEFORE_INIT
        )

    def test_use_then_dispose_is_uaf(self):
        assert (
            CandidateKind.from_access_pair(AccessType.USE, AccessType.DISPOSE)
            is CandidateKind.USE_AFTER_FREE
        )

    @pytest.mark.parametrize(
        "first,second",
        [
            (AccessType.USE, AccessType.USE),
            (AccessType.USE, AccessType.INIT),
            (AccessType.DISPOSE, AccessType.USE),
            (AccessType.INIT, AccessType.DISPOSE),
            (AccessType.INIT, AccessType.INIT),
            (AccessType.DISPOSE, AccessType.DISPOSE),
        ],
    )
    def test_non_patterns_rejected(self, first, second):
        assert CandidateKind.from_access_pair(first, second) is None


class TestCandidateSet:
    def test_add_is_new_then_not(self):
        s = CandidateSet()
        pair = _pair()
        assert s.add(pair) is True
        assert s.add(pair) is False
        assert len(s) == 1

    def test_pairs_distinguished_by_kind(self):
        s = CandidateSet()
        s.add(_pair(kind=CandidateKind.USE_AFTER_FREE))
        s.add(_pair(kind=CandidateKind.USE_BEFORE_INIT))
        assert len(s) == 2

    def test_contains_and_iteration(self):
        s = CandidateSet()
        pair = _pair()
        s.add(pair)
        assert pair in s
        assert list(s) == [pair]

    def test_remove(self):
        s = CandidateSet()
        pair = _pair()
        s.add(pair, _obs())
        s.remove(pair)
        assert pair not in s
        assert s.observations(pair) == []

    def test_remove_with_delay_location(self):
        s = CandidateSet()
        s.add(_pair(delay="a", other="x"))
        s.add(_pair(delay="a", other="y"))
        s.add(_pair(delay="b", other="x"))
        doomed = s.remove_with_delay_location(Location("a"))
        assert len(doomed) == 2
        assert len(s) == 1
        assert s.delay_locations == {Location("b")}

    def test_pairs_for_delay_location_and_watching(self):
        s = CandidateSet()
        p1 = _pair(delay="a", other="x")
        p2 = _pair(delay="x", other="a")
        s.add(p1)
        s.add(p2)
        assert s.pairs_for_delay_location(Location("a")) == [p1]
        assert s.pairs_watching(Location("a")) == [p2]

    def test_max_gap_over_observations(self):
        s = CandidateSet()
        pair = _pair()
        s.add(pair, _obs(gap=3.0))
        s.add(pair, _obs(gap=9.0))
        s.add(pair, _obs(gap=6.0))
        assert s.max_gap(pair) == 9.0

    def test_max_gap_without_observations_is_zero(self):
        s = CandidateSet()
        pair = _pair()
        s.add(pair)
        assert s.max_gap(pair) == 0.0

    def test_locations_union(self):
        s = CandidateSet()
        s.add(_pair(delay="a", other="x"))
        assert s.locations == {Location("a"), Location("x")}

    def test_merge(self):
        a = CandidateSet()
        b = CandidateSet()
        pair = _pair()
        b.add(pair, _obs(gap=4.0))
        a.merge(b)
        assert pair in a
        assert a.max_gap(pair) == 4.0

    def test_roundtrip_through_dict(self):
        s = CandidateSet()
        pair = _pair(kind=CandidateKind.USE_BEFORE_INIT, delay="p.q:1", other="p.r:2")
        s.add(pair, _obs(gap=7.5, t1=100.0, oid=42, thd1=3, thd2=4))
        s.pruned_parent_child = 5
        s.pruned_hb_inference = 2

        restored = CandidateSet.from_dict(s.to_dict())
        assert pair in restored
        assert restored.max_gap(pair) == 7.5
        assert restored.pruned_parent_child == 5
        assert restored.pruned_hb_inference == 2
        obs = restored.observations(pair)[0]
        assert obs.timestamp_first == 100.0
        assert obs.object_id == 42
