"""Configuration invariants and on-disk persistence round-trips."""

import pytest

from repro.core.analyzer import AnalysisStats, InjectionPlan
from repro.core.candidates import CandidateKind, CandidatePair, CandidateSet
from repro.core.config import DEFAULT_CONFIG, WaffleConfig
from repro.core.delay_policy import DecayState
from repro.core.interference import DelayInterval
from repro.core.persistence import (
    load_decay,
    load_plan,
    load_report,
    load_session,
    save_decay,
    save_plan,
    save_report,
    save_session,
)
from repro.core.reports import BugReport
from repro.sim.instrument import Location


class TestWaffleConfig:
    def test_defaults_match_paper(self):
        config = WaffleConfig()
        assert config.near_miss_window_ms == 100.0  # Tsvd default delta
        assert config.fixed_delay_ms == 100.0
        assert config.alpha == 1.15
        assert config.max_detection_runs == 50
        assert config.parent_child_analysis
        assert config.preparation_run
        assert config.custom_delay_length
        assert config.interference_control

    def test_frozen(self):
        with pytest.raises(Exception):
            WaffleConfig().alpha = 2.0

    @pytest.mark.parametrize(
        "point",
        [
            "parent_child_analysis",
            "preparation_run",
            "custom_delay_length",
            "interference_control",
        ],
    )
    def test_without_disables_exactly_one(self, point):
        config = WaffleConfig().without(point)
        flags = {
            "parent_child_analysis": config.parent_child_analysis,
            "preparation_run": config.preparation_run,
            "custom_delay_length": config.custom_delay_length,
            "interference_control": config.interference_control,
        }
        assert flags.pop(point) is False
        assert all(flags.values())

    def test_without_unknown_rejected(self):
        with pytest.raises(ValueError):
            WaffleConfig().without("nonexistent")

    def test_with_seed(self):
        config = WaffleConfig().with_seed(77)
        assert config.seed == 77
        # Everything else preserved.
        assert config.alpha == WaffleConfig().alpha


def _plan():
    candidates = CandidateSet()
    candidates.add(
        CandidatePair(
            kind=CandidateKind.USE_AFTER_FREE,
            delay_location=Location("a.use:1"),
            other_location=Location("a.dispose:2"),
        )
    )
    return InjectionPlan(
        candidates=candidates,
        delay_lengths={"a.use:1": 12.5},
        interference={frozenset({"a.use:1", "a.other:3"})},
        stats=AnalysisStats(),
    )


class TestPersistence:
    def test_plan_roundtrip(self, tmp_path):
        path = tmp_path / "plan.json"
        save_plan(_plan(), path)
        restored = load_plan(path)
        assert restored.delay_lengths == {"a.use:1": 12.5}
        assert restored.interference == {frozenset({"a.use:1", "a.other:3"})}
        assert len(restored.candidates) == 1

    def test_decay_roundtrip(self, tmp_path):
        path = tmp_path / "decay.json"
        decay = DecayState(0.1)
        decay.register("x")
        decay.decay("x")
        save_decay(decay, path)
        restored = load_decay(path)
        assert restored.probability("x") == pytest.approx(0.9)

    def test_session_roundtrip(self, tmp_path):
        path = tmp_path / "session.json"
        decay = DecayState(0.2)
        decay.register("a.use:1")
        save_session(_plan(), decay, path)
        plan, restored_decay = load_session(path)
        assert plan.delay_sites == {"a.use:1"}
        assert restored_decay.probability("a.use:1") == 1.0
        assert restored_decay.decay_lambda == 0.2

    def test_version_check(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"version": 999, "plan": {}}')
        with pytest.raises(ValueError):
            load_plan(path)

    def test_report_roundtrip(self, tmp_path):
        report = BugReport(
            tool="waffle",
            workload="t",
            fault_location=Location("a.use:1"),
            ref_name="conn",
            thread_name="worker",
            error_type="NullReferenceError",
            fault_time_ms=12.5,
            run_index=3,
            matched_pairs=[
                CandidatePair(
                    kind=CandidateKind.USE_AFTER_FREE,
                    delay_location=Location("a.use:1"),
                    other_location=Location("a.dispose:9"),
                )
            ],
            active_delays=[
                DelayInterval(site="a.use:1", thread_id=2, start=1.0, end=13.0)
            ],
            delays_injected=4,
            delay_induced=True,
            stacks={"worker": ["a.use:1"]},
        )
        path = tmp_path / "report.json"
        save_report(report, path)
        restored = load_report(path)
        assert restored == report
        assert restored.fault_location == Location("a.use:1")
        assert restored.active_delays[0] == DelayInterval(
            site="a.use:1", thread_id=2, start=1.0, end=13.0
        )

    def test_report_roundtrip_without_fault_location(self, tmp_path):
        report = BugReport(
            tool="waffle",
            workload="t",
            fault_location=None,
            ref_name="",
            thread_name="",
            error_type="ObjectDisposedError",
            fault_time_ms=0.0,
            run_index=1,
        )
        path = tmp_path / "report.json"
        save_report(report, path)
        assert load_report(path) == report

    def test_bootstrap_equivalence(self, tmp_path):
        """A detection run bootstrapped from a reloaded plan behaves
        identically to one using the in-memory plan (section 5's on-disk
        bootstrap is lossless)."""
        import random

        from repro.core.runtime import PlannedInjectionHook
        from repro.sim.instrument import AccessType, PendingAccess

        config = DEFAULT_CONFIG
        path = tmp_path / "plan.json"
        save_plan(_plan(), path)
        reloaded = load_plan(path)

        for plan in (_plan(), reloaded):
            hook = PlannedInjectionHook(plan, config, DecayState(config.decay_lambda), seed=3)
            delay = hook.before_access(
                PendingAccess(Location("a.use:1"), AccessType.USE, 1, 1, 0.0)
            )
            assert delay == pytest.approx(config.alpha * 12.5)
