"""Interference set construction and the runtime delay ledger."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.candidates import CandidateSet
from repro.core.interference import (
    ActiveDelayLedger,
    InterferenceIndex,
    build_interference_set,
)
from repro.core.nearmiss import NearMissTracker
from repro.sim.instrument import AccessEvent, AccessType, Location


def ev(site, access, oid=1, tid=1, ts=0.0):
    return AccessEvent(
        location=Location(site),
        access_type=access,
        object_id=oid,
        thread_id=tid,
        timestamp=ts,
    )


def _build(events, window=100.0):
    candidates = NearMissTracker(window_ms=window).observe_all(events)
    return build_interference_set(events, candidates, window), candidates


class TestBuildInterferenceSet:
    def test_no_candidates_no_interference(self):
        events = [ev("a", AccessType.USE, tid=1, ts=0.0)]
        pairs, _ = _build(events)
        assert pairs == set()

    def test_fig4b_self_interference(self):
        """The disposer thread executes the same static use site right
        before the dispose: (use, use) self-interference."""
        events = [
            ev("init", AccessType.INIT, tid=1, ts=0.0),
            ev("chk", AccessType.USE, tid=2, ts=7.0),
            ev("chk", AccessType.USE, tid=1, ts=10.0),
            ev("cleanup", AccessType.DISPOSE, tid=1, ts=10.2),
        ]
        pairs, candidates = _build(events)
        assert frozenset({"chk"}) in pairs

    def test_fig4a_cross_interference(self):
        """The use thread executes the use site before a later use
        observation of the (init, use) pair: (init, use) interference."""
        events = [
            ev("init", AccessType.INIT, tid=1, ts=0.5),
            ev("use", AccessType.USE, tid=2, ts=1.2),
            ev("use", AccessType.USE, tid=2, ts=6.2),
            # The dispose makes "use" a delay site (a use-after-free
            # candidate), which is what qualifies it as an interferer.
            ev("dispose", AccessType.DISPOSE, tid=1, ts=8.0),
        ]
        pairs, _ = _build(events)
        assert frozenset({"init", "use"}) in pairs

    def test_interferer_must_be_delay_site(self):
        """Operations at non-candidate sites never interfere."""
        events = [
            ev("init", AccessType.INIT, tid=1, ts=0.5),
            ev("benign", AccessType.USE, oid=99, tid=2, ts=0.8),
            ev("use", AccessType.USE, tid=2, ts=1.2),
        ]
        pairs, _ = _build(events)
        assert frozenset({"init", "benign"}) not in pairs

    def test_l2_occurrence_itself_excluded(self):
        """The l2 event does not interfere with its own pair."""
        events = [
            ev("init", AccessType.INIT, tid=1, ts=0.5),
            ev("use", AccessType.USE, tid=2, ts=1.2),
        ]
        pairs, _ = _build(events)
        # Single observation: the only same-thread op in the window is
        # the l2 occurrence itself, so no interference pair forms.
        assert pairs == set()

    def test_ops_outside_window_excluded(self):
        events = [
            ev("use", AccessType.USE, tid=2, ts=0.0),  # far in the past
            ev("init", AccessType.INIT, tid=1, ts=500.0),
            ev("use", AccessType.USE, tid=2, ts=501.0),
            ev("use", AccessType.USE, tid=2, ts=506.0),
            ev("dispose", AccessType.DISPOSE, tid=1, ts=508.0),
        ]
        pairs, _ = _build(events, window=10.0)
        assert frozenset({"init", "use"}) in pairs  # from the in-window op


class TestInterferenceIndex:
    def test_symmetric_lookup(self):
        index = InterferenceIndex([frozenset({"a", "b"})])
        assert "b" in index.conflicts_of("a")
        assert "a" in index.conflicts_of("b")

    def test_self_pair(self):
        index = InterferenceIndex([frozenset({"a"})])
        assert "a" in index.conflicts_of("a")
        assert index.conflicts_with_any("a", ["a"])

    def test_conflicts_with_any(self):
        index = InterferenceIndex([frozenset({"a", "b"})])
        assert index.conflicts_with_any("a", ["x", "b"])
        assert not index.conflicts_with_any("a", ["x", "y"])
        assert not index.conflicts_with_any("z", ["a", "b"])

    def test_pairs_roundtrip(self):
        original = {frozenset({"a", "b"}), frozenset({"c"})}
        index = InterferenceIndex(original)
        assert index.pairs() == original


class TestActiveDelayLedger:
    def test_register_and_active_sites(self):
        ledger = ActiveDelayLedger()
        ledger.register("a", thread_id=1, start=0.0, duration=10.0)
        assert ledger.active_sites(5.0) == ["a"]
        assert ledger.active_sites(15.0) == []

    def test_history_survives_pruning(self):
        ledger = ActiveDelayLedger()
        ledger.register("a", 1, 0.0, 1.0)
        ledger.active_sites(100.0)
        assert ledger.count == 1
        assert ledger.total_delay_ms == 1.0

    def test_projection_disjoint(self):
        ledger = ActiveDelayLedger()
        ledger.register("a", 1, 0.0, 5.0)
        ledger.register("b", 2, 10.0, 5.0)
        assert ledger.projection_ms() == pytest.approx(10.0)
        assert ledger.overlap_ratio() == pytest.approx(0.0)

    def test_projection_fully_overlapping(self):
        ledger = ActiveDelayLedger()
        ledger.register("a", 1, 0.0, 10.0)
        ledger.register("b", 2, 0.0, 10.0)
        assert ledger.projection_ms() == pytest.approx(10.0)
        assert ledger.overlap_ratio() == pytest.approx(0.5)

    def test_partial_overlap(self):
        ledger = ActiveDelayLedger()
        ledger.register("a", 1, 0.0, 10.0)
        ledger.register("b", 2, 5.0, 10.0)
        # union = 15, total = 20 -> ratio 0.25
        assert ledger.overlap_ratio() == pytest.approx(0.25)

    def test_empty_ledger(self):
        ledger = ActiveDelayLedger()
        assert ledger.overlap_ratio() == 0.0
        assert ledger.projection_ms() == 0.0

    @given(
        intervals=st.lists(
            st.tuples(
                st.floats(min_value=0, max_value=1000),
                st.floats(min_value=0.1, max_value=100),
            ),
            min_size=1,
            max_size=30,
        )
    )
    def test_overlap_ratio_bounds(self, intervals):
        ledger = ActiveDelayLedger()
        for i, (start, duration) in enumerate(intervals):
            ledger.register("s%d" % i, i, start, duration)
        ratio = ledger.overlap_ratio()
        assert 0.0 <= ratio < 1.0
        # Projection can never exceed the summed durations.
        assert ledger.projection_ms() <= ledger.total_delay_ms + 1e-9
