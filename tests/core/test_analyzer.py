"""Trace analyzer: candidate set, delay lengths, interference, stats."""

import pytest

from repro.core.analyzer import InjectionPlan, analyze_trace
from repro.core.candidates import CandidateKind
from repro.core.config import WaffleConfig
from repro.core.trace import RecordingHook, Trace
from repro.sim.api import Simulation
from repro.sim.instrument import AccessEvent, AccessType, Location


def ev(site, access, oid=1, tid=1, ts=0.0, vc=None):
    return AccessEvent(
        location=Location(site),
        access_type=access,
        object_id=oid,
        thread_id=tid,
        timestamp=ts,
        vc_snapshot=vc,
    )


def trace_of(events):
    trace = Trace()
    for event in events:
        trace.append(event)
    return trace


class TestAnalyzeTrace:
    def test_builds_candidates_and_lengths(self, config):
        trace = trace_of(
            [
                ev("use", AccessType.USE, tid=1, ts=0.0),
                ev("dispose", AccessType.DISPOSE, tid=2, ts=30.0),
            ]
        )
        plan = analyze_trace(trace, config)
        assert len(plan.candidates) == 1
        assert plan.delay_lengths["use"] == pytest.approx(30.0)
        assert plan.delay_sites == {"use"}

    def test_delay_length_is_max_over_pairs_sharing_site(self, config):
        trace = trace_of(
            [
                ev("use", AccessType.USE, oid=1, tid=1, ts=0.0),
                ev("d1", AccessType.DISPOSE, oid=1, tid=2, ts=10.0),
                ev("use", AccessType.USE, oid=2, tid=1, ts=100.0),
                ev("d2", AccessType.DISPOSE, oid=2, tid=2, ts=160.0),
            ]
        )
        plan = analyze_trace(trace, config)
        assert plan.delay_lengths["use"] == pytest.approx(60.0)

    def test_parent_child_pruning_uses_vc(self, config):
        ordered_vc_init = {1: 1}
        ordered_vc_use = {1: 2, 2: 1}  # init happens-before use via fork
        trace = trace_of(
            [
                ev("init", AccessType.INIT, tid=1, ts=0.0, vc=ordered_vc_init),
                ev("use", AccessType.USE, tid=2, ts=5.0, vc=ordered_vc_use),
            ]
        )
        plan = analyze_trace(trace, config)
        assert len(plan.candidates) == 0
        assert plan.stats.pruned_parent_child == 1

    def test_concurrent_vc_not_pruned(self, config):
        trace = trace_of(
            [
                ev("init", AccessType.INIT, tid=1, ts=0.0, vc={1: 2}),
                ev("use", AccessType.USE, tid=2, ts=5.0, vc={1: 1, 2: 1}),
            ]
        )
        plan = analyze_trace(trace, config)
        assert len(plan.candidates) == 1

    def test_pruning_disabled_by_config(self, config):
        cfg = config.without("parent_child_analysis")
        trace = trace_of(
            [
                ev("init", AccessType.INIT, tid=1, ts=0.0, vc={1: 1}),
                ev("use", AccessType.USE, tid=2, ts=5.0, vc={1: 2, 2: 1}),
            ]
        )
        plan = analyze_trace(trace, cfg)
        assert len(plan.candidates) == 1

    def test_interference_disabled_by_config(self, config):
        cfg = config.without("interference_control")
        trace = trace_of(
            [
                ev("init", AccessType.INIT, tid=1, ts=0.5),
                ev("use", AccessType.USE, tid=2, ts=1.2),
                ev("use", AccessType.USE, tid=2, ts=6.2),
                ev("dispose", AccessType.DISPOSE, tid=1, ts=8.0),
            ]
        )
        assert analyze_trace(trace, cfg).interference == set()
        assert analyze_trace(trace, config).interference != set()

    def test_stats_censuses(self, config):
        trace = trace_of(
            [
                ev("init", AccessType.INIT, tid=1, ts=0.0),
                ev("use", AccessType.USE, tid=2, ts=5.0),
                ev("tsv", AccessType.UNSAFE_CALL, tid=1, ts=6.0),
            ]
        )
        stats = analyze_trace(trace, config).stats
        assert stats.memorder_sites == 2
        assert stats.tsv_sites == 1
        assert stats.memorder_ops == 2
        assert stats.candidate_pairs == 1
        assert stats.injection_sites == 1
        assert stats.init_instance_counts == [1]

    def test_median_init_instances(self):
        from repro.core.analyzer import AnalysisStats

        assert AnalysisStats(init_instance_counts=[1, 2, 3]).median_init_instances == 2
        assert AnalysisStats(init_instance_counts=[1, 2, 3, 5]).median_init_instances == 2.5
        assert AnalysisStats().median_init_instances == 0.0


class TestPlanRoundtrip:
    def test_to_from_dict(self, config):
        trace = trace_of(
            [
                ev("use", AccessType.USE, tid=1, ts=0.0),
                ev("dispose", AccessType.DISPOSE, tid=2, ts=30.0),
            ]
        )
        plan = analyze_trace(trace, config)
        restored = InjectionPlan.from_dict(plan.to_dict())
        assert restored.delay_lengths == plan.delay_lengths
        assert restored.interference == plan.interference
        assert restored.delay_sites == plan.delay_sites
        assert len(restored.candidates) == len(plan.candidates)


class TestEndToEndAnalysis:
    def test_recorded_simulation_produces_plan(self, config):
        hook = RecordingHook()
        sim = Simulation(seed=1, hook=hook)
        ref = sim.ref("r")

        def user(sim):
            yield from sim.sleep(2)
            yield from sim.use(ref, member="M", loc="e2e.use:1")

        def main(sim):
            yield from sim.assign(ref, sim.new("T"), loc="e2e.init:1")
            t = sim.fork(user(sim), name="user")
            yield from sim.sleep(5)
            yield from sim.dispose(ref, loc="e2e.dispose:1")
            yield from sim.join(t)

        sim.run(main(sim))
        plan = analyze_trace(hook.trace, config)
        # The (use, dispose) pair survives; the fork-ordered (init, use)
        # pair is pruned by the vector clocks.
        kinds = {p.kind for p in plan.candidates}
        assert kinds == {CandidateKind.USE_AFTER_FREE}
        assert plan.stats.pruned_parent_child >= 1
