"""Near-miss tracking: the candidate-generation heuristic."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.candidates import CandidateKind
from repro.core.nearmiss import NearMissTracker, TsvNearMissTracker
from repro.sim.instrument import AccessEvent, AccessType, Location


def ev(site, access, oid=1, tid=1, ts=0.0):
    return AccessEvent(
        location=Location(site),
        access_type=access,
        object_id=oid,
        thread_id=tid,
        timestamp=ts,
    )


class TestMemOrderNearMiss:
    def test_init_use_within_window_makes_ubi_pair(self):
        tracker = NearMissTracker(window_ms=100.0)
        tracker.observe(ev("init", AccessType.INIT, tid=1, ts=0.0))
        added = tracker.observe(ev("use", AccessType.USE, tid=2, ts=50.0))
        assert len(added) == 1
        pair = added[0]
        assert pair.kind is CandidateKind.USE_BEFORE_INIT
        assert pair.delay_location.site == "init"
        assert pair.other_location.site == "use"

    def test_use_dispose_within_window_makes_uaf_pair(self):
        tracker = NearMissTracker(window_ms=100.0)
        tracker.observe(ev("use", AccessType.USE, tid=1, ts=0.0))
        added = tracker.observe(ev("dispose", AccessType.DISPOSE, tid=2, ts=20.0))
        assert added[0].kind is CandidateKind.USE_AFTER_FREE
        assert added[0].delay_location.site == "use"

    def test_same_thread_never_pairs(self):
        tracker = NearMissTracker(window_ms=100.0)
        tracker.observe(ev("init", AccessType.INIT, tid=1, ts=0.0))
        assert tracker.observe(ev("use", AccessType.USE, tid=1, ts=10.0)) == []

    def test_different_objects_never_pair(self):
        tracker = NearMissTracker(window_ms=100.0)
        tracker.observe(ev("init", AccessType.INIT, oid=1, tid=1, ts=0.0))
        assert tracker.observe(ev("use", AccessType.USE, oid=2, tid=2, ts=10.0)) == []

    def test_outside_window_never_pairs(self):
        tracker = NearMissTracker(window_ms=100.0)
        tracker.observe(ev("init", AccessType.INIT, tid=1, ts=0.0))
        assert tracker.observe(ev("use", AccessType.USE, tid=2, ts=150.0)) == []

    def test_boundary_inclusive(self):
        tracker = NearMissTracker(window_ms=100.0)
        tracker.observe(ev("init", AccessType.INIT, tid=1, ts=0.0))
        assert len(tracker.observe(ev("use", AccessType.USE, tid=2, ts=100.0))) == 1

    def test_faulting_event_skipped(self):
        tracker = NearMissTracker(window_ms=100.0)
        tracker.observe(ev("init", AccessType.INIT, tid=1, ts=0.0))
        assert tracker.observe(ev("use", AccessType.USE, oid=-1, tid=2, ts=10.0)) == []

    def test_unsafe_calls_ignored(self):
        tracker = NearMissTracker(window_ms=100.0)
        assert tracker.observe(ev("c", AccessType.UNSAFE_CALL, tid=1, ts=0.0)) == []

    def test_gap_observation_recorded(self):
        tracker = NearMissTracker(window_ms=100.0)
        tracker.observe(ev("init", AccessType.INIT, tid=1, ts=10.0))
        (pair,) = tracker.observe(ev("use", AccessType.USE, tid=2, ts=35.0))
        assert tracker.candidates.max_gap(pair) == pytest.approx(25.0)

    def test_order_filter_prunes_and_counts(self):
        tracker = NearMissTracker(window_ms=100.0, order_filter=lambda a, b: True)
        tracker.observe(ev("init", AccessType.INIT, tid=1, ts=0.0))
        assert tracker.observe(ev("use", AccessType.USE, tid=2, ts=10.0)) == []
        assert tracker.candidates.pruned_parent_child == 1

    def test_on_pair_callback_new_flag(self):
        calls = []
        tracker = NearMissTracker(window_ms=100.0, on_pair=lambda p, new: calls.append(new))
        tracker.observe(ev("init", AccessType.INIT, tid=1, ts=0.0))
        tracker.observe(ev("use", AccessType.USE, tid=2, ts=10.0))
        tracker.observe(ev("init", AccessType.INIT, tid=1, ts=20.0))
        tracker.observe(ev("use", AccessType.USE, tid=2, ts=30.0))
        # The final use pairs with BOTH init instances still inside the
        # window (same static pair, so is_new only the first time).
        assert calls == [True, False, False]

    def test_observe_all_sorted_stream(self):
        events = [
            ev("init", AccessType.INIT, tid=1, ts=0.0),
            ev("use", AccessType.USE, tid=2, ts=5.0),
            ev("dispose", AccessType.DISPOSE, tid=1, ts=9.0),
        ]
        candidates = NearMissTracker(window_ms=100.0).observe_all(events)
        kinds = {p.kind for p in candidates}
        assert kinds == {CandidateKind.USE_BEFORE_INIT, CandidateKind.USE_AFTER_FREE}

    def test_window_eviction(self):
        tracker = NearMissTracker(window_ms=10.0)
        for i in range(100):
            tracker.observe(ev("use%d" % i, AccessType.USE, tid=1, ts=float(i)))
        window = tracker._recent[1]
        assert len(window) <= 12

    def test_invalid_window_rejected(self):
        with pytest.raises(ValueError):
            NearMissTracker(window_ms=0.0)

    @given(gap=st.floats(min_value=0.0, max_value=99.9))
    def test_any_in_window_gap_pairs(self, gap):
        tracker = NearMissTracker(window_ms=100.0)
        tracker.observe(ev("init", AccessType.INIT, tid=1, ts=0.0))
        added = tracker.observe(ev("use", AccessType.USE, tid=2, ts=gap))
        assert len(added) == 1
        assert tracker.candidates.max_gap(added[0]) == pytest.approx(gap)


class TestTsvNearMiss:
    def test_pair_added_in_both_directions(self):
        tracker = TsvNearMissTracker(window_ms=100.0)
        tracker.observe(ev("a", AccessType.UNSAFE_CALL, tid=1, ts=0.0))
        added = tracker.observe(ev("b", AccessType.UNSAFE_CALL, tid=2, ts=10.0))
        delay_sites = {p.delay_location.site for p in added}
        assert delay_sites == {"a", "b"}
        assert all(p.kind is CandidateKind.THREAD_SAFETY for p in added)

    def test_memorder_events_ignored(self):
        tracker = TsvNearMissTracker(window_ms=100.0)
        assert tracker.observe(ev("a", AccessType.USE, tid=1, ts=0.0)) == []

    def test_same_thread_ignored(self):
        tracker = TsvNearMissTracker(window_ms=100.0)
        tracker.observe(ev("a", AccessType.UNSAFE_CALL, tid=1, ts=0.0))
        assert tracker.observe(ev("b", AccessType.UNSAFE_CALL, tid=1, ts=1.0)) == []

    def test_window_respected(self):
        tracker = TsvNearMissTracker(window_ms=10.0)
        tracker.observe(ev("a", AccessType.UNSAFE_CALL, tid=1, ts=0.0))
        assert tracker.observe(ev("b", AccessType.UNSAFE_CALL, tid=2, ts=50.0)) == []

    def test_invalid_window_rejected(self):
        with pytest.raises(ValueError):
            TsvNearMissTracker(window_ms=-5.0)
