"""Synchronization primitives: locks, events, semaphores, conditions, channels."""

import pytest

from repro.sim.api import Simulation


class TestLock:
    def test_mutual_exclusion(self, sim):
        lock = sim.lock("l")
        in_section = []
        violations = []

        def worker(sim, name):
            for _ in range(3):
                yield from lock.acquire()
                try:
                    if in_section:
                        violations.append(name)
                    in_section.append(name)
                    yield from sim.compute(0.5)
                    in_section.pop()
                finally:
                    lock.release()
                yield from sim.sleep(0.1)

        def main(sim):
            threads = [sim.fork(worker(sim, "w%d" % i), name="w%d" % i) for i in range(3)]
            yield from sim.join_all(threads)

        result = sim.run(main(sim))
        assert not result.crashed
        assert violations == []

    def test_uncontended_acquire_costs_nothing(self, sim):
        lock = sim.lock("l")

        def main(sim):
            yield from lock.acquire()
            lock.release()

        result = sim.run(main(sim))
        assert result.virtual_time == 0.0

    def test_release_by_non_owner_raises(self, sim):
        lock = sim.lock("l")

        def owner(sim):
            yield from lock.acquire()
            yield from sim.sleep(10)
            lock.release()

        def thief(sim):
            yield from sim.sleep(1)
            lock.release()

        def main(sim):
            a = sim.fork(owner(sim), name="owner")
            b = sim.fork(thief(sim), name="thief")
            yield from sim.join(a)
            yield from sim.join(b)

        result = sim.run(main(sim))
        assert result.crashed
        assert isinstance(result.first_failure(), RuntimeError)

    def test_not_reentrant(self, sim):
        lock = sim.lock("l")

        def main(sim):
            yield from lock.acquire()
            yield from lock.acquire()

        result = sim.run(main(sim))
        assert result.crashed

    def test_fifo_handoff(self, sim):
        lock = sim.lock("l")
        order = []

        def holder(sim):
            yield from lock.acquire()
            yield from sim.sleep(5)
            lock.release()

        def waiter(sim, name, arrive):
            yield from sim.sleep(arrive)
            yield from lock.acquire()
            order.append(name)
            lock.release()

        def main(sim):
            threads = [
                sim.fork(holder(sim), name="holder"),
                sim.fork(waiter(sim, "first", 1.0), name="first"),
                sim.fork(waiter(sim, "second", 2.0), name="second"),
            ]
            yield from sim.join_all(threads)

        sim.run(main(sim))
        assert order == ["first", "second"]


class TestEvent:
    def test_wait_blocks_until_set(self, sim):
        event = sim.event("e")
        log = []

        def waiter(sim):
            yield from event.wait()
            log.append(("woke", sim.now))

        def main(sim):
            t = sim.fork(waiter(sim), name="waiter")
            yield from sim.sleep(8)
            event.set()
            yield from sim.join(t)

        sim.run(main(sim))
        assert log and log[0][1] == pytest.approx(8.0)

    def test_wait_on_set_event_returns_immediately(self, sim):
        event = sim.event("e")
        event.set()

        def main(sim):
            yield from event.wait()

        result = sim.run(main(sim))
        assert result.virtual_time == 0.0

    def test_set_wakes_all_waiters(self, sim):
        event = sim.event("e")
        woke = []

        def waiter(sim, name):
            yield from event.wait()
            woke.append(name)

        def main(sim):
            threads = [sim.fork(waiter(sim, i), name="w%d" % i) for i in range(4)]
            yield from sim.sleep(1)
            event.set()
            yield from sim.join_all(threads)

        sim.run(main(sim))
        assert sorted(woke) == [0, 1, 2, 3]

    def test_clear_resets(self, sim):
        event = sim.event("e")
        event.set()
        event.clear()
        assert not event.is_set


class TestSemaphore:
    def test_limits_concurrency(self, sim):
        sem = sim.semaphore(initial=2, name="s")
        active = [0]
        peak = [0]

        def worker(sim):
            yield from sem.acquire()
            active[0] += 1
            peak[0] = max(peak[0], active[0])
            yield from sim.compute(2.0)
            active[0] -= 1
            sem.release()

        def main(sim):
            threads = [sim.fork(worker(sim), name="w%d" % i) for i in range(5)]
            yield from sim.join_all(threads)

        sim.run(main(sim))
        assert peak[0] == 2

    def test_negative_initial_rejected(self, sim):
        with pytest.raises(ValueError):
            sim.semaphore(initial=-1)


class TestCondition:
    def test_wait_notify(self, sim):
        lock = sim.lock("l")
        cond = sim.condition(lock, "c")
        state = {"ready": False, "observed_at": None}

        def consumer(sim):
            yield from lock.acquire()
            while not state["ready"]:
                yield from cond.wait()
            state["observed_at"] = sim.now
            lock.release()

        def producer(sim):
            yield from sim.sleep(6)
            yield from lock.acquire()
            state["ready"] = True
            cond.notify()
            lock.release()

        def main(sim):
            a = sim.fork(consumer(sim), name="consumer")
            b = sim.fork(producer(sim), name="producer")
            yield from sim.join(a)
            yield from sim.join(b)

        result = sim.run(main(sim))
        assert not result.crashed
        assert state["observed_at"] == pytest.approx(6.0)

    def test_wait_without_lock_raises(self, sim):
        lock = sim.lock("l")
        cond = sim.condition(lock, "c")

        def main(sim):
            yield from cond.wait()

        result = sim.run(main(sim))
        assert result.crashed

    def test_notify_all(self, sim):
        lock = sim.lock("l")
        cond = sim.condition(lock, "c")
        woke = []

        def waiter(sim, name):
            yield from lock.acquire()
            yield from cond.wait()
            woke.append(name)
            lock.release()

        def main(sim):
            threads = [sim.fork(waiter(sim, i), name="w%d" % i) for i in range(3)]
            yield from sim.sleep(1)
            yield from lock.acquire()
            cond.notify_all()
            lock.release()
            yield from sim.join_all(threads)

        result = sim.run(main(sim))
        assert not result.crashed
        assert sorted(woke) == [0, 1, 2]


class TestChannel:
    def test_put_then_get(self, sim):
        channel = sim.channel("c")

        def main(sim):
            channel.put("x")
            value = yield from channel.get()
            return value

        sim.run(main(sim))
        assert sim.scheduler.threads[1].result == "x"

    def test_get_blocks_until_put(self, sim):
        channel = sim.channel("c")
        got = []

        def consumer(sim):
            value = yield from channel.get()
            got.append((value, sim.now))

        def main(sim):
            t = sim.fork(consumer(sim), name="consumer")
            yield from sim.sleep(4)
            channel.put(42)
            yield from sim.join(t)

        sim.run(main(sim))
        assert got == [(42, pytest.approx(4.0))]

    def test_fifo_order(self, sim):
        channel = sim.channel("c")

        def main(sim):
            for i in range(5):
                channel.put(i)
            values = []
            for _ in range(5):
                values.append((yield from channel.get()))
            return values

        sim.run(main(sim))
        assert sim.scheduler.threads[1].result == [0, 1, 2, 3, 4]

    def test_close_releases_blocked_getters(self, sim):
        channel = sim.channel("c")

        def consumer(sim):
            value = yield from channel.get()
            return value

        def main(sim):
            t = sim.fork(consumer(sim), name="consumer")
            yield from sim.sleep(2)
            channel.close()
            value = yield from sim.join(t)
            return value

        sim.run(main(sim))
        assert sim.scheduler.threads[1].result is None

    def test_put_after_close_raises(self, sim):
        channel = sim.channel("c")
        channel.close()

        def main(sim):
            channel.put(1)
            yield from sim.sleep(0)

        result = sim.run(main(sim))
        assert result.crashed

    def test_try_get_nonblocking(self, sim):
        channel = sim.channel("c")
        assert channel.try_get() is None
        channel.put(7)
        assert channel.try_get() == 7


class TestRLock:
    def test_reentrant_acquire_release(self, sim):
        lock = sim.rlock("r")

        def main(sim):
            yield from lock.acquire()
            yield from lock.acquire()
            lock.release()
            # Still held after one release of two.
            assert lock.locked
            lock.release()
            assert not lock.locked

        result = sim.run(main(sim))
        assert not result.crashed

    def test_contention_waits_for_full_release(self, sim):
        lock = sim.rlock("r")
        acquired_at = []

        def owner(sim):
            yield from lock.acquire()
            yield from lock.acquire()
            yield from sim.sleep(5)
            lock.release()
            yield from sim.sleep(5)
            lock.release()

        def contender(sim):
            yield from sim.sleep(1)
            yield from lock.acquire()
            acquired_at.append(sim.now)
            lock.release()

        def main(sim):
            a = sim.fork(owner(sim), name="owner")
            b = sim.fork(contender(sim), name="contender")
            yield from sim.join(a)
            yield from sim.join(b)

        result = sim.run(main(sim))
        assert not result.crashed
        assert acquired_at[0] >= 10.0

    def test_release_by_non_owner_raises(self, sim):
        lock = sim.rlock("r")

        def main(sim):
            lock.release()
            yield from sim.sleep(0)

        result = sim.run(main(sim))
        assert result.crashed


class TestBarrier:
    def test_all_parties_released_together(self, sim):
        barrier = sim.barrier(3, "b")
        release_times = []

        def party(sim, delay):
            yield from sim.sleep(delay)
            yield from barrier.wait()
            release_times.append(sim.now)

        def main(sim):
            threads = [
                sim.fork(party(sim, d), name="p%d" % i)
                for i, d in enumerate((1.0, 4.0, 9.0))
            ]
            yield from sim.join_all(threads)

        result = sim.run(main(sim))
        assert not result.crashed
        assert len(release_times) == 3
        assert all(t >= 9.0 for t in release_times)

    def test_cyclic_reuse(self, sim):
        barrier = sim.barrier(2, "b")
        generations = []

        def party(sim, name):
            for round_index in range(3):
                yield from sim.sleep(1.0)
                yield from barrier.wait()
                generations.append((name, round_index))

        def main(sim):
            a = sim.fork(party(sim, "a"), name="a")
            b = sim.fork(party(sim, "b"), name="b")
            yield from sim.join(a)
            yield from sim.join(b)

        result = sim.run(main(sim))
        assert not result.crashed
        assert len(generations) == 6

    def test_wait_returns_arrival_index(self, sim):
        barrier = sim.barrier(2, "b")
        indices = []

        def party(sim, delay):
            yield from sim.sleep(delay)
            index = yield from barrier.wait()
            indices.append(index)

        def main(sim):
            a = sim.fork(party(sim, 1.0), name="a")
            b = sim.fork(party(sim, 2.0), name="b")
            yield from sim.join(a)
            yield from sim.join(b)

        sim.run(main(sim))
        assert sorted(indices) == [0, 1]

    def test_invalid_parties_rejected(self, sim):
        with pytest.raises(ValueError):
            sim.barrier(0, "b")
