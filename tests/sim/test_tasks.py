"""Task pools and async-local storage (the section 4.1 task extension)."""

import pytest

from repro.core import Waffle, WaffleConfig, Workload
from repro.core.vector_clock import TLS_KEY, ThreadVectorClock, concurrent, leq
from repro.sim.api import Simulation
from repro.sim.errors import NullReferenceError


class TestTaskPoolBasics:
    def test_submit_and_wait_returns_result(self, sim):
        def task():
            yield from sim.sleep(1.0)
            return 42

        def main(sim):
            pool = sim.task_pool(workers=2, name="p")
            handle = pool.submit(task(), name="t")
            value = yield from pool.wait(handle)
            yield from pool.close()
            return value

        sim.run(main(sim))
        assert sim.scheduler.threads[1].result == 42

    def test_tasks_run_concurrently_across_workers(self, sim):
        order = []

        def task(name, duration):
            yield from sim.sleep(duration)
            order.append((name, sim.now))

        def main(sim):
            pool = sim.task_pool(workers=2, name="p")
            slow = pool.submit(task("slow", 10.0))
            fast = pool.submit(task("fast", 1.0))
            yield from pool.wait_all([slow, fast])
            yield from pool.close()

        sim.run(main(sim))
        assert [name for name, _ in order] == ["fast", "slow"]

    def test_single_worker_serializes(self, sim):
        order = []

        def task(name, duration):
            yield from sim.sleep(duration)
            order.append(name)

        def main(sim):
            pool = sim.task_pool(workers=1, name="p")
            a = pool.submit(task("a", 5.0))
            b = pool.submit(task("b", 1.0))
            yield from pool.wait_all([a, b])
            yield from pool.close()

        sim.run(main(sim))
        assert order == ["a", "b"]  # FIFO despite b being shorter

    def test_awaited_exception_reraised_in_waiter(self, sim):
        def bad_task():
            yield from sim.sleep(1.0)
            raise ValueError("task boom")

        def main(sim):
            pool = sim.task_pool(workers=1, name="p")
            handle = pool.submit(bad_task())
            try:
                yield from pool.wait(handle)
            except ValueError as exc:
                return "caught:%s" % exc
            finally:
                yield from pool.close()

        result = sim.run(main(sim))
        assert not result.crashed
        assert sim.scheduler.threads[1].result == "caught:task boom"

    def test_unobserved_exception_crashes_run(self, sim):
        def bad_task():
            yield from sim.sleep(1.0)
            raise ValueError("unobserved")

        def main(sim):
            pool = sim.task_pool(workers=1, name="p")
            pool.submit(bad_task())
            yield from sim.sleep(50.0)

        result = sim.run(main(sim))
        assert result.crashed
        assert isinstance(result.first_failure(), ValueError)

    def test_submit_after_close_rejected(self, sim):
        def main(sim):
            pool = sim.task_pool(workers=1, name="p")
            yield from pool.close()
            pool.submit(iter(()))

        result = sim.run(main(sim))
        assert result.crashed
        assert isinstance(result.first_failure(), RuntimeError)

    def test_zero_workers_rejected(self, sim):
        def main(sim):
            sim.task_pool(workers=0, name="p")
            yield from sim.sleep(0)

        result = sim.run(main(sim))
        assert result.crashed


class TestAsyncLocalStorage:
    def test_context_propagates_submitter_to_task(self, sim):
        observed = []

        def child_task(pool):
            observed.append(pool.alocal_get("request_id"))
            yield from sim.sleep(0)

        def main(sim):
            pool = sim.task_pool(workers=2, name="p")
            sim.itls_set("request_id", "req-7")
            handle = pool.submit(child_task(pool))
            yield from pool.wait(handle)
            yield from pool.close()

        sim.run(main(sim))
        assert observed == ["req-7"]

    def test_context_propagates_task_to_task(self, sim):
        observed = []

        def parent_task(pool):
            pool.alocal_set("trace", "inner")
            handle = pool.submit(child_task(pool))
            yield from pool.wait(handle)

        def child_task(pool):
            observed.append(pool.alocal_get("trace"))
            yield from sim.sleep(0)

        def main(sim):
            pool = sim.task_pool(workers=2, name="p")
            handle = pool.submit(parent_task(pool))
            yield from pool.wait(handle)
            yield from pool.close()

        sim.run(main(sim))
        assert observed == ["inner"]

    def test_sibling_tasks_isolated(self, sim):
        observed = []

        def writer(pool):
            pool.alocal_set("private", "mine")
            yield from sim.sleep(2.0)

        def reader(pool):
            yield from sim.sleep(4.0)
            observed.append(pool.alocal_get("private", "absent"))

        def main(sim):
            pool = sim.task_pool(workers=2, name="p")
            a = pool.submit(writer(pool))
            b = pool.submit(reader(pool))
            yield from pool.wait_all([a, b])
            yield from pool.close()

        sim.run(main(sim))
        assert observed == ["absent"]

    def test_worker_context_restored_between_tasks(self, sim):
        """A task's context must not leak into the next task the same
        worker picks up."""
        observed = []

        def first(pool):
            pool.alocal_set("leak", "oops")
            yield from sim.sleep(1.0)

        def second(pool):
            observed.append(pool.alocal_get("leak", "clean"))
            yield from sim.sleep(0)

        def main(sim):
            pool = sim.task_pool(workers=1, name="p")
            a = pool.submit(first(pool))
            yield from pool.wait(a)
            b = pool.submit(second(pool))
            yield from pool.wait(b)
            yield from pool.close()

        sim.run(main(sim))
        assert observed == ["clean"]


class TestVectorClocksOverTasks:
    def test_submission_order_is_happens_before(self, sim):
        snaps = {}

        def task(pool, name):
            snaps[name] = sim.itls_get(TLS_KEY).snapshot()
            yield from sim.sleep(0)

        def main(sim):
            sim.itls_set(TLS_KEY, ThreadVectorClock(sim.current_thread.tid))
            pool = sim.task_pool(workers=2, name="p")
            snaps["pre"] = sim.itls_get(TLS_KEY).snapshot()
            a = pool.submit(task(pool, "a"))
            b = pool.submit(task(pool, "b"))
            yield from pool.wait_all([a, b])
            yield from pool.close()

        sim.run(main(sim))
        # Pre-submission state happens-before both tasks...
        assert leq(snaps["pre"], snaps["a"])
        assert leq(snaps["pre"], snaps["b"])
        # ... and the two sibling tasks are mutually concurrent,
        # regardless of which pool worker ran them.
        assert concurrent(snaps["a"], snaps["b"])


class TestWaffleOverTasks:
    def _workload(self):
        def build(sim):
            handler = sim.ref("handler")

            def pump_task():
                yield from sim.sleep(3.0)
                yield from sim.use(handler, member="OnEvent", loc="tk.pump:1")

            def ordered_task():
                yield from sim.sleep(0.5)
                yield from sim.use(handler, member="Read", loc="tk.ordered:1")

            def main(sim):
                pool = sim.task_pool(workers=2, name="p")
                racy = pool.submit(pump_task(), name="pump")
                yield from sim.sleep(1.0)
                yield from sim.assign(handler, sim.new("Handler"), loc="tk.init:1")
                ordered = pool.submit(ordered_task(), name="ordered")
                yield from pool.wait_all([racy, ordered])
                yield from pool.close()

            return main(sim)

        return Workload("tasks", build)

    def test_waffle_exposes_task_race(self):
        outcome = Waffle(WaffleConfig(seed=1)).detect(self._workload(), max_detection_runs=5)
        assert outcome.bug_found
        assert outcome.runs_to_expose == 2
        assert outcome.reports[0].fault_site == "tk.pump:1"

    def test_task_submission_order_pruned(self):
        """The post-init task's use is ordered by submission: the
        async-local vector clocks prune it; only the racy pre-init
        task's pair survives into the plan."""
        outcome = Waffle(WaffleConfig(seed=1)).detect(self._workload(), max_detection_runs=2)
        assert outcome.plan.delay_sites == {"tk.init:1"}
        assert outcome.plan.stats.pruned_parent_child >= 1
