"""Edge cases across the simulator surface."""

import pytest

from repro.core.reports import BugReport
from repro.sim.api import Simulation
from repro.sim.errors import NullReferenceError


class TestChannelEdges:
    def test_close_is_idempotent(self, sim):
        channel = sim.channel("c")
        channel.close()
        channel.close()
        assert channel.closed

    def test_queued_items_drained_after_close(self, sim):
        channel = sim.channel("c")

        def main(sim):
            channel.put(1)
            channel.put(2)
            channel.close()
            values = []
            for _ in range(3):
                values.append((yield from channel.get()))
            return values

        sim.run(main(sim))
        assert sim.scheduler.threads[1].result == [1, 2, None]


class TestTaskPoolEdges:
    def test_close_drains_queued_tasks(self, sim):
        completed = []

        def task(n):
            yield from sim.sleep(1.0)
            completed.append(n)

        def main(sim):
            pool = sim.task_pool(workers=1, name="p")
            handles = [pool.submit(task(i)) for i in range(4)]
            # Close immediately: queued tasks must still run to
            # completion before the workers exit.
            yield from pool.close()
            assert all(h.done for h in handles)

        result = sim.run(main(sim))
        assert not result.crashed
        assert completed == [0, 1, 2, 3]

    def test_wait_after_completion_returns_immediately(self, sim):
        def task():
            yield from sim.sleep(1.0)
            return "done"

        def main(sim):
            pool = sim.task_pool(workers=1, name="p")
            handle = pool.submit(task())
            yield from sim.sleep(10.0)  # task long finished
            value = yield from pool.wait(handle)
            yield from pool.close()
            return value

        sim.run(main(sim))
        assert sim.scheduler.threads[1].result == "done"


class TestRefEdges:
    def test_null_out_dispose_then_use_is_null_reference(self, sim):
        """With null_out the reference itself is gone, so the failure is
        the plain null-dereference flavor, not ObjectDisposed."""
        ref = sim.ref("r")

        def main(sim):
            yield from sim.assign(ref, sim.new("T"), loc="e.init:1")
            yield from sim.dispose(ref, loc="e.dispose:2", null_out=True)
            yield from sim.use(ref, member="M", loc="e.use:3")

        result = sim.run(main(sim))
        error = result.first_failure()
        assert type(error).__name__ == "NullReferenceError"

    def test_heap_object_fields(self, sim):
        obj = sim.new("T", a=1, b="x")
        assert obj.fields == {"a": 1, "b": "x"}
        assert "T" in repr(obj)
        obj.disposed = True
        assert "disposed" in repr(obj)

    def test_ref_repr_and_is_null(self, sim):
        ref = sim.ref("r")
        assert ref.is_null
        assert "r" in repr(ref)


class TestEventEdges:
    def test_set_twice_harmless(self, sim):
        event = sim.event("e")
        event.set()
        event.set()
        assert event.is_set

    def test_compute_without_jitter(self, sim):
        def main(sim):
            yield from sim.compute(5.0, jitter=False)

        result = sim.run(main(sim))
        assert result.virtual_time == pytest.approx(5.0)


class TestReportEdges:
    def test_summary_without_location(self):
        report = BugReport(
            tool="t",
            workload="w",
            fault_location=None,
            ref_name="r",
            thread_name="th",
            error_type="NullReferenceError",
            fault_time_ms=1.0,
            run_index=1,
        )
        assert report.fault_site == ""
        assert "?" in report.summary()
        assert "(no matched pair)" in report.summary()

    def test_error_carries_context(self, sim):
        ref = sim.ref("conn")

        def main(sim):
            yield from sim.use(ref, member="M", loc="e.use:1")

        result = sim.run(main(sim))
        error = result.first_failure()
        assert error.ref_name == "conn"
        assert error.thread_name == "main"
        assert error.location.site == "e.use:1"
        assert error.location.app == "e"
