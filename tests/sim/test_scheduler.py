"""Scheduler semantics: ordering, determinism, failures, deadlock."""

import pytest

from repro.sim.api import Simulation
from repro.sim.errors import DeadlockError
from repro.sim.instrument import CostModel
from repro.sim.scheduler import Sleep


class TestBasicExecution:
    def test_single_thread_runs_to_completion(self, sim):
        log = []

        def main(sim):
            log.append("start")
            yield from sim.sleep(1.0)
            log.append("end")

        result = sim.run(main(sim))
        assert log == ["start", "end"]
        assert not result.crashed
        assert result.virtual_time >= 1.0

    def test_sleep_advances_virtual_time(self, sim):
        def main(sim):
            yield from sim.sleep(25.0)

        result = sim.run(main(sim))
        assert result.virtual_time == pytest.approx(25.0)

    def test_sleeps_are_cheap_regardless_of_duration(self, sim):
        def main(sim):
            yield from sim.sleep(1_000_000.0)

        # Would hang if virtual sleep consumed wall time; huge value is
        # fine because only the clock advances.
        sim.scheduler.time_limit_ms = 10_000_000.0
        result = sim.run(main(sim))
        assert result.virtual_time == pytest.approx(1_000_000.0)

    def test_thread_return_value_via_join(self, sim):
        def child(sim):
            yield from sim.sleep(1)
            return 99

        def main(sim):
            t = sim.fork(child(sim), name="child")
            value = yield from sim.join(t)
            return value

        sim.run(main(sim))
        main_thread = sim.scheduler.threads[1]
        assert main_thread.result == 99

    def test_interleaving_respects_wake_times(self, sim):
        order = []

        def ticker(sim, name, period, count):
            for i in range(count):
                yield from sim.sleep(period)
                order.append((name, sim.now))

        def main(sim):
            a = sim.fork(ticker(sim, "fast", 1.0, 3), name="fast")
            b = sim.fork(ticker(sim, "slow", 2.5, 2), name="slow")
            yield from sim.join(a)
            yield from sim.join(b)

        sim.run(main(sim))
        names = [n for n, _ in order]
        assert names == ["fast", "fast", "slow", "fast", "slow"]


class TestDeterminism:
    @staticmethod
    def _trace(seed):
        sim = Simulation(seed=seed)
        order = []

        def worker(sim, name):
            for _ in range(4):
                yield from sim.compute(1.0)
                order.append((name, round(sim.now, 6)))

        def main(sim):
            threads = [sim.fork(worker(sim, "w%d" % i), name="w%d" % i) for i in range(3)]
            yield from sim.join_all(threads)

        sim.run(main(sim))
        return order

    def test_same_seed_same_interleaving(self):
        assert self._trace(7) == self._trace(7)

    def test_different_seed_different_timing(self):
        # Jittered compute costs differ between seeds.
        assert self._trace(7) != self._trace(8)


class TestFailures:
    def test_exception_captured_and_stops_run(self, sim):
        def boom(sim):
            yield from sim.sleep(1)
            raise RuntimeError("kaboom")

        def main(sim):
            sim.fork(boom(sim), name="boom")
            yield from sim.sleep(100)

        result = sim.run(main(sim))
        assert result.crashed
        assert isinstance(result.first_failure(), RuntimeError)
        # stop_on_failure halts the run well before main's sleep ends.
        assert result.virtual_time < 100

    def test_stop_on_failure_false_continues(self):
        sim = Simulation(seed=1, stop_on_failure=False)

        def boom(sim):
            yield from sim.sleep(1)
            raise RuntimeError("kaboom")

        def main(sim):
            sim.fork(boom(sim), name="boom")
            yield from sim.sleep(50)

        result = sim.run(main(sim))
        assert result.crashed
        assert result.virtual_time >= 50

    def test_join_on_failed_thread_returns(self, sim):
        sim.scheduler.stop_on_failure = False

        def boom(sim):
            yield from sim.sleep(1)
            raise ValueError("x")

        def main(sim):
            t = sim.fork(boom(sim), name="boom")
            yield from sim.join(t)
            return "joined"

        sim.run(main(sim))
        assert sim.scheduler.threads[1].result == "joined"

    def test_non_command_yield_fails_thread(self, sim):
        def bad(sim):
            yield "not-a-command"

        result = sim.run(bad(sim))
        assert result.crashed
        assert isinstance(result.first_failure(), TypeError)


class TestDeadlockAndLimits:
    def test_deadlock_detected(self, sim):
        lock = sim.lock("l")

        def main(sim):
            yield from lock.acquire()
            # Re-acquiring a non-reentrant lock from a child that the
            # parent joins is a classic deadlock.
            child = sim.fork(grab(sim), name="grabber")
            yield from sim.join(child)

        def grab(sim):
            yield from lock.acquire()

        result = sim.run(main(sim))
        assert result.crashed
        assert isinstance(result.first_failure(), DeadlockError)

    def test_time_limit_marks_timeout(self):
        sim = Simulation(seed=0, time_limit_ms=10.0)

        def main(sim):
            for _ in range(100):
                yield from sim.sleep(1.0)

        result = sim.run(main(sim))
        assert result.timed_out

    def test_max_steps_guard(self):
        sim = Simulation(seed=0)
        sim.scheduler.max_steps = 50

        def spinner(sim):
            while True:
                yield from sim.pause()

        result = sim.run(spinner(sim))
        assert result.timed_out


class TestCostModel:
    def test_invalid_cost_model_rejected(self):
        with pytest.raises(ValueError):
            CostModel(op_cost_ms=0)
        with pytest.raises(ValueError):
            CostModel(jitter_frac=1.0)
        with pytest.raises(ValueError):
            CostModel(jitter_frac=-0.1)

    def test_zero_jitter_is_exact(self):
        import random

        model = CostModel(op_cost_ms=0.5, jitter_frac=0.0)
        assert model.sample_op_cost(random.Random(0)) == 0.5

    def test_jitter_within_bounds(self):
        import random

        model = CostModel(op_cost_ms=1.0, jitter_frac=0.2)
        rng = random.Random(0)
        for _ in range(200):
            cost = model.sample_op_cost(rng)
            assert 0.8 <= cost <= 1.2
