"""Reference semantics and instrumented operations (INIT/DISPOSE/USE)."""

import pytest

from repro.sim.api import Simulation
from repro.sim.errors import NullReferenceError, ObjectDisposedError
from repro.sim.instrument import AccessEvent, AccessType, InstrumentationHook


class Recorder(InstrumentationHook):
    """Minimal event collector for assertions."""

    def __init__(self):
        self.events = []

    def after_access(self, event: AccessEvent) -> None:
        self.events.append(event)

    def of_type(self, access_type):
        return [e for e in self.events if e.access_type is access_type]


@pytest.fixture
def recorder():
    return Recorder()


@pytest.fixture
def rsim(recorder):
    return Simulation(seed=1, hook=recorder)


class TestAssignSemantics:
    def test_null_to_object_is_init(self, rsim, recorder):
        ref = rsim.ref("r")

        def main(sim):
            obj = sim.new("T")
            yield from sim.assign(ref, obj, loc="t.init:1")

        rsim.run(main(rsim))
        inits = recorder.of_type(AccessType.INIT)
        assert len(inits) == 1
        assert inits[0].location.site == "t.init:1"
        assert inits[0].object_id == ref.value.oid

    def test_object_to_null_is_dispose(self, rsim, recorder):
        ref = rsim.ref("r")

        def main(sim):
            obj = sim.new("T")
            yield from sim.assign(ref, obj, loc="t.init:1")
            yield from sim.assign(ref, None, loc="t.null:2")

        rsim.run(main(rsim))
        disposes = recorder.of_type(AccessType.DISPOSE)
        assert len(disposes) == 1
        assert ref.value is None

    def test_null_to_null_records_nothing(self, rsim, recorder):
        ref = rsim.ref("r")

        def main(sim):
            yield from sim.assign(ref, None, loc="t.null:1")

        rsim.run(main(rsim))
        assert recorder.events == []

    def test_reassignment_is_init_of_new_object(self, rsim, recorder):
        ref = rsim.ref("r")

        def main(sim):
            yield from sim.assign(ref, sim.new("T"), loc="t.init:1")
            yield from sim.assign(ref, sim.new("T"), loc="t.init:2")

        rsim.run(main(rsim))
        inits = recorder.of_type(AccessType.INIT)
        assert len(inits) == 2
        assert inits[0].object_id != inits[1].object_id


class TestDisposeSemantics:
    def test_explicit_dispose_marks_object(self, rsim, recorder):
        ref = rsim.ref("r")

        def main(sim):
            yield from sim.assign(ref, sim.new("T"), loc="t.init:1")
            yield from sim.dispose(ref, loc="t.dispose:2")

        rsim.run(main(rsim))
        assert ref.value is not None
        assert ref.value.disposed
        assert len(recorder.of_type(AccessType.DISPOSE)) == 1

    def test_dispose_null_out_clears_reference(self, rsim):
        ref = rsim.ref("r")

        def main(sim):
            yield from sim.assign(ref, sim.new("T"), loc="t.init:1")
            yield from sim.dispose(ref, loc="t.dispose:2", null_out=True)

        rsim.run(main(rsim))
        assert ref.value is None

    def test_dispose_through_null_ref_is_faulty_use(self, rsim):
        ref = rsim.ref("r")

        def main(sim):
            yield from sim.dispose(ref, loc="t.dispose:1")

        result = rsim.run(main(rsim))
        assert result.crashed
        assert isinstance(result.first_failure(), NullReferenceError)


class TestUseSemantics:
    def test_use_of_valid_object_succeeds(self, rsim, recorder):
        ref = rsim.ref("r")

        def main(sim):
            obj = sim.new("T")
            yield from sim.assign(ref, obj, loc="t.init:1")
            got = yield from sim.use(ref, member="M", loc="t.use:2")
            assert got is obj

        result = rsim.run(main(rsim))
        assert not result.crashed
        uses = recorder.of_type(AccessType.USE)
        assert len(uses) == 1
        assert uses[0].member == "M"

    def test_use_of_null_raises_null_reference(self, rsim):
        ref = rsim.ref("r")

        def main(sim):
            yield from sim.use(ref, member="M", loc="t.use:1")

        result = rsim.run(main(rsim))
        error = result.first_failure()
        assert isinstance(error, NullReferenceError)
        assert error.ref_name == "r"
        assert error.location.site == "t.use:1"

    def test_use_of_disposed_raises_object_disposed(self, rsim):
        ref = rsim.ref("r")

        def main(sim):
            yield from sim.assign(ref, sim.new("T"), loc="t.init:1")
            yield from sim.dispose(ref, loc="t.dispose:2")
            yield from sim.use(ref, member="M", loc="t.use:3")

        result = rsim.run(main(rsim))
        error = result.first_failure()
        assert isinstance(error, ObjectDisposedError)
        # ObjectDisposedError is a NullReferenceError: one oracle.
        assert isinstance(error, NullReferenceError)

    def test_faulting_use_event_has_unknown_object(self, rsim, recorder):
        ref = rsim.ref("r")

        def main(sim):
            yield from sim.use(ref, member="M", loc="t.use:1")

        rsim.run(main(rsim))
        uses = recorder.of_type(AccessType.USE)
        assert len(uses) == 1
        assert uses[0].object_id == -1

    def test_delayed_use_reresolves_object_id(self):
        """A use that starts before the init but executes after it (the
        delay-injection scenario) must record the object it actually
        observed at execution time."""
        ref = None
        recorder = Recorder()

        class DelayUse(Recorder):
            def before_access(self, pending):
                if pending.location.site == "t.use:1":
                    return 10.0
                return 0.0

        hook = DelayUse()
        sim = Simulation(seed=1, hook=hook)
        ref = sim.ref("r")

        def user(sim):
            yield from sim.use(ref, member="M", loc="t.use:1")

        def main(sim):
            t = sim.fork(user(sim), name="user")
            yield from sim.sleep(2)
            yield from sim.assign(ref, sim.new("T"), loc="t.init:1")
            yield from sim.join(t)

        result = sim.run(main(sim))
        assert not result.crashed
        use = hook.of_type(AccessType.USE)[0]
        assert use.object_id == ref.value.oid
        assert use.injected_delay == pytest.approx(10.0)

    def test_read_and_write_fields(self, rsim):
        ref = rsim.ref("r")

        def main(sim):
            yield from sim.assign(ref, sim.new("T", x=1), loc="t.init:1")
            yield from sim.write(ref, "x", 5, loc="t.w:2")
            value = yield from sim.read(ref, "x", loc="t.r:3")
            return value

        rsim.run(main(rsim))
        assert rsim.scheduler.threads[1].result == 5

    def test_call_is_use_sugar(self, rsim, recorder):
        ref = rsim.ref("r")

        def main(sim):
            yield from sim.assign(ref, sim.new("T"), loc="t.init:1")
            yield from sim.call(ref, "DoWork", loc="t.call:2", duration=3.0)

        result = rsim.run(main(rsim))
        assert not result.crashed
        uses = recorder.of_type(AccessType.USE)
        assert uses[0].member == "DoWork"
        # The call window occupies virtual time.
        assert result.virtual_time >= 3.0


class TestHookContract:
    def test_bad_delay_type_rejected(self):
        class BadHook(InstrumentationHook):
            def before_access(self, pending):
                return "soon"

        sim = Simulation(seed=1, hook=BadHook())
        ref = sim.ref("r")

        def main(sim):
            yield from sim.assign(ref, sim.new("T"), loc="t.init:1")

        result = sim.run(main(sim))
        assert result.crashed
        assert isinstance(result.first_failure(), TypeError)

    def test_negative_delay_clamped_to_zero(self):
        class NegativeHook(InstrumentationHook):
            def before_access(self, pending):
                return -50.0

        sim = Simulation(seed=1, hook=NegativeHook())
        ref = sim.ref("r")

        def main(sim):
            yield from sim.assign(ref, sim.new("T"), loc="t.init:1")

        result = sim.run(main(sim))
        assert not result.crashed
        assert result.virtual_time < 1.0

    def test_op_count_tracked(self, rsim):
        ref = rsim.ref("r")

        def main(sim):
            yield from sim.assign(ref, sim.new("T"), loc="t.init:1")
            for _ in range(4):
                yield from sim.use(ref, member="M", loc="t.use:2")

        result = rsim.run(main(rsim))
        assert result.op_count == 5
