"""Thread-local storage, inheritance at fork, and thread metadata."""

import pytest

from repro.sim.api import Simulation
from repro.sim.thread import ThreadState
from repro.sim.tls import Inheritable, InheritableTlsMap, TlsMap


class TestTlsMap:
    def test_get_set_pop(self):
        tls = TlsMap()
        assert tls.get("k") is None
        assert tls.get("k", 7) == 7
        tls.set("k", 1)
        assert "k" in tls
        assert tls.get("k") == 1
        assert tls.pop("k") == 1
        assert "k" not in tls

    def test_len(self):
        tls = TlsMap()
        tls.set("a", 1)
        tls.set("b", 2)
        assert len(tls) == 2


class _CountingInheritable(Inheritable):
    def __init__(self, generation=0):
        self.generation = generation
        self.children = 0

    def inherit_to(self, parent_thread, child_thread):
        self.children += 1
        return _CountingInheritable(self.generation + 1)


class TestInheritableTls:
    def test_plain_values_shared_by_reference(self, sim):
        shared = {"x": 1}
        observed = []

        def child(sim):
            observed.append(sim.itls_get("conf"))
            yield from sim.sleep(0)

        def main(sim):
            sim.itls_set("conf", shared)
            t = sim.fork(child(sim), name="child")
            yield from sim.join(t)

        sim.run(main(sim))
        assert observed[0] is shared

    def test_inheritable_protocol_invoked_at_fork(self, sim):
        observed = []

        def child(sim):
            observed.append(sim.itls_get("clock"))
            yield from sim.sleep(0)

        def main(sim):
            root_value = _CountingInheritable()
            sim.itls_set("clock", root_value)
            t = sim.fork(child(sim), name="child")
            yield from sim.join(t)
            observed.append(root_value)

        sim.run(main(sim))
        child_value, root_value = observed
        assert child_value.generation == 1
        assert root_value.children == 1

    def test_inheritance_is_transitive(self, sim):
        generations = []

        def grandchild(sim):
            generations.append(sim.itls_get("clock").generation)
            yield from sim.sleep(0)

        def child(sim):
            generations.append(sim.itls_get("clock").generation)
            t = sim.fork(grandchild(sim), name="grandchild")
            yield from sim.join(t)

        def main(sim):
            sim.itls_set("clock", _CountingInheritable())
            t = sim.fork(child(sim), name="child")
            yield from sim.join(t)

        sim.run(main(sim))
        assert generations == [1, 2]

    def test_plain_tls_not_inherited(self, sim):
        observed = []

        def child(sim):
            observed.append(sim.tls_get("private", "absent"))
            yield from sim.sleep(0)

        def main(sim):
            sim.tls_set("private", "secret")
            t = sim.fork(child(sim), name="child")
            yield from sim.join(t)

        sim.run(main(sim))
        assert observed == ["absent"]

    def test_sibling_isolation(self, sim):
        """A value inherited by one child must not leak mutations of the
        *map* into its sibling."""
        observed = []

        def child_a(sim):
            sim.itls_set("extra", "from-a")
            yield from sim.sleep(1)

        def child_b(sim):
            yield from sim.sleep(2)
            observed.append(sim.itls_get("extra", "absent"))

        def main(sim):
            a = sim.fork(child_a(sim), name="a")
            b = sim.fork(child_b(sim), name="b")
            yield from sim.join(a)
            yield from sim.join(b)

        sim.run(main(sim))
        assert observed == ["absent"]


class TestThreadMetadata:
    def test_parent_links(self, sim):
        links = {}

        def child(sim):
            thread = sim.current_thread
            links[thread.name] = thread.parent.name if thread.parent else None
            yield from sim.sleep(0)

        def main(sim):
            thread = sim.current_thread
            links[thread.name] = thread.parent.name if thread.parent else None
            t = sim.fork(child(sim), name="child")
            yield from sim.join(t)

        sim.run(main(sim), )
        assert links == {"main": None, "child": "main"}

    def test_thread_states_terminal(self, sim):
        def main(sim):
            yield from sim.sleep(1)

        sim.run(main(sim))
        thread = sim.scheduler.threads[1]
        assert thread.state is ThreadState.DONE
        assert thread.state.is_terminal
        assert not thread.is_alive

    def test_spawn_and_end_times(self, sim):
        def child(sim):
            yield from sim.sleep(5)

        def main(sim):
            yield from sim.sleep(2)
            t = sim.fork(child(sim), name="child")
            yield from sim.join(t)
            return t

        sim.run(main(sim))
        child_thread = sim.scheduler.threads[2]
        assert child_thread.spawn_time == pytest.approx(2.0)
        assert child_thread.end_time == pytest.approx(7.0)
