"""Property-based scheduler invariants (hypothesis).

Random programs of sleeps, computes, forks and instrumented operations
must satisfy the simulator's core guarantees: termination, monotone
per-thread time, determinism under a seed, and conservation of
operation counts.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.api import Simulation
from repro.sim.instrument import AccessEvent, InstrumentationHook
from repro.sim.thread import ThreadState


class _Collector(InstrumentationHook):
    def __init__(self):
        self.events = []

    def after_access(self, event: AccessEvent) -> None:
        self.events.append(event)


#: A worker program: list of (sleep_ms, ops) steps.
worker_programs = st.lists(
    st.tuples(
        st.floats(min_value=0.0, max_value=5.0),
        st.integers(min_value=0, max_value=3),
    ),
    min_size=0,
    max_size=5,
)


@st.composite
def programs(draw):
    return draw(st.lists(worker_programs, min_size=1, max_size=4))


def _run(program, seed):
    collector = _Collector()
    sim = Simulation(seed=seed, hook=collector)
    shared = sim.ref("shared")

    def worker(steps, index):
        for sleep_ms, ops in steps:
            yield from sim.sleep(sleep_ms)
            for op in range(ops):
                yield from sim.use(shared, member="M", loc="prop.use:%d:%d" % (index, op))

    def main(sim):
        yield from sim.assign(shared, sim.new("T"), loc="prop.init")
        threads = [
            sim.fork(worker(steps, i), name="w%d" % i) for i, steps in enumerate(program)
        ]
        yield from sim.join_all(threads)

    result = sim.run(main(sim))
    return sim, result, collector


class TestSchedulerProperties:
    @given(program=programs(), seed=st.integers(0, 1000))
    @settings(max_examples=60, deadline=None)
    def test_terminates_without_failures(self, program, seed):
        _, result, _ = _run(program, seed)
        assert not result.crashed

    @given(program=programs(), seed=st.integers(0, 1000))
    @settings(max_examples=60, deadline=None)
    def test_all_threads_reach_done(self, program, seed):
        sim, _, _ = _run(program, seed)
        assert all(t.state is ThreadState.DONE for t in sim.scheduler.threads.values())

    @given(program=programs(), seed=st.integers(0, 1000))
    @settings(max_examples=60, deadline=None)
    def test_op_count_conserved(self, program, seed):
        expected = 1 + sum(ops for steps in program for _, ops in steps)
        _, result, collector = _run(program, seed)
        assert result.op_count == expected
        assert len(collector.events) == expected

    @given(program=programs(), seed=st.integers(0, 1000))
    @settings(max_examples=60, deadline=None)
    def test_per_thread_timestamps_monotone(self, program, seed):
        _, _, collector = _run(program, seed)
        last = {}
        for event in collector.events:
            previous = last.get(event.thread_id, -1.0)
            assert event.timestamp >= previous
            last[event.thread_id] = event.timestamp

    @staticmethod
    def _normalized_keys(events):
        """Event keys with object ids renumbered by first appearance:
        heap-object ids are globally unique across runs (deliberately --
        persisted state must never alias objects from different runs),
        so replay comparison works on run-relative ids."""
        mapping = {}
        keys = []
        for event in events:
            oid = mapping.setdefault(event.object_id, len(mapping))
            keys.append((event.location.site, event.access_type.value, oid, event.thread_id))
        return keys

    @given(program=programs(), seed=st.integers(0, 1000))
    @settings(max_examples=40, deadline=None)
    def test_deterministic_replay(self, program, seed):
        _, result_a, collector_a = _run(program, seed)
        _, result_b, collector_b = _run(program, seed)
        assert result_a.virtual_time == result_b.virtual_time
        assert self._normalized_keys(collector_a.events) == self._normalized_keys(
            collector_b.events
        )
        assert [e.timestamp for e in collector_a.events] == [
            e.timestamp for e in collector_b.events
        ]

    @given(program=programs(), seed=st.integers(0, 1000))
    @settings(max_examples=40, deadline=None)
    def test_virtual_time_bounded_below_by_longest_thread(self, program, seed):
        """End-to-end time is at least any single worker's summed sleeps."""
        _, result, _ = _run(program, seed)
        longest = max(
            (sum(sleep for sleep, _ in steps) for steps in program), default=0.0
        )
        assert result.virtual_time >= longest - 1e-9
