"""Property-based synchronization invariants (hypothesis).

Random multi-threaded programs over each primitive must preserve its
defining invariant under every seeded interleaving the scheduler
produces.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.api import Simulation


class TestLockMutualExclusion:
    @given(
        seed=st.integers(0, 500),
        workers=st.integers(2, 4),
        iterations=st.integers(1, 4),
        hold=st.floats(min_value=0.1, max_value=2.0),
    )
    @settings(max_examples=40, deadline=None)
    def test_never_two_holders(self, seed, workers, iterations, hold):
        sim = Simulation(seed=seed)
        lock = sim.lock("l")
        inside = [0]
        peak = [0]

        def worker(sim_):
            for _ in range(iterations):
                yield from lock.acquire()
                inside[0] += 1
                peak[0] = max(peak[0], inside[0])
                yield from sim.compute(hold)
                inside[0] -= 1
                lock.release()
                yield from sim.sleep(0.2)

        def main(sim_):
            threads = [sim.fork(worker(sim), name="w%d" % i) for i in range(workers)]
            yield from sim.join_all(threads)

        result = sim.run(main(sim))
        assert not result.crashed
        assert peak[0] == 1

    @given(seed=st.integers(0, 500), waiters=st.integers(1, 5))
    @settings(max_examples=30, deadline=None)
    def test_fifo_handoff_order(self, seed, waiters):
        sim = Simulation(seed=seed)
        lock = sim.lock("l")
        order = []

        def holder(sim_):
            yield from lock.acquire()
            yield from sim.sleep(10.0)
            lock.release()

        def waiter(sim_, index):
            yield from sim.sleep(float(index + 1))  # staggered arrival
            yield from lock.acquire()
            order.append(index)
            lock.release()

        def main(sim_):
            threads = [sim.fork(holder(sim), name="holder")]
            threads += [sim.fork(waiter(sim, i), name="w%d" % i) for i in range(waiters)]
            yield from sim.join_all(threads)

        result = sim.run(main(sim))
        assert not result.crashed
        assert order == sorted(order)


class TestSemaphoreBound:
    @given(
        seed=st.integers(0, 500),
        permits=st.integers(1, 3),
        workers=st.integers(1, 6),
    )
    @settings(max_examples=40, deadline=None)
    def test_concurrency_never_exceeds_permits(self, seed, permits, workers):
        sim = Simulation(seed=seed)
        sem = sim.semaphore(initial=permits, name="s")
        inside = [0]
        peak = [0]

        def worker(sim_):
            yield from sem.acquire()
            inside[0] += 1
            peak[0] = max(peak[0], inside[0])
            yield from sim.compute(1.0)
            inside[0] -= 1
            sem.release()

        def main(sim_):
            threads = [sim.fork(worker(sim), name="w%d" % i) for i in range(workers)]
            yield from sim.join_all(threads)

        result = sim.run(main(sim))
        assert not result.crashed
        assert peak[0] <= permits


class TestChannelConservation:
    @given(
        seed=st.integers(0, 500),
        producers=st.integers(1, 3),
        items_each=st.integers(0, 6),
        consumers=st.integers(1, 3),
    )
    @settings(max_examples=40, deadline=None)
    def test_every_item_delivered_exactly_once(self, seed, producers, items_each, consumers):
        sim = Simulation(seed=seed)
        channel = sim.channel("c")
        delivered = []
        done_producers = [0]

        def producer(sim_, pid):
            for i in range(items_each):
                yield from sim.sleep(0.3)
                channel.put((pid, i))
            done_producers[0] += 1
            if done_producers[0] == producers:
                channel.close()

        def consumer(sim_):
            while True:
                item = yield from channel.get()
                if item is None:
                    return
                delivered.append(item)
                yield from sim.compute(0.2)

        def main(sim_):
            threads = [sim.fork(consumer(sim), name="c%d" % i) for i in range(consumers)]
            threads += [sim.fork(producer(sim, p), name="p%d" % p) for p in range(producers)]
            yield from sim.join_all(threads)

        result = sim.run(main(sim))
        assert not result.crashed
        expected = {(p, i) for p in range(producers) for i in range(items_each)}
        assert sorted(delivered) == sorted(expected)
        assert len(delivered) == len(set(delivered))


class TestEventLatch:
    @given(seed=st.integers(0, 500), waiters=st.integers(1, 6), set_at=st.floats(0.5, 10.0))
    @settings(max_examples=40, deadline=None)
    def test_no_waiter_proceeds_before_set(self, seed, waiters, set_at):
        sim = Simulation(seed=seed)
        event = sim.event("e")
        wake_times = []

        def waiter(sim_):
            yield from event.wait()
            wake_times.append(sim.now)

        def main(sim_):
            threads = [sim.fork(waiter(sim), name="w%d" % i) for i in range(waiters)]
            yield from sim.sleep(set_at)
            event.set()
            yield from sim.join_all(threads)

        result = sim.run(main(sim))
        assert not result.crashed
        assert len(wake_times) == waiters
        assert all(t >= set_at - 1e-9 for t in wake_times)
