"""Unit tests for the virtual clock."""

import pytest

from repro.sim.clock import VirtualClock


class TestVirtualClock:
    def test_starts_at_zero_by_default(self):
        assert VirtualClock().now == 0.0

    def test_starts_at_given_time(self):
        assert VirtualClock(12.5).now == 12.5

    def test_advance_moves_forward(self):
        clock = VirtualClock()
        assert clock.advance(3.25) == 3.25
        assert clock.now == 3.25

    def test_advance_accumulates(self):
        clock = VirtualClock()
        clock.advance(1.0)
        clock.advance(2.0)
        assert clock.now == pytest.approx(3.0)

    def test_advance_zero_is_noop(self):
        clock = VirtualClock(5.0)
        clock.advance(0.0)
        assert clock.now == 5.0

    def test_advance_negative_rejected(self):
        clock = VirtualClock()
        with pytest.raises(ValueError):
            clock.advance(-0.1)

    def test_advance_to_future(self):
        clock = VirtualClock()
        clock.advance_to(7.5)
        assert clock.now == 7.5

    def test_advance_to_past_is_noop(self):
        clock = VirtualClock(10.0)
        clock.advance_to(4.0)
        assert clock.now == 10.0

    def test_advance_to_same_time_is_noop(self):
        clock = VirtualClock(10.0)
        clock.advance_to(10.0)
        assert clock.now == 10.0

    def test_repr_mentions_time(self):
        assert "3.5" in repr(VirtualClock(3.5))
