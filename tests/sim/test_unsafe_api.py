"""Thread-unsafe collections and TSV call-window overlap detection."""

import pytest

from repro.sim.api import Simulation
from repro.sim.instrument import AccessType, InstrumentationHook
from repro.sim.unsafe_api import ActiveCallTable, UnsafeDict, UnsafeList
from repro.sim.instrument import Location


class TestUnsafeDict:
    def test_add_get_remove(self):
        d = UnsafeDict()
        d.apply("add", "k", 1)
        assert d.apply("get", "k") == 1
        assert d.apply("remove", "k") == 1
        assert d.apply("get", "k") is None

    def test_set_alias(self):
        d = UnsafeDict()
        d.apply("set", "k", 2)
        assert d.apply("get", "k") == 2

    def test_clear_and_enumerate(self):
        d = UnsafeDict()
        d.apply("add", "a", 1)
        d.apply("add", "b", 2)
        assert sorted(d.apply("enumerate")) == [("a", 1), ("b", 2)]
        d.apply("clear")
        assert d.apply("enumerate") == []

    def test_unknown_api_rejected(self):
        with pytest.raises(ValueError):
            UnsafeDict().apply("frobnicate")


class TestUnsafeList:
    def test_append_pop(self):
        items = UnsafeList()
        items.apply("append", "x")
        items.apply("add", "y")
        assert items.apply("pop") == "y"
        assert items.apply("pop") == "x"
        assert items.apply("pop") is None

    def test_get_bounds(self):
        items = UnsafeList()
        items.apply("append", "x")
        assert items.apply("get", 0) == "x"
        assert items.apply("get", 5) is None
        assert items.apply("get", -1) is None

    def test_insert_remove_enumerate(self):
        items = UnsafeList()
        items.apply("append", "b")
        items.apply("insert", 0, "a")
        assert items.apply("enumerate") == ["a", "b"]
        items.apply("remove", "a")
        items.apply("remove", "zz")  # absent: no-op
        assert items.apply("enumerate") == ["b"]

    def test_clear(self):
        items = UnsafeList()
        items.apply("append", 1)
        items.apply("clear")
        assert items.apply("enumerate") == []


class TestActiveCallTable:
    def test_overlap_same_object_different_threads(self):
        table = ActiveCallTable()
        loc_a, loc_b = Location("a"), Location("b")
        assert table.begin(1, 10, loc_a, now=0.0, end_time=5.0) is None
        hit = table.begin(1, 11, loc_b, now=2.0, end_time=6.0)
        assert hit is not None
        assert {hit.location_a, hit.location_b} == {loc_a, loc_b}

    def test_no_overlap_same_thread(self):
        table = ActiveCallTable()
        table.begin(1, 10, Location("a"), now=0.0, end_time=5.0)
        assert table.begin(1, 10, Location("b"), now=2.0, end_time=6.0) is None

    def test_no_overlap_different_objects(self):
        table = ActiveCallTable()
        table.begin(1, 10, Location("a"), now=0.0, end_time=5.0)
        assert table.begin(2, 11, Location("b"), now=2.0, end_time=6.0) is None

    def test_expired_windows_pruned(self):
        table = ActiveCallTable()
        table.begin(1, 10, Location("a"), now=0.0, end_time=1.0)
        assert table.begin(1, 11, Location("b"), now=5.0, end_time=6.0) is None

    def test_end_removes_call(self):
        table = ActiveCallTable()
        loc = Location("a")
        table.begin(1, 10, loc, now=0.0, end_time=100.0)
        table.end(1, 10, loc)
        assert table.begin(1, 11, Location("b"), now=1.0, end_time=2.0) is None


class TestSimulatedUnsafeCalls:
    def test_spaced_calls_no_tsv(self, sim):
        table = sim.unsafe_dict()

        def worker(sim, key, start):
            yield from sim.sleep(start)
            yield from sim.unsafe_call(table, "add", key, 1, loc="t.add:%s" % key, duration=1.0)

        def main(sim):
            a = sim.fork(worker(sim, "a", 0.0), name="a")
            b = sim.fork(worker(sim, "b", 10.0), name="b")
            yield from sim.join(a)
            yield from sim.join(b)

        result = sim.run(main(sim))
        assert result.tsv_occurrences == []
        assert table.apply("get", "a") == 1

    def test_overlapping_calls_record_tsv(self, sim):
        table = sim.unsafe_dict()

        def worker(sim, key, start):
            yield from sim.sleep(start)
            yield from sim.unsafe_call(table, "add", key, 1, loc="t.add:%s" % key, duration=5.0)

        def main(sim):
            a = sim.fork(worker(sim, "a", 0.0), name="a")
            b = sim.fork(worker(sim, "b", 2.0), name="b")
            yield from sim.join(a)
            yield from sim.join(b)

        result = sim.run(main(sim))
        assert len(result.tsv_occurrences) == 1

    def test_delay_can_create_overlap(self):
        """The Figure 2 TSV condition: a delay of the right length makes
        two naturally-separated windows overlap."""

        class DelayFirst(InstrumentationHook):
            def before_access(self, pending):
                return 9.0 if pending.location.site == "t.add:a" else 0.0

        sim = Simulation(seed=1, hook=DelayFirst())
        table = sim.unsafe_dict()

        def worker(sim, key, start):
            yield from sim.sleep(start)
            yield from sim.unsafe_call(table, "add", key, 1, loc="t.add:%s" % key, duration=3.0)

        def main(sim):
            a = sim.fork(worker(sim, "a", 0.0), name="a")
            b = sim.fork(worker(sim, "b", 10.0), name="b")
            yield from sim.join(a)
            yield from sim.join(b)

        result = sim.run(main(sim))
        assert len(result.tsv_occurrences) >= 1

    def test_unsafe_call_event_classification(self):
        events = []

        class Collect(InstrumentationHook):
            def after_access(self, event):
                events.append(event)

        sim = Simulation(seed=1, hook=Collect())
        table = sim.unsafe_dict()

        def main(sim):
            yield from sim.unsafe_call(table, "add", "k", 1, loc="t.add:1", duration=0.5)

        sim.run(main(sim))
        assert len(events) == 1
        assert events[0].access_type is AccessType.UNSAFE_CALL
        assert not events[0].access_type.is_memorder
        assert events[0].duration == 0.5
