"""Every example script must run cleanly end to end.

Executed in-process (import-and-call) so failures give real tracebacks
and the suite stays fast; each example's ``main()`` asserts its own
claims internally.
"""

import importlib.util
import pathlib
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parents[2] / "examples"
EXAMPLES = sorted(p.stem for p in EXAMPLES_DIR.glob("*.py"))


def _load(name):
    spec = importlib.util.spec_from_file_location(
        "example_%s" % name, EXAMPLES_DIR / ("%s.py" % name)
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


@pytest.mark.parametrize("name", EXAMPLES)
def test_example_runs(name, capsys):
    module = _load(name)
    module.main()
    out = capsys.readouterr().out
    assert out.strip(), "example %s produced no output" % name


def test_example_inventory():
    expected = {
        "quickstart",
        "interfering_bugs",
        "interfering_instances",
        "variable_delays",
        "tsvd_vs_waffle",
        "persisted_session",
        "real_threads",
        "task_parallel",
    }
    assert set(EXAMPLES) == expected
