"""Whole-stack integration tests: the paper's headline claims, small-scale."""

import pytest

from repro import (
    NullReferenceError,
    Simulation,
    StressRunner,
    Tsvd,
    Waffle,
    WaffleBasic,
    WaffleConfig,
    Workload,
)
from repro.apps import all_bugs, bug_workload, match_bug
from repro.core.persistence import load_session, save_session
from repro.core.delay_policy import DecayState


class TestHeadlineClaims:
    """Section 6.2's summary over a 3-seed mini-campaign."""

    @pytest.fixture(scope="class")
    def campaign(self):
        results = {}
        for bug in all_bugs():
            test = bug_workload(bug.bug_id)
            waffle_found = 0
            basic_found = 0
            for seed in (21, 22, 23):
                wa = Waffle(WaffleConfig(seed=seed)).detect(test, max_detection_runs=8)
                if wa.bug_found and bug.matches(wa.reports[0]):
                    waffle_found += 1
                wb = WaffleBasic(WaffleConfig(seed=seed)).detect(test, max_detection_runs=12)
                if wb.bug_found and bug.matches(wb.reports[0]):
                    basic_found += 1
            results[bug.bug_id] = (waffle_found, basic_found)
        return results

    def test_waffle_exposes_all_18(self, campaign):
        missed = [bug_id for bug_id, (wa, _) in campaign.items() if wa < 2]
        assert not missed, missed

    def test_basic_exposes_about_11(self, campaign):
        found = [bug_id for bug_id, (_, wb) in campaign.items() if wb >= 2]
        assert 10 <= len(found) <= 12, sorted(found)

    def test_basic_misses_the_interference_bugs(self, campaign):
        for bug_id in ("Bug-8", "Bug-10", "Bug-12", "Bug-13", "Bug-15", "Bug-16", "Bug-17"):
            _, wb = campaign[bug_id]
            assert wb <= 1, bug_id


class TestPublicApi:
    def test_quickstart_flow(self):
        """The README quickstart, verbatim in spirit."""

        def my_test(sim):
            connection = sim.ref("connection")

            def worker(sim):
                yield from sim.sleep(3.0)
                yield from sim.use(connection, member="Send", loc="myapp.Worker.send:10")

            def main(sim):
                yield from sim.assign(connection, sim.new("Connection"), loc="myapp.open:1")
                thread = sim.fork(worker(sim), name="worker")
                yield from sim.sleep(7.0)
                yield from sim.dispose(connection, loc="myapp.close:20")
                yield from sim.join(thread)

            return main(sim)

        outcome = Waffle(WaffleConfig(seed=1)).detect(Workload("myapp", my_test))
        assert outcome.bug_found
        assert outcome.runs_to_expose == 2
        report = outcome.reports[0]
        assert report.fault_site == "myapp.Worker.send:10"
        assert "myapp" in report.summary()

    def test_report_labeling_helper(self):
        bug = all_bugs()[0]
        outcome = Waffle(WaffleConfig(seed=2)).detect(bug_workload(bug.bug_id))
        labeled = match_bug(outcome.reports[0], all_bugs())
        assert labeled is bug


class TestSessionPersistence:
    def test_plan_survives_disk_roundtrip_and_still_detects(self, tmp_path):
        """Split the Waffle workflow across 'processes': prepare and
        analyze in one, persist, then run detection from the loaded
        session -- the section 5 disk bootstrap, end to end."""
        from repro.harness.runner import analyze_test, run_planned_detection

        config = WaffleConfig(seed=5)
        test = bug_workload("Bug-1")
        plan = analyze_test(test, config, seed=5)
        decay = DecayState(config.decay_lambda)

        path = tmp_path / "session.json"
        save_session(plan, decay, path)
        loaded_plan, loaded_decay = load_session(path)

        run, hook = run_planned_detection(
            test, loaded_plan, config, loaded_decay, seed=6, hook_seed=1234
        )
        assert run.crashed
        assert run.delays_injected >= 1


class TestCrossToolConsistency:
    def test_stress_vs_detectors_on_same_seed(self):
        test = bug_workload("Bug-14")
        stress = StressRunner(WaffleConfig(seed=7)).detect(test, max_detection_runs=10)
        assert not any(r.bug_found for r in stress.runs)
        waffle = Waffle(WaffleConfig(seed=7)).detect(test, max_detection_runs=5)
        assert waffle.bug_found

    def test_tsvd_ignores_memorder_bug_tests(self):
        outcome = Tsvd(WaffleConfig(seed=7)).detect(bug_workload("Bug-14"), max_detection_runs=2)
        assert not outcome.tsv_found
