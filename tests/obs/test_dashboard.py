"""Dashboard rendering and the byte-identity (golden) contract.

The dashboard and the OpenMetrics export must be *reproducible
artifacts*: the same campaign rendered under ``--jobs 1`` vs ``--jobs
2`` and under the vector vs tree happens-before engines yields
byte-identical files, and a chaos-interrupted campaign's
``--deterministic`` metrics export matches a clean run's exactly.
"""

import os

import pytest

from repro import obs
from repro.harness.cli import main
from repro.obs import eventbus
from repro.obs.dashboard import render_dashboard
from repro.obs.openmetrics import validate_openmetrics

HEADINGS = (
    "Detection funnel",
    "Sensitivity curves",
    "Delay-budget attribution",
    "Observed near-miss gaps",
    "Generated workloads",
    "Fault &amp; chaos census",
    "Quality trend",
)


@pytest.fixture(autouse=True)
def clean_state():
    yield
    obs.disable()
    eventbus.disable()
    os.environ.pop(obs.OBS_DIR_ENV, None)
    os.environ.pop(eventbus.EVENTS_DIR_ENV, None)


def run_campaign(directory, *extra):
    rc = main(["fuzz", "--seed-range", "0:6", "--no-replay",
               "--obs-dir", str(directory), "--dashboard", *extra])
    assert rc == 0
    obs.disable()
    eventbus.disable()
    return directory


class TestRender:
    def test_every_heading_renders_with_no_data_at_all(self):
        html = render_dashboard()
        for heading in HEADINGS:
            assert "<h2>%s</h2>" % heading in html

    def test_self_contained_no_external_references(self):
        html = render_dashboard()
        for marker in ('<link rel="stylesheet"', "<script src=", "http://", "https://"):
            assert marker not in html

    def test_real_campaign_populates_curves_and_attribution(self, tmp_path):
        target = run_campaign(tmp_path / "camp")
        html = (target / "dashboard.html").read_text()
        for heading in HEADINGS:
            assert heading in html
        assert "detectable band" in html      # ground-truth band shading
        assert "<polyline" in html            # sensitivity polylines
        assert "ground-truth band" in html    # bands table
        assert "skip taxonomy" in html
        assert str(target) not in html        # no paths leak into the bytes

    def test_prom_and_timeseries_written_beside_html(self, tmp_path):
        target = run_campaign(tmp_path / "camp")
        prom = (target / "metrics.prom").read_text()
        assert validate_openmetrics(prom) == []
        assert (target / "timeseries.jsonl").exists()


class TestGoldenDeterminism:
    def test_jobs_fanout_is_byte_identical(self, tmp_path):
        one = run_campaign(tmp_path / "jobs1", "--jobs", "1")
        two = run_campaign(tmp_path / "jobs2", "--jobs", "2")
        assert (one / "dashboard.html").read_bytes() == (two / "dashboard.html").read_bytes()
        assert (one / "metrics.prom").read_bytes() == (two / "metrics.prom").read_bytes()

    def test_hb_engines_are_byte_identical(self, tmp_path):
        vector = run_campaign(tmp_path / "vector", "--hb-engine", "vector")
        tree = run_campaign(tmp_path / "tree", "--hb-engine", "tree")
        assert (vector / "dashboard.html").read_bytes() == (tree / "dashboard.html").read_bytes()
        assert (vector / "metrics.prom").read_bytes() == (tree / "metrics.prom").read_bytes()

    def test_chaos_deterministic_export_matches_clean(self, tmp_path, monkeypatch):
        clean = run_campaign(tmp_path / "clean", "--jobs", "2")
        monkeypatch.setenv("WAFFLE_CHAOS", "seed=3,worker_crash=0.4")
        chaos = run_campaign(tmp_path / "chaos", "--jobs", "2")
        monkeypatch.delenv("WAFFLE_CHAOS")
        for directory, out in ((clean, "clean.prom"), (chaos, "chaos.prom")):
            rc = main(["obs", "metrics", str(directory), "--deterministic",
                       "--metrics-out", str(tmp_path / out)])
            assert rc == 0
        assert (tmp_path / "clean.prom").read_bytes() == (tmp_path / "chaos.prom").read_bytes()
