"""Campaign event bus: writer durability, torn-tail recovery, merging."""

import json
import os

import pytest

from repro.harness import faults
from repro.obs import eventbus


@pytest.fixture(autouse=True)
def clean_bus_state():
    """The bus is a module global activated via env var; never leak it."""
    yield
    eventbus.disable()
    os.environ.pop(eventbus.EVENTS_DIR_ENV, None)
    faults.on_chaos_fire = None


class TestWriter:
    def test_stream_opens_with_versioned_meta_line(self, tmp_path):
        bus = eventbus.configure(tmp_path)
        bus.emit("cell_begin", cell="abc", unit="u")
        bus.flush()
        lines = [json.loads(l) for l in bus.path.read_text().splitlines()]
        assert lines[0]["type"] == "meta"
        assert lines[0]["v"] == eventbus.EVENT_SCHEMA_VERSION
        assert lines[0]["pid"] == os.getpid()
        assert lines[1]["type"] == "cell_begin"
        assert lines[1]["cell"] == "abc"

    def test_sequence_numbers_are_monotonic(self, tmp_path):
        bus = eventbus.configure(tmp_path)
        records = [bus.emit("cache", action="hit") for _ in range(5)]
        assert [r["seq"] for r in records] == [1, 2, 3, 4, 5]

    def test_batched_flush_commits_at_threshold(self, tmp_path):
        bus = eventbus.configure(tmp_path)
        for _ in range(bus.FLUSH_EVERY - 2):  # meta occupies one slot
            bus.emit("cache", action="hit")
            bus.maybe_flush()
        assert not bus.path.exists()  # still buffered
        bus.emit("cache", action="hit")
        bus.maybe_flush()
        assert bus.path.exists()
        assert len(bus.path.read_text().splitlines()) == bus.FLUSH_EVERY

    def test_in_memory_bus_writes_no_files(self, tmp_path):
        bus = eventbus.configure(None)
        seen = []
        bus.add_listener(seen.append)
        bus.emit("fanout", unit="u", cells=3, jobs=1)
        bus.flush()
        assert bus.path is None
        assert [e["type"] for e in seen] == ["fanout"]

    def test_listener_exceptions_never_reach_the_emitter(self, tmp_path):
        bus = eventbus.configure(None)
        bus.add_listener(lambda event: (_ for _ in ()).throw(RuntimeError("boom")))
        bus.emit("cache", action="hit")  # must not raise

    def test_module_emit_is_a_noop_when_disabled(self):
        assert eventbus.bus() is None
        eventbus.emit("cache", action="hit")  # must not raise

    def test_env_var_activates_standalone(self, tmp_path, monkeypatch):
        monkeypatch.setenv(eventbus.EVENTS_DIR_ENV, str(tmp_path))
        eventbus._configure_from_env()
        assert eventbus.bus() is not None
        assert eventbus.bus().directory == tmp_path

    def test_fork_reset_gives_the_child_a_fresh_stream(self, tmp_path):
        parent = eventbus.configure(tmp_path)
        parent.emit("cache", action="hit")  # buffered, the parent's to write
        eventbus._reset_after_fork()
        child = eventbus.bus()
        assert child is not parent
        assert child.directory == tmp_path
        assert [r["type"] for r in child._pending] == ["meta"]

    def test_fork_reset_drops_an_in_memory_bus(self):
        eventbus.configure(None)
        eventbus._reset_after_fork()
        assert eventbus.bus() is None


class TestChaosWiring:
    def test_configure_wires_the_chaos_observer(self, tmp_path):
        eventbus.configure(tmp_path)
        assert faults.on_chaos_fire is eventbus._on_chaos_fire

    def test_chaos_fire_lands_in_the_stream(self, tmp_path):
        bus = eventbus.configure(tmp_path)
        faults.configure("seed=1,worker_crash=1.0")
        try:
            assert faults.should_fire("worker_crash", "cell-key", 1)
        finally:
            faults.disable()
        bus.flush()
        events = [json.loads(l) for l in bus.path.read_text().splitlines()]
        chaos = [e for e in events if e["type"] == "chaos"]
        assert len(chaos) == 1
        assert chaos[0]["site"] == "worker_crash"
        assert chaos[0]["key"] == "cell-key"


class TestTornTailRecovery:
    def _stream(self, tmp_path, events, tail=None, name="events-1-1.jsonl"):
        path = tmp_path / name
        meta = {"type": "meta", "v": eventbus.EVENT_SCHEMA_VERSION, "writer": "1-1"}
        body = "".join(json.dumps(r) + "\n" for r in [meta] + events)
        if tail is not None:
            body += tail  # no trailing newline: a killed writer's artifact
        path.write_text(body)
        return path

    def test_unterminated_tail_is_recovered_not_fatal(self, tmp_path):
        path = self._stream(
            tmp_path,
            [{"type": "cache", "seq": 1, "t": 1.0, "action": "hit"}],
            tail='{"type": "cell_end", "trunc',
        )
        stream = eventbus.read_stream(path)
        assert stream.recovered == 1
        assert stream.parse_errors == []
        assert any("truncated final line" in w for w in stream.warnings)
        assert len(stream.events) == 1  # committed lines still load

    def test_interior_bad_line_stays_a_parse_error(self, tmp_path):
        path = tmp_path / "events-2-2.jsonl"
        path.write_text('not json\n{"type": "cache", "seq": 1}\n')
        stream = eventbus.read_stream(path)
        assert len(stream.parse_errors) == 1
        assert stream.recovered == 0

    def test_committed_bad_final_line_stays_a_parse_error(self, tmp_path):
        # Newline-terminated garbage was committed by the writer, not
        # cut off by a kill: corruption, not noise.
        path = tmp_path / "events-3-3.jsonl"
        path.write_text("not json\n")
        stream = eventbus.read_stream(path)
        assert len(stream.parse_errors) == 1
        assert stream.recovered == 0

    def test_empty_stream_warns(self, tmp_path):
        path = tmp_path / "events-4-4.jsonl"
        path.write_text("")
        stream = eventbus.read_stream(path)
        assert any("empty event stream" in w for w in stream.warnings)

    def test_missing_meta_line_warns(self, tmp_path):
        path = tmp_path / "events-5-5.jsonl"
        path.write_text('{"type": "cache", "seq": 1, "action": "hit"}\n')
        stream = eventbus.read_stream(path)
        assert any("no meta line" in w for w in stream.warnings)

    def test_schema_version_mismatch_warns(self, tmp_path):
        path = tmp_path / "events-6-6.jsonl"
        path.write_text(
            json.dumps({"type": "meta", "v": eventbus.EVENT_SCHEMA_VERSION + 1})
            + "\n"
            + json.dumps({"type": "cache", "seq": 1, "action": "hit"})
            + "\n"
        )
        stream = eventbus.read_stream(path)
        assert any("schema version" in w for w in stream.warnings)


def _worker_stream(tmp_path, writer, stamps):
    """A hand-built stream: one cell_end per (t, cell) pair."""
    path = tmp_path / ("events-%s.jsonl" % writer)
    records = [{"type": "meta", "v": eventbus.EVENT_SCHEMA_VERSION, "writer": writer}]
    for seq, (t, cell) in enumerate(stamps, start=1):
        records.append(
            {"type": "cell_end", "seq": seq, "t": t, "cell": cell, "status": "ok"}
        )
    path.write_text("".join(json.dumps(r) + "\n" for r in records))
    return path


class TestMerge:
    def test_merge_interleaves_by_time_writer_seq(self, tmp_path):
        a = _worker_stream(tmp_path, "a", [(1.0, "a1"), (3.0, "a2")])
        b = _worker_stream(tmp_path, "b", [(2.0, "b1"), (4.0, "b2")])
        merged = eventbus.merge_events(
            [eventbus.read_stream(a), eventbus.read_stream(b)]
        )
        assert [e["cell"] for e in merged] == ["a1", "b1", "a2", "b2"]

    def test_backward_clock_is_clamped_within_a_writer(self, tmp_path):
        a = _worker_stream(tmp_path, "a", [(5.0, "a1"), (2.0, "a2")])
        merged = eventbus.merge_events([eventbus.read_stream(a)])
        # seq is ground truth within a writer: a2 stays after a1.
        assert [e["cell"] for e in merged] == ["a1", "a2"]
        assert merged[1]["t"] == 5.0

    def test_merged_file_is_byte_identical_either_input_order(self, tmp_path):
        a = eventbus.read_stream(
            _worker_stream(tmp_path, "a", [(1.0, "a1"), (2.5, "a2"), (2.5, "a3")])
        )
        b = eventbus.read_stream(
            _worker_stream(tmp_path, "b", [(2.5, "b1"), (3.0, "b2")])
        )
        out1, out2 = tmp_path / "m1.jsonl", tmp_path / "m2.jsonl"
        count1 = eventbus.write_merged([a, b], out1)
        count2 = eventbus.write_merged([b, a], out2)
        assert count1 == count2 == 5
        assert out1.read_bytes() == out2.read_bytes()

    def test_merged_file_reads_back_as_a_stream(self, tmp_path):
        a = eventbus.read_stream(_worker_stream(tmp_path, "a", [(1.0, "a1")]))
        out = tmp_path / "merged.jsonl"
        eventbus.write_merged([a], out)
        stream = eventbus.read_stream(out)
        assert stream.meta.writer == "merged"
        assert stream.meta.version == eventbus.EVENT_SCHEMA_VERSION
        assert len(stream.events) == 1

    def test_stream_paths_accepts_file_or_directory(self, tmp_path):
        path = _worker_stream(tmp_path, "a", [(1.0, "a1")])
        assert eventbus.stream_paths(tmp_path) == [path]
        assert eventbus.stream_paths(path) == [path]
        assert eventbus.stream_paths(tmp_path / "missing.jsonl") == []


class TestV1Compatibility:
    """Schema v2 added vocabulary without touching any v1 field, so the
    checked-in v1 fixture must read, fold and merge exactly as it did
    when written."""

    FIXTURE = os.path.join(os.path.dirname(__file__), "fixtures", "events-v1.jsonl")

    def test_fixture_reads_without_warnings(self):
        stream = eventbus.read_stream(self.FIXTURE)
        assert stream.meta.version == 1
        assert 1 in eventbus.SUPPORTED_EVENT_VERSIONS
        assert stream.warnings == []
        assert stream.parse_errors == []
        assert stream.recovered == 0
        assert len(stream.events) == 13
        assert all(e["type"] in eventbus.EVENT_TYPES for e in stream.events)

    def test_fixture_folds_into_a_campaign_view(self):
        from repro.obs import campaign as campaign_mod

        view, streams = campaign_mod.load_view(self.FIXTURE)
        assert len(streams) == 1
        assert view.warnings == []
        assert view.cells_expected == 3
        assert view.by_status("ok") == 2
        assert view.by_status("quarantined") == 1
        assert view.retries == 1
        assert view.faults == {"transient_io": 1}
        assert view.finished and view.finished[0]["ok"] is True
        # No fleet traffic in a v1 stream, by definition.
        assert view.workers == {}
        assert view.lease_acquired == view.lease_stolen == 0

    def test_fixture_merges_with_a_v2_stream(self, tmp_path):
        bus = eventbus.configure(tmp_path)
        bus.emit("lease_acquire", cell="0a1b2c3d4e5f6071", worker="w1", attempt=1)
        bus.emit("lease_release", cell="0a1b2c3d4e5f6071", worker="w1")
        bus.flush()
        eventbus.disable()
        old = eventbus.read_stream(self.FIXTURE)
        new = eventbus.read_stream(bus.path)
        out = tmp_path / "merged.jsonl"
        count = eventbus.write_merged([old, new], out)
        assert count == 15
        merged = eventbus.read_stream(out)
        assert merged.warnings == []
        types = [e["type"] for e in merged.events]
        assert "campaign_begin" in types and "lease_acquire" in types


class TestThreadSafety:
    def test_concurrent_emits_get_unique_seqs_and_all_land(self, tmp_path):
        import threading

        bus = eventbus.configure(tmp_path)
        per_thread, threads = 200, 8

        def hammer(worker):
            for beat in range(per_thread):
                bus.emit("heartbeat", cell="c", worker="w%d" % worker, beat=beat)
                if beat % 50 == 0:
                    bus.flush()

        pool = [threading.Thread(target=hammer, args=(i,)) for i in range(threads)]
        for thread in pool:
            thread.start()
        for thread in pool:
            thread.join()
        bus.flush()
        stream = eventbus.read_stream(bus.path)
        beats = [e for e in stream.events if e["type"] == "heartbeat"]
        assert len(beats) == per_thread * threads
        seqs = [e["seq"] for e in beats]
        assert len(set(seqs)) == len(seqs)  # no duplicated sequence numbers
        assert stream.parse_errors == []  # no interleaved torn lines
