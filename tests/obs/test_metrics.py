"""Metrics primitives: registry semantics, null path, snapshot merging."""

import pytest

from repro.obs.metrics import (
    NULL_COUNTER,
    NULL_GAUGE,
    NULL_HISTOGRAM,
    Histogram,
    MetricsRegistry,
    merge_snapshots,
    snapshot_percentile,
)


class TestRegistry:
    def test_counter_create_or_return(self):
        registry = MetricsRegistry()
        counter = registry.counter("a.b")
        counter.inc()
        counter.inc(3)
        assert registry.counter("a.b") is counter
        assert counter.value == 4

    def test_gauge_set_and_add(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("g")
        gauge.set(2.5)
        gauge.add(1.5)
        assert gauge.value == 4.0

    def test_disabled_registry_hands_out_null_singletons(self):
        registry = MetricsRegistry(enabled=False)
        assert registry.counter("x") is NULL_COUNTER
        assert registry.gauge("x") is NULL_GAUGE
        assert registry.histogram("x") is NULL_HISTOGRAM
        # Null instruments swallow writes without state.
        registry.counter("x").inc()
        registry.gauge("x").set(9.0)
        registry.histogram("x").observe(1.0)
        assert NULL_COUNTER.value == 0

    def test_snapshot_shape(self):
        registry = MetricsRegistry()
        registry.counter("c").inc(2)
        registry.gauge("g").set(1.0)
        registry.histogram("h").observe(3.0)
        snap = registry.snapshot()
        assert snap["counters"] == {"c": 2}
        assert snap["gauges"] == {"g": 1.0}
        assert snap["histograms"]["h"]["count"] == 1
        assert snap["histograms"]["h"]["sum"] == 3.0


class TestHistogram:
    def test_buckets_are_inclusive_upper_bounds(self):
        hist = Histogram("h", buckets=(1.0, 10.0))
        for value in (0.5, 1.0, 5.0, 100.0):
            hist.observe(value)
        assert hist.bucket_counts == [2, 1, 1]
        assert hist.count == 4
        assert hist.min == 0.5
        assert hist.max == 100.0
        assert hist.mean == pytest.approx(106.5 / 4)


class TestMergeSnapshots:
    def test_counters_sum_gauges_latest_histograms_sum(self):
        a = MetricsRegistry()
        a.counter("c").inc(2)
        a.gauge("g").set(1.0)
        a.histogram("h", buckets=(1.0, 10.0)).observe(0.5)
        b = MetricsRegistry()
        b.counter("c").inc(3)
        b.counter("only_b").inc()
        b.gauge("g").set(7.0)
        b.histogram("h", buckets=(1.0, 10.0)).observe(5.0)

        merged = merge_snapshots([a.snapshot(), b.snapshot()])
        assert merged["counters"] == {"c": 5, "only_b": 1}
        assert merged["gauges"]["g"] == 7.0
        hist = merged["histograms"]["h"]
        assert hist["count"] == 2
        assert hist["sum"] == 5.5
        assert hist["min"] == 0.5
        assert hist["max"] == 5.0
        assert hist["bucket_counts"] == [1, 1, 0]

    def test_merge_empty(self):
        assert merge_snapshots([]) == {"counters": {}, "gauges": {}, "histograms": {}}


class TestHistogramPercentile:
    """Linear interpolation within the covering bucket, clamped to the
    observed min/max -- checked against exact quantiles of the raw data."""

    @staticmethod
    def exact_quantile(values, q):
        """Exact linear-interpolation quantile (numpy's 'linear' method)."""
        ordered = sorted(values)
        if len(ordered) == 1:
            return ordered[0]
        rank = q * (len(ordered) - 1)
        lo = int(rank)
        hi = min(lo + 1, len(ordered) - 1)
        return ordered[lo] + (rank - lo) * (ordered[hi] - ordered[lo])

    def test_empty_histogram_is_zero(self):
        hist = Histogram("h", buckets=(1.0, 10.0))
        assert hist.percentile(0.5) == 0.0

    def test_out_of_range_q_raises(self):
        hist = Histogram("h", buckets=(1.0,))
        hist.observe(0.5)
        with pytest.raises(ValueError):
            hist.percentile(1.5)
        with pytest.raises(ValueError):
            hist.percentile(-0.1)

    def test_extremes_clamp_to_observed_min_and_max(self):
        hist = Histogram("h", buckets=(10.0, 100.0))
        for value in (3.0, 42.0, 77.0):
            hist.observe(value)
        assert hist.percentile(0.0) == pytest.approx(3.0)
        assert hist.percentile(1.0) == pytest.approx(77.0)

    def test_uniform_data_tracks_exact_quantiles_within_a_bucket(self):
        # Uniform values over [0, 100) with 10ms buckets: the estimate
        # can only err by interpolation *inside* one bucket.
        values = [float(v) for v in range(100)]
        buckets = tuple(float(b) for b in range(10, 101, 10))
        hist = Histogram("h", buckets=buckets)
        for value in values:
            hist.observe(value)
        for q in (0.1, 0.25, 0.5, 0.75, 0.9, 0.99):
            assert hist.percentile(q) == pytest.approx(
                self.exact_quantile(values, q), abs=10.0
            )

    def test_skewed_data_stays_within_one_bucket_width(self):
        values = [0.5] * 90 + [45.0] * 9 + [99.0]
        hist = Histogram("h", buckets=(1.0, 10.0, 50.0))
        for value in values:
            hist.observe(value)
        assert hist.percentile(0.5) <= 1.0            # median bucket is [0, 1]
        assert 10.0 < hist.percentile(0.95) <= 50.0   # p95 bucket is (10, 50]
        assert hist.percentile(0.999) == pytest.approx(99.0, abs=50.0)

    def test_overflow_bucket_interpolates_toward_observed_max(self):
        hist = Histogram("h", buckets=(1.0,))
        for value in (0.5, 5.0, 9.0):
            hist.observe(value)
        # q deep in the overflow bucket: bounded by (bucket edge, max].
        assert 1.0 < hist.percentile(0.9) <= 9.0

    def test_snapshot_percentile_matches_live_instrument(self):
        hist = Histogram("h", buckets=(2.0, 8.0, 32.0))
        for value in (1.0, 3.0, 5.0, 9.0, 31.0):
            hist.observe(value)
        snap = MetricsRegistry().snapshot()  # shape reference only
        payload = {
            "count": hist.count, "sum": hist.sum, "min": hist.min,
            "max": hist.max, "buckets": list(hist.buckets),
            "bucket_counts": list(hist.bucket_counts),
        }
        assert isinstance(snap, dict)
        for q in (0.1, 0.5, 0.9):
            assert snapshot_percentile(payload, q) == hist.percentile(q)

    def test_null_histogram_percentile_is_zero(self):
        assert NULL_HISTOGRAM.percentile(0.9) == 0.0
