"""Metrics primitives: registry semantics, null path, snapshot merging."""

import pytest

from repro.obs.metrics import (
    NULL_COUNTER,
    NULL_GAUGE,
    NULL_HISTOGRAM,
    Histogram,
    MetricsRegistry,
    merge_snapshots,
)


class TestRegistry:
    def test_counter_create_or_return(self):
        registry = MetricsRegistry()
        counter = registry.counter("a.b")
        counter.inc()
        counter.inc(3)
        assert registry.counter("a.b") is counter
        assert counter.value == 4

    def test_gauge_set_and_add(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("g")
        gauge.set(2.5)
        gauge.add(1.5)
        assert gauge.value == 4.0

    def test_disabled_registry_hands_out_null_singletons(self):
        registry = MetricsRegistry(enabled=False)
        assert registry.counter("x") is NULL_COUNTER
        assert registry.gauge("x") is NULL_GAUGE
        assert registry.histogram("x") is NULL_HISTOGRAM
        # Null instruments swallow writes without state.
        registry.counter("x").inc()
        registry.gauge("x").set(9.0)
        registry.histogram("x").observe(1.0)
        assert NULL_COUNTER.value == 0

    def test_snapshot_shape(self):
        registry = MetricsRegistry()
        registry.counter("c").inc(2)
        registry.gauge("g").set(1.0)
        registry.histogram("h").observe(3.0)
        snap = registry.snapshot()
        assert snap["counters"] == {"c": 2}
        assert snap["gauges"] == {"g": 1.0}
        assert snap["histograms"]["h"]["count"] == 1
        assert snap["histograms"]["h"]["sum"] == 3.0


class TestHistogram:
    def test_buckets_are_inclusive_upper_bounds(self):
        hist = Histogram("h", buckets=(1.0, 10.0))
        for value in (0.5, 1.0, 5.0, 100.0):
            hist.observe(value)
        assert hist.bucket_counts == [2, 1, 1]
        assert hist.count == 4
        assert hist.min == 0.5
        assert hist.max == 100.0
        assert hist.mean == pytest.approx(106.5 / 4)


class TestMergeSnapshots:
    def test_counters_sum_gauges_latest_histograms_sum(self):
        a = MetricsRegistry()
        a.counter("c").inc(2)
        a.gauge("g").set(1.0)
        a.histogram("h", buckets=(1.0, 10.0)).observe(0.5)
        b = MetricsRegistry()
        b.counter("c").inc(3)
        b.counter("only_b").inc()
        b.gauge("g").set(7.0)
        b.histogram("h", buckets=(1.0, 10.0)).observe(5.0)

        merged = merge_snapshots([a.snapshot(), b.snapshot()])
        assert merged["counters"] == {"c": 5, "only_b": 1}
        assert merged["gauges"]["g"] == 7.0
        hist = merged["histograms"]["h"]
        assert hist["count"] == 2
        assert hist["sum"] == 5.5
        assert hist["min"] == 0.5
        assert hist["max"] == 5.0
        assert hist["bucket_counts"] == [1, 1, 0]

    def test_merge_empty(self):
        assert merge_snapshots([]) == {"counters": {}, "gauges": {}, "histograms": {}}
