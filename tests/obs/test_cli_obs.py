"""End-to-end telemetry through the CLI: --obs-dir and 'obs report'."""

import json
import os

import pytest

from repro import obs
from repro.harness.cache import GLOBAL_STATS
from repro.harness.cli import main
from repro.obs.telemetry import SKIP_REASONS

DETECT = ["detect", "--bug", "Bug-11", "--tool", "waffle", "--budget", "5"]


@pytest.fixture(autouse=True)
def clean_obs_state():
    """The CLI sets the module-global session and the env var; make sure
    neither leaks into the rest of the suite."""
    yield
    obs.disable()
    os.environ.pop(obs.OBS_DIR_ENV, None)


def read_events(obs_dir):
    records = []
    for name in sorted(os.listdir(obs_dir)):
        if name.startswith("telemetry-") and name.endswith(".jsonl"):
            with open(os.path.join(obs_dir, name)) as fp:
                for line in fp:
                    records.append(json.loads(line))
    return records


class TestObsDirOption:
    def test_detect_emits_tagged_decisions_that_reconcile(self, tmp_path, capsys):
        obs_dir = tmp_path / "obs"
        assert main(DETECT + ["--obs-dir", str(obs_dir)]) == 0
        out = capsys.readouterr().out
        assert "telemetry written to" in out

        records = read_events(obs_dir)
        runs = [r for r in records if r["type"] == "run"]
        injects = [r for r in records if r["type"] == "inject"]
        assert runs, "detection session recorded no runs"
        assert injects, "detection session recorded no decision events"
        # Every skipped injection carries a valid reason tag.
        skips = [r for r in injects if r["action"] == "skip"]
        assert all(r.get("reason") in SKIP_REASONS for r in skips)
        # Per-run totals reconcile with the engine's internal counts.
        for run in runs:
            events = [e for e in injects if e["run"] == run["run_seq"]]
            if not events:
                continue
            assert sum(1 for e in events if e["action"] == "inject") == run["injected"]
            assert sum(1 for e in events if e["action"] == "skip") == (
                run["skipped_decay"] + run["skipped_interference"] + run["skipped_budget"]
            )

    def test_obs_report_renders_and_reconciles(self, tmp_path, capsys):
        obs_dir = tmp_path / "obs"
        main(DETECT + ["--obs-dir", str(obs_dir)])
        obs.disable()  # the report must read files, not live state
        capsys.readouterr()
        assert main(["obs", "report", str(obs_dir)]) == 0
        out = capsys.readouterr().out
        assert "Telemetry digest" in out
        assert "injection decisions" in out
        assert "reconciliation: decision events match" in out

    def test_obs_chrome_export(self, tmp_path, capsys):
        obs_dir = tmp_path / "obs"
        main(DETECT + ["--obs-dir", str(obs_dir)])
        obs.disable()
        capsys.readouterr()
        assert main(["obs", "chrome", str(obs_dir)]) == 0
        trace = json.loads((obs_dir / "trace.json").read_text())
        assert trace["traceEvents"], "expected virtual-time trace events"

    def test_determinism_unchanged_by_telemetry(self, tmp_path, capsys):
        """Telemetry is observational: the same detection run with and
        without --obs-dir prints identical run measurements."""
        noise = ("telemetry written", "cache:")
        strip = lambda text: [
            l for l in text.splitlines() if not l.startswith(noise)
        ]
        main(DETECT)
        plain = capsys.readouterr().out
        main(DETECT + ["--obs-dir", str(tmp_path / "obs")])
        with_obs = capsys.readouterr().out
        assert strip(plain) == strip(with_obs)


class TestCacheSummaryLine:
    @pytest.fixture(autouse=True)
    def reset_global_stats(self):
        # GLOBAL_STATS accumulates per process; isolate this test.
        def zero():
            GLOBAL_STATS.hits = GLOBAL_STATS.misses = GLOBAL_STATS.writes = 0

        zero()
        yield
        zero()

    def test_summary_line_reports_hits_and_misses(self, tmp_path, capsys):
        cache_dir = str(tmp_path / "cache")
        args = ["table2", "--apps", "netmq", "--cache-dir", cache_dir]
        main(args)
        cold = capsys.readouterr().out
        cold_line = next(l for l in cold.splitlines() if l.startswith("cache:"))
        assert "misses" in cold_line and "writes" in cold_line

        # The summary is per-invocation: the warm run's line must not
        # carry the cold run's misses forward.
        main(args)
        warm = capsys.readouterr().out
        warm_line = next(l for l in warm.splitlines() if l.startswith("cache:"))
        assert "100.0% hit rate" in warm_line

    def test_no_line_when_cache_unused(self, capsys):
        main(DETECT)
        out = capsys.readouterr().out
        assert not any(l.startswith("cache:") for l in out.splitlines())
