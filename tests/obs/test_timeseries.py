"""Quality time series: schema versioning, torn tails, trend render."""

import json

from repro.obs import timeseries
from repro.obs.timeseries import (
    TIMESERIES_SCHEMA_VERSION,
    append_row,
    build_row,
    load_series,
    render_trend,
    validate_row,
)


def quality_fixture(rate=1.0):
    return {
        "curve": {
            "records": 10, "found": 8,
            "bands": {
                "detectable": {"planted": 8, "found": 8, "rate": rate},
                "undetectable": {"planted": 2, "found": 0, "rate": 0.0},
            },
        },
        "rollup": {"injected": 5, "delay_ms": 20.0, "skipped": 3,
                   "counterfactual_sites": 1, "decay": 1, "interference": 1,
                   "budget": 1},
    }


class TestRoundTrip:
    def test_meta_line_written_once_rows_append(self, tmp_path):
        row = build_row(quality=quality_fixture(), label="one", t=100.0)
        target = append_row(tmp_path, row)
        append_row(tmp_path, build_row(quality=quality_fixture(), label="two", t=200.0))
        lines = [json.loads(l) for l in target.read_text().splitlines()]
        assert lines[0]["type"] == "meta"
        assert lines[0]["v"] == TIMESERIES_SCHEMA_VERSION
        assert [l["label"] for l in lines[1:]] == ["one", "two"]
        rows, warnings = load_series(tmp_path)
        assert not warnings
        assert [r["t"] for r in rows] == [100.0, 200.0]

    def test_torn_tail_recovered(self, tmp_path):
        target = append_row(tmp_path, build_row(label="ok", t=1.0))
        with open(target, "a") as fp:
            fp.write('{"v": 1, "type": "qual')
        rows, warnings = load_series(tmp_path)
        assert len(rows) == 1
        assert any("torn tail" in w for w in warnings)

    def test_future_schema_rows_are_skipped_not_misparsed(self, tmp_path):
        target = append_row(tmp_path, build_row(label="ok", t=1.0))
        with open(target, "a") as fp:
            fp.write(json.dumps({"v": TIMESERIES_SCHEMA_VERSION + 1,
                                 "type": "quality", "t": 2.0, "label": "new"}) + "\n")
        rows, warnings = load_series(tmp_path)
        assert [r["label"] for r in rows] == ["ok"]
        assert any("newer than supported" in w for w in warnings)

    def test_validate_row_requires_fields(self):
        assert validate_row({"v": 1, "type": "quality", "t": 1.0, "label": "x"}) == []
        assert any("missing field" in p for p in validate_row({"type": "quality"}))
        assert any("unknown row type" in p
                   for p in validate_row({"v": 1, "type": "mystery", "t": 1, "label": "x"}))


class TestBuildRow:
    def test_bands_and_budget_fold_in(self):
        row = build_row(quality=quality_fixture(), t=5.0)
        assert row["bands"]["detectable"]["rate"] == 1.0
        assert row["budget"]["counterfactual_sites"] == 1
        assert row["bugs"] == {"planted": 10, "found": 8}

    def test_bench_timings_via_drift_tracker(self, tmp_path):
        bench = tmp_path / "BENCH_x.json"
        bench.write_text(json.dumps({"benchmark": "x", "run_s": 1.5,
                                     "within_budget": True}))
        row = build_row(bench_paths=[bench], t=5.0)
        assert row["bench"]["timings"] == {"x.run_s": 1.5}
        assert row["bench"]["snapshots"] == 1
        assert row["bench"]["regressions"] == 0


class TestTrend:
    def test_empty_series(self):
        assert "no rows" in render_trend([])

    def test_sparklines_and_latest_values(self):
        rows = [build_row(quality=quality_fixture(rate=r), t=float(i), label="c%d" % i)
                for i, r in enumerate((0.5, 0.75, 1.0))]
        text = render_trend(rows)
        assert "detection-quality trend" in text
        assert "detectable-band rate" in text
        assert "latest=1" in text

    def test_bench_regressions_warn(self):
        rows = [{"v": 1, "type": "quality", "t": 1.0, "label": "x",
                 "bench": {"regressions": 2, "budget_problems": 1, "timings": {}}}]
        text = render_trend(rows)
        assert "2 benchmark regression(s)" in text
        assert "1 benchmark budget problem(s)" in text
