"""Explainable injection decisions: every skip carries exactly one reason.

These tests pin the skip-reason taxonomy (``decay`` | ``interference`` |
``budget``) at the engine level and the reconciliation invariant: the
per-decision events a session records must match the engine's internal
counters exactly.
"""

import json
import random

import pytest

from repro import obs
from repro.core.candidates import CandidateKind, CandidatePair, CandidateSet
from repro.core.config import WaffleConfig
from repro.core.delay_policy import DecayState, FixedDelayPolicy
from repro.core.interference import InterferenceIndex
from repro.core.runtime import InjectionEngine
from repro.sim.instrument import AccessType, Location, PendingAccess


@pytest.fixture
def session(tmp_path):
    session = obs.configure(tmp_path / "obs")
    yield session
    obs.disable()


def make_pair(delay="l1", other="l2"):
    return CandidatePair(
        kind=CandidateKind.USE_AFTER_FREE,
        delay_location=Location(delay),
        other_location=Location(other),
    )


def pending(site="l1", tid=1, ts=0.0):
    return PendingAccess(
        location=Location(site),
        access_type=AccessType.USE,
        object_id=1,
        thread_id=tid,
        timestamp=ts,
    )


def make_engine(config=None, pairs=(), interference=None, decay=None, rng=None):
    config = config or WaffleConfig()
    candidates = CandidateSet()
    for pair in pairs:
        candidates.add(pair)
    return InjectionEngine(
        config=config,
        candidates=candidates,
        decay=decay or DecayState(config.decay_lambda),
        delay_policy=FixedDelayPolicy(config.fixed_delay_ms),
        interference=interference,
        rng=rng or random.Random(0),
    )


def skip_events(session):
    return [e for e in session._pending if e.get("type") == "inject" and e["action"] == "skip"]


class TestInterferenceSuppression:
    def test_emits_exactly_one_interference_skip_and_no_decay_skip(self, session):
        # Fresh decay state: p("A") == 1.0, so the probability draw
        # always passes and the only thing standing between the site
        # and an injection is the interference guard.
        index = InterferenceIndex([frozenset({"A", "B"})])
        engine = make_engine(pairs=[make_pair(delay="A")], interference=index)
        engine.ledger.register("B", thread_id=2, start=0.0, duration=100.0)

        assert engine.decide(pending(site="A", ts=10.0)) == 0.0

        skips = skip_events(session)
        assert [e["reason"] for e in skips] == ["interference"]
        assert not any(e["reason"] == "decay" for e in skips)
        assert engine.skipped_interference == 1
        assert engine.skipped_decay == 0
        assert engine.skipped_budget == 0
        # The suppressing site is named, making the decision explainable.
        assert skips[0]["detail"] == "B"
        assert session.c_skip["interference"].value == 1
        assert session.c_skip["decay"].value == 0

    def test_no_event_without_session(self):
        # Engines constructed with telemetry disabled still count.
        index = InterferenceIndex([frozenset({"A", "B"})])
        engine = make_engine(pairs=[make_pair(delay="A")], interference=index)
        engine.ledger.register("B", thread_id=2, start=0.0, duration=100.0)
        engine.decide(pending(site="A", ts=10.0))
        assert engine.skipped_interference == 1


class TestReasonTaxonomy:
    def test_decay_skip(self, session):
        class HighRng:
            @staticmethod
            def random():
                return 0.999

        config = WaffleConfig()
        decay = DecayState(config.decay_lambda)
        decay.register("l1")
        decay.decay("l1")  # p drops below the forced draw
        engine = make_engine(config=config, pairs=[make_pair()], decay=decay, rng=HighRng())
        assert engine.decide(pending()) == 0.0
        (event,) = skip_events(session)
        assert event["reason"] == "decay"
        assert engine.skipped_decay == 1

    def test_budget_skip_for_retired_location(self, session):
        config = WaffleConfig(decay_lambda=1.0)  # one injection retires a site
        engine = make_engine(config=config, pairs=[make_pair()])
        assert engine.decide(pending(ts=0.0)) > 0.0
        # The injection decayed p to 0 and dropped the pair; a tracker
        # rediscovering it without a reset hits the retired path.
        engine.candidates.add(make_pair())
        assert engine.decide(pending(ts=500.0)) == 0.0
        (event,) = skip_events(session)
        assert event["reason"] == "budget"
        assert event["detail"] == "retired"
        assert engine.skipped_budget == 1

    def test_budget_skip_for_zero_length(self, session):
        # A proportional policy with no learned gaps and no floor
        # produces zero-length delays (the online/no-prep ablation
        # before any gap has been observed).
        from repro.core.delay_policy import ProportionalDelayPolicy

        config = WaffleConfig()
        candidates = CandidateSet()
        candidates.add(make_pair())
        engine = InjectionEngine(
            config=config,
            candidates=candidates,
            decay=DecayState(config.decay_lambda),
            delay_policy=ProportionalDelayPolicy({}, alpha=1.0, min_delay_ms=0.0),
            interference=None,
            rng=random.Random(0),
        )
        assert engine.decide(pending()) == 0.0
        (event,) = skip_events(session)
        assert event["reason"] == "budget"
        assert event["detail"] == "zero_length"

    def test_inject_event_carries_length(self, session):
        engine = make_engine(pairs=[make_pair()])
        length = engine.decide(pending())
        assert length > 0.0
        (event,) = [e for e in session._pending if e.get("type") == "inject"]
        assert event["action"] == "inject"
        assert event["len_ms"] == length


class TestReconciliation:
    def test_events_match_engine_counters(self, session):
        """Drive one engine through every decision path and check the
        emitted events reconcile with its internal counts."""
        index = InterferenceIndex([frozenset({"A", "B"})])
        engine = make_engine(
            pairs=[make_pair(delay="A", other="x"), make_pair(delay="B", other="y")],
            interference=index,
        )
        engine.decide(pending(site="A", ts=0.0))  # inject
        engine.decide(pending(site="B", ts=200.0, tid=2))  # inject; delay ongoing
        for ts in (210.0, 220.0, 230.0):  # draws under p=0.9 still pass
            engine.decide(pending(site="A", ts=ts))  # interference skips

        events = [e for e in session._pending if e.get("type") == "inject"]
        injected = sum(1 for e in events if e["action"] == "inject")
        skipped = sum(1 for e in events if e["action"] == "skip")
        assert injected == engine.ledger.count
        assert skipped == engine.skipped_total
        assert engine.considered == injected + skipped
        assert all(e["run"] == engine.obs_run_seq for e in events)
        # Counter totals agree with the plain-int accounting.
        assert session.c_considered.value == engine.considered
        assert session.c_injected.value == engine.ledger.count

    def test_flushed_jsonl_skips_all_carry_valid_reasons(self, session, tmp_path):
        index = InterferenceIndex([frozenset({"A", "B"})])
        engine = make_engine(pairs=[make_pair(delay="A")], interference=index)
        engine.ledger.register("B", thread_id=2, start=0.0, duration=1000.0)
        for ts in (1.0, 2.0, 3.0):
            engine.decide(pending(site="A", ts=ts))
        session.flush()
        lines = [json.loads(line) for line in session.events_path.read_text().splitlines()]
        skips = [r for r in lines if r.get("type") == "inject" and r["action"] == "skip"]
        assert len(skips) == 3
        assert all(r["reason"] in obs.SKIP_REASONS for r in skips)
