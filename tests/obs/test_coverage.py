"""Coverage observatory: accounting that reconciles with the engine."""

import json

import pytest

from repro.apps import bug_workload
from repro.baselines import WaffleBasic
from repro.core.config import WaffleConfig
from repro.core.detector import Waffle
from repro.obs import coverage as coverage_mod


@pytest.fixture(scope="module")
def outcome():
    return Waffle(WaffleConfig(seed=21)).detect(
        bug_workload("Bug-8"), max_detection_runs=8
    )


class TestSessionRecord:
    def test_detect_attaches_a_coverage_record(self, outcome):
        record = outcome.coverage
        assert record is not None
        assert record["type"] == coverage_mod.RECORD_TYPE
        assert record["tool"] == "waffle"
        assert record["bug_found"] == outcome.bug_found

    def test_reconciles_exactly_with_engine_counters(self, outcome):
        record = outcome.coverage
        assert coverage_mod.reconcile_coverage(record) == []
        # The record's totals are the same numbers the RunRecords carry.
        assert record["injected_total"] == sum(
            r.delays_injected for r in outcome.runs
        )
        for reason in ("decay", "interference", "budget"):
            assert record["skipped_%s" % reason] == sum(
                getattr(r, "skipped_%s" % reason) for r in outcome.runs
            )

    def test_statuses_partition_the_pair_universe(self, outcome):
        record = outcome.coverage
        assert record["pairs_total"] == (
            record["pairs_delayed"] + record["pairs_pruned"] + record["pairs_planned"]
        )
        assert record["pairs_delayed"] >= 1  # the bug-exposing pair was tested

    def test_online_tool_emits_the_same_record_shape(self):
        outcome = WaffleBasic(WaffleConfig(seed=21)).detect(
            bug_workload("Bug-1"), max_detection_runs=6
        )
        assert outcome.coverage is not None
        assert coverage_mod.reconcile_coverage(outcome.coverage) == []


class TestReconcileFlagsInconsistencies:
    def test_detects_cooked_totals(self, outcome):
        record = json.loads(json.dumps(outcome.coverage))
        record["injected_total"] += 1
        problems = coverage_mod.reconcile_coverage(record)
        assert any("injected_total" in p for p in problems)

    def test_detects_status_disagreement(self, outcome):
        record = json.loads(json.dumps(outcome.coverage))
        delayed = next(e for e in record["pairs"] if e["status"] == "delayed")
        delayed["status"] = "planned"
        problems = coverage_mod.reconcile_coverage(record)
        assert any("disagrees" in p for p in problems)


class TestPersistence:
    def test_write_then_load_round_trips(self, outcome, tmp_path):
        path = coverage_mod.write_coverage(outcome.coverage, tmp_path)
        assert path.name.startswith("coverage-")
        records = coverage_mod.load_coverage_dir(tmp_path)
        assert records == [outcome.coverage]

    def test_load_skips_partially_written_files(self, outcome, tmp_path):
        coverage_mod.write_coverage(outcome.coverage, tmp_path)
        (tmp_path / "coverage-999-0.json").write_text('{"version": 1, "rec')
        records = coverage_mod.load_coverage_dir(tmp_path)
        assert len(records) == 1

    def test_load_missing_directory_is_empty(self, tmp_path):
        assert coverage_mod.load_coverage_dir(tmp_path / "nope") == []


class TestMergeAndRender:
    def test_merge_prefers_delayed_status(self, outcome):
        # Session B saw the same pairs but never injected: the merged
        # view keeps 'delayed' (tested in *any* session = covered).
        other = json.loads(json.dumps(outcome.coverage))
        other["bug_found"] = False
        other["injected_total"] = 0
        other["site_injections"] = {}
        for entry in other["pairs"]:
            entry["status"] = "planned" if entry["status"] == "delayed" else entry["status"]
            entry["delayed_count"] = 0
        merged = coverage_mod.merge_coverage([outcome.coverage, other])
        assert merged["sessions"] == 2
        assert merged["pairs_delayed"] == outcome.coverage["pairs_delayed"]
        assert merged["injected_total"] == outcome.coverage["injected_total"]
        assert merged["bugs_found"] == (1 if outcome.bug_found else 0)

    def test_render_lists_every_pair(self, outcome):
        text = coverage_mod.render_coverage(
            outcome.coverage, per_session=[outcome.coverage]
        )
        assert "CANDIDATE-PAIR COVERAGE" in text
        for entry in outcome.coverage["pairs"]:
            assert entry["delay_site"] in text
        assert "per session:" in text
