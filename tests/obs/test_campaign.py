"""Campaign view fold, live progress, status/analytics rendering."""

import io
import json
import os
from types import SimpleNamespace

import pytest

from repro.harness import faults
from repro.harness.cli import main
from repro.obs import campaign, eventbus


@pytest.fixture(autouse=True)
def clean_bus_state():
    yield
    eventbus.disable()
    os.environ.pop(eventbus.EVENTS_DIR_ENV, None)
    faults.disable()
    faults.on_chaos_fire = None


def _ev(etype, **fields):
    record = {"type": etype, "seq": fields.pop("seq", 0), "t": fields.pop("t", 0.0)}
    record.update(fields)
    return record


SAMPLE = [
    _ev("campaign_begin", t=1.0, command="table4", seed=0, jobs=2),
    _ev("fanout", t=1.0, unit="cell_fn", cells=3, jobs=2),
    _ev("cell_begin", t=1.0, cell="c1", unit="cell_fn", attempt=1),
    _ev("cell_begin", t=1.0, cell="c2", unit="cell_fn", attempt=1),
    _ev("cache", t=1.1, action="miss"),
    _ev("cache", t=1.2, action="hit"),
    _ev("chaos", t=1.3, site="worker_crash", key="c2", attempt=1),
    _ev("fault", t=1.3, cell="c2", attempt=1, kind="worker_crash", error="x"),
    _ev("cell_retry", t=1.4, cell="c2", attempt=2, backoff_s=0.01, kind="worker_crash"),
    _ev("cell_begin", t=1.5, cell="c2", unit="cell_fn", attempt=2),
    _ev("prep", t=1.6, test="app:t1", seed=0, limit=100, pairs=4, sites=2),
    _ev("detect_run", t=1.7, kind="online", test="app:t1", seed=1, hook_seed=1,
        injected=3, crashed=True, pairs_observed=2),
    _ev("detection", t=1.8, tool="waffle", bug="Bug-1", test="app:t1", attempt=1,
        matched=True, runs=2, time_ms=12.5, session_runs=2, delays=3, crashes=1, pairs=4),
    _ev("cell_end", t=2.0, cell="c1", status="ok", attempt=1, wall_s=1.0),
    _ev("cell_end", t=2.5, cell="c2", status="ok", attempt=2, wall_s=1.0),
    _ev("cell_resumed", t=2.6, cell="c3"),
    _ev("watchdog", t=2.7, cell="c9", deadline_s=5.0),
    _ev("checkpoint", t=2.8, cell="c1", status="ok", attempts=1),
    _ev("campaign_end", t=3.0, ok=True, wall_s=2.0),
]


class TestFold:
    def test_counts_every_dimension(self):
        view = campaign.fold_events(SAMPLE)
        assert view.cells_expected == 3
        assert view.cells_done == 3  # c1 ok, c2 ok, c3 resumed
        assert view.by_status("ok") == 2
        assert view.retries == 1
        assert view.resumed == 1
        assert view.watchdog_kills == 1
        assert view.chaos_fires == 1
        assert view.checkpoints == 1
        assert view.faults == {"worker_crash": 1}
        assert view.cache_hits == 1 and view.cache_misses == 1
        assert view.elapsed_s == 2.0
        assert len(view.campaigns) == 1 and len(view.finished) == 1

    def test_detection_funnel_from_deterministic_fields(self):
        view = campaign.fold_events(SAMPLE)
        assert view.pairs_candidates == 4 + 4  # prep + detection census
        assert view.delays_injected == 3 + 3  # detect_run + detection census
        assert view.pairs_observed == 2
        assert view.detect_crashes == 1 + 1
        assert len(view.detected) == 1

    def test_duplicate_work_products_collapse(self):
        # A retried/resumed cell re-emits identical deterministic events;
        # the fold must count them once.
        view = campaign.fold_events(SAMPLE + SAMPLE[10:13])
        assert len(view.preps) == 1
        assert len(view.detect_runs) == 1
        assert len(view.detections) == 1
        assert view.pairs_candidates == 8

    def test_distinct_work_products_do_not_collapse(self):
        other = _ev("detect_run", t=9.0, kind="online", test="app:t2", seed=2,
                    hook_seed=2, injected=1, crashed=False, pairs_observed=0)
        view = campaign.fold_events(SAMPLE + [other])
        assert len(view.detect_runs) == 2
        assert view.delays_injected == 3 + 3 + 1

    def test_unknown_event_type_is_a_warning(self):
        view = campaign.fold_events([_ev("mystery", t=1.0)])
        assert any("unknown event type" in w for w in view.warnings)

    def test_eta_from_completed_cell_throughput(self):
        events = [
            _ev("fanout", t=100.0, unit="u", cells=4, jobs=1),
            _ev("cell_begin", t=100.0, cell="c1", unit="u"),
            _ev("cell_end", t=110.0, cell="c1", status="ok", attempt=1, wall_s=10.0),
            _ev("cell_begin", t=110.0, cell="c2", unit="u"),
            _ev("cell_end", t=120.0, cell="c2", status="ok", attempt=1, wall_s=10.0),
        ]
        view = campaign.fold_events(events)
        assert view.eta_s() == pytest.approx(20.0)  # 2 left x 10s/cell

    def test_eta_is_none_before_any_completion(self):
        view = campaign.fold_events([_ev("fanout", t=100.0, unit="u", cells=4, jobs=1)])
        assert view.eta_s() is None


class TestRenderStatus:
    def test_sections_and_funnel(self):
        view = campaign.fold_events(SAMPLE)
        text = campaign.render_status(view, source="dir")
        assert "Campaign status — dir" in text
        assert "command: table4" in text
        assert "candidate pairs 8 → delays injected 6 → near-miss pairs 2 → detected 1" in text
        assert "chaos fires 1" in text
        assert "Bug-1" in text

    def test_in_flight_cells_listed_while_running(self):
        events = [
            _ev("fanout", t=0.0, unit="u", cells=2, jobs=1),
            _ev("cell_begin", t=0.0, cell="c1", unit="unit_fn"),
        ]
        text = campaign.render_status(campaign.fold_events(events))
        assert "in flight (1)" in text
        assert "unit_fn" in text


class TestProgressRenderer:
    def test_lifecycle_lines_reach_the_stream(self):
        out = io.StringIO()
        bus = eventbus.configure(None)
        assert campaign.attach_progress(out) is not None
        for event in SAMPLE:
            bus.emit(event["type"], **{k: v for k, v in event.items()
                                       if k not in ("type", "seq", "t")})
        text = out.getvalue()
        assert "fanout cell_fn: 3 cells" in text
        assert "retry c2" in text
        assert "chaos fired at worker_crash" in text
        assert "DETECTED waffle/Bug-1" in text
        assert "campaign finished" in text

    def test_high_frequency_events_stay_silent(self):
        out = io.StringIO()
        renderer = campaign.ProgressRenderer(out)
        renderer(_ev("cache", action="hit"))
        renderer(_ev("prep", test="t", pairs=1))
        assert out.getvalue() == ""
        assert renderer.view.cache_hits == 1  # still folded

    def test_attach_without_a_bus_returns_none(self):
        assert campaign.attach_progress(io.StringIO()) is None

    def test_renderer_write_failure_is_swallowed(self):
        class Broken:
            def write(self, _):
                raise OSError("gone")

            def flush(self):
                raise OSError("gone")

        renderer = campaign.ProgressRenderer(Broken())
        renderer(_ev("cell_end", cell="c1", status="ok", attempt=1, wall_s=0.1))


class TestAnalytics:
    def test_ttfd_accumulates_across_attempts(self):
        events = [
            _ev("detection", t=1.0, tool="waffle", bug="Bug-1", test="app:t",
                attempt=1, matched=False, runs=5, time_ms=10.0, session_runs=5),
            _ev("detection", t=2.0, tool="waffle", bug="Bug-1", test="app:t",
                attempt=2, matched=True, runs=2, time_ms=5.0, session_runs=2),
        ]
        analytics = campaign.detection_analytics(campaign.fold_events(events))
        (row,) = analytics["rows"]
        assert row["detected"] is True
        assert row["ttfd_ms"] == pytest.approx(15.0)
        assert row["expose_attempt"] == 2
        assert row["app"] == "app"
        assert analytics["ttfd_by_bug"]["Bug-1"]["n"] == 1

    def test_never_matched_target_reports_none(self):
        events = [
            _ev("detection", t=1.0, tool="waffle", bug="Bug-9", test="a:t",
                attempt=1, matched=False, runs=5, time_ms=10.0),
        ]
        analytics = campaign.detection_analytics(campaign.fold_events(events))
        assert analytics["detected"] == 0
        assert analytics["rows"][0]["ttfd_ms"] is None

    def test_skip_taxonomy_rolls_up_counters(self):
        data = SimpleNamespace(metrics={"counters": {
            "inject.considered": 10, "inject.injected": 6,
            "inject.skipped.decay": 2, "inject.skipped.interference": 1,
            "inject.skipped.budget": 1,
        }})
        rollup = campaign.skip_taxonomy(data)
        assert rollup["considered"] == 10
        assert rollup["decay"] == 2

    def test_render_analytics_degrades_without_optional_inputs(self):
        text = campaign.render_analytics(campaign.fold_events(SAMPLE))
        assert "no co-located telemetry" in text
        assert "no BENCH_*.json history supplied" in text


class TestPerfTracker:
    def _snapshot(self, tmp_path, name, payload):
        path = tmp_path / name
        path.write_text(json.dumps(payload))
        return path

    def test_drift_beyond_threshold_is_a_regression(self, tmp_path):
        older = self._snapshot(tmp_path, "BENCH_x.a.json",
                               {"benchmark": "x", "serial_s": 1.0})
        newer = self._snapshot(tmp_path, "BENCH_x.b.json",
                               {"benchmark": "x", "serial_s": 1.5})
        perf = campaign.perf_tracker([older, newer])
        (reg,) = perf["regressions"]
        assert reg["key"] == "serial_s"
        assert reg["delta_pct"] == pytest.approx(50.0)

    def test_drift_within_threshold_is_quiet(self, tmp_path):
        older = self._snapshot(tmp_path, "BENCH_x.a.json",
                               {"benchmark": "x", "serial_s": 1.0})
        newer = self._snapshot(tmp_path, "BENCH_x.b.json",
                               {"benchmark": "x", "serial_s": 1.1})
        assert campaign.perf_tracker([older, newer])["regressions"] == []

    def test_own_verdict_flags_are_budget_problems(self, tmp_path):
        bad = self._snapshot(tmp_path, "BENCH_y.json",
                             {"benchmark": "y", "within_budget": False,
                              "rows_identical": False})
        perf = campaign.perf_tracker([bad])
        assert len(perf["budget_problems"]) == 2

    def test_unreadable_snapshot_is_reported(self, tmp_path):
        broken = self._snapshot(tmp_path, "BENCH_z.json", {})
        broken.write_text("{torn")
        perf = campaign.perf_tracker([broken])
        assert any("unreadable" in p for p in perf["budget_problems"])


TABLE4 = ["table4", "--bugs", "Bug-1", "--attempts", "2", "--budget", "10"]


class TestCliIntegration:
    def test_progress_flag_renders_live_lines(self, capsys):
        assert main(["table2", "--apps", "netmq", "--progress"]) == 0
        err = capsys.readouterr().err
        assert "progress:" in err
        assert "campaign finished" in err

    def test_events_dir_then_campaign_status(self, tmp_path, capsys):
        events_dir = tmp_path / "ev"
        assert main(TABLE4 + ["--events-dir", str(events_dir)]) == 0
        os.environ.pop(eventbus.EVENTS_DIR_ENV, None)
        eventbus.disable()
        capsys.readouterr()
        assert main(["campaign", "status", str(events_dir)]) == 0
        out = capsys.readouterr().out
        assert "Campaign status" in out
        assert "command: table4" in out
        assert "detection funnel" in out

    def test_campaign_merge_is_order_independent(self, tmp_path, capsys):
        events_dir = tmp_path / "ev"
        # table2 across two apps fans enough cells out that the pool
        # engages and each worker opens its own stream.
        assert main(["table2", "--apps", "netmq", "mqttnet", "--jobs", "2",
                     "--events-dir", str(events_dir)]) == 0
        os.environ.pop(eventbus.EVENTS_DIR_ENV, None)
        eventbus.disable()
        streams = sorted(str(p) for p in events_dir.glob("events-*.jsonl"))
        assert len(streams) >= 2  # coordinator + workers
        out1, out2 = tmp_path / "m1.jsonl", tmp_path / "m2.jsonl"
        assert main(["campaign", "merge"] + streams + ["--merged-out", str(out1)]) == 0
        assert main(["campaign", "merge"] + streams[::-1] + ["--merged-out", str(out2)]) == 0
        assert out1.read_bytes() == out2.read_bytes()

    def test_status_on_missing_stream_fails_cleanly(self, tmp_path, capsys):
        assert main(["campaign", "status", str(tmp_path / "nothing")]) == 1
        assert "no event streams" in capsys.readouterr().out

    def test_chaos_retried_campaign_analyzes_identically(self, tmp_path, capsys):
        """The acceptance identity: a chaos-disrupted campaign's analytics
        report equals the clean campaign's, byte for byte."""
        clean_dir, chaos_dir = tmp_path / "clean", tmp_path / "chaos"
        assert main(TABLE4 + ["--events-dir", str(clean_dir)]) == 0
        os.environ.pop(eventbus.EVENTS_DIR_ENV, None)
        eventbus.disable()
        faults.configure("seed=7,worker_crash=1.0")
        try:
            assert main(TABLE4 + ["--events-dir", str(chaos_dir), "--retries", "4"]) == 0
        finally:
            faults.disable()
        os.environ.pop(eventbus.EVENTS_DIR_ENV, None)
        eventbus.disable()
        clean_view, _ = campaign.load_view(clean_dir)
        chaos_view, _ = campaign.load_view(chaos_dir)
        assert chaos_view.retries > 0  # chaos actually disrupted it
        assert campaign.render_analytics(clean_view) == campaign.render_analytics(chaos_view)

    def test_obs_analytics_cli_renders(self, tmp_path, capsys):
        events_dir = tmp_path / "ev"
        assert main(TABLE4 + ["--events-dir", str(events_dir)]) == 0
        os.environ.pop(eventbus.EVENTS_DIR_ENV, None)
        eventbus.disable()
        capsys.readouterr()
        assert main(["obs", "analytics", str(events_dir)]) == 0
        out = capsys.readouterr().out
        assert "Campaign analytics" in out
        assert "time to first detection" in out
        assert "Bug-1" in out


class TestEtaText:
    def test_warming_up_while_cells_exist_but_none_completed(self):
        view = campaign.fold_events([
            _ev("fanout", t=100.0, unit="u", cells=4, jobs=1),
            _ev("cell_begin", t=100.0, cell="c1", unit="u"),
        ])
        assert campaign.eta_text(view) == "warming up"

    def test_numeric_eta_once_a_cell_completes(self):
        view = campaign.fold_events([
            _ev("fanout", t=100.0, unit="u", cells=4, jobs=1),
            _ev("cell_begin", t=100.0, cell="c1", unit="u"),
            _ev("cell_end", t=110.0, cell="c1", status="ok", attempt=1, wall_s=10.0),
        ])
        assert campaign.eta_text(view) != "warming up"

    def test_finished_campaign_shows_zero_not_warming_up(self):
        view = campaign.fold_events([
            _ev("campaign_begin", t=1.0, command="t", seed=0, jobs=1),
            _ev("fanout", t=1.0, unit="u", cells=1, jobs=1),
            _ev("campaign_end", t=2.0, ok=True, wall_s=1.0),
        ])
        assert view.finished
        assert campaign.eta_text(view) != "warming up"

    def test_render_status_says_warming_up(self):
        view = campaign.fold_events([
            _ev("campaign_begin", t=1.0, command="t", seed=0, jobs=1),
            _ev("fanout", t=1.0, unit="u", cells=4, jobs=1),
            _ev("cell_begin", t=1.0, cell="c1", unit="u"),
        ])
        text = campaign.render_status(view, source="dir")
        assert "warming up" in text
