"""OpenMetrics export: grammar, determinism filters, validator."""

from repro.obs import campaign as campaign_mod
from repro.obs.openmetrics import (
    render_openmetrics,
    sanitize_name,
    validate_openmetrics,
)

SNAPSHOT = {
    "counters": {"inject.injected": 7, "sched.runs": 3, "campaign.wall_s": 9},
    "gauges": {"vt.threads": 4},
    "histograms": {
        "nearmiss.gap_ms": {
            "count": 3, "sum": 10.5, "min": 1.0, "max": 6.0,
            "buckets": [2.0, 5.0], "bucket_counts": [1, 1, 1],
        }
    },
}


def fuzz_view():
    return campaign_mod.fold_events([
        {"type": "detect_run", "seq": 1, "t": 0.0, "w": "a", "run": 0,
         "injected": 5, "pairs_observed": 2, "crashed": True},
        {"type": "fault", "seq": 2, "t": 0.0, "w": "a", "kind": "hang"},
        {"type": "cache", "seq": 3, "t": 0.0, "w": "a", "action": "hit"},
    ])


class TestRender:
    def test_counters_histograms_and_terminal_eof(self):
        text = render_openmetrics(snapshot=SNAPSHOT)
        assert text.endswith("# EOF\n")
        assert "# TYPE waffle_inject_injected counter" in text
        assert "waffle_inject_injected_total 7" in text
        assert 'waffle_nearmiss_gap_ms_bucket{le="2"} 1' in text
        assert 'waffle_nearmiss_gap_ms_bucket{le="+Inf"} 3' in text
        assert "waffle_nearmiss_gap_ms_sum 10.5" in text
        assert "waffle_nearmiss_gap_ms_count 3" in text

    def test_gauges_and_wall_metrics_never_exported(self):
        text = render_openmetrics(snapshot=SNAPSHOT)
        assert "vt_threads" not in text
        assert "wall" not in text

    def test_view_gauges(self):
        text = render_openmetrics(view=fuzz_view())
        assert "waffle_funnel_delays_injected 5" in text
        assert "waffle_funnel_pairs_observed 2" in text
        assert 'waffle_ops_faults{kind="hang"} 1' in text
        assert "waffle_ops_cache_hits 1" in text

    def test_quality_band_gauges(self):
        quality = {"curve": {"bands": {
            "detectable": {"planted": 10, "found": 10, "rate": 1.0},
            "undetectable": {"planted": 4, "found": 0, "rate": 0.0},
        }, "by_topology": {"pool": [{"planted": 3, "found": 3}]}}}
        text = render_openmetrics(quality=quality)
        assert 'waffle_quality_detection_rate{band="detectable"} 1' in text
        assert 'waffle_quality_detection_rate{band="undetectable"} 0' in text
        assert 'waffle_quality_topology_detection_rate{topology="pool"} 1' in text

    def test_deterministic_only_drops_registry_and_ops_families(self):
        text = render_openmetrics(
            snapshot=SNAPSHOT, view=fuzz_view(), deterministic_only=True
        )
        assert "waffle_inject_injected" not in text  # raw registry out
        assert "waffle_ops_" not in text             # fault/cache census out
        assert "waffle_funnel_delays_injected 5" in text  # dedup funnel stays

    def test_every_render_validates_clean(self):
        for text in (
            render_openmetrics(),
            render_openmetrics(snapshot=SNAPSHOT, view=fuzz_view()),
            render_openmetrics(snapshot=SNAPSHOT, deterministic_only=True),
        ):
            assert validate_openmetrics(text) == []

    def test_sanitize_name(self):
        assert sanitize_name("nearmiss.gap_ms") == "nearmiss_gap_ms"
        assert sanitize_name("a-b c.d") == "a_b_c_d"


class TestValidator:
    def test_missing_eof(self):
        assert any("EOF" in p for p in validate_openmetrics("x_total 1\n"))

    def test_sample_without_declaration(self):
        text = "orphan_total 1\n# EOF\n"
        assert any("no TYPE" in p for p in validate_openmetrics(text))

    def test_counter_must_end_in_total(self):
        text = "# TYPE c counter\n# HELP c h\nc 1\n# EOF\n"
        assert any("_total" in p for p in validate_openmetrics(text))

    def test_histogram_buckets_must_be_cumulative(self):
        text = ("# TYPE h histogram\n# HELP h h\n"
                'h_bucket{le="1"} 5\nh_bucket{le="2"} 3\n'
                "h_sum 1\nh_count 5\n# EOF\n")
        assert any("cumulative" in p for p in validate_openmetrics(text))

    def test_non_numeric_value(self):
        text = "# TYPE g gauge\n# HELP g h\ng pancake\n# EOF\n"
        assert any("non-numeric" in p for p in validate_openmetrics(text))
