"""Span tracing and the Chrome trace_event export."""

from repro.obs.tracing import NULL_SPAN, SpanTracer, chrome_trace_events


class TestSpanTracer:
    def test_span_records_duration_and_attrs(self):
        tracer = SpanTracer()
        with tracer.span("cell", category="harness", table="table2") as span:
            span.set(extra=1)
        records = tracer.drain()
        assert len(records) == 1
        record = records[0]
        assert record["type"] == "span"
        assert record["name"] == "cell"
        assert record["cat"] == "harness"
        assert record["dur_ms"] >= 0.0
        assert record["attrs"] == {"table": "table2", "extra": 1}

    def test_drain_clears(self):
        tracer = SpanTracer()
        with tracer.span("a"):
            pass
        assert len(tracer.drain()) == 1
        assert tracer.drain() == []

    def test_exception_tags_span_and_propagates(self):
        tracer = SpanTracer()
        try:
            with tracer.span("boom"):
                raise ValueError("x")
        except ValueError:
            pass
        (record,) = tracer.drain()
        assert record["attrs"]["error"] == "ValueError"

    def test_disabled_tracer_returns_null_span(self):
        tracer = SpanTracer(enabled=False)
        assert tracer.span("anything") is NULL_SPAN
        with tracer.span("anything") as span:
            span.set(ignored=True)
        assert tracer.drain() == []


class TestChromeTrace:
    def test_runs_become_processes_threads_and_delay_slices(self):
        runs = [
            {
                "kind": "detect",
                "run_seq": 1,
                "test": "t",
                "virtual_ms": 20.0,
                "vt_threads": [
                    {"tid": 1, "name": "main", "start": 0.0, "end": 20.0},
                    {"tid": 2, "name": "worker", "start": 1.0, "end": None},
                ],
                "vt_delays": [{"site": "l1", "tid": 2, "start": 5.0, "end": 9.0}],
            }
        ]
        trace = chrome_trace_events(runs)
        events = trace["traceEvents"]
        names = [e["name"] for e in events]
        assert "process_name" in names
        assert names.count("thread_name") == 2
        delay = next(e for e in events if e["name"] == "delay@l1")
        # Virtual ms -> microseconds.
        assert delay["ts"] == 5000.0
        assert delay["dur"] == 4000.0
        # A thread with no recorded end extends to the run's end.
        worker = next(e for e in events if e["name"] == "worker" and e["ph"] == "X")
        assert worker["dur"] == (20.0 - 1.0) * 1000.0

    def test_empty_runs(self):
        assert chrome_trace_events([]) == {"traceEvents": [], "displayTimeUnit": "ms"}
