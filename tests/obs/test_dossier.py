"""Bug dossiers: provenance capture, deterministic replay, minimization.

The acceptance criterion for the dossier subsystem: every bug Waffle
finds on the apps suite emits a dossier whose embedded minimal schedule
replays to the same error type at the same fault location,
deterministically. The module-scoped fixture runs that campaign once
(flight recorder installed) and the tests assert over it.
"""

import pytest

from repro.apps import all_bugs, bug_workload
from repro.core.config import WaffleConfig
from repro.core.detector import Waffle
from repro.obs import dossier as dossier_mod
from repro.obs import flightrec
from repro.sim.instrument import AccessType, Location, PendingAccess


@pytest.fixture(scope="module")
def sessions():
    """One Waffle detection per Table-4 bug, flight recorder on.

    A couple of fallback seeds absorb per-seed misses (the headline
    campaign requires 2-of-3 seeds, so one seed alone may miss a bug).
    """
    results = {}
    flightrec.install()
    try:
        for bug in all_bugs():
            test = bug_workload(bug.bug_id)
            for seed in (21, 22, 23):
                outcome = Waffle(WaffleConfig(seed=seed)).detect(
                    test, max_detection_runs=8
                )
                if outcome.bug_found:
                    break
            results[bug.bug_id] = (test, outcome)
    finally:
        flightrec.uninstall()
    return results


def _any_dossier(sessions):
    for _, (test, outcome) in sorted(sessions.items()):
        if outcome.dossiers:
            return test, outcome.dossiers[0]
    pytest.fail("no dossier produced by any session")


class TestAcceptance:
    def test_every_found_bug_emits_a_dossier(self, sessions):
        missing = [
            bug_id
            for bug_id, (_, outcome) in sessions.items()
            if outcome.bug_found and not outcome.dossiers
        ]
        assert not missing, missing
        assert any(outcome.bug_found for _, outcome in sessions.values())

    def test_minimal_schedules_replay_to_same_fault(self, sessions):
        for bug_id, (test, outcome) in sessions.items():
            for dossier in outcome.dossiers:
                replay, reproduced = dossier_mod.replay_dossier(dossier, test.build)
                assert reproduced, (bug_id, replay)

    def test_replay_is_deterministic(self, sessions):
        test, dossier = _any_dossier(sessions)
        first = dossier_mod.replay_schedule(test.build, dossier.schedule)
        second = dossier_mod.replay_schedule(test.build, dossier.schedule)
        assert first == second

    def test_schedules_are_verified_and_never_grow(self, sessions):
        for bug_id, (_, outcome) in sessions.items():
            for dossier in outcome.dossiers:
                assert dossier.verified, bug_id
                assert len(dossier.schedule["delays"]) <= len(
                    dossier.schedule_original
                ), bug_id

    def test_provenance_covers_matched_pairs(self, sessions):
        for bug_id, (_, outcome) in sessions.items():
            for dossier in outcome.dossiers:
                assert len(dossier.provenance) == len(
                    dossier.report.matched_pairs
                ), bug_id
                for entry in dossier.provenance:
                    assert entry["planned_delay_ms"] >= 0.0
                    assert 0.0 <= entry["decay_probability"] <= 1.0


class TestSerialization:
    def test_round_trip_via_persistence(self, sessions, tmp_path):
        _, dossier = _any_dossier(sessions)
        path = dossier_mod.write_dossier(dossier, tmp_path)
        loaded = dossier_mod.load_dossier(path)
        assert loaded.to_dict() == dossier.to_dict()
        assert loaded.fault_site == dossier.fault_site
        assert loaded.error_type == dossier.error_type

    def test_validates_against_schema(self, sessions):
        _, dossier = _any_dossier(sessions)
        assert dossier_mod.validate_dossier_dict(dossier.to_dict()) == []

    def test_validator_flags_missing_keys_and_bad_events(self, sessions):
        _, dossier = _any_dossier(sessions)
        payload = dossier.to_dict()
        payload.pop("schedule")
        payload["flight_events"] = [{"k": "not_a_kind", "seq": 0, "t": 0.0}]
        problems = dossier_mod.validate_dossier_dict(payload)
        assert any("schedule" in p for p in problems)
        assert any("not_a_kind" in p for p in problems)


class TestRendering:
    def test_text_digest_sections(self, sessions):
        _, dossier = _any_dossier(sessions)
        text = dossier_mod.render_dossier(dossier)
        assert "BUG DOSSIER" in text
        assert "candidate-pair provenance" in text
        assert "minimal reproducing schedule" in text
        assert "swimlane" in text

    def test_ascii_swimlane_marks_fault_and_delay(self, sessions):
        _, dossier = _any_dossier(sessions)
        lane = dossier_mod.render_swimlane(dossier)
        assert "X" in lane
        assert "virtual ms" in lane

    def test_html_swimlane_names_the_fault_site(self, sessions):
        _, dossier = _any_dossier(sessions)
        html = dossier_mod.render_swimlane_html(dossier)
        assert html.startswith("<!DOCTYPE html>")
        assert dossier.fault_site in html


class TestScheduleReplayHook:
    def _pending(self, site, access_type=AccessType.USE):
        return PendingAccess(Location(site), access_type, 1, 1, 0.0)

    def test_matches_only_the_recorded_occurrence(self):
        hook = dossier_mod.ScheduleReplayHook(
            [{"site": "a:1", "nth": 1, "len_ms": 5.0}]
        )
        assert hook.before_access(self._pending("a:1")) == 0.0  # occurrence 0
        assert hook.before_access(self._pending("a:1")) == 5.0  # occurrence 1
        assert hook.before_access(self._pending("a:1")) == 0.0
        assert hook.delays_injected == 1
        assert hook.total_delay_ms == 5.0

    def test_memorder_mode_ignores_unsafe_calls(self):
        hook = dossier_mod.ScheduleReplayHook(
            [{"site": "a:1", "nth": 0, "len_ms": 5.0}]
        )
        assert (
            hook.before_access(self._pending("a:1", AccessType.UNSAFE_CALL)) == 0.0
        )
        # The unsafe call did not consume occurrence 0.
        assert hook.before_access(self._pending("a:1")) == 5.0

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            dossier_mod.ScheduleReplayHook([], mode="wallclock")


class TestMinimization:
    def test_unreproducible_schedule_reported_unverified(self, sessions):
        test, dossier = _any_dossier(sessions)
        broken = dict(dossier.schedule)
        broken["delays"] = []  # delay-free run cannot manifest the bug
        delays, replays, verified = dossier_mod.minimize_schedule(
            test.build, broken, dossier.error_type, dossier.fault_site
        )
        assert not verified
        assert replays == 1
        assert delays == []
