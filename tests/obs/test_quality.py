"""Detection-quality joins: ground-truth sensitivity and attribution.

The acceptance gate lives here too: over seeds 0:200 the detector must
find *every* planted bug in the generator's detectable gap band and
*none* in the undetectable band, with the join reconciling exactly
against the oracle rows -- the paper's sensitivity claim as a test.
"""

import json

import pytest

from repro.core.config import DEFAULT_CONFIG
from repro.gen.builder import planted_oracle
from repro.gen.spec import DETECTABLE_GAP_MS, UNDETECTABLE_GAP_MS, generate_spec, spec_hash
from repro.harness import fuzz as fuzz_mod
from repro.obs import quality


def oracle_row(seed, ok=True, with_found_list=True, spec_prefix=None):
    """A fuzz-row-shaped dict whose ground truth really is seed's."""
    spec = generate_spec(seed)
    truth = planted_oracle(spec, 100.0)
    detectable = sorted(e["bug_id"] for e in truth if e["detectable"])
    row = {
        "seed": seed,
        "topology": spec.topology,
        "planted": len(truth),
        "detectable": len(detectable),
        "ok": ok,
        "spec": spec_hash(spec)[:12] if spec_prefix is None else spec_prefix,
    }
    if with_found_list:
        row["found"] = detectable if ok else detectable[:-1]
    else:
        row["found"] = len(detectable)  # event shape: count only
    return row


class TestWorkloadRecords:
    def test_joins_found_list_against_regenerated_oracle(self):
        records, problems = quality.workload_records([oracle_row(3)])
        assert not problems
        assert records
        for record in records:
            assert record["seed"] == 3
            assert record["found"] == record["detectable"]
            assert record["pair"] and record["fault_site"]

    def test_event_shape_reconstructs_found_set_from_ok(self):
        # fuzz_workload events carry found as a count; ok=True means the
        # oracle invariants held, i.e. found == detectable exactly.
        records, problems = quality.workload_records([oracle_row(5, with_found_list=False)])
        assert not problems
        assert all(r["found"] == r["detectable"] for r in records)

    def test_failing_event_row_without_ids_is_excluded_not_guessed(self):
        row = oracle_row(5, ok=False, with_found_list=False)
        records, problems = quality.workload_records([row])
        assert not records
        assert any("failing workload" in p for p in problems)

    def test_spec_hash_mismatch_excludes_the_row(self):
        records, problems = quality.workload_records(
            [oracle_row(2, spec_prefix="deadbeef0000")]
        )
        assert not records
        assert any("generator drift" in p for p in problems)

    def test_gap_and_detectability_come_from_ground_truth(self):
        records, _ = quality.workload_records([oracle_row(s) for s in range(6)])
        lo_d, hi_d = DETECTABLE_GAP_MS
        lo_u, hi_u = UNDETECTABLE_GAP_MS
        for record in records:
            if record["detectable"]:
                assert record["gap_ms"] <= hi_d
            else:
                assert lo_u <= record["gap_ms"] <= hi_u


class TestResolvableFuzzEvents:
    def test_matching_prefix_is_resolvable(self):
        resolvable, mismatched = quality.resolvable_fuzz_events([oracle_row(1)])
        assert (resolvable, mismatched) == (1, 0)

    def test_bogus_prefix_counts_mismatched(self):
        events = [oracle_row(1), oracle_row(2, spec_prefix="deadbeef0000")]
        assert quality.resolvable_fuzz_events(events) == (1, 1)

    def test_missing_prefix_is_trusted(self):
        assert quality.resolvable_fuzz_events([{"seed": 4}]) == (1, 0)


class TestSensitivityCurve:
    def test_bins_group_and_bands_roll_up(self):
        records, _ = quality.workload_records([oracle_row(s) for s in range(8)])
        curve = quality.sensitivity_curve(records)
        assert curve["records"] == len(records)
        assert curve["bands"]["detectable"]["rate"] == 1.0
        assert curve["bands"]["undetectable"]["rate"] == 0.0
        assert sum(b["planted"] for b in curve["bins"]) == len(records)
        for bins in curve["by_topology"].values():
            for row in bins:
                assert 0.0 <= row["rate"] <= 1.0
        assert set(curve["by_kind"]) == {r["kind"] for r in records}

    def test_reconcile_records_is_exact(self):
        rows = [oracle_row(s) for s in range(5)]
        records, _ = quality.workload_records(rows)
        assert quality.reconcile_records(records, rows) == []
        # Flip one verdict: the reconciliation must notice.
        flipped = [dict(r) for r in records]
        victim = next(r for r in flipped if r["detectable"])
        victim["found"] = False
        assert quality.reconcile_records(flipped, rows)


class TestRunLedger:
    def write_telemetry(self, path, runs):
        with open(path, "w") as fp:
            for run_seq, decisions in runs:
                for decision in decisions:
                    fp.write(json.dumps(dict(decision, type="inject", run=run_seq)) + "\n")
                fp.write(json.dumps({
                    "type": "run", "run_seq": run_seq, "kind": "detection",
                    "test": "t", "seed": 1, "wall_ms": 5.0, "injected": len(decisions),
                }) + "\n")

    DECISIONS = [
        {"action": "inject", "site": "a.X:1", "t_ms": 1.0, "len_ms": 4.0},
        {"action": "skip", "site": "b.Y:2", "t_ms": 2.0, "reason": "decay"},
    ]

    def test_identical_runs_across_files_dedupe(self, tmp_path):
        # A chaos-retried cell re-runs the same pure function in another
        # worker: same run record, same decisions, different file/seq.
        self.write_telemetry(tmp_path / "telemetry-1-a.jsonl", [(0, self.DECISIONS)])
        self.write_telemetry(tmp_path / "telemetry-2-b.jsonl", [(7, self.DECISIONS)])
        ledger = quality.load_run_ledger(tmp_path)
        assert ledger["runs"] == 1
        assert ledger["duplicates"] == 1
        assert ledger["decisions"] == 2

    def test_wall_ms_never_splits_identity(self, tmp_path):
        self.write_telemetry(tmp_path / "telemetry-1-a.jsonl", [(0, self.DECISIONS)])
        text = (tmp_path / "telemetry-1-a.jsonl").read_text()
        (tmp_path / "telemetry-2-b.jsonl").write_text(text.replace('5.0', '9.25'))
        assert quality.load_run_ledger(tmp_path)["runs"] == 1

    def test_different_decisions_are_distinct_runs(self, tmp_path):
        other = [dict(self.DECISIONS[0], len_ms=8.0)]
        self.write_telemetry(tmp_path / "telemetry-1-a.jsonl",
                             [(0, self.DECISIONS), (1, other)])
        assert quality.load_run_ledger(tmp_path)["runs"] == 2

    def test_torn_tail_recovered(self, tmp_path):
        self.write_telemetry(tmp_path / "telemetry-1-a.jsonl", [(0, self.DECISIONS)])
        with open(tmp_path / "telemetry-1-a.jsonl", "a") as fp:
            fp.write('{"type": "run", "run_se')
        ledger = quality.load_run_ledger(tmp_path)
        assert ledger["recovered_lines"] == 1
        assert ledger["runs"] == 1


class TestSiteAttribution:
    LEDGER = {
        "entries": [
            ({"run_seq": 0}, [
                {"action": "inject", "site": "a.X:1", "len_ms": 4.0},
                {"action": "inject", "site": "a.X:1", "len_ms": 2.0},
                {"action": "skip", "site": "b.Y:2", "reason": "decay"},
                {"action": "skip", "site": "c.Z:3", "reason": "budget"},
            ]),
        ]
    }

    def test_per_site_rollup(self):
        rows = quality.site_attribution(self.LEDGER)
        by_site = {r["site"]: r for r in rows}
        assert by_site["a.X:1"]["injected"] == 2
        assert by_site["a.X:1"]["delay_ms"] == 6.0
        assert by_site["b.Y:2"]["skips"]["decay"] == 1
        assert by_site["c.Z:3"]["skips"]["budget"] == 1
        assert rows[0]["site"] == "a.X:1"  # sorted by delay consumed

    def test_counterfactual_needs_skips_and_pair_membership(self):
        records = [{"pair": ["b.Y:2", "q.Q:9"]}]
        rows = quality.site_attribution(self.LEDGER, records=records)
        by_site = {r["site"]: r for r in rows}
        assert by_site["b.Y:2"]["counterfactual"]  # skipped + on a pair
        assert not by_site["a.X:1"]["counterfactual"]  # no skips
        assert not by_site["c.Z:3"]["counterfactual"]  # not on a pair

    def test_dossier_pair_sites_feed_the_flag(self):
        dossiers = [{"dossier": {
            "provenance": [{"delay_site": "c.Z:3", "other_site": "d.W:4"}],
            "report": {"fault_location": "d.W:4"},
        }}]
        rows = quality.site_attribution(self.LEDGER, dossiers=dossiers)
        assert {r["site"]: r["counterfactual"] for r in rows}["c.Z:3"]

    def test_skip_rollup_totals(self):
        rollup = quality.skip_rollup(quality.site_attribution(self.LEDGER))
        assert rollup["considered"] == 4
        assert rollup["injected"] == 2
        assert rollup["skipped"] == 2
        assert rollup["decay"] == 1 and rollup["budget"] == 1


class TestAcceptance:
    """Seeds 0:200: rate 1.0 in the detectable band, 0.0 in the
    undetectable band, reconciled exactly against the oracle rows."""

    @pytest.fixture(scope="class")
    def rows(self):
        return fuzz_mod.fuzz_range(
            0, 200, config=DEFAULT_CONFIG.with_seed(0), budget=8,
            jobs=2, check_replay=False,
        )

    def test_sensitivity_over_200_seeds(self, rows):
        assert all(row["ok"] for row in rows)
        records, problems = quality.workload_records(rows)
        assert not problems
        curve = quality.sensitivity_curve(records)
        assert curve["bands"]["detectable"]["planted"] > 0
        assert curve["bands"]["undetectable"]["planted"] > 0
        assert curve["bands"]["detectable"]["rate"] == 1.0
        assert curve["bands"]["undetectable"]["rate"] == 0.0
        # Exact reconciliation: the per-bug joins reproduce every row's
        # found set, planted count, and detectable count.
        assert quality.reconcile_records(records, rows) == []

    def test_band_membership_in_every_bin(self, rows):
        records, _ = quality.workload_records(rows)
        curve = quality.sensitivity_curve(records)
        for row in curve["bins"]:
            if row["hi"] <= DETECTABLE_GAP_MS[1]:
                assert row["rate"] == 1.0
            if row["lo"] >= UNDETECTABLE_GAP_MS[0]:
                assert row["rate"] == 0.0
