"""Flight recorder: bounded ring, run marks, activation model."""

import pytest

from repro.obs import flightrec


@pytest.fixture(autouse=True)
def clean_recorder():
    flightrec.uninstall()
    yield
    flightrec.uninstall()


class TestRing:
    def test_capacity_bounds_memory_and_counts_evictions(self):
        rec = flightrec.FlightRecorder(capacity=4)
        for i in range(10):
            rec.record("switch", float(i), tid=i)
        assert len(rec) == 4
        assert rec.recorded == 10
        assert rec.dropped == 6
        assert [e["tid"] for e in rec.snapshot()] == [6, 7, 8, 9]

    def test_invalid_capacity_rejected(self):
        with pytest.raises(ValueError):
            flightrec.FlightRecorder(capacity=0)

    def test_payload_may_carry_a_kind_field(self):
        # record()'s positional is named ``k`` precisely so candidate
        # events can carry their own ``kind`` payload field.
        rec = flightrec.FlightRecorder()
        event = rec.record("near_miss", 1.0, kind="use_after_free")
        assert event["k"] == "near_miss"
        assert event["kind"] == "use_after_free"

    def test_events_filters_by_kind(self):
        rec = flightrec.FlightRecorder()
        rec.record("inject", 0.0, site="a")
        rec.record("skip", 1.0, site="b", reason="decay")
        rec.record("inject", 2.0, site="c")
        assert [e["site"] for e in rec.events("inject")] == ["a", "c"]
        assert len(rec.events()) == 3


class TestRunMarks:
    def test_events_partition_by_run(self):
        rec = flightrec.FlightRecorder()
        first = rec.begin_run(kind="prep", test="t", seed=0)
        rec.record("inject", 0.0, site="a")
        second = rec.begin_run(kind="detect", test="t", seed=1)
        rec.record("inject", 0.0, site="b")
        assert [e["k"] for e in rec.events_for_run(first)] == ["run_start", "inject"]
        sites = [e.get("site") for e in rec.events_for_run(second)]
        assert "b" in sites and "a" not in sites
        assert rec.events_for_run(99) == []

    def test_marks_survive_eviction(self):
        rec = flightrec.FlightRecorder(capacity=3)
        rec.begin_run(kind="prep", test="t", seed=0)
        rec.record("inject", 0.0, site="old")
        run2 = rec.begin_run(kind="detect", test="t", seed=1)
        rec.record("inject", 0.0, site="x")
        rec.record("inject", 1.0, site="y")
        # Run 1's events were evicted; run 2's slice is fully retained.
        assert [e["k"] for e in rec.events_for_run(run2)] == [
            "run_start",
            "inject",
            "inject",
        ]
        assert rec.dropped == 2


class TestActivation:
    def test_install_uninstall(self):
        assert flightrec.recorder() is None
        assert not flightrec.active()
        rec = flightrec.install(capacity=16)
        assert flightrec.recorder() is rec
        assert flightrec.active()
        flightrec.uninstall()
        assert flightrec.recorder() is None

    def test_suspended_hides_recorder(self):
        rec = flightrec.install()
        with flightrec.suspended():
            assert flightrec.recorder() is None
        assert flightrec.recorder() is rec

    def test_suspended_restores_on_error(self):
        rec = flightrec.install()
        with pytest.raises(RuntimeError):
            with flightrec.suspended():
                raise RuntimeError("boom")
        assert flightrec.recorder() is rec

    def test_env_configuration(self, monkeypatch):
        monkeypatch.setenv(flightrec.FLIGHTREC_ENV, "128")
        flightrec._configure_from_env()
        assert flightrec.recorder().capacity == 128

    def test_env_non_integer_means_default_capacity(self, monkeypatch):
        monkeypatch.setenv(flightrec.FLIGHTREC_ENV, "on")
        flightrec._configure_from_env()
        assert flightrec.recorder().capacity == flightrec.DEFAULT_CAPACITY

    def test_env_absent_is_noop(self, monkeypatch):
        monkeypatch.delenv(flightrec.FLIGHTREC_ENV, raising=False)
        flightrec._configure_from_env()
        assert flightrec.recorder() is None


class TestPipelineIntegration:
    def test_detection_emits_lifecycle_and_decision_events(self):
        from repro.apps import bug_workload
        from repro.core.config import WaffleConfig
        from repro.core.detector import Waffle

        rec = flightrec.install()
        outcome = Waffle(WaffleConfig(seed=21)).detect(
            bug_workload("Bug-8"), max_detection_runs=8
        )
        assert outcome.bug_found
        kinds = {e["k"] for e in rec.snapshot()}
        assert {"run_start", "thread_start", "inject", "near_miss"} <= kinds
        assert kinds <= set(flightrec.EVENT_KINDS)

    def test_recorder_is_purely_observational(self):
        from repro.apps import bug_workload
        from repro.core.config import WaffleConfig
        from repro.core.detector import Waffle

        baseline = Waffle(WaffleConfig(seed=3)).detect(
            bug_workload("Bug-1"), max_detection_runs=4
        )
        flightrec.install()
        observed = Waffle(WaffleConfig(seed=3)).detect(
            bug_workload("Bug-1"), max_detection_runs=4
        )
        assert [r.virtual_time_ms for r in baseline.runs] == [
            r.virtual_time_ms for r in observed.runs
        ]
        assert [r.delays_injected for r in baseline.runs] == [
            r.delays_injected for r in observed.runs
        ]
        assert baseline.bug_found == observed.bug_found
