"""Obs-directory aggregation: loading, reconciliation, rendering."""

import json

import pytest

from repro import obs
from repro.obs.report import load_obs_dir, reconcile, render_report, write_chrome_trace


def write_jsonl(path, records):
    path.write_text("".join(json.dumps(r) + "\n" for r in records))


@pytest.fixture
def obs_dir(tmp_path):
    """A hand-built two-process obs directory with consistent data."""
    root = tmp_path / "obs"
    root.mkdir()
    for pid, considered in ((100, 3), (101, 0)):
        snapshot = {
            "counters": {
                "inject.considered": considered,
                "inject.injected": 1 if considered else 0,
                "inject.skipped.decay": 1 if considered else 0,
                "inject.skipped.interference": 1 if considered else 0,
                "inject.skipped.budget": 0,
                "cache.hits": 4,
                "cache.misses": 1,
                "cache.writes": 1,
            },
            "gauges": {"sched.virtual_time_ms_total": 12.5},
            "histograms": {},
        }
        (root / ("summary-%d-1.json" % pid)).write_text(
            json.dumps({"record": {"metrics": snapshot}})
        )
    write_jsonl(
        root / "telemetry-100-1.jsonl",
        [
            {"type": "meta", "pid": 100},
            {"type": "inject", "run": 1, "action": "inject", "site": "l1", "t_ms": 0.0},
            {"type": "inject", "run": 1, "action": "skip", "site": "l1", "t_ms": 1.0, "reason": "decay"},
            {
                "type": "inject",
                "run": 1,
                "action": "skip",
                "site": "l1",
                "t_ms": 2.0,
                "reason": "interference",
            },
            {
                "type": "run",
                "run_seq": 1,
                "kind": "detect",
                "test": "t",
                "wall_ms": 5.0,
                "virtual_ms": 10.0,
                "considered": 3,
                "injected": 1,
                "skipped_decay": 1,
                "skipped_interference": 1,
                "skipped_budget": 0,
                "candidates_final": 2,
                "crashed": True,
            },
            {"type": "span", "name": "cell", "cat": "harness", "start_s": 0.0, "dur_ms": 5.0},
        ],
    )
    return root


class TestLoad:
    def test_merges_processes_and_buckets_records(self, obs_dir):
        data = load_obs_dir(obs_dir)
        assert data.processes == 2
        assert data.metrics["counters"]["cache.hits"] == 8
        assert len(data.runs) == 1
        assert len(data.inject_events) == 3
        assert len(data.spans) == 1
        assert data.parse_errors == []

    def test_parse_errors_are_collected_not_fatal(self, obs_dir):
        (obs_dir / "telemetry-999-1.jsonl").write_text('{"type": "inject"\nnot json\n')
        (obs_dir / "summary-999-1.json").write_text("{broken")
        data = load_obs_dir(obs_dir)
        assert len(data.parse_errors) == 3
        assert data.processes == 2  # the broken summary is not counted

    def test_empty_directory(self, tmp_path):
        data = load_obs_dir(tmp_path)
        assert data.processes == 0
        assert data.runs == []


class TestReconcile:
    def test_consistent_directory_has_no_problems(self, obs_dir):
        assert reconcile(load_obs_dir(obs_dir)) == []

    def test_untagged_skip_is_flagged(self, obs_dir):
        with open(obs_dir / "telemetry-100-1.jsonl", "a") as fp:
            fp.write(json.dumps({"type": "inject", "run": 2, "action": "skip", "site": "x"}) + "\n")
        problems = reconcile(load_obs_dir(obs_dir))
        assert any("missing a valid reason" in p for p in problems)

    def test_run_summary_mismatch_is_flagged(self, obs_dir):
        with open(obs_dir / "telemetry-100-1.jsonl", "a") as fp:
            fp.write(
                json.dumps(
                    {
                        "type": "inject",
                        "run": 1,
                        "action": "skip",
                        "site": "l1",
                        "t_ms": 3.0,
                        "reason": "decay",
                    }
                )
                + "\n"
            )
        problems = reconcile(load_obs_dir(obs_dir))
        assert any("run 1" in p for p in problems)


class TestRender:
    def test_report_sections(self, obs_dir):
        text = render_report(load_obs_dir(obs_dir))
        assert "injection decisions" in text
        assert "decay 1" in text
        assert "interference 1" in text
        assert "hit rate 80.0%" in text
        assert "reconciliation: decision events match" in text
        assert "C" in text  # crash flag on the run row

    def test_report_renders_problems(self, obs_dir):
        with open(obs_dir / "telemetry-100-1.jsonl", "a") as fp:
            fp.write(json.dumps({"type": "inject", "run": 9, "action": "skip", "site": "x"}) + "\n")
        text = render_report(load_obs_dir(obs_dir))
        assert "RECONCILIATION" in text


class TestChromeExport:
    def test_writes_trace_file(self, obs_dir, tmp_path):
        out = tmp_path / "trace.json"
        count = write_chrome_trace(load_obs_dir(obs_dir), out)
        trace = json.loads(out.read_text())
        assert count == len(trace["traceEvents"])
        assert trace["displayTimeUnit"] == "ms"


class TestSessionRoundTrip:
    def test_live_session_files_load_and_reconcile(self, tmp_path):
        session = obs.configure(tmp_path / "live")
        try:
            session.c_cache_hits.inc(3)
            session.c_cache_misses.inc()
            with session.tracer.span("cell", unit="test"):
                pass
            session.flush()
        finally:
            obs.disable()
        data = load_obs_dir(tmp_path / "live")
        assert data.processes == 1
        assert data.metrics["counters"]["cache.hits"] == 3
        assert len(data.spans) == 1
        assert reconcile(data) == []
        assert "hit rate 75.0%" in render_report(data)
