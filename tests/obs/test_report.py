"""Obs-directory aggregation: loading, reconciliation, rendering."""

import json

import pytest

from repro import obs
from repro.obs.report import load_obs_dir, reconcile, render_report, write_chrome_trace


def write_jsonl(path, records):
    path.write_text("".join(json.dumps(r) + "\n" for r in records))


@pytest.fixture
def obs_dir(tmp_path):
    """A hand-built two-process obs directory with consistent data."""
    root = tmp_path / "obs"
    root.mkdir()
    for pid, considered in ((100, 3), (101, 0)):
        snapshot = {
            "counters": {
                "inject.considered": considered,
                "inject.injected": 1 if considered else 0,
                "inject.skipped.decay": 1 if considered else 0,
                "inject.skipped.interference": 1 if considered else 0,
                "inject.skipped.budget": 0,
                "cache.hits": 4,
                "cache.misses": 1,
                "cache.writes": 1,
            },
            "gauges": {"sched.virtual_time_ms_total": 12.5},
            "histograms": {},
        }
        (root / ("summary-%d-1.json" % pid)).write_text(
            json.dumps({"record": {"metrics": snapshot}})
        )
    write_jsonl(
        root / "telemetry-100-1.jsonl",
        [
            {"type": "meta", "pid": 100},
            {"type": "inject", "run": 1, "action": "inject", "site": "l1", "t_ms": 0.0},
            {"type": "inject", "run": 1, "action": "skip", "site": "l1", "t_ms": 1.0, "reason": "decay"},
            {
                "type": "inject",
                "run": 1,
                "action": "skip",
                "site": "l1",
                "t_ms": 2.0,
                "reason": "interference",
            },
            {
                "type": "run",
                "run_seq": 1,
                "kind": "detect",
                "test": "t",
                "wall_ms": 5.0,
                "virtual_ms": 10.0,
                "considered": 3,
                "injected": 1,
                "skipped_decay": 1,
                "skipped_interference": 1,
                "skipped_budget": 0,
                "candidates_final": 2,
                "crashed": True,
            },
            {"type": "span", "name": "cell", "cat": "harness", "start_s": 0.0, "dur_ms": 5.0},
        ],
    )
    return root


class TestLoad:
    def test_merges_processes_and_buckets_records(self, obs_dir):
        data = load_obs_dir(obs_dir)
        assert data.processes == 2
        assert data.metrics["counters"]["cache.hits"] == 8
        assert len(data.runs) == 1
        assert len(data.inject_events) == 3
        assert len(data.spans) == 1
        assert data.parse_errors == []

    def test_parse_errors_are_collected_not_fatal(self, obs_dir):
        (obs_dir / "telemetry-999-1.jsonl").write_text('{"type": "inject"\nnot json\n')
        (obs_dir / "summary-999-1.json").write_text("{broken")
        data = load_obs_dir(obs_dir)
        assert len(data.parse_errors) == 3
        assert data.processes == 2  # the broken summary is not counted

    def test_empty_directory(self, tmp_path):
        data = load_obs_dir(tmp_path)
        assert data.processes == 0
        assert data.runs == []


class TestRecovery:
    """Killed-worker artifacts are warnings; committed data stays strict."""

    def test_truncated_final_line_is_a_warning_not_an_error(self, obs_dir):
        with open(obs_dir / "telemetry-100-1.jsonl", "a") as fp:
            fp.write('{"type": "run", "trunc')  # no trailing newline
        data = load_obs_dir(obs_dir)
        assert data.parse_errors == []
        assert any("truncated final line" in w for w in data.warnings)
        assert len(data.runs) == 1  # the committed lines still load

    def test_interior_bad_line_stays_a_parse_error(self, obs_dir):
        (obs_dir / "telemetry-999-1.jsonl").write_text('not json\n{"type": "meta"}')
        data = load_obs_dir(obs_dir)
        assert len(data.parse_errors) == 1

    def test_bad_final_line_with_newline_stays_a_parse_error(self, obs_dir):
        # A complete (newline-terminated) bad line was committed by the
        # writer, not cut off by a kill: that is corruption, not noise.
        (obs_dir / "telemetry-999-1.jsonl").write_text("not json\n")
        data = load_obs_dir(obs_dir)
        assert len(data.parse_errors) == 1
        assert data.warnings == []

    def test_missing_directory_warns_instead_of_raising(self, tmp_path):
        data = load_obs_dir(tmp_path / "never-written")
        assert data.processes == 0
        assert any("does not exist" in w for w in data.warnings)
        assert "does not exist" in render_report(data)

    def test_unreadable_coverage_file_warns(self, obs_dir):
        (obs_dir / "coverage-9-9.json").write_text("{torn")
        data = load_obs_dir(obs_dir)
        assert data.coverage == []
        assert any("unreadable coverage" in w for w in data.warnings)


class TestEventStreamSurface:
    """Campaign event streams co-located with telemetry feed the digest."""

    def test_stream_warnings_surface_through_load(self, obs_dir):
        from repro.obs import eventbus

        (obs_dir / "events-7-7.jsonl").write_text(
            json.dumps({"type": "meta", "v": eventbus.EVENT_SCHEMA_VERSION + 9})
            + "\n"
            + json.dumps({"type": "cache", "seq": 1, "t": 1.0, "action": "hit"})
            + "\n"
        )
        (obs_dir / "events-8-8.jsonl").write_text("")
        data = load_obs_dir(obs_dir)
        assert len(data.event_streams) == 2
        assert any("schema version" in w for w in data.warnings)
        assert any("empty event stream" in w for w in data.warnings)

    def test_report_renders_a_campaign_events_section(self, obs_dir):
        from repro.obs import eventbus

        (obs_dir / "events-7-7.jsonl").write_text(
            json.dumps({"type": "meta", "v": eventbus.EVENT_SCHEMA_VERSION})
            + "\n"
            + json.dumps({"type": "cache", "seq": 1, "t": 1.0, "action": "hit"})
            + "\n"
        )
        text = render_report(load_obs_dir(obs_dir))
        assert "campaign events (1 stream(s))" in text
        assert "repro campaign status" in text

    def test_missing_stream_warns_only_when_cells_ran(self, obs_dir):
        # The fixture has no harness.cells counter: silence is correct
        # (pre-event-bus artifacts must not suddenly warn).
        assert load_obs_dir(obs_dir).warnings == []
        payload = json.loads((obs_dir / "summary-100-1.json").read_text())
        payload["record"]["metrics"]["counters"]["harness.cells"] = 3
        (obs_dir / "summary-100-1.json").write_text(json.dumps(payload))
        data = load_obs_dir(obs_dir)
        assert any("no campaign event stream" in w for w in data.warnings)


class TestCoverageAndDossierSections:
    @pytest.fixture
    def enriched_dir(self, obs_dir):
        from repro.core import persistence

        persistence.save_record(
            {
                "type": "coverage",
                "tool": "waffle",
                "test": "t",
                "bug_found": True,
                "runs": [],
                "pairs": [],
                "pairs_total": 0,
                "pairs_delayed": 0,
                "pairs_pruned": 0,
                "pairs_planned": 0,
                "pruned_reasons": {},
                "pruned_parent_child": 0,
                "site_injections": {},
                "injected_total": 0,
                "skipped_decay": 0,
                "skipped_interference": 0,
                "skipped_budget": 0,
                "decay": {"sites": 0, "retired": [], "probabilities": {}},
            },
            obs_dir / "coverage-1-0.json",
        )
        persistence.save_record(
            {
                "dossier": {
                    "report": {
                        "error_type": "NullReferenceError",
                        "fault_location": "a:1",
                    },
                    "verified": True,
                }
            },
            obs_dir / "dossier-1-0.json",
        )
        return obs_dir

    def test_records_are_loaded(self, enriched_dir):
        data = load_obs_dir(enriched_dir)
        assert len(data.coverage) == 1
        assert len(data.dossiers) == 1
        assert data.dossiers[0]["file"] == "dossier-1-0.json"

    def test_report_surfaces_both_sections(self, enriched_dir):
        text = render_report(load_obs_dir(enriched_dir))
        assert "coverage observatory (1 session(s))" in text
        assert "coverage reconciles with engine counters" in text
        assert "bug dossiers (1)" in text
        assert "NullReferenceError @ a:1" in text


class TestReconcile:
    def test_consistent_directory_has_no_problems(self, obs_dir):
        assert reconcile(load_obs_dir(obs_dir)) == []

    def test_untagged_skip_is_flagged(self, obs_dir):
        with open(obs_dir / "telemetry-100-1.jsonl", "a") as fp:
            fp.write(json.dumps({"type": "inject", "run": 2, "action": "skip", "site": "x"}) + "\n")
        problems = reconcile(load_obs_dir(obs_dir))
        assert any("missing a valid reason" in p for p in problems)

    def test_run_summary_mismatch_is_flagged(self, obs_dir):
        with open(obs_dir / "telemetry-100-1.jsonl", "a") as fp:
            fp.write(
                json.dumps(
                    {
                        "type": "inject",
                        "run": 1,
                        "action": "skip",
                        "site": "l1",
                        "t_ms": 3.0,
                        "reason": "decay",
                    }
                )
                + "\n"
            )
        problems = reconcile(load_obs_dir(obs_dir))
        assert any("run 1" in p for p in problems)


class TestRecoveredLineTolerance:
    """Truncated-tail losses are corrupt_record faults the reconciler
    accounts for exactly: counters may lead events by at most the
    recovered-line count."""

    def append_lines(self, obs_dir, records, truncated_tail=True):
        with open(obs_dir / "telemetry-100-1.jsonl", "a") as fp:
            for record in records:
                fp.write(json.dumps(record) + "\n")
            if truncated_tail:
                fp.write('{"type": "inject", "run": 1, "act')  # torn append

    def test_recovered_lines_are_counted(self, obs_dir):
        self.append_lines(obs_dir, [])
        data = load_obs_dir(obs_dir)
        assert data.recovered_lines == 1
        assert data.parse_errors == []

    def test_deficit_within_recovered_lines_reconciles(self, obs_dir):
        # The lost tail line was a skip event: counters and the run
        # summary now lead the events by one. With one recovered line
        # that is expected degradation, not an inconsistency.
        for pid in (100, 101):
            path = obs_dir / ("summary-%d-1.json" % pid)
            snapshot = json.loads(path.read_text())
            counters = snapshot["record"]["metrics"]["counters"]
            if counters["inject.considered"]:
                counters["inject.considered"] += 1
                counters["inject.skipped.decay"] += 1
                path.write_text(json.dumps(snapshot))
        with open(obs_dir / "telemetry-100-1.jsonl") as fp:
            lines = fp.read().splitlines()
        rewritten = []
        for line in lines:
            record = json.loads(line)
            if record.get("type") == "run":
                record["considered"] += 1
                record["skipped_decay"] += 1
            rewritten.append(record)
        write_jsonl(obs_dir / "telemetry-100-1.jsonl", rewritten)
        self.append_lines(obs_dir, [])

        data = load_obs_dir(obs_dir)
        assert data.recovered_lines == 1
        assert reconcile(data) == []

    def test_deficit_beyond_recovered_lines_still_flags(self, obs_dir):
        # Two events missing but only one recovered line: a real hole.
        for pid in (100, 101):
            path = obs_dir / ("summary-%d-1.json" % pid)
            snapshot = json.loads(path.read_text())
            counters = snapshot["record"]["metrics"]["counters"]
            if counters["inject.considered"]:
                counters["inject.considered"] += 2
                counters["inject.skipped.decay"] += 2
                path.write_text(json.dumps(snapshot))
        self.append_lines(obs_dir, [])
        data = load_obs_dir(obs_dir)
        assert data.recovered_lines == 1
        problems = reconcile(data)
        assert any("skip events" in p for p in problems)

    def test_event_surplus_is_never_excused(self, obs_dir):
        # More events than counters can't be explained by lost lines.
        self.append_lines(
            obs_dir,
            [{"type": "inject", "run": 1, "action": "skip", "site": "l1",
              "t_ms": 3.0, "reason": "decay"}],
        )
        data = load_obs_dir(obs_dir)
        assert data.recovered_lines == 1
        problems = reconcile(data)
        assert any("run 1" in p for p in problems)


class TestResilienceSection:
    def test_hidden_when_all_clean(self, obs_dir):
        assert "resilience" not in render_report(load_obs_dir(obs_dir))

    def test_fault_counters_render(self, obs_dir):
        path = obs_dir / "summary-100-1.json"
        snapshot = json.loads(path.read_text())
        snapshot["record"]["metrics"]["counters"].update(
            {
                "faults.worker_crash": 2,
                "faults.hang": 1,
                "cells.retried": 3,
                "cells.quarantined": 1,
                "cells.resumed": 4,
                "cache.corrupt": 1,
            }
        )
        path.write_text(json.dumps(snapshot))
        text = render_report(load_obs_dir(obs_dir))
        assert "resilience" in text
        assert "worker_crash 2" in text
        assert "hang 1" in text
        assert "cells retried 3" in text
        assert "quarantined 1" in text
        assert "resumed 4" in text

    def test_recovered_lines_alone_trigger_the_section(self, obs_dir):
        with open(obs_dir / "telemetry-100-1.jsonl", "a") as fp:
            fp.write('{"type": "run", "trunc')
        text = render_report(load_obs_dir(obs_dir))
        assert "resilience" in text
        assert "truncated lines recovered 1" in text


class TestRender:
    def test_report_sections(self, obs_dir):
        text = render_report(load_obs_dir(obs_dir))
        assert "injection decisions" in text
        assert "decay 1" in text
        assert "interference 1" in text
        assert "hit rate 80.0%" in text
        assert "reconciliation: decision events match" in text
        assert "C" in text  # crash flag on the run row

    def test_report_renders_problems(self, obs_dir):
        with open(obs_dir / "telemetry-100-1.jsonl", "a") as fp:
            fp.write(json.dumps({"type": "inject", "run": 9, "action": "skip", "site": "x"}) + "\n")
        text = render_report(load_obs_dir(obs_dir))
        assert "RECONCILIATION" in text


class TestChromeExport:
    def test_writes_trace_file(self, obs_dir, tmp_path):
        out = tmp_path / "trace.json"
        count = write_chrome_trace(load_obs_dir(obs_dir), out)
        trace = json.loads(out.read_text())
        assert count == len(trace["traceEvents"])
        assert trace["displayTimeUnit"] == "ms"


class TestSessionRoundTrip:
    def test_live_session_files_load_and_reconcile(self, tmp_path):
        session = obs.configure(tmp_path / "live")
        try:
            session.c_cache_hits.inc(3)
            session.c_cache_misses.inc()
            with session.tracer.span("cell", unit="test"):
                pass
            session.flush()
        finally:
            obs.disable()
        data = load_obs_dir(tmp_path / "live")
        assert data.processes == 1
        assert data.metrics["counters"]["cache.hits"] == 3
        assert len(data.spans) == 1
        assert reconcile(data) == []
        assert "hit rate 75.0%" in render_report(data)


class TestFuzzSection:
    """The generated-workload digest inside `obs report`."""

    def write_fuzz_stream(self, obs_dir, spec_prefix=None, ok=True):
        from repro.gen.spec import generate_spec, spec_hash
        from repro.obs import eventbus

        seed = 3
        prefix = spec_hash(generate_spec(seed))[:12] if spec_prefix is None else spec_prefix
        spec = generate_spec(seed)
        (obs_dir / "events-9-9.jsonl").write_text(
            json.dumps({"type": "meta", "v": eventbus.EVENT_SCHEMA_VERSION})
            + "\n"
            + json.dumps({
                "type": "fuzz_workload", "seq": 1, "t": 1.0, "seed": seed,
                "spec": prefix, "topology": spec.topology, "planted": 2,
                "detectable": 1, "found": 1 if ok else 0, "sessions": 2,
                "runs": 9, "ok": ok,
            })
            + "\n"
        )

    def test_fuzz_section_renders_topology_rates(self, obs_dir):
        self.write_fuzz_stream(obs_dir)
        text = render_report(load_obs_dir(obs_dir))
        assert "generated workloads (fuzz)" in text
        assert "1 workload(s) oracle-verified" in text
        assert "sensitivity curves: repro obs dashboard" in text
        assert "WARNING" not in text

    def test_no_fuzz_events_means_no_section(self, obs_dir):
        assert "generated workloads (fuzz)" not in render_report(load_obs_dir(obs_dir))

    def test_unresolvable_oracles_warn_loudly(self, obs_dir):
        # A stale spec prefix: ground truth regenerated today is not what
        # the campaign ran against, so the section must say so.
        self.write_fuzz_stream(obs_dir, spec_prefix="deadbeef0000")
        text = render_report(load_obs_dir(obs_dir))
        assert "WARNING: 1 fuzz event(s) but no oracle rows are resolvable" in text
