"""Per-bug detection behavior: the Table 4 ground truth.

For every one of the 18 bugs:

* the delay-free control never triggers it (section 6.2);
* Waffle exposes it (and labels it correctly) within its budget;
* WaffleBasic finds or misses it exactly as Table 4 reports.

These run with a couple of seeds each to keep the suite fast; the
benchmark harness performs the full 15-attempt version.
"""

import pytest

from repro.apps import all_bugs, bug_workload
from repro.baselines import StressRunner, WaffleBasic
from repro.core.config import WaffleConfig
from repro.core.detector import Waffle

ALL_BUG_IDS = [b.bug_id for b in all_bugs()]

#: Bugs WaffleBasic exposes in its very first run (Table 4).
BASIC_FIRST_RUN = {"Bug-3", "Bug-6", "Bug-9"}
#: Bugs WaffleBasic cannot expose within the budget (Table 4's "-").
BASIC_MISSES = {"Bug-8", "Bug-10", "Bug-12", "Bug-13", "Bug-15", "Bug-16", "Bug-17"}
#: Bugs where Waffle needs more than one detection run (dense apps).
WAFFLE_EXTRA_RUNS = {"Bug-12", "Bug-16"}


def _bug(bug_id):
    return next(b for b in all_bugs() if b.bug_id == bug_id)


@pytest.mark.parametrize("bug_id", ALL_BUG_IDS)
class TestPerBug:
    def test_stress_control_never_triggers(self, bug_id):
        runner = StressRunner(WaffleConfig(seed=11))
        outcome = runner.detect(bug_workload(bug_id), max_detection_runs=10)
        assert runner.spontaneous_manifestations(outcome) == 0

    def test_waffle_exposes_and_labels(self, bug_id):
        bug = _bug(bug_id)
        outcome = Waffle(WaffleConfig(seed=3)).detect(bug_workload(bug_id), max_detection_runs=8)
        assert outcome.bug_found, bug_id
        assert bug.matches(outcome.reports[0]), outcome.reports[0].summary()
        expected = 3 if bug_id in WAFFLE_EXTRA_RUNS else 2
        assert outcome.runs_to_expose == expected

    def test_waffle_report_is_delay_induced(self, bug_id):
        outcome = Waffle(WaffleConfig(seed=4)).detect(bug_workload(bug_id), max_detection_runs=8)
        assert outcome.reports[0].delay_induced
        assert outcome.reports[0].matched_pairs


@pytest.mark.parametrize("bug_id", sorted(BASIC_FIRST_RUN))
def test_basic_first_run_exposure(bug_id):
    outcome = WaffleBasic(WaffleConfig(seed=5)).detect(bug_workload(bug_id), max_detection_runs=5)
    assert outcome.bug_found
    assert outcome.runs_to_expose == 1


@pytest.mark.parametrize("bug_id", sorted(BASIC_MISSES))
def test_basic_misses_interference_bugs(bug_id):
    """The headline qualitative result: the seven bugs whose exposure
    requires interference control, variable-length delays or a
    preparation run stay hidden from WaffleBasic."""
    outcome = WaffleBasic(WaffleConfig(seed=5)).detect(bug_workload(bug_id), max_detection_runs=12)
    found_this_bug = outcome.bug_found and _bug(bug_id).matches(outcome.reports[0])
    assert not found_this_bug, outcome.reports and outcome.reports[0].summary()


@pytest.mark.parametrize(
    "bug_id", sorted(set(ALL_BUG_IDS) - BASIC_MISSES - BASIC_FIRST_RUN - {"Bug-11"})
)
def test_basic_finds_plain_bugs_in_two_runs(bug_id):
    outcome = WaffleBasic(WaffleConfig(seed=5)).detect(bug_workload(bug_id), max_detection_runs=6)
    assert outcome.bug_found
    assert outcome.runs_to_expose == 2


def test_basic_needs_several_runs_for_bug11():
    """Figure 4b interfering instances: found, but slowly."""
    outcome = WaffleBasic(WaffleConfig(seed=5)).detect(bug_workload("Bug-11"), max_detection_runs=30)
    assert outcome.bug_found
    assert outcome.runs_to_expose >= 3


def test_waffle_prep_run_injects_nothing():
    outcome = Waffle(WaffleConfig(seed=3)).detect(bug_workload("Bug-1"), max_detection_runs=3)
    prep = outcome.runs[0]
    assert prep.kind == "prep"
    assert prep.delays_injected == 0
    assert not prep.crashed
