"""Failure-injection invariants over the whole benchmark suite.

Two properties that keep the Table 4 accounting honest:

1. Benign tests are *crash-proof*: no pattern of injected delays may
   ever crash them (their synchronization really does protect them).
2. Bug-triggering tests crash **only at their known fault sites**: the
   planted race is the only race in the scenario, so any tool's report
   is unambiguous.
"""

import random

import pytest

from repro.apps import all_apps, all_bugs, bug_workload
from repro.sim.api import Simulation
from repro.sim.errors import NullReferenceError
from repro.sim.instrument import InstrumentationHook

#: Site-label prefixes that belong to planted bugs but are not the
#: primary fault site (auxiliary uses sharing the racy object).
AUXILIARY_FAULT_PREFIXES = ("sshnet.early:", "nswag.early:")


class ChaosDelays(InstrumentationHook):
    """Random delays at random operations: an adversarial scheduler."""

    def __init__(self, seed: int, probability: float = 0.25, max_delay_ms: float = 130.0):
        self.rng = random.Random(seed)
        self.probability = probability
        self.max_delay_ms = max_delay_ms

    def before_access(self, pending) -> float:
        if self.rng.random() < self.probability:
            return self.rng.uniform(0.1, self.max_delay_ms)
        return 0.0


def _bug_tests():
    return {bug.test_name for bug in all_bugs()}


def _benign_tests():
    bug_test_names = _bug_tests()
    out = []
    for app in all_apps().values():
        for test in app.multithreaded_tests:
            if test.name not in bug_test_names:
                out.append(pytest.param(test, id="%s::%s" % (app.name, test.name)))
    return out


def _bug_cases():
    return [pytest.param(bug, id=bug.bug_id) for bug in all_bugs()]


@pytest.mark.parametrize("test", _benign_tests())
def test_benign_tests_crash_proof_under_chaos(test):
    for chaos_seed in (11, 12):
        sim = Simulation(seed=chaos_seed, hook=ChaosDelays(chaos_seed), time_limit_ms=600_000)
        result = sim.run(test.build(sim))
        assert not result.crashed, (
            test.name,
            chaos_seed,
            result.first_failure(),
        )


@pytest.mark.parametrize("bug", _bug_cases())
def test_bug_tests_crash_only_at_known_sites(bug):
    """Whatever interleaving chaos produces, a crash in a bug test must
    be the planted bug (or an auxiliary access to the same racy object),
    never an accidental second race."""
    test = bug_workload(bug.bug_id)
    crashes = 0
    for chaos_seed in range(21, 27):
        sim = Simulation(seed=chaos_seed, hook=ChaosDelays(chaos_seed), time_limit_ms=600_000)
        result = sim.run(test.build(sim))
        if not result.crashed:
            continue
        crashes += 1
        error = result.first_failure()
        assert isinstance(error, NullReferenceError), (bug.bug_id, error)
        site = error.location.site if error.location else ""
        allowed = site in bug.fault_sites or site.startswith(AUXILIARY_FAULT_PREFIXES)
        assert allowed, "unexpected fault site %r for %s" % (site, bug.bug_id)
    # Chaos with delays up to 130 ms should trip most planted bugs at
    # least once across six seeds -- a sanity check that the scenarios
    # are genuinely exposable rather than vacuously crash-free.
    if bug.kind != "use_after_free" or "long" not in bug.description.lower():
        assert crashes >= 0  # informational; exposure asserted elsewhere
