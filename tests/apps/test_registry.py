"""Registry sanity: 11 apps, 18 bugs, metadata consistency."""

import pytest

from repro.apps import all_apps, all_bugs, bug_workload, get_app, get_bug
from repro.apps.base import Application, AppTestCase, KnownBug, match_bug
from repro.core.reports import BugReport
from repro.sim.instrument import Location

EXPECTED_APPS = {
    "appinsights",
    "fluentassertions",
    "kubernetesnet",
    "litedb",
    "mqttnet",
    "netmq",
    "npgsql",
    "nsubstitute",
    "nswag",
    "signalr",
    "sshnet",
}


class TestRegistry:
    def test_eleven_apps(self):
        assert set(all_apps()) == EXPECTED_APPS

    def test_eighteen_bugs_in_order(self):
        bugs = all_bugs()
        assert [b.bug_id for b in bugs] == ["Bug-%d" % i for i in range(1, 19)]

    def test_twelve_known_six_unknown(self):
        bugs = all_bugs()
        assert sum(1 for b in bugs if b.previously_known) == 12
        assert sum(1 for b in bugs if not b.previously_known) == 6

    def test_bug_kinds_valid(self):
        for bug in all_bugs():
            assert bug.kind in ("use_after_free", "use_before_init", "both")

    def test_every_bug_has_existing_test(self):
        for bug in all_bugs():
            test = bug_workload(bug.bug_id)
            assert isinstance(test, AppTestCase)
            assert test.name == bug.test_name

    def test_get_app_unknown(self):
        with pytest.raises(KeyError):
            get_app("wordpress")

    def test_get_bug_unknown(self):
        with pytest.raises(KeyError):
            get_bug("Bug-99")

    def test_table3_metadata_present(self):
        for app in all_apps().values():
            assert app.paper_loc_kloc > 0
            assert app.paper_multithreaded_tests > 0
            assert app.paper_stars_k > 0

    def test_every_app_has_multithreaded_tests(self):
        for app in all_apps().values():
            assert len(app.multithreaded_tests) >= 5, app.name

    def test_test_names_unique_within_app(self):
        for app in all_apps().values():
            names = [t.name for t in app.tests]
            assert len(names) == len(set(names))

    def test_paper_run_metadata_coherent(self):
        """Bugs the paper says WaffleBasic missed carry None."""
        missed = {"Bug-8", "Bug-10", "Bug-12", "Bug-13", "Bug-15", "Bug-16", "Bug-17"}
        for bug in all_bugs():
            if bug.bug_id in missed:
                assert bug.paper_runs_basic is None
            else:
                assert bug.paper_runs_basic is not None
            assert bug.paper_runs_waffle is not None


class TestApplicationContainer:
    def test_duplicate_test_rejected(self):
        app = Application("x", "X", 1.0, 1, 1.0)
        app.add_test("t", lambda sim: None)
        with pytest.raises(ValueError):
            app.add_test("t", lambda sim: None)

    def test_bug_for_wrong_app_rejected(self):
        app = Application("x", "X", 1.0, 1, 1.0)
        app.add_test("t", lambda sim: None)
        bug = KnownBug(
            bug_id="Bug-99",
            app="other",
            issue_id="1",
            kind="use_after_free",
            previously_known=True,
            description="",
            fault_sites=frozenset({"s"}),
            test_name="t",
        )
        with pytest.raises(ValueError):
            app.add_bug(bug)

    def test_bug_with_unknown_test_rejected(self):
        app = Application("x", "X", 1.0, 1, 1.0)
        bug = KnownBug(
            bug_id="Bug-99",
            app="x",
            issue_id="1",
            kind="use_after_free",
            previously_known=True,
            description="",
            fault_sites=frozenset({"s"}),
            test_name="missing",
        )
        with pytest.raises(ValueError):
            app.add_bug(bug)


class TestBugMatching:
    def _report(self, site):
        return BugReport(
            tool="t",
            workload="w",
            fault_location=Location(site),
            ref_name="r",
            thread_name="th",
            error_type="NullReferenceError",
            fault_time_ms=1.0,
            run_index=1,
        )

    def test_match_by_fault_site(self):
        bug = get_bug("Bug-11")
        site = next(iter(bug.fault_sites))
        assert bug.matches(self._report(site))
        assert not bug.matches(self._report("unrelated"))

    def test_match_bug_scans_all(self):
        bugs = all_bugs()
        bug = get_bug("Bug-14")
        site = next(iter(bug.fault_sites))
        assert match_bug(self._report(site), bugs) is bug
        assert match_bug(self._report("nowhere"), bugs) is None

    def test_fault_sites_unique_across_bugs(self):
        """No two bugs share a fault site, so report labeling is
        unambiguous."""
        seen = {}
        for bug in all_bugs():
            for site in bug.fault_sites:
                assert site not in seen, (site, bug.bug_id, seen.get(site))
                seen[site] = bug.bug_id
