"""Pattern-level properties: benign motifs are crash-proof under
arbitrary delays; bug motifs crash only under the right delay."""

import pytest

from repro.apps import patterns as P
from repro.core.config import WaffleConfig
from repro.core.detector import Waffle, Workload
from repro.baselines import StressRunner
from repro.sim.api import Simulation
from repro.sim.instrument import InstrumentationHook


class RandomDelays(InstrumentationHook):
    """Adversarial chaos hook: random delays at random operations."""

    def __init__(self, seed, probability=0.3, max_delay=120.0):
        import random

        self.rng = random.Random(seed)
        self.probability = probability
        self.max_delay = max_delay

    def before_access(self, pending):
        if self.rng.random() < self.probability:
            return self.rng.uniform(0.1, self.max_delay)
        return 0.0


BENIGN_BUILDERS = [
    ("pipeline", lambda sim: P.synchronized_pipeline(sim, "t.pipe", items=8)),
    ("unsafe", lambda sim: P.unsafe_collection_traffic(sim, "t.unsafe", workers=2, ops_per_worker=3)),
    ("locked", lambda sim: P.locked_counter_workers(sim, "t.lock", workers=2, increments=3)),
    ("churn", lambda sim: P.dense_connection_churn(sim, "t.churn", workers=2, conns_per_worker=5, uses_per_conn=2)),
]


@pytest.mark.parametrize("name,builder", BENIGN_BUILDERS)
class TestBenignPatternsCrashProof:
    def test_delay_free(self, name, builder):
        sim = Simulation(seed=1)
        result = sim.run(builder(sim))
        assert not result.crashed, result.first_failure()

    @pytest.mark.parametrize("chaos_seed", [1, 2, 3, 4, 5])
    def test_under_random_delays(self, name, builder, chaos_seed):
        """Failure injection: no interleaving that delays can produce
        may crash a properly synchronized pattern."""
        sim = Simulation(seed=chaos_seed, hook=RandomDelays(chaos_seed), time_limit_ms=600_000)
        result = sim.run(builder(sim))
        assert not result.crashed, "%s crashed: %r" % (name, result.first_failure())


class TestForkOrderedPreamble:
    def test_runs_clean(self):
        sim = Simulation(seed=1)
        preamble, threads = P.fork_ordered_preamble(sim, "t.pre", count=3)

        def main(sim):
            yield from preamble
            yield from sim.join_all(threads)

        result = sim.run(main(sim))
        assert not result.crashed

    def test_candidates_fully_fork_ordered(self, config):
        """Every near-miss candidate the preamble generates is pruned by
        parent-child analysis -- the Table 7 ablation's whole point."""
        from repro.harness.runner import run_recording
        from repro.core.analyzer import analyze_trace

        def build(sim):
            preamble, threads = P.fork_ordered_preamble(sim, "t.pre", count=4)

            def main(sim):
                yield from preamble
                yield from sim.join_all(threads)

            return main(sim)

        test = Workload("preamble", build)
        _, trace = run_recording(test, config, seed=1)
        with_pruning = analyze_trace(trace, config)
        without_pruning = analyze_trace(trace, config.without("parent_child_analysis"))
        assert len(with_pruning.candidates) == 0
        assert len(without_pruning.candidates) > 0


class TestRotatingCachePartner:
    def _workload(self):
        def build(sim):
            partner = P.RotatingCache(sim, "t.rc")

            def host(sim):
                for i in range(10):
                    yield from partner.lookup(i)
                    yield from sim.sleep(1.0)

            def main(sim):
                yield from partner.start()
                t = sim.fork(host(sim), name="host")
                yield from sim.join(t)
                yield from partner.stop()

            return main(sim)

        return Workload("rotating_cache", build)

    def test_delay_free_clean(self):
        sim = Simulation(seed=1)
        w = self._workload()
        result = sim.run(w.build(sim))
        assert not result.crashed

    @pytest.mark.parametrize("chaos_seed", [1, 2, 3])
    def test_crash_proof_under_random_delays(self, chaos_seed):
        sim = Simulation(seed=chaos_seed, hook=RandomDelays(chaos_seed))
        w = self._workload()
        result = sim.run(w.build(sim))
        assert not result.crashed, result.first_failure()

    def test_lookup_site_becomes_delay_candidate(self, config):
        from repro.harness.runner import run_recording
        from repro.core.analyzer import analyze_trace

        _, trace = run_recording(self._workload(), config, seed=1)
        plan = analyze_trace(trace, config)
        assert "t.rc.Cache.Lookup:74" in plan.delay_sites


class TestBugMotifGapSemantics:
    def test_plain_uaf_delay_threshold(self):
        """A delay shorter than the use-dispose gap cannot expose the
        plain UAF; a longer one always does (the Figure 2 condition)."""

        class DelayUse(InstrumentationHook):
            def __init__(self, delay):
                self.delay = delay

            def before_access(self, pending):
                return self.delay if pending.location.site == "m.use:1" else 0.0

        def run_with(delay):
            sim = Simulation(seed=2, hook=DelayUse(delay))
            root = P.plain_uaf(
                sim, "m", "r", "m.use:1", "m.dispose:1", "m.init:1",
                use_at_ms=4.0, dispose_at_ms=9.0,
            )
            return sim.run(root)

        assert not run_with(2.0).crashed  # lands before the dispose
        assert run_with(8.0).crashed  # lands after the dispose

    def test_long_gap_uaf_needs_more_than_fixed_delay(self):
        class DelayUse(InstrumentationHook):
            def __init__(self, delay):
                self.delay = delay

            def before_access(self, pending):
                return self.delay if pending.location.site == "m.use:1" else 0.0

        def run_with(delay):
            sim = Simulation(seed=2, hook=DelayUse(delay))
            root = P.long_gap_uaf(sim, "m", "q", "m.init:1", "m.use:1", "m.dispose:1")
            return sim.run(root)

        assert not run_with(100.0).crashed  # the fixed length: too short
        assert run_with(112.0).crashed  # alpha * observed gap: enough

    def test_long_gap_parameter_validation(self):
        sim = Simulation(seed=1)
        with pytest.raises(ValueError):
            P.long_gap_uaf(sim, "m", "q", "i", "u", "d", vulnerable_gap_ms=90.0)
        with pytest.raises(ValueError):
            P.long_gap_uaf(sim, "m", "q", "i", "u", "d", observed_gap_ms=100.0)
        with pytest.raises(ValueError):
            P.long_gap_uaf(
                sim, "m", "q", "i", "u", "d", vulnerable_gap_ms=150.0, observed_gap_ms=97.0
            )

    def test_plain_uaf_rejects_inverted_times(self):
        sim = Simulation(seed=1)
        with pytest.raises(ValueError):
            P.plain_uaf(sim, "m", "r", "u", "d", "i", use_at_ms=9.0, dispose_at_ms=4.0)

    def test_plain_ubi_rejects_inverted_times(self):
        sim = Simulation(seed=1)
        with pytest.raises(ValueError):
            P.plain_ubi(sim, "m", "r", "i", "u", init_at_ms=5.0, first_use_at_ms=2.0)

    def test_interfering_instances_rejects_inverted_times(self):
        sim = Simulation(seed=1)
        with pytest.raises(ValueError):
            P.interfering_instances(
                sim, "m", "r", "i", "c", "d", worker_check_at_ms=12.0, cleanup_at_ms=10.0
            )
