"""Table 6: cumulative number and duration of injected delays.

Reproduced shape: with variable-length delays Waffle's *cumulative
duration* is several-fold smaller than WaffleBasic's even where it
injects a similar (or larger) number of delays; MQTT.Net times out
under WaffleBasic.
"""

from repro.harness import experiments, tables

from conftest import run_once


def test_table6_delays(benchmark, artifact):
    rows = run_once(benchmark, experiments.table6_delays, seed=0)
    artifact("table6_delays", tables.render_table6(rows))

    assert len(rows) == 11
    by_app = {row.app: row for row in rows}

    assert by_app["MQTT.Net"].basic_timed_out

    total_basic = sum(r.basic_duration_ms for r in rows if not r.basic_timed_out)
    total_waffle = sum(r.waffle_duration_ms for r in rows if not r.basic_timed_out)
    # Paper: "the cumulative delay duration Waffle injects is 5x less";
    # require at least that factor.
    assert total_basic > 5 * total_waffle, (total_basic, total_waffle)

    for app, row in by_app.items():
        if row.basic_timed_out:
            continue
        assert row.waffle_duration_ms < row.basic_duration_ms, app
        assert row.waffle_delays > 0, app
