"""Extension: quantifying the full Table 1 design space.

The paper's Table 1 compares Waffle qualitatively against RaceFuzzer,
CTrigger, RaceMob and DataCollider; section 7 adds that validation-
style tools "naturally require many more runs than Waffle". This
benchmark runs simplified models of all four next to Waffle on a
representative slice of the bug suite and checks the claims:

* one-candidate-per-run tools expose the interference bugs (they are
  immune to delay interference by construction) but sweep the dense
  apps' candidate lists, needing an order of magnitude more runs;
* short-delay sampling tools miss the long-gap bugs outright;
* Waffle matches or beats every tool on every bug in runs-to-expose.
"""

from repro.harness import experiments, tables

from conftest import run_once

BUGS = ("Bug-1", "Bug-7", "Bug-10", "Bug-11", "Bug-12", "Bug-15", "Bug-16")
BUDGET = 60


def test_related_tools(benchmark, artifact):
    rows = run_once(
        benchmark, experiments.related_tools_comparison, bugs=BUGS, budget=BUDGET
    )
    artifact("extension_related_tools", tables.render_related_tools(rows))

    by_bug = {row.bug_id: row for row in rows}

    # Waffle exposes everything in this slice and never needs more runs
    # than any other tool does.
    for bug_id, row in by_bug.items():
        assert row.runs["waffle"] is not None, bug_id
        for tool, runs in row.runs.items():
            if runs is not None:
                assert row.runs["waffle"] <= runs, (bug_id, tool)

    # The single-candidate tools are interference-immune: they expose
    # the Figure 4a bug that WaffleBasic misses...
    assert by_bug["Bug-10"].runs["racefuzzer"] is not None
    # ... but sweep the dense candidate list one run at a time.
    assert by_bug["Bug-16"].runs["racefuzzer"] > 3 * by_bug["Bug-16"].runs["waffle"]

    # Short sampled delays cannot bridge the long gaps.
    assert by_bug["Bug-15"].runs["racemob"] is None
    assert by_bug["Bug-15"].runs["datacollider"] is None
