"""Table 7: disabling any one design point hurts coverage or speed.

Reproduced shape: removing the preparation run or the interference
control loses bugs; removing the custom delay length loses the
long-gap bugs; removing parent-child analysis loses no bugs but slows
detection runs down (most on the allocation-heavy apps).
"""

from repro.harness import experiments, tables

from conftest import run_once


def test_table7_ablations(benchmark, artifact):
    rows = run_once(
        benchmark,
        experiments.table7_ablations,
        attempts=3,
        budget=10,
        base_seed=0,
    )
    artifact("table7_ablations", tables.render_table7(rows))

    by_point = {row.design_point: row for row in rows}
    assert set(by_point) == {
        "parent_child_analysis",
        "preparation_run",
        "custom_delay_length",
        "interference_control",
    }

    # Parent-child pruning is a pure performance optimization: no bugs
    # lost, but detection runs get slower (paper: 0 missed, 1.17x).
    assert by_point["parent_child_analysis"].bugs_missed == 0
    assert by_point["parent_child_analysis"].slowdown_over_waffle > 1.0

    # Dropping variable-length delays loses the long-gap bugs
    # (paper: 1 missed).
    assert by_point["custom_delay_length"].bugs_missed >= 1

    # Dropping the preparation run or interference control loses
    # multiple bugs (paper: 4 and 6).
    assert by_point["preparation_run"].bugs_missed >= 2
    assert by_point["interference_control"].bugs_missed >= 2

    # Interference control should cost more coverage than the delay
    # length alone (the paper's ordering).
    assert (
        by_point["interference_control"].bugs_missed
        >= by_point["custom_delay_length"].bugs_missed
    )
