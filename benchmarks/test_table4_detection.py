"""Table 4: the headline bug-detection comparison.

Reproduced shape (paper section 6.2-6.3):

* Waffle exposes all 18 MemOrder bugs; WaffleBasic exposes only ~11.
* Waffle needs 2 runs (prep + one detection) for most bugs; the dense
  applications cost it an extra detection run.
* WaffleBasic beats Waffle to the three repeated-race bugs (one run)
  but needs several runs for the Figure 4b bug and misses every
  interference/variable-length bug outright.

The benchmark uses 5 attempts x 30-run budgets (the CLI's ``table4``
command runs the paper's full 15 x 50).
"""

from repro.apps import all_bugs
from repro.harness import experiments, tables

from conftest import run_once

ATTEMPTS = 5
BUDGET = 30

BASIC_MISSES = {"Bug-8", "Bug-10", "Bug-12", "Bug-13", "Bug-15", "Bug-16", "Bug-17"}
BASIC_FIRST_RUN = {"Bug-3", "Bug-6", "Bug-9"}


def test_table4_detection(benchmark, artifact):
    rows = run_once(
        benchmark, experiments.table4_detection, attempts=ATTEMPTS, budget=BUDGET, base_seed=0
    )
    artifact("table4_detection", tables.render_table4(rows))

    assert len(rows) == 18
    by_id = {row.bug.bug_id: row for row in rows}

    # Waffle: 18/18, two runs for most, three for the dense apps.
    for bug_id, row in by_id.items():
        assert row.waffle_runs is not None, bug_id
        assert row.waffle_runs in (2, 3, 4), (bug_id, row.waffle_runs)
    two_run_bugs = [b for b, r in by_id.items() if r.waffle_runs == 2]
    assert len(two_run_bugs) >= 14  # paper: "14 out of the 18 ... twice"

    # WaffleBasic: the seven interference/length/density bugs stay hidden.
    for bug_id in BASIC_MISSES:
        assert by_id[bug_id].basic_runs is None, bug_id
    found = [b for b, r in by_id.items() if r.basic_runs is not None]
    assert len(found) == 11  # paper: "exposes only 11 out of the 18"

    # The repeated-race bugs fall to WaffleBasic in a single run.
    for bug_id in BASIC_FIRST_RUN:
        assert by_id[bug_id].basic_runs == 1, bug_id

    # Figure 4b: found, but needing clearly more runs than Waffle.
    assert by_id["Bug-11"].basic_runs > by_id["Bug-11"].waffle_runs

    # Slowdowns are moderate multiples of the uninstrumented input.
    for bug_id, row in by_id.items():
        assert row.waffle_slowdown is not None
        assert 1.0 < row.waffle_slowdown < 60.0, (bug_id, row.waffle_slowdown)
