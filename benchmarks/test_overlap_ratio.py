"""Section 3.3's delay-overlap measurement.

Paper shape: Tsvd's overlap is small (< ~15% everywhere, < 1% for
most apps); WaffleBasic overlaps substantially more on the MemOrder
surface -- the root cause of its delay interference.
"""

from repro.harness import experiments, metrics, tables

from conftest import run_once


def test_overlap_ratio(benchmark, artifact):
    rows = run_once(benchmark, experiments.overlap_ratios, seed=0)
    artifact("section33_overlap", tables.render_overlap(rows))

    assert len(rows) == 11
    tsvd_avg = metrics.mean([r.tsvd_overlap for r in rows])
    basic_avg = metrics.mean([r.wafflebasic_overlap for r in rows])

    # WaffleBasic overlaps more than Tsvd on average, and meaningfully so.
    assert basic_avg > tsvd_avg
    assert basic_avg > 0.02
    # Tsvd's sparse TSV surface keeps its overlap low.
    assert tsvd_avg < 0.15
