"""Figure 2: the two fundamentally different timing conditions.

A thread-safety violation manifests only when the injected delay falls
inside a bounded range (the call windows must overlap); a MemOrder bug
manifests for every delay longer than the whole gap.
"""

from repro.harness import experiments, tables

from conftest import run_once

DELAYS = tuple(float(d) for d in (0, 2, 4, 6, 8, 9, 10, 11, 12, 13, 14, 16, 20, 30, 50))


def test_figure2_timing_conditions(benchmark, artifact):
    points = run_once(benchmark, experiments.figure2_timing_conditions, delays_ms=DELAYS, seed=0)
    artifact("figure2_timing_conditions", tables.render_figure2(points))

    tsv_window = [p.delay_ms for p in points if p.tsv_exposed]
    memorder = [p.delay_ms for p in points if p.memorder_exposed]

    # TSV: exposed in a bounded, contiguous range -- not at zero, not at
    # the largest delays.
    assert tsv_window, "TSV never exposed"
    assert 0.0 not in tsv_window
    assert max(DELAYS) not in tsv_window
    by_delay = sorted(tsv_window)
    lo, hi = by_delay[0], by_delay[-1]
    assert all(lo <= p.delay_ms <= hi for p in points if p.tsv_exposed)

    # MemOrder: a threshold behavior -- exposed iff delay > gap, and
    # monotone from the threshold up.
    assert memorder
    threshold = min(memorder)
    assert threshold > 8.0  # must exceed the 10 ms gap minus op costs
    for p in points:
        assert p.memorder_exposed == (p.delay_ms >= threshold)
