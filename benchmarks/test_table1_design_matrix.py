"""Table 1: the qualitative design-decision matrix."""

from repro.harness import tables

from conftest import run_once


def test_table1_design_matrix(benchmark, artifact):
    text = run_once(benchmark, tables.design_matrix)
    artifact("table1_design_matrix", text)
    # The two tools the paper contrasts must disagree on the four
    # design points sections 4.1-4.4 discuss.
    assert "Waffle" in text and "Tsvd" in text
    for row in ("Identify during injection runs?", "Fixed-length delay?", "Avoid delay interference?"):
        assert row in text
