"""Harness-level perf: warm-cache regeneration must beat cold serial.

The parallel+cache layer exists so iterating on one table does not
re-simulate every cell. This benchmark times a fixed Table 4 subset on
the seed sequential path and again with ``jobs=4`` over a warm cache,
asserts the >= 2x acceptance bar, asserts bit-identical rows, and saves
the timings as an artifact (``benchmarks/results/harness_speed.txt``).
``benchmarks/bench_harness.py`` emits the same numbers as
``BENCH_harness.json`` for CI-free consumption.
"""

import json
import time

from repro.harness import experiments

from conftest import run_once

BUGS = ["Bug-1", "Bug-10", "Bug-11"]
ATTEMPTS = 3
BUDGET = 20


def test_warm_cache_speedup(benchmark, artifact, tmp_path):
    cache_dir = str(tmp_path / "cache")
    kwargs = dict(attempts=ATTEMPTS, budget=BUDGET, bugs=BUGS, base_seed=0)

    start = time.perf_counter()
    serial_rows = experiments.table4_detection(jobs=1, **kwargs)
    serial_cold_s = time.perf_counter() - start

    # Populate, then measure the steady state under the benchmark timer.
    experiments.table4_detection(jobs=4, cache_dir=cache_dir, **kwargs)
    start = time.perf_counter()
    warm_rows = run_once(
        benchmark, experiments.table4_detection, jobs=4, cache_dir=cache_dir, **kwargs
    )
    warm_cache_s = time.perf_counter() - start

    assert repr(serial_rows) == repr(warm_rows)
    speedup = serial_cold_s / warm_cache_s if warm_cache_s > 0 else float("inf")
    artifact(
        "harness_speed",
        json.dumps(
            {
                "serial_cold_s": round(serial_cold_s, 4),
                "warm_cache_s": round(warm_cache_s, 4),
                "speedup": round(speedup, 2),
            },
            indent=2,
        ),
    )
    assert speedup >= 2.0, "warm-cache table4 should be >= 2x faster (got %.2fx)" % speedup
