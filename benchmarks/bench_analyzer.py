"""Analyzer scale benchmark: tree clocks + batched passes vs the baseline.

Real preparation-run traces top out near a thousand events (median 20,
mean 60, max 960 across the 146 bundled app tests), far too small to
measure how ``analyze_trace`` scales. This benchmark generates seeded
synthetic traces (:mod:`repro.core.synthtrace`) with the same structure
the analyzer cares about -- deep fork trees, hundreds of threads,
near-miss windows dense with fork-related accesses -- at 10x and 100x
the largest real trace, and times all four engine/mode combinations:

* ``hb_engine`` in {vector, tree} (clock representation), and
* ``batched_analysis`` in {False, True} (per-event near-miss feeding
  versus the columnar sweep).

The timed region per combination is clock attachment (the recording
hook's per-fork ``inherit_to`` + per-event ``capture()`` work, replayed
offline on the shared event list) plus ``analyze_trace``. Because every
combination annotates the *same* event objects, object ids and
timestamps are identical by construction and the four injection plans
can be -- and are -- compared bit-for-bit.

Gates (exit 2 on violation):

* all four plans serialize identically at every scale;
* the headline speedup -- tree + batched over the vector per-event
  baseline -- is at least ``MIN_SPEEDUP_X`` at the largest scale;
* the batched sweep is never more than ``MAX_REGRESSION`` slower than
  the per-event path on the same engine (a machine-independent ratio,
  so the gate travels to any CI runner).

Writes ``BENCH_analyzer.json`` at the repo root.

Usage::

    PYTHONPATH=src python benchmarks/bench_analyzer.py
"""

from __future__ import annotations

import gc
import json
import pathlib
import sys
import time

from repro.core.analyzer import analyze_trace
from repro.core.config import WaffleConfig
from repro.core.synthtrace import attach_clocks, generate_trace

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

#: Events in the largest real preparation trace (netmq, seed 3); scale
#: labels below are multiples of it.
BASE_EVENTS = 960

MIN_SPEEDUP_X = 5.0
MAX_REGRESSION = 0.20

#: Generation parameters per scale cell. fork_bias grows one long spine
#: (deep clocks); related_fraction routes near-miss USEs through fork
#: chains, where the two engines' ordering-query costs diverge most.
SCALES = [
    {
        "label": "10x",
        "seed": 7,
        "n_threads": 192,
        "n_objects": 1_200,
        "fork_bias": 0.95,
        "uses_per_object": 12,
        "related_fraction": 0.9,
        "reps": 3,
    },
    {
        "label": "100x",
        "seed": 7,
        "n_threads": 640,
        "n_objects": 12_000,
        "fork_bias": 0.97,
        "uses_per_object": 12,
        "related_fraction": 0.9,
        "reps": 2,
    },
]

COMBOS = [
    ("vector", False),
    ("vector", True),
    ("tree", False),
    ("tree", True),
]


def _combo_key(engine: str, batched: bool) -> str:
    return "%s_%s" % (engine, "batched" if batched else "per_event")


def run_cell(spec: dict) -> dict:
    params = {k: v for k, v in spec.items() if k not in ("label", "reps")}
    synth = generate_trace(**params)
    events = synth.event_count

    # Warm both engines once: first-touch allocation and GC growth
    # otherwise land on whichever combination runs first.
    attach_clocks(synth, "vector")
    attach_clocks(synth, "tree")

    results = {}
    plans = {}
    for engine, batched in COMBOS:
        config = WaffleConfig(hb_engine=engine, batched_analysis=batched)
        best_attach = best_analyze = float("inf")
        plan = None
        for _ in range(spec["reps"]):
            gc.collect()
            t0 = time.perf_counter()
            attach_clocks(synth, engine)
            t1 = time.perf_counter()
            plan = analyze_trace(synth.trace, config)
            t2 = time.perf_counter()
            if (t2 - t0) < (best_attach + best_analyze):
                best_attach = t1 - t0
                best_analyze = t2 - t1
        key = _combo_key(engine, batched)
        plans[key] = json.dumps(plan.to_dict(), sort_keys=True)
        results[key] = {
            "attach_s": round(best_attach, 4),
            "analyze_s": round(best_analyze, 4),
            "total_s": round(best_attach + best_analyze, 4),
        }

    reference = plans[_combo_key("vector", False)]
    identical = all(serialized == reference for serialized in plans.values())
    baseline = results["vector_per_event"]["total_s"]
    optimized = results["tree_batched"]["total_s"]
    sample = next(iter(plans.values()))
    return {
        "label": spec["label"],
        "events": events,
        "threads": synth.thread_count,
        "scale_x": round(events / BASE_EVENTS, 1),
        "params": synth.params,
        "reps": spec["reps"],
        "combos": results,
        "plans_bit_identical": identical,
        "candidate_pairs": json.loads(sample)["stats"]["candidate_pairs"],
        "pruned_parent_child": json.loads(sample)["stats"]["pruned_parent_child"],
        "speedup_x": {
            "tree_batched_vs_vector_per_event": round(baseline / optimized, 2),
            "tree_vs_vector_batched": round(
                results["vector_batched"]["total_s"] / results["tree_batched"]["total_s"], 2
            ),
            "batched_vs_per_event_vector": round(
                baseline / results["vector_batched"]["total_s"], 2
            ),
        },
    }


def main() -> int:
    cells = [run_cell(spec) for spec in SCALES]
    top = cells[-1]
    headline = top["speedup_x"]["tree_batched_vs_vector_per_event"]

    failures = []
    for cell in cells:
        if not cell["plans_bit_identical"]:
            failures.append(
                "%s: injection plans differ across engine/mode combinations" % cell["label"]
            )
        for engine in ("vector", "tree"):
            per_event = cell["combos"]["%s_per_event" % engine]["total_s"]
            batched = cell["combos"]["%s_batched" % engine]["total_s"]
            if batched > per_event * (1.0 + MAX_REGRESSION):
                failures.append(
                    "%s: batched analysis regressed %.0f%% over per-event on the %s engine"
                    % (cell["label"], 100.0 * (batched / per_event - 1.0), engine)
                )
    if headline < MIN_SPEEDUP_X:
        failures.append(
            "headline speedup %.2fx at %s scale is below the %.1fx floor"
            % (headline, top["label"], MIN_SPEEDUP_X)
        )

    payload = {
        "benchmark": "analyzer scale (tree clocks + batched passes vs per-event vector)",
        "base_events": BASE_EVENTS,
        "cells": cells,
        "headline_speedup_x": headline,
        "min_speedup_x": MIN_SPEEDUP_X,
        "max_batched_regression_pct": 100.0 * MAX_REGRESSION,
        "ok": not failures,
    }
    out = REPO_ROOT / "BENCH_analyzer.json"
    out.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(json.dumps(payload, indent=2, sort_keys=True))
    print("wrote %s" % out)
    for failure in failures:
        print("FAIL: %s" % failure, file=sys.stderr)
    return 2 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
