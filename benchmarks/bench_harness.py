"""Measure the harness speedup from --jobs + the run cache.

Runs a fixed Table 4 subset three ways and writes ``BENCH_harness.json``
at the repo root:

* ``serial_cold_s``  -- the seed sequential path (no cache, no pool);
* ``warm_cache_s``   -- same cells with ``jobs=4`` and a warm cache
  (every unit memoized, so this is the steady-state cost of
  regenerating a table after any unrelated change);
* ``cold_cache_s``   -- the one-time cost of populating the cache.

All three produce bit-identical rows (asserted here and in
``tests/harness/test_parallel.py``). The acceptance bar is
``serial_cold_s / warm_cache_s >= 2``.

Usage::

    PYTHONPATH=src python benchmarks/bench_harness.py
"""

from __future__ import annotations

import json
import pathlib
import sys
import tempfile
import time

from repro.harness import experiments

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

#: A fixed, representative Table 4 subset: a sparse app bug (Bug-1), a
#: dense-app bug (Bug-10) and a Figure 4b bug (Bug-11).
BUGS = ["Bug-1", "Bug-10", "Bug-11"]
ATTEMPTS = 3
BUDGET = 20
JOBS = 4


def _run(jobs: int, cache_dir):
    start = time.perf_counter()
    rows = experiments.table4_detection(
        attempts=ATTEMPTS,
        budget=BUDGET,
        bugs=BUGS,
        base_seed=0,
        jobs=jobs,
        cache_dir=cache_dir,
    )
    return time.perf_counter() - start, rows


def main() -> int:
    with tempfile.TemporaryDirectory(prefix="waffle-bench-cache-") as cache_dir:
        serial_cold_s, serial_rows = _run(jobs=1, cache_dir=None)
        cold_cache_s, cold_rows = _run(jobs=JOBS, cache_dir=cache_dir)
        warm_cache_s, warm_rows = _run(jobs=JOBS, cache_dir=cache_dir)

    if not (repr(serial_rows) == repr(cold_rows) == repr(warm_rows)):
        print("FATAL: serial/parallel/cached rows differ", file=sys.stderr)
        return 1

    speedup = serial_cold_s / warm_cache_s if warm_cache_s > 0 else float("inf")
    payload = {
        "benchmark": "table4_detection subset",
        "bugs": BUGS,
        "attempts": ATTEMPTS,
        "budget": BUDGET,
        "jobs": JOBS,
        "serial_cold_s": round(serial_cold_s, 4),
        "cold_cache_s": round(cold_cache_s, 4),
        "warm_cache_s": round(warm_cache_s, 4),
        "speedup_warm_vs_serial": round(speedup, 2),
        "rows_identical": True,
    }
    out = REPO_ROOT / "BENCH_harness.json"
    out.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(json.dumps(payload, indent=2, sort_keys=True))
    print("wrote %s" % out)
    return 0 if speedup >= 2.0 else 2


if __name__ == "__main__":
    sys.exit(main())
