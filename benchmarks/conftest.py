"""Shared helpers for the benchmark suite.

Every benchmark regenerates one paper table or figure (DESIGN.md
section 4). The rendered artifact is printed (visible with ``-s``) and
saved under ``benchmarks/results/`` so EXPERIMENTS.md can reference the
exact output of the last run.

The experiments are deterministic given their seeds, so a single
measured round per benchmark is meaningful; wall-clock time reflects
simulator throughput, not statistical noise in the results themselves.
"""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def save_artifact(name: str, text: str) -> None:
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / (name + ".txt")).write_text(text + "\n")
    print()
    print(text)


@pytest.fixture
def artifact():
    return save_artifact


def run_once(benchmark, fn, *args, **kwargs):
    """Run an experiment exactly once under the benchmark timer."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
