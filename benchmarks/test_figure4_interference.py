"""Figures 4a/4b: the two interference case studies, measured.

Regenerates the paper's narrative around Figure 4 as data: on the
ApplicationInsights scenario (interfering bugs) and the NetMQ scenario
(interfering dynamic instances), compare Waffle and WaffleBasic over
several attempts and report exposure counts and run counts.
"""

from repro.apps import all_bugs, bug_workload
from repro.baselines import WaffleBasic
from repro.core.config import WaffleConfig
from repro.core.detector import Waffle

from conftest import run_once

ATTEMPTS = 5
BUDGET = 30


def _case_study(bug_id):
    bug = next(b for b in all_bugs() if b.bug_id == bug_id)
    test = bug_workload(bug_id)
    waffle_runs, basic_runs = [], []
    for seed in range(1, ATTEMPTS + 1):
        wa = Waffle(WaffleConfig(seed=seed)).detect(test, max_detection_runs=BUDGET)
        wb = WaffleBasic(WaffleConfig(seed=seed)).detect(test, max_detection_runs=BUDGET)
        waffle_runs.append(
            wa.runs_to_expose if wa.bug_found and bug.matches(wa.reports[0]) else None
        )
        basic_runs.append(
            wb.runs_to_expose if wb.bug_found and bug.matches(wb.reports[0]) else None
        )
    return waffle_runs, basic_runs


def _both():
    return {
        "fig4a_appinsights_1106": _case_study("Bug-10"),
        "fig4b_netmq_814": _case_study("Bug-11"),
    }


def test_figure4_interference(benchmark, artifact):
    results = run_once(benchmark, _both)

    lines = ["Figure 4 case studies (runs to expose per attempt; '-' = missed)"]
    for name, (waffle_runs, basic_runs) in results.items():
        lines.append(
            "%-24s Waffle=%s  WaffleBasic=%s"
            % (
                name,
                [r if r else "-" for r in waffle_runs],
                [r if r else "-" for r in basic_runs],
            )
        )
    artifact("figure4_interference", "\n".join(lines))

    fig4a_waffle, fig4a_basic = results["fig4a_appinsights_1106"]
    # Interfering bugs: Waffle exposes in 2 runs every attempt;
    # WaffleBasic's delays cancel and it misses (in a majority).
    assert all(r == 2 for r in fig4a_waffle)
    assert sum(1 for r in fig4a_basic if r is None) >= ATTEMPTS - 1

    fig4b_waffle, fig4b_basic = results["fig4b_netmq_814"]
    # Interfering instances: both expose it, but WaffleBasic needs
    # strictly more runs in every attempt.
    assert all(r == 2 for r in fig4b_waffle)
    assert all(r is not None and r > 2 for r in fig4b_basic)
