"""Section 6.2's control: no bug manifests without delay injection.

Every bug-triggering input is re-run 50 times, delay-free, under
varying scheduling seeds; none of the 18 bugs may ever manifest
spontaneously -- the property that makes active delay injection
necessary in the first place.
"""

from repro.harness import experiments, tables

from conftest import run_once

RUNS = 50


def test_stress_control(benchmark, artifact):
    rows = run_once(benchmark, experiments.stress_control, runs=RUNS, base_seed=0)
    artifact("stress_control", tables.render_stress(rows))

    assert len(rows) == 18
    for row in rows:
        assert row.runs == RUNS
        assert row.spontaneous_manifestations == 0, row.bug_id
