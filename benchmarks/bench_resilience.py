"""Guard the supervisor-inactive hot path against overhead creep.

The campaign supervisor (``repro.harness.supervisor``) is opt-in: with
no resilience flag and no chaos spec, ``parallel.map_units`` pays one
``supervisor.current() is None`` check per call and otherwise takes
its original path untouched. This benchmark enforces that budget: it
times the same serial table4 subset as ``bench_harness.py`` with the
supervisor inactive (min over several repetitions, one untimed
warm-up) and fails if the result exceeds the ``serial_cold_s``
baseline recorded in ``BENCH_harness.json`` by more than 3%.

CI runs ``bench_harness.py`` immediately before this script, so the
baseline is always a fresh measurement from the same machine and
process generation; when the file is missing the baseline is measured
here instead. The supervised-*active* time is also recorded (it pays
for cell keying, watchdog arming, and stats accounting) but only
reported, not gated -- resilience is worth paying for when you ask
for it.

Writes ``BENCH_resilience.json`` at the repo root.

Usage::

    PYTHONPATH=src python benchmarks/bench_resilience.py
"""

from __future__ import annotations

import json
import pathlib
import sys
import time

from repro.harness import experiments, faults, supervisor

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

# Mirror bench_harness.py's serial_cold workload exactly.
BUGS = ["Bug-1", "Bug-10", "Bug-11"]
ATTEMPTS = 3
BUDGET = 20
REPS = 5
MAX_OVERHEAD = 0.03


def _cells():
    return experiments.table4_detection(
        attempts=ATTEMPTS, budget=BUDGET, bugs=BUGS, base_seed=0, jobs=1, cache_dir=None
    )


def _timed():
    start = time.perf_counter()
    rows = _cells()
    return time.perf_counter() - start, rows


def _min_of_reps(reps: int = REPS) -> float:
    return min(_timed()[0] for _ in range(reps))


def main() -> int:
    assert supervisor.current() is None, "supervisor must start inactive"
    assert not faults.active(), "chaos must be off for a clean measurement"
    _cells()  # untimed warm-up (imports, code objects, allocator)

    bench_path = REPO_ROOT / "BENCH_harness.json"
    if bench_path.exists():
        baseline_s = json.loads(bench_path.read_text())["serial_cold_s"]
        baseline_source = "BENCH_harness.json"
    else:
        baseline_s = _min_of_reps()
        baseline_source = "measured here (BENCH_harness.json missing)"

    inactive_s = _min_of_reps()

    # Supervised-active cost, report-only: identical rows, plus fault
    # boundary, cell keys, watchdog, and stats.
    with supervisor.supervised() as sup:
        supervised_s = _min_of_reps(reps=2)
    assert sup.stats.quarantined == 0 and sup.stats.failed == 0

    overhead = inactive_s / baseline_s - 1.0
    payload = {
        "benchmark": "supervisor inactive-path overhead (table4_detection subset, serial)",
        "baseline_source": baseline_source,
        "baseline_serial_s": round(baseline_s, 4),
        "inactive_min_s": round(inactive_s, 4),
        "supervised_min_s": round(supervised_s, 4),
        "reps": REPS,
        "inactive_overhead_pct": round(100.0 * overhead, 2),
        "supervised_overhead_pct": round(100.0 * (supervised_s / baseline_s - 1.0), 2),
        "max_overhead_pct": 100.0 * MAX_OVERHEAD,
        "within_budget": overhead <= MAX_OVERHEAD,
    }
    out = REPO_ROOT / "BENCH_resilience.json"
    out.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(json.dumps(payload, indent=2, sort_keys=True))
    print("wrote %s" % out)
    if overhead > MAX_OVERHEAD:
        print(
            "FAIL: supervisor-inactive path is %.2f%% over the baseline (budget %.0f%%)"
            % (100.0 * overhead, 100.0 * MAX_OVERHEAD),
            file=sys.stderr,
        )
        return 2
    return 0


if __name__ == "__main__":
    sys.exit(main())
