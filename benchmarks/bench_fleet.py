"""Guard the fleet's scaling and coordination budgets.

Runs the same deterministic fuzz campaign (40 cells) twice through
``python -m repro campaign run``: once serial (the coordinator is the
only executor) and once with two spawned workers. Three gates:

* **identity** -- the merged canonical journal must be byte-identical
  across both runs (each run uses its own working directory with
  identical *relative* arguments, so content-addressed cell keys
  agree);
* **speedup** -- the 2-worker wall clock must be at least
  ``MIN_SPEEDUP`` times better than serial. Gated on the host actually
  having >= 2 CPUs: on a single-core box the fleet cannot beat serial
  and the gate would only measure the scheduler, so it is reported but
  not enforced;
* **coordination overhead** -- across all executors, time spent on
  leases/store/journals must stay within ``MAX_COORDINATION`` of time
  spent inside cells (read from the per-worker stats files).

Writes ``BENCH_fleet.json`` at the repo root; exits 2 on gate failure.

Usage::

    PYTHONPATH=src python benchmarks/bench_fleet.py
"""

from __future__ import annotations

import json
import os
import pathlib
import shutil
import subprocess
import sys
import tempfile
import time

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

# Budget 200 makes undetected seeds burn the whole run budget, so the
# campaign's compute (~7s serial) dominates worker interpreter startup
# -- the speedup gate measures the fleet, not process spawn.
INNER = ["fuzz", "--seed-range", "0:40", "--budget", "200", "--no-replay",
         "--out", "out.txt", "--cache-dir", "cache"]
WORKERS = 2
MIN_SPEEDUP = 1.8
MAX_COORDINATION = 0.10


def _run_campaign(cwd: pathlib.Path, workers: int) -> float:
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (str(REPO_ROOT / "src"), env.get("PYTHONPATH", "")) if p
    )
    env.pop("WAFFLE_CHAOS", None)
    argv = [sys.executable, "-m", "repro", "campaign", "run",
            "--fleet-dir", "fleet", "--workers", str(workers)]
    if workers:
        argv += ["--min-workers", str(workers)]
    argv += ["--"] + INNER
    started = time.perf_counter()
    proc = subprocess.run(argv, cwd=str(cwd), env=env,
                          capture_output=True, text=True, timeout=1800)
    elapsed = time.perf_counter() - started
    if proc.returncode != 0:
        raise SystemExit(
            "campaign run (workers=%d) failed rc=%d\n%s\n%s"
            % (workers, proc.returncode, proc.stdout, proc.stderr)
        )
    return elapsed


def _worker_stats(fleet_dir: pathlib.Path) -> dict:
    cell_s = coordination_s = 0.0
    executed = []
    for path in sorted((fleet_dir / "workers").glob("*.json")):
        stats = json.loads(path.read_text())
        cell_s += float(stats.get("cell_s", 0.0))
        coordination_s += float(stats.get("coordination_s", 0.0))
        executed.append("%s=%d" % (stats.get("worker", path.stem),
                                   int(stats.get("executed", 0))))
    return {"cell_s": cell_s, "coordination_s": coordination_s,
            "executed": executed}


def main() -> int:
    cpus = os.cpu_count() or 1
    scratch = pathlib.Path(tempfile.mkdtemp(prefix="bench-fleet-"))
    try:
        serial_dir = scratch / "serial"
        fleet_dir = scratch / "fleet"
        serial_dir.mkdir()
        fleet_dir.mkdir()

        serial_s = _run_campaign(serial_dir, workers=0)
        fleet_s = _run_campaign(fleet_dir, workers=WORKERS)

        serial_journal = (serial_dir / "fleet" / "journal-merged.jsonl").read_bytes()
        fleet_journal = (fleet_dir / "fleet" / "journal-merged.jsonl").read_bytes()
        identical = serial_journal == fleet_journal
        cells = len(serial_journal.splitlines())

        stats = _worker_stats(fleet_dir / "fleet")
        coordination_ratio = (
            stats["coordination_s"] / stats["cell_s"] if stats["cell_s"] else 0.0
        )
        speedup = serial_s / fleet_s if fleet_s else 0.0
        speedup_gated = cpus >= 2

        failures = []
        if not identical:
            failures.append("merged journals differ between serial and fleet runs")
        if cells != 40:
            failures.append("expected 40 cells in the journal, found %d" % cells)
        if speedup_gated and speedup < MIN_SPEEDUP:
            failures.append(
                "speedup %.2fx below the %.1fx floor at %d workers"
                % (speedup, MIN_SPEEDUP, WORKERS)
            )
        if coordination_ratio > MAX_COORDINATION:
            failures.append(
                "coordination is %.1f%% of cell time (budget %.0f%%)"
                % (100.0 * coordination_ratio, 100.0 * MAX_COORDINATION)
            )

        payload = {
            "benchmark": "fleet scaling (fuzz 0:40, %d workers + coordinator)" % WORKERS,
            "cpus": cpus,
            "cells": cells,
            "serial_s": round(serial_s, 3),
            "fleet_s": round(fleet_s, 3),
            "speedup_x": round(speedup, 3),
            "min_speedup_x": MIN_SPEEDUP,
            "speedup_gated": speedup_gated,
            "journals_identical": identical,
            "cell_s_total": round(stats["cell_s"], 3),
            "coordination_s_total": round(stats["coordination_s"], 4),
            "coordination_pct_of_cell": round(100.0 * coordination_ratio, 2),
            "max_coordination_pct": 100.0 * MAX_COORDINATION,
            "executed_per_worker": stats["executed"],
            "within_budget": not failures,
        }
        out = REPO_ROOT / "BENCH_fleet.json"
        out.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
        print(json.dumps(payload, indent=2, sort_keys=True))
        print("wrote %s" % out)
        if failures:
            for failure in failures:
                print("FAIL: %s" % failure, file=sys.stderr)
            return 2
        return 0
    finally:
        shutil.rmtree(scratch, ignore_errors=True)


if __name__ == "__main__":
    sys.exit(main())
