"""Guard the telemetry hot paths against overhead creep.

Two budgets, one benchmark:

* **disabled**: with no session configured the instrumentation must
  cost one ``is not None`` branch per guarded site. Budget: 3% over
  the no-obs baseline.
* **enabled**: with a session configured (the batched flush policy of
  :class:`repro.obs.telemetry.TelemetrySession` and the fused
  per-decision ``decision()`` call) a serial campaign must stay within
  15% of the same baseline. The campaign event bus co-activates with
  the session (same directory), so the enabled figure covers event
  emission and flushing too; the disabled figure covers the bus's
  ``is None`` guards.

The baseline is measured *in this process*, interleaved rep-for-rep
with the instrumented runs. An earlier version compared against the
``serial_cold_s`` figure from ``BENCH_harness.json`` -- a different
process generation, minutes stale by the time this script ran in CI --
which produced nonsense like "-12% overhead" on a noisy runner.
Interleaving baseline and instrumented reps puts both under the same
thermal/cache conditions, and min-of-reps discards scheduling noise
(and amortized batch flushes, which are deferred work, not steady-state
cost).

The flight-recorder-enabled time is reported but not gated (it is an
opt-in debugging mode).

Writes ``BENCH_obs.json`` at the repo root.

Usage::

    PYTHONPATH=src python benchmarks/bench_obs.py
"""

from __future__ import annotations

import json
import pathlib
import sys
import tempfile
import time

from repro import obs
from repro.harness import experiments

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

# Mirror bench_harness.py's serial_cold workload exactly.
BUGS = ["Bug-1", "Bug-10", "Bug-11"]
ATTEMPTS = 3
BUDGET = 20
REPS = 7
MAX_OVERHEAD = 0.03
MAX_ENABLED_OVERHEAD = 0.15


def _timed() -> float:
    start = time.perf_counter()
    experiments.table4_detection(
        attempts=ATTEMPTS, budget=BUDGET, bugs=BUGS, base_seed=0, jobs=1, cache_dir=None
    )
    return time.perf_counter() - start


def main() -> int:
    assert obs.session() is None, "telemetry must start disabled"
    assert not obs.flightrec.active(), "flight recorder must start disabled"
    _timed()  # untimed warm-up (imports, code objects, allocator)
    _timed()

    baseline, disabled, enabled = [], [], []
    events_streams = events_recorded = 0
    with tempfile.TemporaryDirectory(prefix="waffle-bench-obs-") as obs_dir:
        for _ in range(REPS):
            baseline.append(_timed())
            disabled.append(_timed())
            obs.configure(obs_dir)
            try:
                enabled.append(_timed())
            finally:
                obs.disable()  # flushes outside the timed region
        # Event-bus traffic rode along with every enabled rep; record
        # how much so the snapshot documents what the 15% budget covers.
        events_files = sorted(pathlib.Path(obs_dir).glob("events-*.jsonl"))
        events_streams = len(events_files)
        events_recorded = sum(
            sum(1 for line in path.read_text().splitlines() if line.strip())
            for path in events_files
        )

    obs.flightrec.install()
    try:
        flightrec_s = min(_timed() for _ in range(2))
    finally:
        obs.flightrec.uninstall()

    baseline_s = min(baseline)
    disabled_s = min(disabled)
    enabled_s = min(enabled)
    overhead = disabled_s / baseline_s - 1.0
    enabled_overhead = enabled_s / baseline_s - 1.0
    payload = {
        "benchmark": "obs overhead (table4_detection subset, serial, interleaved baseline)",
        "baseline_source": "measured in-process, interleaved with instrumented reps",
        "baseline_serial_s": round(baseline_s, 4),
        "disabled_min_s": round(disabled_s, 4),
        "enabled_min_s": round(enabled_s, 4),
        "flightrec_min_s": round(flightrec_s, 4),
        "reps": REPS,
        "disabled_overhead_pct": round(100.0 * overhead, 2),
        "enabled_overhead_pct": round(100.0 * enabled_overhead, 2),
        "flightrec_overhead_pct": round(100.0 * (flightrec_s / baseline_s - 1.0), 2),
        "eventbus_streams": events_streams,
        "eventbus_events": events_recorded,
        "max_overhead_pct": 100.0 * MAX_OVERHEAD,
        "max_enabled_overhead_pct": 100.0 * MAX_ENABLED_OVERHEAD,
        "within_budget": overhead <= MAX_OVERHEAD and enabled_overhead <= MAX_ENABLED_OVERHEAD,
    }
    out = REPO_ROOT / "BENCH_obs.json"
    out.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(json.dumps(payload, indent=2, sort_keys=True))
    print("wrote %s" % out)
    failed = False
    if overhead > MAX_OVERHEAD:
        print(
            "FAIL: telemetry-disabled path is %.2f%% over the baseline (budget %.0f%%)"
            % (100.0 * overhead, 100.0 * MAX_OVERHEAD),
            file=sys.stderr,
        )
        failed = True
    if enabled_overhead > MAX_ENABLED_OVERHEAD:
        print(
            "FAIL: telemetry-enabled path is %.2f%% over the baseline (budget %.0f%%)"
            % (100.0 * enabled_overhead, 100.0 * MAX_ENABLED_OVERHEAD),
            file=sys.stderr,
        )
        failed = True
    return 2 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
