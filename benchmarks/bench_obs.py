"""Guard the telemetry-disabled hot path against overhead creep.

The observability instrumentation (``repro.obs``) is designed to cost
one ``is not None`` branch per guarded site when no session is
configured -- and the flight recorder (``repro.obs.flightrec``) makes
the same promise when not installed. This benchmark enforces that
budget: it times the same serial table4 subset as ``bench_harness.py``
with telemetry *and* flight recorder disabled (min over several
repetitions, one untimed warm-up) and fails if the result exceeds the
``serial_cold_s`` baseline recorded in ``BENCH_harness.json`` by more
than 3%.

CI runs ``bench_harness.py`` immediately before this script, so the
baseline is always a fresh measurement from the same machine and
process generation; when the file is missing the baseline is measured
here instead. The telemetry-*enabled* and flight-recorder-*enabled*
times are also recorded (they pay for event buffering / ring appends)
but only reported, not gated.

Writes ``BENCH_obs.json`` at the repo root.

Usage::

    PYTHONPATH=src python benchmarks/bench_obs.py
"""

from __future__ import annotations

import json
import pathlib
import sys
import tempfile
import time

from repro import obs
from repro.harness import experiments

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

# Mirror bench_harness.py's serial_cold workload exactly.
BUGS = ["Bug-1", "Bug-10", "Bug-11"]
ATTEMPTS = 3
BUDGET = 20
REPS = 5
MAX_OVERHEAD = 0.03


def _cells():
    return experiments.table4_detection(
        attempts=ATTEMPTS, budget=BUDGET, bugs=BUGS, base_seed=0, jobs=1, cache_dir=None
    )


def _timed():
    start = time.perf_counter()
    rows = _cells()
    return time.perf_counter() - start, rows


def _min_of_reps(reps: int = REPS) -> float:
    return min(_timed()[0] for _ in range(reps))


def main() -> int:
    assert obs.session() is None, "telemetry must start disabled"
    assert not obs.flightrec.active(), "flight recorder must start disabled"
    _cells()  # untimed warm-up (imports, code objects, allocator)

    bench_path = REPO_ROOT / "BENCH_harness.json"
    if bench_path.exists():
        baseline_s = json.loads(bench_path.read_text())["serial_cold_s"]
        baseline_source = "BENCH_harness.json"
    else:
        baseline_s = _min_of_reps()
        baseline_source = "measured here (BENCH_harness.json missing)"

    assert not obs.flightrec.active(), "flight recorder leaked into the timed path"
    disabled_s = _min_of_reps()

    with tempfile.TemporaryDirectory(prefix="waffle-bench-obs-") as obs_dir:
        obs.configure(obs_dir)
        try:
            enabled_s = _min_of_reps(reps=2)
            obs.flush()
        finally:
            obs.disable()

    obs.flightrec.install()
    try:
        flightrec_s = _min_of_reps(reps=2)
    finally:
        obs.flightrec.uninstall()

    overhead = disabled_s / baseline_s - 1.0
    payload = {
        "benchmark": "obs disabled-path overhead (table4_detection subset, serial)",
        "baseline_source": baseline_source,
        "baseline_serial_s": round(baseline_s, 4),
        "disabled_min_s": round(disabled_s, 4),
        "enabled_min_s": round(enabled_s, 4),
        "flightrec_min_s": round(flightrec_s, 4),
        "reps": REPS,
        "disabled_overhead_pct": round(100.0 * overhead, 2),
        "enabled_overhead_pct": round(100.0 * (enabled_s / baseline_s - 1.0), 2),
        "flightrec_overhead_pct": round(100.0 * (flightrec_s / baseline_s - 1.0), 2),
        "max_overhead_pct": 100.0 * MAX_OVERHEAD,
        "within_budget": overhead <= MAX_OVERHEAD,
    }
    out = REPO_ROOT / "BENCH_obs.json"
    out.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(json.dumps(payload, indent=2, sort_keys=True))
    print("wrote %s" % out)
    if overhead > MAX_OVERHEAD:
        print(
            "FAIL: telemetry-disabled path is %.2f%% over the baseline (budget %.0f%%)"
            % (100.0 * overhead, 100.0 * MAX_OVERHEAD),
            file=sys.stderr,
        )
        return 2
    return 0


if __name__ == "__main__":
    sys.exit(main())
