"""Section 3.3's dynamic-instance census.

Paper claim: "the median number of dynamic instances for all object
initialization operations is 2 across all unit tests for all
applications" -- initializations execute too few times per run for
same-run identification+injection to reach them.
"""

from repro.harness import experiments, tables

from conftest import run_once


def test_dynamic_instances(benchmark, artifact):
    rows, overall = run_once(benchmark, experiments.dynamic_instances, seed=0)
    artifact(
        "section33_dynamic_instances",
        tables.render_dynamic_instances(rows, overall),
    )

    assert len(rows) == 11
    # The headline census: a small single-digit median, near the
    # paper's 2.
    assert 1.0 <= overall <= 4.0
    for row in rows:
        assert row.init_sites > 0
