"""Table 2: TSV vs MemOrder instrumentation / injection site densities.

Paper shape to reproduce: MemOrder instrumentation sites are roughly an
order of magnitude more numerous than thread-safety-violation sites,
and injection sites follow the same ordering, with the dense apps
(MQTT.Net, NpgSQL) at the top.
"""

from repro.harness import experiments, tables

from conftest import run_once


def test_table2_sites(benchmark, artifact):
    rows = run_once(benchmark, experiments.table2_sites, seed=0)
    artifact("table2_sites", tables.render_table2(rows))

    assert len(rows) == 11
    ratios = {}
    for row in rows:
        assert row.mo_instr_sites > row.tsv_instr_sites, row.app
        assert row.mo_injection_sites >= row.tsv_injection_sites * 0 + 0  # defined
        if row.tsv_instr_sites:
            ratios[row.app] = row.mo_instr_sites / row.tsv_instr_sites

    # Order-of-magnitude dominance on average (paper: >10x for 8/11).
    avg_ratio = sum(ratios.values()) / len(ratios)
    assert avg_ratio > 8.0, ratios
    # The dense applications have the richest MemOrder surfaces.
    by_mo = sorted(rows, key=lambda r: r.mo_instr_sites, reverse=True)
    assert {by_mo[0].app, by_mo[1].app} == {"MQTT.Net", "NpgSQL"}
