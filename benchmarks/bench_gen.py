"""Generator benchmark: spec/build throughput + detection-rate curves.

The procedural workload generator (:mod:`repro.gen`) has to be cheap
enough that the fuzz verifier's cost is dominated by detection, not
generation, and its planted-bug oracles have to stay analytically
exact. This benchmark pins both:

* **generation throughput** -- specs/s (``generate_spec`` + hash) and
  built workloads/s (``build_workload`` on top), gated at
  ``MIN_WORKLOADS_PER_S``;
* **detection-rate-vs-topology curves** -- the oracle evaluated over
  ``ORACLE_SEEDS`` seeds, rolled up per concurrency topology; recall
  on detectable planted bugs is gated at 100% and soundness violations
  at zero;
* **engine identity** -- the full fuzz row digest under the vector and
  tree happens-before engines, gated bit-identical.

Writes ``BENCH_gen.json`` at the repo root (ingested by the
``obs analytics`` perf-regression tracker alongside the other
``BENCH_*.json`` snapshots).

Usage::

    PYTHONPATH=src python benchmarks/bench_gen.py
"""

from __future__ import annotations

import dataclasses
import json
import pathlib
import sys
import time

from repro.core.config import DEFAULT_CONFIG
from repro.gen.builder import build_workload
from repro.gen.spec import generate_spec, spec_hash
from repro.harness.fuzz import fuzz_digest, fuzz_range, topology_table

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

#: Floor on full workload construction (spec + hash + simulated app).
#: The acceptance bar is 50/s; real numbers are orders of magnitude
#: higher, so a breach means generation grew a real hot spot.
MIN_WORKLOADS_PER_S = 50.0

#: Seeds generated for the throughput measurement.
THROUGHPUT_SEEDS = 2_000

#: Seeds oracle-evaluated for the detection-rate curves (each seed is a
#: full multi-session detect campaign; keep CI-friendly).
ORACLE_SEEDS = 32


def bench_generation() -> dict:
    t0 = time.perf_counter()
    specs = [generate_spec(seed) for seed in range(THROUGHPUT_SEEDS)]
    hashes = [spec_hash(spec) for spec in specs]
    t1 = time.perf_counter()
    for spec in specs[:200]:
        build_workload(spec)
    t2 = time.perf_counter()
    spec_s = t1 - t0
    build_s = t2 - t1
    per_workload = spec_s / THROUGHPUT_SEEDS + build_s / 200
    return {
        "seeds": THROUGHPUT_SEEDS,
        "distinct_spec_hashes": len(set(hashes)),
        "spec_gen_s": round(spec_s, 4),
        "specs_per_s": round(THROUGHPUT_SEEDS / spec_s, 1),
        "build_s_per_200": round(build_s, 4),
        "workloads_per_s": round(1.0 / per_workload, 1),
    }


def bench_oracle() -> dict:
    t0 = time.perf_counter()
    rows = fuzz_range(0, ORACLE_SEEDS, config=DEFAULT_CONFIG, check_replay=False)
    wall = time.perf_counter() - t0
    tree_rows = fuzz_range(
        0,
        ORACLE_SEEDS,
        config=dataclasses.replace(DEFAULT_CONFIG, hb_engine="tree"),
        check_replay=False,
    )
    detectable = sum(r["detectable"] for r in rows)
    found = sum(len(r["found"]) for r in rows)
    return {
        "seeds": ORACLE_SEEDS,
        "oracle_s": round(wall, 4),
        "planted": sum(r["planted"] for r in rows),
        "detectable": detectable,
        "found": found,
        "recall": round(found / detectable, 4) if detectable else 1.0,
        "violations": sum(len(r["violations"]) for r in rows),
        "topology_curve": topology_table(rows),
        "digest_vector": fuzz_digest(rows),
        "digest_tree": fuzz_digest(tree_rows),
    }


def main() -> int:
    generation = bench_generation()
    oracle = bench_oracle()

    failures = []
    if generation["workloads_per_s"] < MIN_WORKLOADS_PER_S:
        failures.append(
            "generation throughput %.1f workloads/s is below the %.0f/s floor"
            % (generation["workloads_per_s"], MIN_WORKLOADS_PER_S)
        )
    if generation["distinct_spec_hashes"] != generation["seeds"]:
        failures.append(
            "spec hashes collide: %d distinct over %d seeds"
            % (generation["distinct_spec_hashes"], generation["seeds"])
        )
    if oracle["recall"] < 1.0:
        failures.append(
            "recall %.2f%% on detectable planted bugs (must be 100%%)"
            % (100.0 * oracle["recall"])
        )
    if oracle["violations"]:
        failures.append("%d oracle invariant violation(s)" % oracle["violations"])
    if oracle["digest_vector"] != oracle["digest_tree"]:
        failures.append("fuzz digests diverge between vector and tree engines")

    payload = {
        "benchmark": "workload generator (throughput + oracle detection curves)",
        "generation": generation,
        "oracle": oracle,
        "min_workloads_per_s": MIN_WORKLOADS_PER_S,
        "engines_bit_identical": oracle["digest_vector"] == oracle["digest_tree"],
        "ok": not failures,
    }
    out = REPO_ROOT / "BENCH_gen.json"
    out.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(json.dumps(payload, indent=2, sort_keys=True))
    print("wrote %s" % out)
    for failure in failures:
        print("FAIL: %s" % failure, file=sys.stderr)
    return 2 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
