"""Table 5: average overhead on all test inputs, both tools, R#1/R#2.

Reproduced shape: Waffle's preparation run costs a fraction of the
baseline; its detection runs stay far below WaffleBasic's; the dense
protocol app (MQTT.Net) times out under WaffleBasic's fixed delays;
NpgSQL shows the largest finite overheads.
"""

from repro.harness import experiments, tables

from conftest import run_once


def test_table5_overhead(benchmark, artifact):
    rows = run_once(benchmark, experiments.table5_overhead, seed=0)
    artifact("table5_overhead", tables.render_table5(rows))

    assert len(rows) == 11
    by_app = {row.app: row for row in rows}

    # MQTT.Net: most tests exceed their timeout under WaffleBasic.
    assert by_app["MQTT.Net"].basic_timed_out

    for app, row in by_app.items():
        if row.basic_timed_out:
            continue
        # Waffle's detection run is cheaper than WaffleBasic's second run.
        assert row.waffle_run2_pct < row.basic_run2_pct, app
        # The preparation run is delay-free: cheaper than Basic's runs.
        assert row.waffle_run1_pct < row.basic_run2_pct, app

    # NpgSQL carries the largest finite WaffleBasic overhead (paper: its
    # 2818%/2509% dwarfs every other non-timeout app).
    finite = [r for r in rows if not r.basic_timed_out and r.basic_run2_pct is not None]
    worst = max(finite, key=lambda r: r.basic_run2_pct)
    assert worst.app == "NpgSQL"
