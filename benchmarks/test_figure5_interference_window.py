"""Figure 5: the interference window, measured.

An equal-length delay at l* on the disposer's thread cancels the
reordering delay at l1 exactly when the two delay windows still overlap
as the delayed use lands; an early l* delay is absorbed by the thread's
slack and interferes with nothing. This is the timing fact the
interference set I (section 4.4) exists to exploit.
"""

from repro.harness import experiments, tables

from conftest import run_once


def test_figure5_interference_window(benchmark, artifact):
    points = run_once(benchmark, experiments.figure5_interference_window, seed=0)
    artifact("figure5_interference_window", tables.render_figure5(points))

    # Every point classified by the window predicate must behave
    # accordingly: overlap <=> cancellation.
    for point in points:
        assert point.bug_exposed == (not point.interferer_delay_overlaps_window), point

    # Both regimes must be represented in the sweep.
    assert any(p.interferer_delay_overlaps_window for p in points)
    assert any(not p.interferer_delay_overlaps_window for p in points)
