"""CI gate for an obs directory written via --obs-dir.

Asserts the telemetry contract end to end, from files alone:

* every ``telemetry-*.jsonl`` line parses and carries a known ``type``;
* every skip event carries a valid reason tag;
* every ``summary-*.json`` parses and contains the required counters
  (sessions pre-register them, so the *names* must be present even at
  value 0);
* decision events reconcile with run summaries and merged counters
  (via :func:`repro.obs.report.reconcile`);
* every ``dossier-*.json`` validates against the dossier schema
  (:func:`repro.obs.dossier.validate_dossier_dict`);
* every ``coverage-*.json`` reconciles with its own engine counters
  (:func:`repro.obs.coverage.reconcile_coverage`);
* every co-located ``events-*.jsonl`` campaign stream parses, carries
  only known event types at the supported schema version, and its
  folded counts reconcile **exactly** with the merged telemetry
  counters (cache hits/misses, faults by kind, retried/quarantined/
  resumed cells) -- the only tolerated deficit is the number of
  recovered torn tail lines.

A truncated final JSONL line (no trailing newline -- the artifact a
killed ``--jobs`` worker leaves) is tolerated, matching
``load_obs_dir``'s recovery posture; it is reported as a warning, not
a failure.

With a second argument naming a ``BENCH_obs.json`` produced by
``benchmarks/bench_obs.py``, also enforces the overhead budgets the
benchmark recorded: the disabled path within ``max_overhead_pct`` and
the enabled path within ``max_enabled_overhead_pct`` of the in-process
baseline.

Fleet campaigns add the lease-ledger conservation law: every lease
creation (``lease_acquire`` or ``lease_steal``) is matched by exactly
one termination (``lease_release`` or ``lease_expire``), modulo
recovered torn lines. ``--events-only`` validates a directory that has
event streams but no telemetry (a fleet dir): stream parse/schema
checks and the lease ledger, without the counter reconciliation.

Usage::

    PYTHONPATH=src python scripts/check_obs.py <obs-dir> [bench-obs-json]
    PYTHONPATH=src python scripts/check_obs.py --events-only <fleet-dir>
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

from repro.core import persistence
from repro.obs import campaign as campaign_mod
from repro.obs import eventbus
from repro.obs.coverage import reconcile_coverage
from repro.obs.dossier import validate_dossier_dict
from repro.obs.report import load_obs_dir, reconcile
from repro.obs.telemetry import SKIP_REASONS

REQUIRED_COUNTERS = (
    "inject.considered",
    "inject.injected",
    "inject.skipped.decay",
    "inject.skipped.interference",
    "inject.skipped.budget",
    "nearmiss.pairs_observed",
    "candidates.added",
    "cache.hits",
    "cache.misses",
    "sched.runs",
    "sched.context_switches",
    "telemetry.runs_recorded",
    # Resilience counters (repro.harness.supervisor / faults taxonomy);
    # pre-registered at session start so every summary carries them.
    "faults.worker_crash",
    "faults.hang",
    "faults.transient_io",
    "faults.corrupt_record",
    "faults.deterministic",
    "cells.retried",
    "cells.quarantined",
    "cells.resumed",
    "cache.corrupt",
)

KNOWN_TYPES = {"meta", "inject", "span", "run"}


def check(obs_dir: Path) -> list:
    problems = []
    summaries = sorted(obs_dir.glob("summary-*.json"))
    events = sorted(obs_dir.glob("telemetry-*.jsonl"))
    if not summaries:
        problems.append("no summary-*.json files in %s" % obs_dir)
    if not events:
        problems.append("no telemetry-*.jsonl files in %s" % obs_dir)

    for path in summaries:
        try:
            payload = json.loads(path.read_text())
            counters = payload["record"]["metrics"]["counters"]
        except (ValueError, KeyError) as exc:
            problems.append("%s: unreadable summary (%s)" % (path.name, exc))
            continue
        for name in REQUIRED_COUNTERS:
            if name not in counters:
                problems.append("%s: missing counter %r" % (path.name, name))

    for path in events:
        text = path.read_text()
        lines = text.splitlines()
        truncated_tail = bool(lines) and not text.endswith("\n")
        for line_no, line in enumerate(lines, start=1):
            if not line.strip():
                continue
            try:
                record = json.loads(line)
            except ValueError as exc:
                if truncated_tail and line_no == len(lines):
                    continue  # killed-worker artifact; load_obs_dir warns
                problems.append("%s:%d: bad JSON (%s)" % (path.name, line_no, exc))
                continue
            kind = record.get("type")
            if kind not in KNOWN_TYPES:
                problems.append("%s:%d: unknown type %r" % (path.name, line_no, kind))
            elif kind == "inject" and record.get("action") == "skip":
                if record.get("reason") not in SKIP_REASONS:
                    problems.append(
                        "%s:%d: skip event without a valid reason" % (path.name, line_no)
                    )

    for path in sorted(obs_dir.glob("dossier-*.json")):
        try:
            payload = persistence.load_record(path)["dossier"]
        except (ValueError, KeyError, OSError) as exc:
            problems.append("%s: unreadable dossier (%s)" % (path.name, exc))
            continue
        problems.extend(
            "%s: %s" % (path.name, issue) for issue in validate_dossier_dict(payload)
        )

    for path in sorted(obs_dir.glob("coverage-*.json")):
        try:
            record = persistence.load_record(path)
        except (ValueError, KeyError, OSError) as exc:
            problems.append("%s: unreadable coverage record (%s)" % (path.name, exc))
            continue
        problems.extend(
            "%s: %s" % (path.name, issue) for issue in reconcile_coverage(record)
        )

    data = load_obs_dir(obs_dir)
    problems.extend(data.parse_errors)
    problems.extend(reconcile(data))
    problems.extend(check_events(obs_dir, data))
    problems.extend(check_dashboard_artifacts(obs_dir))
    return problems


def check_dashboard_artifacts(obs_dir: Path) -> list:
    """Validate co-located dashboard artifacts, when present.

    ``fuzz --dashboard`` / ``obs dashboard`` leave three artifacts next
    to the telemetry; each has a machine-checkable contract: the time
    series is schema-versioned JSONL (every row passes
    ``validate_row``), the OpenMetrics export parses under
    ``validate_openmetrics``, and the HTML is self-contained (no
    external stylesheet/script/image references). Absent artifacts are
    fine -- not every campaign renders a dashboard.
    """
    from repro.obs import openmetrics as openmetrics_mod
    from repro.obs import timeseries as timeseries_mod

    problems = []
    series_path = obs_dir / timeseries_mod.TIMESERIES_NAME
    if series_path.exists():
        rows, warnings = timeseries_mod.load_series(series_path)
        problems.extend("timeseries: %s" % w for w in warnings)
        if not rows:
            problems.append("timeseries: %s has no valid data rows" % series_path.name)
    prom_path = obs_dir / "metrics.prom"
    if prom_path.exists():
        problems.extend(
            "metrics.prom: %s" % issue
            for issue in openmetrics_mod.validate_openmetrics(prom_path.read_text())
        )
    html_path = obs_dir / "dashboard.html"
    if html_path.exists():
        text = html_path.read_text()
        for marker in ('<link rel="stylesheet"', "<script src=", "http://", "https://"):
            if marker in text:
                problems.append(
                    "dashboard.html: external reference %r breaks the "
                    "self-contained contract" % marker
                )
        for heading in ("Detection funnel", "Sensitivity curves",
                        "Delay-budget attribution"):
            if heading not in text:
                problems.append("dashboard.html: missing section %r" % heading)
    return problems


#: Campaign-event counts that must match merged telemetry counters
#: exactly (modulo recovered torn lines): (label, counter name).
FAULT_KINDS = ("worker_crash", "hang", "transient_io", "corrupt_record", "deterministic")


def check_events(obs_dir: Path, data) -> list:
    """Reconcile co-located campaign event streams with the counters.

    Zero-tolerance by design: every emission site increments its
    telemetry counter and emits its bus event in the same code path, so
    any divergence is an instrumentation bug. The single tolerated
    deficit is the number of recovered torn tail lines (a killed
    writer commits at most one partial line per stream); a *surplus*
    of events over counters is never tolerated. Skipped entirely when
    either artifact is absent (events-only or telemetry-only runs have
    nothing to cross-check).
    """
    streams = eventbus.load_streams(obs_dir)
    if not streams:
        return []
    problems = []
    recovered = 0
    for stream in streams:
        name = Path(stream.path).name
        problems.extend(stream.parse_errors)
        recovered += stream.recovered
        if (
            stream.meta.version is not None
            and stream.meta.version not in eventbus.SUPPORTED_EVENT_VERSIONS
        ):
            problems.append(
                "%s: event schema version %r not in supported %s"
                % (name, stream.meta.version,
                   list(eventbus.SUPPORTED_EVENT_VERSIONS))
            )
        for event in stream.events:
            if event.get("type") not in eventbus.EVENT_TYPES:
                problems.append(
                    "%s: unknown event type %r (seq %s)"
                    % (name, event.get("type"), event.get("seq"))
                )
    merged = eventbus.merge_events(streams)
    view = campaign_mod.fold_events(merged)
    # Lease ledger conservation (fleet campaigns; trivially 0 == 0
    # elsewhere): every lease creation is an acquire or a steal, every
    # termination a release or an expire, and lease events are hard-
    # flushed at emission -- so the two sides balance exactly, modulo
    # recovered torn tail lines (in either direction: a killed worker's
    # torn line can be a creation or a termination).
    creations = view.lease_acquired + view.lease_stolen
    terminations = view.lease_released + view.lease_expired
    if abs(creations - terminations) > recovered:
        problems.append(
            "events: lease ledger unbalanced: %d acquire + %d steal != "
            "%d release + %d expire (|diff| %d > %d recovered torn line(s))"
            % (view.lease_acquired, view.lease_stolen, view.lease_released,
               view.lease_expired, abs(creations - terminations), recovered)
        )
    counters = (data.metrics or {}).get("counters", {})
    if not counters:
        return problems

    def exact(label: str, observed: int, expected: int) -> None:
        if observed > expected:
            problems.append(
                "events: %d %s event(s) exceed the counter value %d"
                % (observed, label, expected)
            )
        elif expected - observed > recovered:
            problems.append(
                "events: %d %s event(s) vs counter %d (deficit %d > %d "
                "recovered torn line(s))"
                % (observed, label, expected, expected - observed, recovered)
            )

    exact("cache-hit", view.cache_hits, counters.get("cache.hits", 0))
    exact("cache-miss", view.cache_misses, counters.get("cache.misses", 0))
    for kind in FAULT_KINDS:
        exact("fault[%s]" % kind, view.faults.get(kind, 0),
              counters.get("faults.%s" % kind, 0))
    cell_ends = [e for e in merged if e.get("type") == "cell_end"]
    exact(
        "quarantined cell_end",
        sum(1 for e in cell_ends if e.get("status") == "quarantined"),
        counters.get("cells.quarantined", 0),
    )
    exact(
        "retried-ok cell_end",
        sum(1 for e in cell_ends
            if e.get("status") == "ok" and int(e.get("attempt", 1)) > 1),
        counters.get("cells.retried", 0),
    )
    exact("cell_resumed", view.resumed, counters.get("cells.resumed", 0))
    return problems


def check_overhead_budget(bench_path: Path) -> list:
    """Validate the overhead figures recorded by ``bench_obs.py``."""
    problems = []
    try:
        payload = json.loads(bench_path.read_text())
    except (OSError, ValueError) as exc:
        return ["%s: unreadable benchmark record (%s)" % (bench_path.name, exc)]
    for pct_key, budget_key, label in (
        ("disabled_overhead_pct", "max_overhead_pct", "disabled"),
        ("enabled_overhead_pct", "max_enabled_overhead_pct", "enabled"),
    ):
        pct = payload.get(pct_key)
        budget = payload.get(budget_key)
        if pct is None or budget is None:
            problems.append(
                "%s: missing %s/%s" % (bench_path.name, pct_key, budget_key)
            )
        elif pct > budget:
            problems.append(
                "%s: telemetry-%s overhead %.2f%% exceeds the %.0f%% budget"
                % (bench_path.name, label, pct, budget)
            )
    if not payload.get("within_budget", False):
        problems.append("%s: within_budget is not true" % bench_path.name)
    return problems


def main(argv) -> int:
    argv = list(argv)
    # Events-only mode: validate campaign event streams (schema, parse,
    # lease-ledger conservation) in a directory that never had
    # telemetry -- a fleet dir, a bare --events-dir. The counter
    # reconciliation is skipped naturally (there are no counters).
    events_only = "--events-only" in argv
    if events_only:
        argv.remove("--events-only")
    if len(argv) not in (2, 3):
        print(__doc__, file=sys.stderr)
        return 2
    obs_dir = Path(argv[1])
    if events_only:
        data = load_obs_dir(obs_dir)
        problems = check_events(obs_dir, data)
        if not eventbus.load_streams(obs_dir):
            problems.append("no events-*.jsonl streams in %s" % obs_dir)
        if problems:
            print("obs check FAILED (%d problem(s)):" % len(problems))
            for problem in problems:
                print("  " + str(problem))
            return 1
        streams = eventbus.load_streams(obs_dir)
        view = campaign_mod.fold_events(eventbus.merge_events(streams))
        print(
            "obs check OK (events only): %d event(s) in %d stream(s); "
            "lease ledger %d acquired + %d stolen == %d released + %d expired"
            % (sum(len(s.events) for s in streams), len(streams),
               view.lease_acquired, view.lease_stolen,
               view.lease_released, view.lease_expired)
        )
        return 0
    problems = check(obs_dir)
    if len(argv) == 3:
        problems.extend(check_overhead_budget(Path(argv[2])))
    data = load_obs_dir(obs_dir)
    for warning in data.warnings:
        print("warning: %s" % warning)
    if problems:
        print("obs check FAILED (%d problem(s)):" % len(problems))
        for problem in problems:
            print("  " + str(problem))
        return 1
    streams = eventbus.load_streams(obs_dir)
    print(
        "obs check OK: %d process(es), %d runs, %d decision events, %d spans, "
        "%d dossier(s), %d coverage record(s), %d campaign event(s) in %d stream(s)"
        % (
            data.processes,
            len(data.runs),
            len(data.inject_events),
            len(data.spans),
            len(data.dossiers),
            len(data.coverage),
            sum(len(s.events) for s in streams),
            len(streams),
        )
    )
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
