"""CI gate for an obs directory written via --obs-dir.

Asserts the telemetry contract end to end, from files alone:

* every ``telemetry-*.jsonl`` line parses and carries a known ``type``;
* every skip event carries a valid reason tag;
* every ``summary-*.json`` parses and contains the required counters
  (sessions pre-register them, so the *names* must be present even at
  value 0);
* decision events reconcile with run summaries and merged counters
  (via :func:`repro.obs.report.reconcile`);
* every ``dossier-*.json`` validates against the dossier schema
  (:func:`repro.obs.dossier.validate_dossier_dict`);
* every ``coverage-*.json`` reconciles with its own engine counters
  (:func:`repro.obs.coverage.reconcile_coverage`).

A truncated final JSONL line (no trailing newline -- the artifact a
killed ``--jobs`` worker leaves) is tolerated, matching
``load_obs_dir``'s recovery posture; it is reported as a warning, not
a failure.

With a second argument naming a ``BENCH_obs.json`` produced by
``benchmarks/bench_obs.py``, also enforces the overhead budgets the
benchmark recorded: the disabled path within ``max_overhead_pct`` and
the enabled path within ``max_enabled_overhead_pct`` of the in-process
baseline.

Usage::

    PYTHONPATH=src python scripts/check_obs.py <obs-dir> [bench-obs-json]
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

from repro.core import persistence
from repro.obs.coverage import reconcile_coverage
from repro.obs.dossier import validate_dossier_dict
from repro.obs.report import load_obs_dir, reconcile
from repro.obs.telemetry import SKIP_REASONS

REQUIRED_COUNTERS = (
    "inject.considered",
    "inject.injected",
    "inject.skipped.decay",
    "inject.skipped.interference",
    "inject.skipped.budget",
    "nearmiss.pairs_observed",
    "candidates.added",
    "cache.hits",
    "cache.misses",
    "sched.runs",
    "sched.context_switches",
    "telemetry.runs_recorded",
    # Resilience counters (repro.harness.supervisor / faults taxonomy);
    # pre-registered at session start so every summary carries them.
    "faults.worker_crash",
    "faults.hang",
    "faults.transient_io",
    "faults.corrupt_record",
    "faults.deterministic",
    "cells.retried",
    "cells.quarantined",
    "cells.resumed",
    "cache.corrupt",
)

KNOWN_TYPES = {"meta", "inject", "span", "run"}


def check(obs_dir: Path) -> list:
    problems = []
    summaries = sorted(obs_dir.glob("summary-*.json"))
    events = sorted(obs_dir.glob("telemetry-*.jsonl"))
    if not summaries:
        problems.append("no summary-*.json files in %s" % obs_dir)
    if not events:
        problems.append("no telemetry-*.jsonl files in %s" % obs_dir)

    for path in summaries:
        try:
            payload = json.loads(path.read_text())
            counters = payload["record"]["metrics"]["counters"]
        except (ValueError, KeyError) as exc:
            problems.append("%s: unreadable summary (%s)" % (path.name, exc))
            continue
        for name in REQUIRED_COUNTERS:
            if name not in counters:
                problems.append("%s: missing counter %r" % (path.name, name))

    for path in events:
        text = path.read_text()
        lines = text.splitlines()
        truncated_tail = bool(lines) and not text.endswith("\n")
        for line_no, line in enumerate(lines, start=1):
            if not line.strip():
                continue
            try:
                record = json.loads(line)
            except ValueError as exc:
                if truncated_tail and line_no == len(lines):
                    continue  # killed-worker artifact; load_obs_dir warns
                problems.append("%s:%d: bad JSON (%s)" % (path.name, line_no, exc))
                continue
            kind = record.get("type")
            if kind not in KNOWN_TYPES:
                problems.append("%s:%d: unknown type %r" % (path.name, line_no, kind))
            elif kind == "inject" and record.get("action") == "skip":
                if record.get("reason") not in SKIP_REASONS:
                    problems.append(
                        "%s:%d: skip event without a valid reason" % (path.name, line_no)
                    )

    for path in sorted(obs_dir.glob("dossier-*.json")):
        try:
            payload = persistence.load_record(path)["dossier"]
        except (ValueError, KeyError, OSError) as exc:
            problems.append("%s: unreadable dossier (%s)" % (path.name, exc))
            continue
        problems.extend(
            "%s: %s" % (path.name, issue) for issue in validate_dossier_dict(payload)
        )

    for path in sorted(obs_dir.glob("coverage-*.json")):
        try:
            record = persistence.load_record(path)
        except (ValueError, KeyError, OSError) as exc:
            problems.append("%s: unreadable coverage record (%s)" % (path.name, exc))
            continue
        problems.extend(
            "%s: %s" % (path.name, issue) for issue in reconcile_coverage(record)
        )

    data = load_obs_dir(obs_dir)
    problems.extend(data.parse_errors)
    problems.extend(reconcile(data))
    return problems


def check_overhead_budget(bench_path: Path) -> list:
    """Validate the overhead figures recorded by ``bench_obs.py``."""
    problems = []
    try:
        payload = json.loads(bench_path.read_text())
    except (OSError, ValueError) as exc:
        return ["%s: unreadable benchmark record (%s)" % (bench_path.name, exc)]
    for pct_key, budget_key, label in (
        ("disabled_overhead_pct", "max_overhead_pct", "disabled"),
        ("enabled_overhead_pct", "max_enabled_overhead_pct", "enabled"),
    ):
        pct = payload.get(pct_key)
        budget = payload.get(budget_key)
        if pct is None or budget is None:
            problems.append(
                "%s: missing %s/%s" % (bench_path.name, pct_key, budget_key)
            )
        elif pct > budget:
            problems.append(
                "%s: telemetry-%s overhead %.2f%% exceeds the %.0f%% budget"
                % (bench_path.name, label, pct, budget)
            )
    if not payload.get("within_budget", False):
        problems.append("%s: within_budget is not true" % bench_path.name)
    return problems


def main(argv) -> int:
    if len(argv) not in (2, 3):
        print(__doc__, file=sys.stderr)
        return 2
    obs_dir = Path(argv[1])
    problems = check(obs_dir)
    if len(argv) == 3:
        problems.extend(check_overhead_budget(Path(argv[2])))
    data = load_obs_dir(obs_dir)
    for warning in data.warnings:
        print("warning: %s" % warning)
    if problems:
        print("obs check FAILED (%d problem(s)):" % len(problems))
        for problem in problems:
            print("  " + str(problem))
        return 1
    print(
        "obs check OK: %d process(es), %d runs, %d decision events, %d spans, "
        "%d dossier(s), %d coverage record(s)"
        % (
            data.processes,
            len(data.runs),
            len(data.inject_events),
            len(data.spans),
            len(data.dossiers),
            len(data.coverage),
        )
    )
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
