#!/usr/bin/env python
"""Enforce the coverage floors in ``coverage-baseline.json``.

Consumes the JSON report ``coverage json`` writes (plain JSON: no
dependency on the ``coverage`` package here, so the checker runs
anywhere), rolls statement counts up per package, and fails if

* repo-wide percent covered drops below ``repo_floor_pct``, or
* any package listed in ``package_floors_pct`` drops below its floor
  (paths are package prefixes relative to ``src/``, e.g. ``repro/gen``).

``--update`` rewrites the baseline from the observed numbers minus
``update_margin_pct`` (ratchet upward after a coverage-improving PR;
floors are never auto-lowered).

Usage::

    coverage run --rcfile=.coveragerc -m pytest -q
    coverage combine && coverage json
    python scripts/check_coverage.py coverage.json
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
BASELINE_PATH = REPO_ROOT / "coverage-baseline.json"


def _normalize(path: str) -> str:
    """File path in the report -> package path relative to src/."""
    norm = path.replace("\\", "/")
    marker = "src/"
    if marker in norm:
        norm = norm.split(marker, 1)[1]
    return norm


def package_rollup(report: dict) -> dict:
    """Package prefix -> {"covered": n, "statements": n, "pct": float}."""
    packages: dict = {}
    for path, entry in report.get("files", {}).items():
        summary = entry.get("summary", {})
        statements = int(summary.get("num_statements", 0))
        covered = int(summary.get("covered_lines", 0))
        parts = _normalize(path).split("/")[:-1]
        for depth in range(1, len(parts) + 1):
            prefix = "/".join(parts[:depth])
            bucket = packages.setdefault(prefix, {"covered": 0, "statements": 0})
            bucket["covered"] += covered
            bucket["statements"] += statements
    for bucket in packages.values():
        bucket["pct"] = (
            round(100.0 * bucket["covered"] / bucket["statements"], 1)
            if bucket["statements"]
            else 100.0
        )
    return packages


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("report", help="path to coverage.json")
    parser.add_argument(
        "--baseline", default=str(BASELINE_PATH), help="floors file (default: repo root)"
    )
    parser.add_argument(
        "--update",
        action="store_true",
        help="ratchet the baseline floors up from the observed numbers",
    )
    args = parser.parse_args()

    report = json.loads(pathlib.Path(args.report).read_text())
    baseline = json.loads(pathlib.Path(args.baseline).read_text())
    total_pct = float(report.get("totals", {}).get("percent_covered", 0.0))
    packages = package_rollup(report)

    print("repo-wide: %.1f%% covered (floor %.1f%%)" % (total_pct, baseline["repo_floor_pct"]))
    failures = []
    if total_pct < baseline["repo_floor_pct"]:
        failures.append(
            "repo-wide coverage %.1f%% is below the %.1f%% floor"
            % (total_pct, baseline["repo_floor_pct"])
        )
    for prefix, floor in sorted(baseline.get("package_floors_pct", {}).items()):
        bucket = packages.get(prefix)
        if bucket is None:
            failures.append("package %r absent from the coverage report" % prefix)
            continue
        print(
            "%-24s %.1f%% covered (%d/%d statements, floor %.1f%%)"
            % (prefix, bucket["pct"], bucket["covered"], bucket["statements"], floor)
        )
        if bucket["pct"] < floor:
            failures.append(
                "package %s coverage %.1f%% is below its %.1f%% floor"
                % (prefix, bucket["pct"], floor)
            )

    if args.update:
        margin = float(baseline.get("update_margin_pct", 2.0))
        baseline["repo_floor_pct"] = max(
            baseline["repo_floor_pct"], round(total_pct - margin, 1)
        )
        for prefix in baseline.get("package_floors_pct", {}):
            bucket = packages.get(prefix)
            if bucket is not None:
                baseline["package_floors_pct"][prefix] = max(
                    baseline["package_floors_pct"][prefix],
                    round(bucket["pct"] - margin, 1),
                )
        pathlib.Path(args.baseline).write_text(
            json.dumps(baseline, indent=2, sort_keys=True) + "\n"
        )
        print("baseline ratcheted: %s" % args.baseline)

    for failure in failures:
        print("FAIL: %s" % failure, file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
