"""Waffle ablations for the Table 7 design-point study.

Each factory returns a :class:`~repro.core.detector.Waffle` driver with
exactly one design point disabled:

* ``no_parent_child``        -- section 4.1's fork-ordering pruning off;
* ``no_preparation_run``     -- section 4.2's dedicated delay-free run
  off (single-phase online identification);
* ``no_custom_delay_length`` -- section 4.3's variable-length delays off
  (fixed 100 ms instead);
* ``no_interference_control``-- section 4.4's interference set off.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from ..core.config import DEFAULT_CONFIG, WaffleConfig
from ..core.detector import Waffle

#: Design-point slug -> the config flag it disables, in paper order.
DESIGN_POINTS = (
    "parent_child_analysis",
    "preparation_run",
    "custom_delay_length",
    "interference_control",
)

#: Human-readable labels matching the rows of Table 7.
DESIGN_POINT_LABELS: Dict[str, str] = {
    "parent_child_analysis": "no parent-child analysis (4.1)",
    "preparation_run": "no preparation run (4.2)",
    "custom_delay_length": "no custom delay length (4.3)",
    "interference_control": "no interference control (4.4)",
}


def make_ablation(design_point: str, config: Optional[WaffleConfig] = None) -> Waffle:
    """A Waffle driver with one design point disabled."""
    base = config if config is not None else DEFAULT_CONFIG
    driver = Waffle(base.without(design_point))
    driver.name = "waffle-" + design_point.replace("_", "-") + "-off"
    return driver


def no_parent_child(config: Optional[WaffleConfig] = None) -> Waffle:
    return make_ablation("parent_child_analysis", config)


def no_preparation_run(config: Optional[WaffleConfig] = None) -> Waffle:
    return make_ablation("preparation_run", config)


def no_custom_delay_length(config: Optional[WaffleConfig] = None) -> Waffle:
    return make_ablation("custom_delay_length", config)


def no_interference_control(config: Optional[WaffleConfig] = None) -> Waffle:
    return make_ablation("interference_control", config)


ALL_ABLATIONS: Dict[str, Callable[[Optional[WaffleConfig]], Waffle]] = {
    "parent_child_analysis": no_parent_child,
    "preparation_run": no_preparation_run,
    "custom_delay_length": no_custom_delay_length,
    "interference_control": no_interference_control,
}
