"""Tsvd: thread-safety-violation detection (paper section 2).

Reimplemented on the simulator for the Table 2 instrumentation-density
comparison and the section 3.3 delay-overlap contrast. Tsvd instruments
only thread-unsafe API call sites, identifies candidate pairs online
via near-miss tracking, injects fixed-length delays with probability
decay, and prunes pairs with happens-before inference.

A thread-safety violation manifests when the execution windows of two
thread-unsafe calls on the same object overlap; the simulator records
these as :class:`~repro.sim.unsafe_api.TsvOccurrence` values, which are
Tsvd's bug oracle (rather than the NULL-reference oracle of the
MemOrder tools).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from .. import obs
from ..sim.unsafe_api import TsvOccurrence
from ..core.candidates import CandidateSet
from ..core.delay_policy import DecayState
from ..core.detector import DetectionOutcome, ToolDriver, as_workload
from ..core.runtime import OnlineInjectionHook


@dataclass
class TsvdOutcome(DetectionOutcome):
    """Detection outcome extended with the TSV-specific oracle."""

    violations: List[TsvOccurrence] = field(default_factory=list)

    @property
    def tsv_found(self) -> bool:
        return bool(self.violations)


class Tsvd(ToolDriver):
    """Thread-safety-violation detector with delay injection."""

    name = "tsvd"

    def detect(self, workload: Any, max_detection_runs: Optional[int] = None) -> TsvdOutcome:
        workload = as_workload(workload)
        config = self.config
        budget = max_detection_runs if max_detection_runs is not None else config.max_detection_runs
        outcome = TsvdOutcome(tool=self.name, workload=workload.name)

        candidates = CandidateSet()
        decay = DecayState(config.decay_lambda)
        flight = obs.flightrec.recorder()
        site_injections: Dict[str, int] = {}

        for attempt in range(1, budget + 1):
            sim_seed = config.seed + attempt
            if flight is not None:
                flight.begin_run(kind="online", test=workload.name, seed=sim_seed)
            hook = OnlineInjectionHook(
                config,
                decay,
                candidates=candidates,
                seed=config.seed * 7919 + attempt,
                tsv_mode=True,
                variable_delays=False,
                hb_inference=True,
                parent_child=False,
                online_interference=False,
            )
            result = self._simulate(workload, hook, seed=sim_seed)
            # Tsvd's oracle: call-window overlaps caused while delays
            # were being injected.
            new_violations = [
                v for v in result.tsv_occurrences if hook.delays_injected > 0
            ]
            found = bool(new_violations)
            self._count_site_injections(hook, site_injections)
            outcome.runs.append(
                self._record("detect", attempt, result, hook, bug_found=found)
            )
            if found:
                outcome.violations.extend(new_violations)
                if config.stop_at_first_bug:
                    break
        self._finish_coverage(outcome, candidates, decay, site_injections)
        return outcome
