"""Simplified models of the other Table 1 delay-injection tools.

Table 1 positions Waffle against four earlier systems. To quantify the
design-space differences the table only states qualitatively, this
module implements a faithful *sketch* of each tool's injection policy
on the MemOrder surface (documented simplifications below -- these are
models of each tool's delay-injection strategy, not ports):

* **RaceFuzzer** (Sen, PLDI'08) -- candidate pairs from an up-front
  analysis run; each detection run targets **one** pair, delaying its
  first location deterministically with a long pause. High precision,
  run count linear in |S|.
* **CTrigger** (Park et al., ASPLOS'09) -- like RaceFuzzer, but ranks
  candidates by how small their execution window is ("hidden in small
  windows" first), typically reaching the exposable pair sooner.
* **RaceMob** (Kasikci et al., SOSP'13) -- crowdsourced: every run is
  cheap, sampling a single candidate pair with a *short* probabilistic
  delay; coverage accrues over many runs.
* **DataCollider** (Erickson et al., OSDI'10) -- no analysis at all:
  each run samples a handful of static sites at random and pauses
  there briefly, hoping a conflicting access lands in the window.

All four share Waffle's oracle (a delay-induced null dereference) and
run budget accounting, so `related_tools_comparison` can report
runs-to-expose across the whole Table 1 space.

Simplifications: RaceFuzzer/CTrigger's predictive analyses are stood in
for by the same near-miss pass Waffle uses on a delay-free recording
(both papers' analyses are strictly richer); schedule *control* is
modeled as a long delay at the target location, which is what their
controllers reduce to on this substrate.
"""

from __future__ import annotations

import random
from typing import Any, List, Optional

from ..core.analyzer import analyze_trace
from ..core.candidates import CandidatePair
from ..core.detector import DetectionOutcome, RunRecord, ToolDriver, as_workload
from ..core.interference import ActiveDelayLedger
from ..core.trace import RecordingHook
from ..sim.instrument import InstrumentationHook, PendingAccess


class _SingleTargetHook(InstrumentationHook):
    """Delay the first dynamic occurrence of one target site per run."""

    def __init__(self, target_site: str, delay_ms: float, once: bool = True):
        self.target_site = target_site
        self.delay_ms = delay_ms
        self.once = once
        self._fired = False
        self.ledger = ActiveDelayLedger()
        self.failure = None

    # -- stats interface expected by ToolDriver._record ----------------

    @property
    def delays_injected(self) -> int:
        return self.ledger.count

    @property
    def total_delay_ms(self) -> float:
        return self.ledger.total_delay_ms

    def overlap_ratio(self) -> float:
        return self.ledger.overlap_ratio()

    @property
    def engine(self):
        return None

    def matched_pairs_for(self, error) -> List[CandidatePair]:
        return []

    def on_failure(self, thread, error) -> None:
        self.failure = None

    def before_access(self, pending: PendingAccess) -> float:
        if not pending.access_type.is_memorder:
            return 0.0
        if self.once and self._fired:
            return 0.0
        if pending.location.site != self.target_site:
            return 0.0
        self._fired = True
        self.ledger.register(self.target_site, pending.thread_id, pending.timestamp, self.delay_ms)
        return self.delay_ms


class _SampledSitesHook(InstrumentationHook):
    """DataCollider: pause briefly at a random sample of sites."""

    def __init__(self, sample_probability: float, delay_ms: float, seed: int):
        self.sample_probability = sample_probability
        self.delay_ms = delay_ms
        self.rng = random.Random(seed)
        self._decisions = {}
        self.ledger = ActiveDelayLedger()
        self.failure = None

    @property
    def delays_injected(self) -> int:
        return self.ledger.count

    @property
    def total_delay_ms(self) -> float:
        return self.ledger.total_delay_ms

    def overlap_ratio(self) -> float:
        return self.ledger.overlap_ratio()

    @property
    def engine(self):
        return None

    def matched_pairs_for(self, error) -> List[CandidatePair]:
        return []

    def on_failure(self, thread, error) -> None:
        self.failure = None

    def before_access(self, pending: PendingAccess) -> float:
        if not pending.access_type.is_memorder:
            return 0.0
        site = pending.location.site
        if site not in self._decisions:
            # Sample each *static* site once per run (the breakpoint set).
            self._decisions[site] = self.rng.random() < self.sample_probability
        if not self._decisions[site]:
            return 0.0
        self.ledger.register(site, pending.thread_id, pending.timestamp, self.delay_ms)
        return self.delay_ms


class _AnalysisThenTargetDriver(ToolDriver):
    """Shared RaceFuzzer/CTrigger scaffolding: one analysis run builds
    the candidate list; each detection run validates one candidate."""

    #: Delay used to force the reordering; generous, like a controlled
    #: scheduler blocking the thread until the partner passes.
    target_delay_ms = 150.0

    def _rank(self, plan) -> List[CandidatePair]:
        raise NotImplementedError

    def detect(self, workload: Any, max_detection_runs: Optional[int] = None) -> DetectionOutcome:
        workload = as_workload(workload)
        config = self.config
        budget = max_detection_runs if max_detection_runs is not None else config.max_detection_runs
        outcome = DetectionOutcome(tool=self.name, workload=workload.name)

        recorder = RecordingHook(record_overhead_ms=config.record_overhead_ms)
        result = self._simulate(workload, recorder, seed=config.seed)
        outcome.trace = recorder.trace
        plan = analyze_trace(recorder.trace, config)
        outcome.plan = plan
        outcome.runs.append(
            RunRecord(
                kind="prep",
                index=1,
                virtual_time_ms=result.virtual_time,
                op_count=result.op_count,
                crashed=result.crashed,
                timed_out=result.timed_out,
            )
        )

        targets = self._rank(plan)
        run_index = 1
        for attempt in range(1, budget + 1):
            if not targets:
                break
            pair = targets[(attempt - 1) % len(targets)]
            run_index += 1
            hook = _SingleTargetHook(pair.delay_location.site, self.target_delay_ms)
            result = self._simulate(workload, hook, seed=config.seed + attempt)
            report = self._harvest_simple(workload, hook, result, run_index, pair)
            outcome.runs.append(
                self._record("detect", run_index, result, hook, bug_found=report is not None)
            )
            if report is not None:
                outcome.reports.append(report)
                if config.stop_at_first_bug:
                    break
            elif attempt % len(targets) == 0:
                # A full sweep over the candidate list without a
                # manifestation: these tools would stop and report the
                # remaining candidates unconfirmed.
                break
        return outcome

    def _harvest_simple(self, workload, hook, result, run_index, pair):
        from ..core.reports import build_report

        error = self._memorder_failure(result)
        if error is None or hook.delays_injected == 0:
            return None
        return build_report(
            tool=self.name,
            workload=workload.name,
            error=error,
            run_index=run_index,
            fault_time_ms=result.virtual_time,
            matched_pairs=[pair],
            active_delays=[],
            delays_injected=hook.delays_injected,
        )


class RaceFuzzer(_AnalysisThenTargetDriver):
    """One candidate per run, in discovery order."""

    name = "racefuzzer"

    def _rank(self, plan) -> List[CandidatePair]:
        return sorted(plan.candidates, key=lambda p: p.key())


class CTrigger(_AnalysisThenTargetDriver):
    """One candidate per run, smallest execution window first."""

    name = "ctrigger"

    def _rank(self, plan) -> List[CandidatePair]:
        return sorted(plan.candidates, key=lambda p: plan.candidates.max_gap(p))


class RaceMob(ToolDriver):
    """Crowdsourced validation: cheap probabilistic runs, one sampled
    candidate each, short delays."""

    name = "racemob"
    sample_delay_ms = 40.0

    def detect(self, workload: Any, max_detection_runs: Optional[int] = None) -> DetectionOutcome:
        workload = as_workload(workload)
        config = self.config
        budget = max_detection_runs if max_detection_runs is not None else config.max_detection_runs
        outcome = DetectionOutcome(tool=self.name, workload=workload.name)

        recorder = RecordingHook(record_overhead_ms=config.record_overhead_ms)
        result = self._simulate(workload, recorder, seed=config.seed)
        plan = analyze_trace(recorder.trace, config)
        outcome.plan = plan
        outcome.runs.append(
            RunRecord(
                kind="prep",
                index=1,
                virtual_time_ms=result.virtual_time,
                op_count=result.op_count,
                crashed=result.crashed,
            )
        )
        candidates = sorted(plan.candidates, key=lambda p: p.key())
        rng = random.Random(config.seed * 104729 + 7)
        run_index = 1
        for attempt in range(1, budget + 1):
            if not candidates:
                break
            pair = rng.choice(candidates)
            run_index += 1
            hook = _SingleTargetHook(pair.delay_location.site, self.sample_delay_ms, once=False)
            result = self._simulate(workload, hook, seed=config.seed + attempt)
            report = None
            error = self._memorder_failure(result)
            if error is not None and hook.delays_injected > 0:
                from ..core.reports import build_report

                report = build_report(
                    tool=self.name,
                    workload=workload.name,
                    error=error,
                    run_index=run_index,
                    fault_time_ms=result.virtual_time,
                    matched_pairs=[pair],
                    active_delays=[],
                    delays_injected=hook.delays_injected,
                )
            outcome.runs.append(
                self._record("detect", run_index, result, hook, bug_found=report is not None)
            )
            if report is not None:
                outcome.reports.append(report)
                if config.stop_at_first_bug:
                    break
        return outcome


class DataCollider(ToolDriver):
    """Analysis-free random site sampling with short pauses."""

    name = "datacollider"
    sample_probability = 0.1
    sample_delay_ms = 40.0

    def detect(self, workload: Any, max_detection_runs: Optional[int] = None) -> DetectionOutcome:
        workload = as_workload(workload)
        config = self.config
        budget = max_detection_runs if max_detection_runs is not None else config.max_detection_runs
        outcome = DetectionOutcome(tool=self.name, workload=workload.name)
        for attempt in range(1, budget + 1):
            hook = _SampledSitesHook(
                self.sample_probability,
                self.sample_delay_ms,
                seed=config.seed * 7919 + attempt,
            )
            result = self._simulate(workload, hook, seed=config.seed + attempt)
            report = None
            error = self._memorder_failure(result)
            if error is not None and hook.delays_injected > 0:
                from ..core.reports import build_report

                report = build_report(
                    tool=self.name,
                    workload=workload.name,
                    error=error,
                    run_index=attempt,
                    fault_time_ms=result.virtual_time,
                    matched_pairs=[],
                    active_delays=[],
                    delays_injected=hook.delays_injected,
                )
            outcome.runs.append(
                self._record("detect", attempt, result, hook, bug_found=report is not None)
            )
            if report is not None:
                outcome.reports.append(report)
                if config.stop_at_first_bug:
                    break
        return outcome


RELATED_TOOLS = {
    "racefuzzer": RaceFuzzer,
    "ctrigger": CTrigger,
    "racemob": RaceMob,
    "datacollider": DataCollider,
}
