"""Baseline tools and ablations (DESIGN.md section 3.3)."""

from .ablations import (
    ALL_ABLATIONS,
    DESIGN_POINT_LABELS,
    DESIGN_POINTS,
    make_ablation,
    no_custom_delay_length,
    no_interference_control,
    no_parent_child,
    no_preparation_run,
)
from .related import RELATED_TOOLS, CTrigger, DataCollider, RaceFuzzer, RaceMob
from .stress import StressRunner, baseline_time_ms
from .tsvd import Tsvd, TsvdOutcome
from .wafflebasic import WaffleBasic

__all__ = [
    "ALL_ABLATIONS",
    "DESIGN_POINT_LABELS",
    "DESIGN_POINTS",
    "make_ablation",
    "no_custom_delay_length",
    "no_interference_control",
    "no_parent_child",
    "no_preparation_run",
    "RELATED_TOOLS",
    "CTrigger",
    "DataCollider",
    "RaceFuzzer",
    "RaceMob",
    "StressRunner",
    "baseline_time_ms",
    "Tsvd",
    "TsvdOutcome",
    "WaffleBasic",
]
