"""WaffleBasic: the straight Tsvd adaptation (paper section 3).

WaffleBasic operates on MemOrder instrumentation sites but keeps every
other Tsvd design decision:

* candidate identification and delay injection happen *in the same run*
  (online near-miss tracking plus happens-before inference);
* delays have a fixed length (100 ms by default);
* probability decay, multiple threads may be blocked in parallel, and
  there is **no** interference control and **no** parent-child pruning.

Candidate set and decay probabilities persist across runs (the tool is
bootstrapped from the previous run's state, like Tsvd's iterative
mode), which is what lets single-dynamic-instance locations -- object
initializations, typically -- receive delays in later runs at all.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from .. import obs
from ..core.candidates import CandidateSet
from ..core.delay_policy import DecayState
from ..core.detector import DetectionOutcome, ToolDriver, as_workload
from ..core.runtime import OnlineInjectionHook


class WaffleBasic(ToolDriver):
    """Single-phase MemOrder detector with Tsvd's design decisions."""

    name = "wafflebasic"

    def detect(self, workload: Any, max_detection_runs: Optional[int] = None) -> DetectionOutcome:
        workload = as_workload(workload)
        config = self.config
        budget = max_detection_runs if max_detection_runs is not None else config.max_detection_runs
        outcome = DetectionOutcome(tool=self.name, workload=workload.name)

        # State persisted across runs (saved/bootstrapped, section 5).
        candidates = CandidateSet()
        decay = DecayState(config.decay_lambda)
        flight = obs.flightrec.recorder()
        site_injections: Dict[str, int] = {}

        for attempt in range(1, budget + 1):
            sim_seed = config.seed + attempt
            if flight is not None:
                flight.begin_run(kind="online", test=workload.name, seed=sim_seed)
            hook = OnlineInjectionHook(
                config,
                decay,
                candidates=candidates,
                seed=config.seed * 7919 + attempt,
                tsv_mode=False,
                variable_delays=False,
                hb_inference=True,
                parent_child=False,
                online_interference=False,
            )
            result = self._simulate(workload, hook, seed=sim_seed)
            report = self._harvest(workload, hook, result, attempt)
            self._count_site_injections(hook, site_injections)
            outcome.runs.append(
                self._record("detect", attempt, result, hook, bug_found=report is not None)
            )
            if report is not None:
                outcome.reports.append(report)
                if flight is not None:
                    outcome.dossiers.append(
                        self._assemble_dossier(workload, report, hook, sim_seed, flight)
                    )
                if config.stop_at_first_bug:
                    break
        self._finish_coverage(outcome, candidates, decay, site_injections)
        return outcome
