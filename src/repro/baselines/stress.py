"""Delay-free stress baseline.

Section 6.2's control experiment: "none of these 18 bugs can manifest
themselves without delay injection, even when we execute the
corresponding bug-triggering inputs repeatedly 50 times." The stress
driver re-runs a workload with no instrumentation hook attached (only
scheduling-seed variation) and records whether anything ever crashes.
"""

from __future__ import annotations

from typing import Any, Optional

from ..sim.instrument import NoopHook
from ..core.detector import DetectionOutcome, RunRecord, ToolDriver, as_workload


class StressRunner(ToolDriver):
    """Repeated uninstrumented executions under varying seeds."""

    name = "stress"

    def detect(self, workload: Any, max_detection_runs: Optional[int] = None) -> DetectionOutcome:
        workload = as_workload(workload)
        budget = (
            max_detection_runs
            if max_detection_runs is not None
            else self.config.max_detection_runs
        )
        outcome = DetectionOutcome(tool=self.name, workload=workload.name)
        for attempt in range(1, budget + 1):
            result = self._simulate(workload, NoopHook(), seed=self.config.seed + attempt)
            error = self._memorder_failure(result)
            outcome.runs.append(
                RunRecord(
                    kind="detect",
                    index=attempt,
                    virtual_time_ms=result.virtual_time,
                    op_count=result.op_count,
                    crashed=result.crashed,
                    timed_out=result.timed_out,
                    bug_found=error is not None,
                )
            )
            # Spontaneous manifestations are recorded (they would mean a
            # benchmark whose bug does not actually require rare timing)
            # but never reported as tool findings.
        return outcome

    def spontaneous_manifestations(self, outcome: DetectionOutcome) -> int:
        return sum(1 for record in outcome.runs if record.bug_found)


def baseline_time_ms(workload: Any, seed: int = 0, config=None) -> float:
    """Virtual execution time of one uninstrumented run -- the 'Base'
    column of Table 5 and the denominator of every slowdown figure."""
    from ..core.config import DEFAULT_CONFIG

    runner = StressRunner(config if config is not None else DEFAULT_CONFIG.with_seed(seed))
    outcome = runner.detect(workload, max_detection_runs=1)
    return outcome.runs[0].virtual_time_ms
