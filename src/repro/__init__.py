"""Reproduction of "Waffle: Exposing Memory Ordering Bugs Efficiently
with Active Delay Injection" (EuroSys '23).

Public API
----------
* :class:`repro.Waffle` / :class:`repro.WaffleConfig` -- the detector.
* :class:`repro.WaffleBasic`, :class:`repro.Tsvd` -- baselines.
* :class:`repro.Simulation` -- the concurrency-simulator substrate.
* :mod:`repro.apps` -- the 11 benchmark applications and 18 bugs.
* :mod:`repro.harness` -- regenerate every paper table/figure.

Quickstart::

    from repro import Waffle, WaffleConfig, Workload

    def my_test(sim):
        ...  # build a simulated multi-threaded program
    outcome = Waffle(WaffleConfig(seed=1)).detect(Workload("t", my_test))
    print(outcome.reports)
"""

from .core import (
    BugReport,
    DetectionOutcome,
    Waffle,
    WaffleConfig,
    Workload,
)
from .baselines import StressRunner, Tsvd, WaffleBasic
from .sim import (
    AccessEvent,
    AccessType,
    Location,
    NullReferenceError,
    ObjectDisposedError,
    Simulation,
)

__version__ = "1.0.0"

__all__ = [
    "BugReport",
    "DetectionOutcome",
    "Waffle",
    "WaffleConfig",
    "Workload",
    "StressRunner",
    "Tsvd",
    "WaffleBasic",
    "AccessEvent",
    "AccessType",
    "Location",
    "NullReferenceError",
    "ObjectDisposedError",
    "Simulation",
    "__version__",
]
