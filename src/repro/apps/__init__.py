"""Benchmark applications (DESIGN.md section 3.4).

Eleven synthetic models of the paper's Table 3 applications, each with
a multi-threaded test suite and planted MemOrder bugs matching the
mechanisms of Table 4.
"""

from .base import Application, AppTestCase, KnownBug, match_bug
from .registry import all_apps, all_bugs, bug_workload, get_app, get_bug

__all__ = [
    "Application",
    "AppTestCase",
    "KnownBug",
    "match_bug",
    "all_apps",
    "all_bugs",
    "bug_workload",
    "get_app",
    "get_bug",
]
