"""LiteDB model: an embedded NoSQL database engine.

Models LiteDB's engine lifecycle: a single engine object shared by
query threads, checkpoint/rebuild operations that swap the engine
state, and page-cache traffic.

Planted bug (Table 4):

* **Bug-8** (issue #1028, known) -- an engine rebuild swaps the shared
  engine reference while query threads are mid-flight. The query path
  is also exercised by the rebuild's own flush, and the rebuild is
  join-protected against the teardown -- the Figure 4a interference
  structure that blinds WaffleBasic (the "-" row in Table 4).
"""

from __future__ import annotations

from typing import Generator

from ..sim.api import Simulation
from . import patterns as P
from .base import Application, KnownBug

PREFIX = "litedb"


def test_engine_rebuild_under_queries(sim: Simulation) -> Generator:
    """Bug-8: engine swapped while queries run (interfering candidates)."""
    return P.interfering_bugs(
        sim,
        PREFIX,
        ref_name="engine",
        init_site="litedb.LiteEngine.Rebuild:204",
        use_site="litedb.LiteEngine.Query:88",
        dispose_site="litedb.LiteEngine.Dispose:317",
        init_at_ms=0.6,
        first_use_at_ms=1.4,
        use_spacing_ms=2.0,
        use_count=120,
    )


# -- Benign traffic -----------------------------------------------------


def test_page_cache_eviction(sim: Simulation) -> Generator:
    return P.unsafe_collection_traffic(sim, PREFIX + ".pagecache", workers=2, ops_per_worker=5)


def test_concurrent_inserts(sim: Simulation) -> Generator:
    return P.locked_counter_workers(sim, PREFIX + ".inserts", workers=3, increments=5)


def test_checkpoint_pipeline(sim: Simulation) -> Generator:
    return P.synchronized_pipeline(sim, PREFIX + ".checkpoint", items=9, stage_cost_ms=0.5)


def test_collection_bootstrap(sim: Simulation) -> Generator:
    preamble, threads = P.fork_ordered_preamble(sim, PREFIX + ".collections", count=4, worker_uses=2)

    def root() -> Generator:
        yield from preamble
        yield from sim.join_all(threads)

    return root()


def test_transaction_log_append(sim: Simulation) -> Generator:
    return P.synchronized_pipeline(sim, PREFIX + ".txlog", items=7, stage_cost_ms=0.6)


def test_query_task_pool(sim: Simulation) -> Generator:
    return P.task_fanout(sim, PREFIX + ".querytasks", workers=2, tasks=6)


def test_index_rebuild_pipeline(sim: Simulation) -> Generator:
    return P.synchronized_pipeline(sim, PREFIX + ".indexes", items=12, stage_cost_ms=0.4)


def test_snapshot_isolation_readers(sim: Simulation) -> Generator:
    """Readers take snapshots under a reader-count semaphore while a
    writer waits for exclusivity via an event handshake."""
    read_gate = sim.semaphore(initial=4, name="litedb.readgate")
    snapshot = sim.ref("db_snapshot")

    def reader(sim_: Simulation, reader_id: int) -> Generator:
        for i in range(3):
            yield from read_gate.acquire()
            try:
                yield from sim.read(snapshot, "version", loc="litedb.Snapshot.read:%d" % (reader_id % 3))
                yield from sim.compute(0.5)
            finally:
                read_gate.release()
            yield from sim.sleep(0.7)

    def root() -> Generator:
        yield from sim.assign(snapshot, sim.new("litedb.Snapshot", version=1),
                              loc="litedb.Snapshot.ctor:21")
        readers = [sim.fork(reader(sim, r), name="litedb-reader-%d" % r) for r in range(4)]
        yield from sim.join_all(readers)
        # Writer phase: all readers joined, exclusive access is safe.
        yield from sim.write(snapshot, "version", 2, loc="litedb.Writer.commit:74")

    return root()


def test_bson_mapper_tasks(sim: Simulation) -> Generator:
    return P.task_fanout(sim, PREFIX + ".bson", workers=2, tasks=7, task_cost_ms=0.6)


def build_app() -> Application:
    app = Application(
        name="litedb",
        display_name="LiteDB",
        paper_loc_kloc=18.3,
        paper_multithreaded_tests=7,
        paper_stars_k=6.2,
    )
    app.add_test("engine_rebuild_under_queries", test_engine_rebuild_under_queries)
    app.add_test("page_cache_eviction", test_page_cache_eviction)
    app.add_test("concurrent_inserts", test_concurrent_inserts)
    app.add_test("checkpoint_pipeline", test_checkpoint_pipeline)
    app.add_test("collection_bootstrap", test_collection_bootstrap)
    app.add_test("transaction_log_append", test_transaction_log_append)
    app.add_test("query_task_pool", test_query_task_pool)
    app.add_test("index_rebuild_pipeline", test_index_rebuild_pipeline)
    app.add_test("snapshot_isolation_readers", test_snapshot_isolation_readers)
    app.add_test("bson_mapper_tasks", test_bson_mapper_tasks)

    app.add_bug(
        KnownBug(
            bug_id="Bug-8",
            app="litedb",
            issue_id="1028",
            kind="both",
            previously_known=True,
            description=(
                "Engine rebuild swaps the shared engine reference while "
                "query threads are mid-flight; the interfering "
                "use-after-free candidate on the query path cancels "
                "WaffleBasic's delays."
            ),
            fault_sites=frozenset({"litedb.LiteEngine.Query:88"}),
            test_name="engine_rebuild_under_queries",
            paper_runs_basic=None,
            paper_runs_waffle=2,
            paper_slowdown_waffle=4.9,
        )
    )
    return app
