"""Reusable concurrency patterns for the benchmark applications.

The eleven application models compose a small vocabulary of timing
motifs. The *bug* motifs were validated one by one against the real
detectors before the suite was built (see DESIGN.md section 3.4):

* :func:`plain_uaf` -- a use on one thread closely followed by a
  disposal on another; exposable by any delay >= the gap at the use.
* :func:`plain_ubi` -- a two-step construction racing an event handler;
  exposable by delaying the initialization.
* :func:`multi_instance_ubi` -- an init/use race repeated every loop
  iteration, so an online tool can identify the pair at iteration k and
  expose the bug at iteration k+1 *in the same run* (the pattern that
  lets WaffleBasic beat Waffle to Bug-3/6/9 in Table 4).
* :func:`interfering_bugs` -- Figure 4a: a use-before-init and a (false,
  join-protected) use-after-free candidate on the same object, whose
  fixed-length delays cancel deterministically.
* :func:`interfering_instances` -- Figure 4b: the disposal is preceded,
  on its own thread, by a dynamic instance of the *same static site*
  the tool delays, so fixed-probability delays at both instances shift
  both threads equally.
* :func:`long_gap_uaf` -- the use-dispose gap exceeds the fixed delay
  length, so only variable-length delays (section 4.3) can expose it.

The *benign* motifs generate realistic instrumentation-site density:
fork-ordered allocation preambles (pruned by Waffle's parent-child
analysis), synchronized worker pools, producer/consumer channels, and
thread-unsafe collection traffic (Tsvd's TSV surface).
"""

from __future__ import annotations

from typing import Generator, List, Optional

from ..sim.api import Simulation
from ..sim.refs import Ref


# ----------------------------------------------------------------------
# Benign structural motifs
# ----------------------------------------------------------------------


def fork_ordered_preamble(
    sim: Simulation,
    prefix: str,
    count: int,
    worker_uses: int = 2,
    use_spacing_ms: float = 1.0,
):
    """Parent allocates ``count`` objects, then forks workers that use
    them shortly after -- all ordered by the fork, hence prunable by
    vector clocks but *near-miss positive* (the gaps are small).

    Returns ``(generator, threads)`` -- the caller yields from the
    generator in the parent and joins the returned threads eventually.
    This is the pattern that makes the no-parent-child ablation slower
    (Table 7): without pruning, every (init, first-use) pair becomes a
    pointless injection site.
    """
    refs = [sim.ref("%s_obj%d" % (prefix, i)) for i in range(count)]
    threads: List = []

    def parent() -> Generator:
        for i, ref in enumerate(refs):
            obj = sim.new("%s.Resource" % prefix)
            yield from sim.assign(ref, obj, loc="%s.Setup.alloc:%d" % (prefix, i))
        for i, ref in enumerate(refs):
            threads.append(sim.fork(worker(ref, i), name="%s-worker-%d" % (prefix, i)))

    def worker(ref: Ref, index: int) -> Generator:
        for use in range(worker_uses):
            yield from sim.sleep(use_spacing_ms)
            yield from sim.use(ref, member="Process", loc="%s.Worker.run:%d" % (prefix, index))

    return parent(), threads


def synchronized_pipeline(
    sim: Simulation,
    prefix: str,
    items: int,
    stage_cost_ms: float = 0.3,
):
    """A two-stage producer/consumer pipeline over a channel.

    Properly synchronized: the consumer only touches objects it received
    through the channel, so no MemOrder candidate it generates is real.
    Returns the root generator.
    """
    channel = sim.channel("%s.queue" % prefix)
    slot = sim.ref("%s_slot" % prefix)

    def producer() -> Generator:
        for i in range(items):
            obj = sim.new("%s.Item" % prefix, seq=i)
            # Distinct message kinds flow through distinct code paths:
            # fan the static sites out over a small modulus so the
            # instrumentation-site census reflects a realistic surface.
            kind = i % 6
            yield from sim.assign(slot, obj, loc="%s.Producer.make:%d" % (prefix, kind))
            yield from sim.compute(stage_cost_ms)
            yield from sim.use(slot, member="Seal", loc="%s.Producer.seal:%d" % (prefix, kind))
            channel.put((kind, obj))
        channel.close()

    def consumer() -> Generator:
        while True:
            entry = yield from channel.get()
            if entry is None:
                return
            kind, item = entry
            local = sim.ref("%s_local" % prefix, item)
            yield from sim.use(local, member="Read", loc="%s.Consumer.read:%d" % (prefix, kind))
            yield from sim.compute(stage_cost_ms)

    def root() -> Generator:
        cons = sim.fork(consumer(), name="%s-consumer" % prefix)
        prod = sim.fork(producer(), name="%s-producer" % prefix)
        yield from sim.join(prod)
        yield from sim.join(cons)

    return root()


def unsafe_collection_traffic(
    sim: Simulation,
    prefix: str,
    workers: int = 2,
    ops_per_worker: int = 4,
    op_duration_ms: float = 0.2,
    spacing_ms: float = 2.0,
):
    """Concurrent traffic on a shared thread-unsafe dictionary.

    The accesses are spaced out, so call windows do not overlap in a
    delay-free run -- Tsvd must inject delays to expose the TSV, and the
    sites count toward the TSV columns of Table 2. Returns the root
    generator.
    """
    table = sim.unsafe_dict("%s.Cache" % prefix)

    def worker(worker_id: int) -> Generator:
        for op in range(ops_per_worker):
            yield from sim.sleep(spacing_ms)
            yield from sim.unsafe_call(
                table,
                "add",
                (worker_id, op),
                "value-%d-%d" % (worker_id, op),
                loc="%s.Cache.add:%d" % (prefix, worker_id),
                duration=op_duration_ms,
            )
            yield from sim.unsafe_call(
                table,
                "get",
                (worker_id, op),
                loc="%s.Cache.get:%d" % (prefix, worker_id),
                duration=op_duration_ms,
            )

    def root() -> Generator:
        threads = [sim.fork(worker(w), name="%s-cache-%d" % (prefix, w)) for w in range(workers)]
        yield from sim.join_all(threads)

    return root()


def locked_counter_workers(
    sim: Simulation,
    prefix: str,
    workers: int = 3,
    increments: int = 5,
):
    """Workers bumping a shared counter object under a lock -- correctly
    synchronized shared-state traffic that near-miss tracking still sees
    (lock ordering is invisible to the tools). Returns the root
    generator."""
    lock = sim.lock("%s.lock" % prefix)
    counter = sim.ref("%s_counter" % prefix)

    def worker(worker_id: int) -> Generator:
        for i in range(increments):
            yield from lock.acquire()
            try:
                yield from sim.write(
                    counter,
                    "value",
                    worker_id,
                    loc="%s.Counter.bump:%d:%d" % (prefix, worker_id, i % 3),
                )
            finally:
                lock.release()
            yield from sim.sleep(0.7)

    def root() -> Generator:
        obj = sim.new("%s.Counter" % prefix, value=0)
        yield from sim.assign(counter, obj, loc="%s.Counter.ctor:1" % prefix)
        threads = [sim.fork(worker(w), name="%s-bump-%d" % (prefix, w)) for w in range(workers)]
        yield from sim.join_all(threads)

    return root()


# ----------------------------------------------------------------------
# Bug motifs
# ----------------------------------------------------------------------


def plain_uaf(
    sim: Simulation,
    prefix: str,
    ref_name: str,
    use_site: str,
    dispose_site: str,
    init_site: str,
    use_at_ms: float,
    dispose_at_ms: float,
    extra_uses: int = 0,
    extra_use_spacing_ms: float = 2.0,
):
    """A single use closely followed by a cross-thread disposal.

    Delay-free order: init (t=0) -> use (t=use_at) -> dispose
    (t=dispose_at). A delay at the use longer than
    ``dispose_at - use_at`` exposes the use-after-free. Returns the root
    generator.
    """
    if not use_at_ms < dispose_at_ms:
        raise ValueError("the use must naturally precede the disposal")
    ref = sim.ref(ref_name)

    def user() -> Generator:
        for i in range(extra_uses):
            yield from sim.sleep(extra_use_spacing_ms)
            yield from sim.use(ref, member="Touch", loc="%s.early:%d" % (prefix, i))
        target = use_at_ms - extra_uses * extra_use_spacing_ms
        yield from sim.sleep(max(0.0, target))
        yield from sim.use(ref, member="Send", loc=use_site)

    def root() -> Generator:
        obj = sim.new("%s.Session" % prefix)
        yield from sim.assign(ref, obj, loc=init_site)
        worker = sim.fork(user(), name="%s-user" % prefix)
        yield from sim.sleep(dispose_at_ms)
        yield from sim.dispose(ref, loc=dispose_site)
        yield from sim.join(worker)

    return root()


def plain_ubi(
    sim: Simulation,
    prefix: str,
    ref_name: str,
    init_site: str,
    use_site: str,
    init_at_ms: float,
    first_use_at_ms: float,
    use_count: int = 3,
    use_spacing_ms: float = 1.0,
):
    """Two-phase construction racing an already-running event handler.

    Delay-free order: handler thread starts, the initialization lands at
    ``init_at_ms``, uses begin *after* it at ``first_use_at_ms``.
    Delaying the initialization past the first use exposes the
    use-before-init. Several uses follow the first so the measured
    near-miss gap (and hence Waffle's delay) comfortably covers the
    window. Returns the root generator.
    """
    if not init_at_ms < first_use_at_ms:
        raise ValueError("the initialization must naturally precede the first use")
    ref = sim.ref(ref_name)
    started = sim.event("%s.pump-started" % prefix)

    def handler() -> Generator:
        started.set()
        yield from sim.sleep(first_use_at_ms)
        for i in range(use_count):
            yield from sim.use(ref, member="OnEvent", loc=use_site)
            yield from sim.sleep(use_spacing_ms)

    def root() -> Generator:
        pump = sim.fork(handler(), name="%s-pump" % prefix)
        yield from started.wait()
        yield from sim.sleep(init_at_ms)
        obj = sim.new("%s.Handler" % prefix)
        yield from sim.assign(ref, obj, loc=init_site)
        yield from sim.join(pump)

    return root()


def multi_instance_ubi(
    sim: Simulation,
    prefix: str,
    ref_name: str,
    init_site: str,
    use_site: str,
    iterations: int = 6,
    gap_ms: float = 1.2,
    iteration_spacing_ms: float = 4.0,
):
    """The init/use race repeats every iteration, on a *fresh* object
    (request/response style), so the same static pair has many dynamic
    instances per run.

    The producer publishes each request through a channel *before*
    finishing the payload initialization -- the bug. The consumer picks
    the request up and touches the payload ``gap_ms`` later, which is
    (just) enough in delay-free runs. An online tool discovers the pair
    at iteration 1 and can delay the iteration-2 initialization in the
    *same run* -- the structure behind the Table 4 rows where
    WaffleBasic needs only one run. Returns the root generator.
    """
    requests = sim.channel("%s.requests" % prefix)

    def consumer() -> Generator:
        while True:
            payload_ref = yield from requests.get()
            if payload_ref is None:
                return
            yield from sim.sleep(gap_ms)
            yield from sim.use(payload_ref, member="Route", loc=use_site)

    def root() -> Generator:
        worker = sim.fork(consumer(), name="%s-consumer" % prefix)
        for i in range(iterations):
            yield from sim.sleep(iteration_spacing_ms)
            payload_ref = sim.ref("%s_payload_%d" % (ref_name, i))
            requests.put(payload_ref)  # published before initialization!
            obj = sim.new("%s.Payload" % prefix, seq=i)
            yield from sim.assign(payload_ref, obj, loc=init_site)
        requests.close()
        yield from sim.join(worker)

    return root()


def interfering_bugs(
    sim: Simulation,
    prefix: str,
    ref_name: str,
    init_site: str,
    use_site: str,
    dispose_site: str,
    init_at_ms: float = 0.5,
    first_use_at_ms: float = 1.2,
    use_spacing_ms: float = 2.0,
    use_count: int = 80,
    extra_inits: int = 30,
):
    """Figure 4a: interfering use-before-init and use-after-free candidates.

    The event-source thread hammers ``use_site`` at a high rate; the
    constructor initializes the listener just before the first event;
    the disposer *joins* the event source before disposing (so the
    use-after-free candidate is false, protected by a join the tools
    cannot see) and exercises ``use_site`` itself on the flush path.

    Under fixed-length delays, the delayed first use always lands just
    after the delayed initialization (same length, later start) -- the
    delays cancel; the high event rate drains the use site's injection
    probability to zero each run, and rediscovery resets it, making the
    cancellation quasi-deterministic run after run. Waffle's
    interference set contains (init_site, use_site), so it skips the
    use-side delay and exposes the use-before-init in its first
    detection run. Returns the root generator.
    """
    ref = sim.ref(ref_name)

    def event_source() -> Generator:
        yield from sim.sleep(first_use_at_ms)
        yield from sim.use(ref, member="EventWrite", loc=use_site)
        for _ in range(use_count - 1):
            yield from sim.sleep(use_spacing_ms)
            yield from sim.use(ref, member="EventWrite", loc=use_site)

    def root() -> Generator:
        source = sim.fork(event_source(), name="%s-events" % prefix)
        yield from sim.sleep(init_at_ms)
        obj = sim.new("%s.EventListener" % prefix)
        yield from sim.assign(ref, obj, loc=init_site)
        yield from sim.join(source)
        # Dispose path flushes pending events through the same code
        # path before tearing the listener down. The dispose must land
        # right after the final uses: its near-miss rediscovery resets
        # the use site's injection probability for the next run.
        yield from sim.use(ref, member="EventWrite", loc=use_site)
        yield from sim.dispose(ref, loc=dispose_site)
        # After teardown, the SDK re-registers a batch of listeners
        # through the same constructor site. These benign instances are
        # never raced, but they drain the constructor site's injection
        # probability to zero within any run whose critical delay was
        # cancelled -- which is what makes interference control a
        # *coverage* feature, not merely a performance one (Table 7): a
        # Waffle without it cancels in run 1, burns the site out here,
        # and (with no online rediscovery in planned mode) never delays
        # the constructor again.
        for i in range(extra_inits):
            extra = sim.ref("%s_extra_%d" % (ref_name, i))
            yield from sim.assign(extra, sim.new("%s.EventListener" % prefix), loc=init_site)

    return root()


def interfering_instances(
    sim: Simulation,
    prefix: str,
    ref_name: str,
    init_site: str,
    check_site: str,
    dispose_site: str,
    worker_check_at_ms: float = 7.0,
    cleanup_at_ms: float = 10.0,
):
    """Figure 4b: the cleanup thread executes the *same static site* the
    tool wants to delay, right before the disposal.

    Fixed-probability injection fires at both dynamic instances of
    ``check_site`` (worker's and cleanup's), shifting both threads by
    the same amount -- order preserved, bug hidden -- until the decayed
    probabilities happen to diverge. Waffle's interference set contains
    the self-pair (check_site, check_site), so only the first instance
    is delayed and the bug manifests immediately. Returns the root
    generator.
    """
    if not worker_check_at_ms < cleanup_at_ms:
        raise ValueError("the worker's check must naturally precede cleanup")
    ref = sim.ref(ref_name)

    def worker() -> Generator:
        yield from sim.sleep(worker_check_at_ms)
        yield from sim.use(ref, member="IsDisposed", loc=check_site)

    def root() -> Generator:
        obj = sim.new("%s.Poller" % prefix)
        yield from sim.assign(ref, obj, loc=init_site)
        processing = sim.fork(worker(), name="%s-worker" % prefix)
        yield from sim.sleep(cleanup_at_ms)
        yield from sim.use(ref, member="IsDisposed", loc=check_site)
        yield from sim.dispose(ref, loc=dispose_site)
        yield from sim.join(processing)

    return root()


def long_gap_uaf(
    sim: Simulation,
    prefix: str,
    ref_name: str,
    init_site: str,
    use_site: str,
    dispose_site: str,
    vulnerable_gap_ms: float = 108.0,
    observed_gap_ms: float = 97.0,
    vulnerable_use_at_ms: float = 3.0,
):
    """A use-after-free exposable only by variable-length delays.

    Two queue objects share the same static code. Queue *B* is the
    vulnerable one: its single use happens ``vulnerable_gap_ms`` before
    its (abrupt, unsynchronized) disposal -- a gap *longer* than the
    fixed delay length and longer than the near-miss window, so the
    racing pair is never directly observed. Queue *A* is the benign
    sibling: its use sits ``observed_gap_ms`` before its disposal
    (inside the window, so the pair *is* identified and sets the
    per-site delay length) but that disposal is join-protected, so no
    delay at A's use can expose anything.

    WaffleBasic's 100 ms delay moves B's use to ``use_at + 100``, still
    before B's disposal: a deterministic miss, run after run. Waffle
    injects ``alpha * observed_gap`` (~112 ms with the defaults),
    pushing B's use past B's disposal. This is the Bug-15 mechanism
    (section 4.3's motivating trade-off). Returns the root generator.
    """
    if vulnerable_gap_ms <= 100.0:
        raise ValueError("the vulnerable gap must exceed the fixed delay length")
    if not observed_gap_ms < 100.0:
        raise ValueError("the observed gap must sit inside the near-miss window")
    if 1.15 * observed_gap_ms <= vulnerable_gap_ms:
        raise ValueError("alpha * observed gap must cover the vulnerable gap")
    ref_a = sim.ref("%s_a" % ref_name)
    ref_b = sim.ref("%s_b" % ref_name)
    dispose_b_at = vulnerable_use_at_ms + vulnerable_gap_ms
    use_a_at = dispose_b_at + 0.2 - observed_gap_ms

    def worker_a() -> Generator:
        yield from sim.sleep(use_a_at)
        yield from sim.use(ref_a, member="Dequeue", loc=use_site)

    def worker_b() -> Generator:
        yield from sim.sleep(vulnerable_use_at_ms)
        yield from sim.use(ref_b, member="Dequeue", loc=use_site)

    def root() -> Generator:
        yield from sim.assign(ref_a, sim.new("%s.Queue" % prefix), loc=init_site)
        yield from sim.assign(ref_b, sim.new("%s.Queue" % prefix), loc=init_site)
        thread_a = sim.fork(worker_a(), name="%s-worker-a" % prefix)
        thread_b = sim.fork(worker_b(), name="%s-worker-b" % prefix)
        # B is torn down abruptly at a fixed time (connection dropped).
        yield from sim.sleep(dispose_b_at)
        yield from sim.dispose(ref_b, loc=dispose_site)
        # A is torn down properly: join its worker first, then dispose.
        yield from sim.join(thread_a)
        yield from sim.sleep(0.2)
        yield from sim.dispose(ref_a, loc=dispose_site)
        yield from sim.join(thread_b)

    return root()


def dense_connection_churn(
    sim: Simulation,
    prefix: str,
    workers: int = 3,
    conns_per_worker: int = 20,
    uses_per_conn: int = 3,
    use_spacing_ms: float = 0.8,
):
    """High-rate connection open/use/close traffic (the dense apps).

    Each worker repeatedly opens a connection object, issues a few
    commands on it, then hands it to a shared reaper thread which
    inspects and disposes it. The hand-off channel orders every use
    before its disposal, so no reordering can crash -- but near-miss
    tracking (which cannot see the channel) floods the candidate set
    with (use, dispose) and (init, use) pairs at every worker's sites.

    Under WaffleBasic this is the overhead story of Tables 5/6: fixed
    100 ms delays at hundreds of rediscovered candidate instances
    accumulate until dense tests time out (MQTT.Net). Under Waffle the
    same sites receive millisecond-scale proportional delays. Returns
    the root generator.
    """
    reap_queue = sim.channel("%s.reaper" % prefix)

    def worker(worker_id: int) -> Generator:
        for conn_index in range(conns_per_worker):
            conn = sim.ref("%s_conn_w%d_c%d" % (prefix, worker_id, conn_index))
            obj = sim.new("%s.Connection" % prefix, worker=worker_id)
            # Different statement kinds exercise different code paths:
            # fan the open/exec sites over a small modulus per worker so
            # the site census matches a realistic dense application.
            kind = conn_index % 5
            yield from sim.assign(
                conn, obj, loc="%s.Conn.open:%d:%d" % (prefix, worker_id, kind)
            )
            for use_index in range(uses_per_conn):
                yield from sim.sleep(use_spacing_ms)
                yield from sim.use(
                    conn,
                    member="Execute",
                    loc="%s.Conn.exec:%d:%d" % (prefix, worker_id, (kind + use_index) % 5),
                )
            reap_queue.put((kind, conn))

    def reaper() -> Generator:
        while True:
            entry = yield from reap_queue.get()
            if entry is None:
                return
            kind, conn = entry
            yield from sim.use(
                conn, member="Validate", loc="%s.Reaper.check:%d" % (prefix, kind)
            )
            yield from sim.dispose(conn, loc="%s.Reaper.close:%d" % (prefix, kind))

    def root() -> Generator:
        reap = sim.fork(reaper(), name="%s-reaper" % prefix)
        pool = [sim.fork(worker(w), name="%s-conn-%d" % (prefix, w)) for w in range(workers)]
        yield from sim.join_all(pool)
        reap_queue.close()
        yield from sim.join(reap)

    return root()


def multi_instance_uaf(
    sim: Simulation,
    prefix: str,
    ref_name: str,
    init_site: str,
    use_site: str,
    dispose_site: str,
    iterations: int = 6,
    use_gap_ms: float = 1.5,
    dispose_gap_ms: float = 3.5,
    iteration_spacing_ms: float = 5.0,
):
    """A use/dispose race repeated on a fresh object every iteration
    (reconnecting watch streams, recycled handles).

    Each iteration: the owner initializes a stream, a long-lived worker
    touches it ``use_gap_ms`` later, and the owner closes it at
    ``dispose_gap_ms`` -- a near-miss every time. Online tools identify
    the pair at iteration 1 and can push iteration 2's use past its
    disposal in the same run. Returns the root generator.
    """
    if not use_gap_ms < dispose_gap_ms:
        raise ValueError("the use must naturally precede the disposal")
    streams = sim.channel("%s.streams" % prefix)

    def watcher() -> Generator:
        while True:
            stream_ref = yield from streams.get()
            if stream_ref is None:
                return
            yield from sim.sleep(use_gap_ms)
            yield from sim.use(stream_ref, member="ReadEvent", loc=use_site)

    def root() -> Generator:
        worker = sim.fork(watcher(), name="%s-watcher" % prefix)
        for i in range(iterations):
            yield from sim.sleep(iteration_spacing_ms)
            stream_ref = sim.ref("%s_stream_%d" % (ref_name, i))
            obj = sim.new("%s.WatchStream" % prefix, seq=i)
            yield from sim.assign(stream_ref, obj, loc=init_site)
            streams.put(stream_ref)
            yield from sim.sleep(dispose_gap_ms)
            yield from sim.dispose(stream_ref, loc=dispose_site)
        streams.close()
        yield from sim.join(worker)

    return root()


class RotatingCache:
    """Channel-ordered lookup/evict/refill traffic whose lookup site is a
    near-miss delay candidate.

    The host thread calls :meth:`lookup` inline; a separate evictor
    thread rotates the cache object after each acknowledged lookup.
    The acknowledgement channel orders every lookup before the eviction
    that follows it, so no delay can crash this traffic -- but the
    (lookup, evict) and (refill, lookup) near-misses make the lookup
    site a delay location whose injections (a) shift the host thread
    under fixed-length delays and (b) populate Waffle's interference
    set against any critical site the host thread races with. This is
    the "many more delay candidate locations to sift through" effect
    that makes the dense apps need 3-4 detection runs (section 6.3).
    """

    def __init__(self, sim: Simulation, prefix: str):
        self.sim = sim
        self.prefix = prefix
        self.lookup_site = "%s.Cache.Lookup:74" % prefix
        self.evict_site = "%s.Cache.Evict:91" % prefix
        self.refill_site = "%s.Cache.Refill:88" % prefix
        self.cache = sim.ref("%s_cache" % prefix)
        self._acks = sim.channel("%s.cache-acks" % prefix)
        self._evictor = None

    def start(self) -> Generator:
        """Initialize the cache and fork the evictor (call via yield from)."""
        yield from self.sim.assign(
            self.cache, self.sim.new("%s.Cache" % self.prefix), loc=self.refill_site
        )
        self._evictor = self.sim.fork(self._evict_loop(), name="%s-evictor" % self.prefix)

    def lookup(self, seq: int) -> Generator:
        yield from self.sim.use(self.cache, member="Lookup", loc=self.lookup_site)
        self._acks.put(seq)

    def _evict_loop(self) -> Generator:
        while True:
            ack = yield from self._acks.get()
            if ack is None:
                return
            yield from self.sim.sleep(0.6)
            # Rotation order matters for crash-proofness under delays:
            # install the fresh cache *first*, then retire the old
            # object through a scratch reference. A delayed refill
            # leaves lookups on the still-valid old object, and the
            # retire (a DISPOSE, never a delay location) follows the
            # refill on this thread -- so no interleaving exposes a
            # real race, while the (lookup, retire) near-miss still
            # makes the lookup site a delay location.
            old = self.cache.value
            yield from self.sim.assign(
                self.cache, self.sim.new("%s.Cache" % self.prefix), loc=self.refill_site
            )
            retired = self.sim.ref("%s_retired" % self.prefix, old)
            yield from self.sim.dispose(retired, loc=self.evict_site)

    def stop(self) -> Generator:
        self._acks.close()
        if self._evictor is not None:
            yield from self.sim.join(self._evictor)


def interfering_bugs_with_partner(
    sim: Simulation,
    prefix: str,
    ref_name: str,
    init_site: str,
    use_site: str,
    dispose_site: str,
    init_at_ms: float = 0.5,
    use_offset_ms: float = 1.2,
    cycle_rest_ms: float = 0.8,
    cycles: int = 60,
    extra_inits: int = 0,
):
    """The Figure 4a structure embedded in hot partner traffic.

    The pump thread interleaves rotating-cache lookups with accesses to
    the critical object, starting *before* the critical initialization.
    Consequences, validated against the detectors:

    * WaffleBasic: the pump's fixed-length lookup delays shift every
      critical use past the (equally delayed) initialization, on top of
      the plain Figure 4a cancellation -- a doubly-protected miss.
    * Waffle: the lookup site enters the interference set against the
      critical initialization, so in early detection runs the
      initialization delay is *skipped* while lookup delays are ongoing;
      only once the lookup site's probability has decayed (one to two
      runs) can the critical delay fire -- the extra detection runs the
      paper reports for its densest applications.

    Returns the root generator.
    """
    ref = sim.ref(ref_name)
    partner = RotatingCache(sim, prefix + ".partner")

    def pump() -> Generator:
        yield from sim.sleep(0.05)
        for i in range(cycles):
            yield from partner.lookup(i)
            yield from sim.sleep(use_offset_ms)
            yield from sim.use(ref, member="Dispatch", loc=use_site)
            yield from sim.sleep(cycle_rest_ms)

    def root() -> Generator:
        yield from partner.start()
        pump_thread = sim.fork(pump(), name="%s-pump" % prefix)
        yield from sim.sleep(init_at_ms)
        obj = sim.new("%s.Shared" % prefix)
        yield from sim.assign(ref, obj, loc=init_site)
        yield from sim.join(pump_thread)
        # Teardown flush exercises the use site once more, then
        # disposes -- the false use-after-free candidate of Figure 4a.
        # The dispose must land promptly after the pump's last use (the
        # partner evictor may still be draining a delayed backlog, so
        # it is stopped only afterwards): the near-miss rediscovery at
        # this dispose is what resets the use site's injection
        # probability for the next run, keeping the cancellation cycle
        # closed.
        yield from sim.use(ref, member="Dispatch", loc=use_site)
        yield from sim.dispose(ref, loc=dispose_site)
        yield from partner.stop()
        # Optional benign re-initializations (see interfering_bugs);
        # disabled by default here because full Waffle exposes the
        # partner variant only in its *second* detection run -- burning
        # the initialization site out in run 1 would blind it.
        for i in range(extra_inits):
            extra = sim.ref("%s_extra_%d" % (ref_name, i))
            yield from sim.assign(extra, sim.new("%s.Shared" % prefix), loc=init_site)

    return root()


def task_fanout(
    sim: Simulation,
    prefix: str,
    workers: int = 2,
    tasks: int = 8,
    task_cost_ms: float = 1.0,
):
    """Task-parallel fan-out over a pool with async-local request ids.

    Each submitted task touches a request object created *before* its
    submission, so every (init, use) near-miss it generates is ordered
    by the task-submission edge -- prunable through the async-local
    vector clocks (the section 4.1 task extension), and pure injection
    waste for tools without that analysis. Returns the root generator.
    """
    def handler(pool, ref, index):
        yield from sim.sleep(0.3)
        yield from sim.use(ref, member="Handle", loc="%s.TaskHandler.run:%d" % (prefix, index % 4))
        yield from sim.compute(task_cost_ms)

    def root() -> Generator:
        pool = sim.task_pool(workers=workers, name="%s.pool" % prefix)
        handles = []
        for index in range(tasks):
            ref = sim.ref("%s_request_%d" % (prefix, index))
            obj = sim.new("%s.Request" % prefix, seq=index)
            yield from sim.assign(ref, obj, loc="%s.Dispatcher.accept:%d" % (prefix, index % 4))
            handles.append(pool.submit(handler(pool, ref, index), name="req-%d" % index))
        yield from pool.wait_all(handles)
        yield from pool.close()

    return root()
