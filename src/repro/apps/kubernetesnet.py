"""Kubernetes.Net model: the official C# Kubernetes client.

Models the client's watch machinery: watch streams that reconnect in a
loop, informer caches rebuilt on resync, and API connection pooling.

Planted bugs (Table 4):

* **Bug-9** (issue #360, known) -- every watch reconnection closes the
  previous stream while the event reader may still be draining it; the
  race repeats per reconnect, so online identification exposes it in a
  single run (WaffleBasic's Table 4 "1").
* **Bug-18** (previously unknown) -- tearing down an informer disposes
  its backing cache while the resync worker performs one last lookup.
"""

from __future__ import annotations

from typing import Generator

from ..sim.api import Simulation
from . import patterns as P
from .base import Application, KnownBug

PREFIX = "kubernetesnet"


def test_watch_reconnect_loop(sim: Simulation) -> Generator:
    """Bug-9: watch streams closed while the reader drains them."""
    return P.multi_instance_uaf(
        sim,
        PREFIX,
        ref_name="watch_stream",
        init_site="kubernetesnet.Watcher.Connect:71",
        use_site="kubernetesnet.Watcher.ReadEvent:95",
        dispose_site="kubernetesnet.Watcher.CloseStream:83",
        iterations=7,
        use_gap_ms=1.5,
        dispose_gap_ms=3.5,
        iteration_spacing_ms=5.0,
    )


def test_informer_cache_teardown(sim: Simulation) -> Generator:
    """Bug-18: informer cache disposed under the resync worker."""
    return P.plain_uaf(
        sim,
        PREFIX + ".informer",
        ref_name="informer_cache",
        use_site="kubernetesnet.Informer.Lookup:133",
        dispose_site="kubernetesnet.Informer.Dispose:162",
        init_site="kubernetesnet.Informer.Start:41",
        use_at_ms=4.5,
        dispose_at_ms=10.0,
    )


# -- Benign traffic -----------------------------------------------------


def test_list_pods_parallel(sim: Simulation) -> Generator:
    return P.synchronized_pipeline(sim, PREFIX + ".listpods", items=10, stage_cost_ms=0.4)


def test_api_client_pool(sim: Simulation) -> Generator:
    return P.dense_connection_churn(
        sim, PREFIX + ".pool", workers=2, conns_per_worker=7, uses_per_conn=2
    )


def test_token_refresh_lock(sim: Simulation) -> Generator:
    return P.locked_counter_workers(sim, PREFIX + ".tokens", workers=2, increments=4)


def test_resource_version_cache(sim: Simulation) -> Generator:
    return P.unsafe_collection_traffic(sim, PREFIX + ".resversions", workers=2, ops_per_worker=4)


def test_controller_startup(sim: Simulation) -> Generator:
    preamble, threads = P.fork_ordered_preamble(sim, PREFIX + ".controllers", count=6, worker_uses=2)

    def root() -> Generator:
        yield from preamble
        yield from sim.join_all(threads)

    return root()


def test_exec_stream_demux(sim: Simulation) -> Generator:
    return P.synchronized_pipeline(sim, PREFIX + ".exec", items=8, stage_cost_ms=0.5)


def test_informer_task_resync(sim: Simulation) -> Generator:
    return P.task_fanout(sim, PREFIX + ".resync", workers=2, tasks=8)


def test_namespace_sweep(sim: Simulation) -> Generator:
    return P.synchronized_pipeline(sim, PREFIX + ".namespaces", items=16, stage_cost_ms=0.3)


def test_leader_election_lock(sim: Simulation) -> Generator:
    return P.locked_counter_workers(sim, PREFIX + ".leader", workers=3, increments=5)


def test_port_forward_duplex(sim: Simulation) -> Generator:
    """Bidirectional port-forward frames over two channels."""
    upstream = sim.channel("kubernetesnet.pf.up")
    downstream = sim.channel("kubernetesnet.pf.down")
    frames = 7

    def local_end(sim_: Simulation) -> Generator:
        for i in range(frames):
            frame = sim.ref("up_%d" % i, sim.new("kubernetesnet.Frame", seq=i))
            yield from sim.use(frame, member="Encode", loc="kubernetesnet.PortForward.send:61")
            upstream.put(frame)
            echo = yield from downstream.get()
            yield from sim.use(echo, member="Decode", loc="kubernetesnet.PortForward.recv:66")
        upstream.close()

    def remote_end(sim_: Simulation) -> Generator:
        while True:
            frame = yield from upstream.get()
            if frame is None:
                return
            yield from sim.use(frame, member="Decode", loc="kubernetesnet.PortForward.remote:81")
            yield from sim.compute(0.3)
            reply = sim.ref("down", sim.new("kubernetesnet.Frame"))
            yield from sim.use(reply, member="Encode", loc="kubernetesnet.PortForward.reply:85")
            downstream.put(reply)

    def root() -> Generator:
        a = sim.fork(local_end(sim), name="k8s-pf-local")
        b = sim.fork(remote_end(sim), name="k8s-pf-remote")
        yield from sim.join(a)
        yield from sim.join(b)

    return root()


def test_patch_conflict_retries(sim: Simulation) -> Generator:
    return P.locked_counter_workers(sim, PREFIX + ".patches", workers=4, increments=5)


def test_crd_discovery_sweep(sim: Simulation) -> Generator:
    return P.synchronized_pipeline(sim, PREFIX + ".crds", items=14, stage_cost_ms=0.35)


def build_app() -> Application:
    app = Application(
        name="kubernetesnet",
        display_name="Kubernetes.Net",
        paper_loc_kloc=173.2,
        paper_multithreaded_tests=21,
        paper_stars_k=0.7,
    )
    app.add_test("watch_reconnect_loop", test_watch_reconnect_loop)
    app.add_test("informer_cache_teardown", test_informer_cache_teardown)
    app.add_test("list_pods_parallel", test_list_pods_parallel)
    app.add_test("api_client_pool", test_api_client_pool)
    app.add_test("token_refresh_lock", test_token_refresh_lock)
    app.add_test("resource_version_cache", test_resource_version_cache)
    app.add_test("controller_startup", test_controller_startup)
    app.add_test("exec_stream_demux", test_exec_stream_demux)
    app.add_test("informer_task_resync", test_informer_task_resync)
    app.add_test("namespace_sweep", test_namespace_sweep)
    app.add_test("leader_election_lock", test_leader_election_lock)
    app.add_test("port_forward_duplex", test_port_forward_duplex)
    app.add_test("patch_conflict_retries", test_patch_conflict_retries)
    app.add_test("crd_discovery_sweep", test_crd_discovery_sweep)

    app.add_bug(
        KnownBug(
            bug_id="Bug-9",
            app="kubernetesnet",
            issue_id="360",
            kind="use_after_free",
            previously_known=True,
            description=(
                "Watch reconnection closes the previous stream while the "
                "event reader drains it; repeats per reconnect."
            ),
            fault_sites=frozenset({"kubernetesnet.Watcher.ReadEvent:95"}),
            test_name="watch_reconnect_loop",
            paper_runs_basic=1,
            paper_runs_waffle=2,
            paper_slowdown_basic=1.3,
            paper_slowdown_waffle=2.0,
        )
    )
    app.add_bug(
        KnownBug(
            bug_id="Bug-18",
            app="kubernetesnet",
            issue_id="n/a",
            kind="use_after_free",
            previously_known=False,
            description=(
                "Informer teardown disposes the backing cache while the "
                "resync worker performs one last lookup."
            ),
            fault_sites=frozenset({"kubernetesnet.Informer.Lookup:133"}),
            test_name="informer_cache_teardown",
            paper_runs_basic=2,
            paper_runs_waffle=2,
            paper_slowdown_basic=2.5,
            paper_slowdown_waffle=2.0,
        )
    )
    return app
