"""NpgSQL model: the PostgreSQL ADO.NET driver.

The paper's most heap-access-dense benchmark: connection pooling,
prepared-statement caches and command pipelines generate the largest
candidate sets (Tables 2, 5, 6) and the biggest parent-child-analysis
ablation impact (1.73x, Table 7).

Planted bug (Table 4):

* **Bug-12** (issue #3247, known) -- the pool pruner swaps the shared
  pool-slot object while the command pump is mid-dispatch. The pump
  interleaves its pool accesses with prepared-statement cache traffic
  whose sites are themselves delay candidates, so (a) WaffleBasic's
  fixed delays on the pump thread always shift the racing use past the
  delayed initialization (a deterministic miss), and (b) Waffle's own
  interference set forces it to wait out the hot cache sites before the
  critical initialization delay can fire -- the "more candidate
  locations to sift through" effect behind the 4-run Table 4 entry.
"""

from __future__ import annotations

from typing import Generator

from ..sim.api import Simulation
from . import patterns as P
from .base import Application, KnownBug

PREFIX = "npgsql"

BUG12_INIT = "npgsql.ConnectorPool.Prune:266"
BUG12_USE = "npgsql.CommandPump.Dispatch:148"
BUG12_DISPOSE = "npgsql.ConnectorPool.Clear:301"


def test_pool_prune_during_dispatch(sim: Simulation) -> Generator:
    """Bug-12: pool slot swapped mid-dispatch, inside hot cache traffic.

    The command pump interleaves statement-cache lookups (rotating,
    channel-ordered, crash-proof partner traffic) with pool-slot
    accesses; the pool slot is initialized by the pruner just before
    the pump's first access. See
    :func:`repro.apps.patterns.interfering_bugs_with_partner` for why
    this blinds WaffleBasic and costs Waffle extra detection runs.
    """
    return P.interfering_bugs_with_partner(
        sim,
        PREFIX,
        ref_name="pool_slot",
        init_site=BUG12_INIT,
        use_site=BUG12_USE,
        dispose_site=BUG12_DISPOSE,
        init_at_ms=0.5,
        use_offset_ms=1.2,
        cycle_rest_ms=0.8,
        cycles=60,
    )


# -- Benign traffic (dense) ----------------------------------------------


def test_connection_pool_churn(sim: Simulation) -> Generator:
    return P.dense_connection_churn(
        sim, PREFIX + ".pool", workers=3, conns_per_worker=25, uses_per_conn=4
    )


def test_batched_command_pipeline(sim: Simulation) -> Generator:
    return P.synchronized_pipeline(sim, PREFIX + ".batch", items=25, stage_cost_ms=0.2)


def test_type_mapper_cache(sim: Simulation) -> Generator:
    return P.unsafe_collection_traffic(
        sim, PREFIX + ".typemapper", workers=3, ops_per_worker=6, spacing_ms=1.2
    )


def test_multiplexing_writes(sim: Simulation) -> Generator:
    return P.dense_connection_churn(
        sim, PREFIX + ".mux", workers=2, conns_per_worker=20, uses_per_conn=5
    )


def test_transaction_scope_counters(sim: Simulation) -> Generator:
    return P.locked_counter_workers(sim, PREFIX + ".txn", workers=4, increments=6)


def test_reader_column_stream(sim: Simulation) -> Generator:
    return P.synchronized_pipeline(sim, PREFIX + ".reader", items=30, stage_cost_ms=0.15)


def test_pool_warmup(sim: Simulation) -> Generator:
    preamble, threads = P.fork_ordered_preamble(
        sim, PREFIX + ".warmup", count=10, worker_uses=3, use_spacing_ms=0.8
    )

    def root() -> Generator:
        yield from preamble
        yield from sim.join_all(threads)

    return root()


def test_copy_bulk_import(sim: Simulation) -> Generator:
    return P.synchronized_pipeline(sim, PREFIX + ".copy", items=20, stage_cost_ms=0.25)


def test_async_command_tasks(sim: Simulation) -> Generator:
    return P.task_fanout(sim, PREFIX + ".cmdtasks", workers=3, tasks=12, task_cost_ms=0.5)


def test_prepared_statement_sweep(sim: Simulation) -> Generator:
    return P.dense_connection_churn(sim, PREFIX + ".prepared", workers=2, conns_per_worker=18, uses_per_conn=4)


def test_notification_listener(sim: Simulation) -> Generator:
    """LISTEN/NOTIFY: a listener drains notifications that writers
    publish through a channel, touching per-notification payloads."""
    notifications = sim.channel("npgsql.notify")

    def writer(sim_: Simulation, writer_id: int) -> Generator:
        for i in range(6):
            yield from sim.sleep(0.9)
            payload = sim.ref("notif_%d_%d" % (writer_id, i),
                              sim.new("npgsql.Notification", channel="jobs"))
            yield from sim.use(payload, member="Serialize",
                               loc="npgsql.Notify.publish:%d" % writer_id)
            notifications.put(payload)

    def listener(sim_: Simulation) -> Generator:
        while True:
            payload = yield from notifications.get()
            if payload is None:
                return
            yield from sim.use(payload, member="Deliver", loc="npgsql.Notify.deliver:203")
            yield from sim.compute(0.25)

    def root() -> Generator:
        lst = sim.fork(listener(sim), name="npgsql-listener")
        writers = [sim.fork(writer(sim, w), name="npgsql-writer-%d" % w) for w in range(3)]
        yield from sim.join_all(writers)
        notifications.close()
        yield from sim.join(lst)

    return root()


def test_connection_semaphore_gate(sim: Simulation) -> Generator:
    """Max-pool-size semaphore gating concurrent opens."""
    gate = sim.semaphore(initial=3, name="npgsql.poolgate")
    stats = sim.ref("pool_stats")

    def opener(sim_: Simulation, opener_id: int) -> Generator:
        for i in range(4):
            yield from gate.acquire()
            try:
                yield from sim.write(stats, "opens", opener_id * 10 + i,
                                     loc="npgsql.Pool.open:%d" % (opener_id % 3))
                yield from sim.compute(0.7)
            finally:
                gate.release()
            yield from sim.sleep(0.5)

    def root() -> Generator:
        yield from sim.assign(stats, sim.new("npgsql.PoolStats", opens=0),
                              loc="npgsql.Pool.ctor:9")
        threads = [sim.fork(opener(sim, o), name="npgsql-open-%d" % o) for o in range(5)]
        yield from sim.join_all(threads)

    return root()


def test_binary_import_stream(sim: Simulation) -> Generator:
    return P.synchronized_pipeline(sim, PREFIX + ".binimport", items=35, stage_cost_ms=0.15)


def test_replication_slot_feed(sim: Simulation) -> Generator:
    return P.dense_connection_churn(
        sim, PREFIX + ".replication", workers=2, conns_per_worker=15, uses_per_conn=5
    )


def build_app() -> Application:
    app = Application(
        name="npgsql",
        display_name="NpgSQL",
        paper_loc_kloc=51.9,
        paper_multithreaded_tests=283,
        paper_stars_k=2.4,
    )
    app.add_test("pool_prune_during_dispatch", test_pool_prune_during_dispatch)
    app.add_test("connection_pool_churn", test_connection_pool_churn)
    app.add_test("batched_command_pipeline", test_batched_command_pipeline)
    app.add_test("type_mapper_cache", test_type_mapper_cache)
    app.add_test("multiplexing_writes", test_multiplexing_writes)
    app.add_test("transaction_scope_counters", test_transaction_scope_counters)
    app.add_test("reader_column_stream", test_reader_column_stream)
    app.add_test("pool_warmup", test_pool_warmup)
    app.add_test("copy_bulk_import", test_copy_bulk_import)
    app.add_test("async_command_tasks", test_async_command_tasks)
    app.add_test("prepared_statement_sweep", test_prepared_statement_sweep)
    app.add_test("notification_listener", test_notification_listener)
    app.add_test("connection_semaphore_gate", test_connection_semaphore_gate)
    app.add_test("binary_import_stream", test_binary_import_stream)
    app.add_test("replication_slot_feed", test_replication_slot_feed)

    app.add_bug(
        KnownBug(
            bug_id="Bug-12",
            app="npgsql",
            issue_id="3247",
            kind="use_before_init",
            previously_known=True,
            description=(
                "The pool pruner swaps the shared pool slot while the "
                "command pump is mid-dispatch; hot statement-cache sites "
                "on the pump thread interfere with the critical delay."
            ),
            fault_sites=frozenset({BUG12_USE}),
            test_name="pool_prune_during_dispatch",
            paper_runs_basic=None,
            paper_runs_waffle=4,
            paper_slowdown_waffle=6.9,
        )
    )
    return app
