"""SSH.Net model: an SSH client library.

Models SSH.Net's session/channel architecture: a session owns a socket
reader thread and per-channel state; disconnects race in-flight channel
operations.

Planted bugs (Table 4):

* **Bug-1** (issue #80, known) -- a disconnect disposes the session's
  message listener while the keep-alive thread is about to touch it.
* **Bug-2** (issue #453, known) -- closing a channel nulls its data
  stream while the reader thread still forwards one last packet.
"""

from __future__ import annotations

from typing import Generator

from ..sim.api import Simulation
from . import patterns as P
from .base import Application, KnownBug

PREFIX = "sshnet"


def test_disconnect_during_keepalive(sim: Simulation) -> Generator:
    """Bug-1: session disposed between keep-alive probes."""
    return P.plain_uaf(
        sim,
        PREFIX,
        ref_name="message_listener",
        use_site="sshnet.Session.SendKeepAlive:114",
        dispose_site="sshnet.Session.Disconnect:89",
        init_site="sshnet.Session.Connect:52",
        use_at_ms=4.0,
        dispose_at_ms=9.0,
        extra_uses=2,
        extra_use_spacing_ms=1.0,
    )


def test_channel_close_race(sim: Simulation) -> Generator:
    """Bug-2: channel stream nulled while the reader forwards a packet."""
    return P.plain_uaf(
        sim,
        PREFIX + ".chan",
        ref_name="channel_stream",
        use_site="sshnet.ChannelSession.OnData:203",
        dispose_site="sshnet.ChannelSession.Close:171",
        init_site="sshnet.ChannelSession.Open:64",
        use_at_ms=6.0,
        dispose_at_ms=14.0,
    )


# -- Benign traffic -----------------------------------------------------


def test_sftp_parallel_uploads(sim: Simulation) -> Generator:
    return P.synchronized_pipeline(sim, PREFIX + ".sftp", items=10, stage_cost_ms=0.6)


def test_forwarded_port_accept_loop(sim: Simulation) -> Generator:
    return P.synchronized_pipeline(sim, PREFIX + ".portfwd", items=8, stage_cost_ms=0.4)


def test_session_semaphore_contention(sim: Simulation) -> Generator:
    """Channel windows guarded by a semaphore."""
    sem = sim.semaphore(initial=2, name="sshnet.window")
    window = sim.ref("window_state")

    def sender(sender_id: int) -> Generator:
        for i in range(4):
            yield from sem.acquire()
            try:
                yield from sim.write(
                    window, "bytes", sender_id * 10 + i, loc="sshnet.Channel.send:%d" % sender_id
                )
                yield from sim.compute(0.5)
            finally:
                sem.release()
            yield from sim.sleep(1.0)

    def root() -> Generator:
        obj = sim.new("sshnet.WindowState", bytes=0)
        yield from sim.assign(window, obj, loc="sshnet.Channel.ctor:12")
        threads = [sim.fork(sender(s), name="sshnet-sender-%d" % s) for s in range(3)]
        yield from sim.join_all(threads)

    return root()


def test_key_exchange_handshake(sim: Simulation) -> Generator:
    preamble, threads = P.fork_ordered_preamble(sim, PREFIX + ".kex", count=4, worker_uses=2)

    def root() -> Generator:
        yield from preamble
        yield from sim.join_all(threads)

    return root()


def test_host_key_cache(sim: Simulation) -> Generator:
    return P.unsafe_collection_traffic(sim, PREFIX + ".hostkeys", workers=2, ops_per_worker=4)


def test_packet_counter_lock(sim: Simulation) -> Generator:
    return P.locked_counter_workers(sim, PREFIX + ".packets", workers=3, increments=5)


def test_shell_stream_echo(sim: Simulation) -> Generator:
    return P.synchronized_pipeline(sim, PREFIX + ".shell", items=12, stage_cost_ms=0.3)


def test_reconnect_storm(sim: Simulation) -> Generator:
    return P.dense_connection_churn(
        sim, PREFIX + ".reconnect", workers=2, conns_per_worker=6, uses_per_conn=2
    )


def test_async_command_execution(sim: Simulation) -> Generator:
    return P.task_fanout(sim, PREFIX + ".asyncexec", workers=2, tasks=8)


def test_keepalive_sweep(sim: Simulation) -> Generator:
    return P.synchronized_pipeline(sim, PREFIX + ".kasweep", items=12, stage_cost_ms=0.4)


def test_banner_exchange_timeout(sim: Simulation) -> Generator:
    """Client and server exchange protocol banners with a deadline
    watchdog that is cancelled through an event."""
    banner = sim.ref("banner")
    received = sim.event("sshnet.banner-received")

    def server(sim_: Simulation) -> Generator:
        yield from sim.sleep(3.0)
        obj = sim.new("sshnet.Banner", text="SSH-2.0-Repro")
        yield from sim.assign(banner, obj, loc="sshnet.Server.sendBanner:31")
        received.set()

    def watchdog(sim_: Simulation) -> Generator:
        # Poll the deadline; exit quietly once the banner arrived.
        for _ in range(10):
            if received.is_set:
                return
            yield from sim.sleep(1.0)

    def root() -> Generator:
        srv = sim.fork(server(sim), name="sshnet-server")
        dog = sim.fork(watchdog(sim), name="sshnet-watchdog")
        yield from received.wait()
        yield from sim.read(banner, "text", loc="sshnet.Client.readBanner:44")
        yield from sim.join(srv)
        yield from sim.join(dog)

    return root()


def test_channel_window_flowcontrol(sim: Simulation) -> Generator:
    """Sender blocks on a condition variable until the receiver
    acknowledges window space."""
    lock = sim.lock("sshnet.window.lock")
    space = sim.condition(lock, "sshnet.window.space")
    state = sim.ref("flow_state")

    def sender(sim_: Simulation) -> Generator:
        for i in range(6):
            yield from lock.acquire()
            obj = state.value
            while obj.fields["window"] <= 0:
                yield from space.wait()
                obj = state.value
            yield from sim.write(state, "window", obj.fields["window"] - 1,
                                 loc="sshnet.Flow.consume:71")
            lock.release()
            yield from sim.compute(0.4)

    def receiver(sim_: Simulation) -> Generator:
        for i in range(6):
            yield from sim.sleep(1.1)
            yield from lock.acquire()
            obj = state.value
            yield from sim.write(state, "window", obj.fields["window"] + 1,
                                 loc="sshnet.Flow.replenish:85")
            space.notify()
            lock.release()

    def root() -> Generator:
        yield from sim.assign(state, sim.new("sshnet.FlowState", window=2),
                              loc="sshnet.Flow.ctor:12")
        a = sim.fork(sender(sim), name="sshnet-flow-sender")
        b = sim.fork(receiver(sim), name="sshnet-flow-receiver")
        yield from sim.join(a)
        yield from sim.join(b)

    return root()


def test_agent_forwarding_requests(sim: Simulation) -> Generator:
    """Agent-forwarding requests fan out over a task pool and each
    signs with a key object created before submission."""
    return P.task_fanout(sim, PREFIX + ".agentfwd", workers=2, tasks=10, task_cost_ms=0.6)


def test_scp_transfer_chunks(sim: Simulation) -> Generator:
    return P.synchronized_pipeline(sim, PREFIX + ".scp", items=16, stage_cost_ms=0.35)


def test_known_hosts_update(sim: Simulation) -> Generator:
    return P.unsafe_collection_traffic(
        sim, PREFIX + ".knownhosts", workers=3, ops_per_worker=4, spacing_ms=1.8
    )


def build_app() -> Application:
    app = Application(
        name="sshnet",
        display_name="SSH.Net",
        paper_loc_kloc=84.4,
        paper_multithreaded_tests=117,
        paper_stars_k=2.8,
    )
    app.add_test("disconnect_during_keepalive", test_disconnect_during_keepalive)
    app.add_test("channel_close_race", test_channel_close_race)
    app.add_test("sftp_parallel_uploads", test_sftp_parallel_uploads)
    app.add_test("forwarded_port_accept_loop", test_forwarded_port_accept_loop)
    app.add_test("session_semaphore_contention", test_session_semaphore_contention)
    app.add_test("key_exchange_handshake", test_key_exchange_handshake)
    app.add_test("host_key_cache", test_host_key_cache)
    app.add_test("packet_counter_lock", test_packet_counter_lock)
    app.add_test("shell_stream_echo", test_shell_stream_echo)
    app.add_test("reconnect_storm", test_reconnect_storm)
    app.add_test("async_command_execution", test_async_command_execution)
    app.add_test("keepalive_sweep", test_keepalive_sweep)
    app.add_test("banner_exchange_timeout", test_banner_exchange_timeout)
    app.add_test("channel_window_flowcontrol", test_channel_window_flowcontrol)
    app.add_test("agent_forwarding_requests", test_agent_forwarding_requests)
    app.add_test("scp_transfer_chunks", test_scp_transfer_chunks)
    app.add_test("known_hosts_update", test_known_hosts_update)

    app.add_bug(
        KnownBug(
            bug_id="Bug-1",
            app="sshnet",
            issue_id="80",
            kind="use_after_free",
            previously_known=True,
            description=(
                "Disconnect disposes the session message listener while "
                "the keep-alive thread is about to send a probe."
            ),
            fault_sites=frozenset(
                {
                    "sshnet.Session.SendKeepAlive:114",
                    "sshnet.early:0",
                    "sshnet.early:1",
                }
            ),
            test_name="disconnect_during_keepalive",
            paper_runs_basic=2,
            paper_runs_waffle=2,
            paper_slowdown_basic=1.4,
            paper_slowdown_waffle=1.2,
        )
    )
    app.add_bug(
        KnownBug(
            bug_id="Bug-2",
            app="sshnet",
            issue_id="453",
            kind="use_after_free",
            previously_known=True,
            description=(
                "Channel close nulls the data stream while the socket "
                "reader forwards one last packet to it."
            ),
            fault_sites=frozenset({"sshnet.ChannelSession.OnData:203"}),
            test_name="channel_close_race",
            paper_runs_basic=2,
            paper_runs_waffle=2,
            paper_slowdown_basic=1.7,
            paper_slowdown_waffle=1.6,
        )
    )
    return app
