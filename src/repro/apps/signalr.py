"""SignalR model: a real-time web messaging framework.

Models SignalR's hub-connection lifecycle: connection handlers
registered during negotiation, message pumps feeding hub method
invocations, and transport teardown.

Planted bug (Table 4):

* **Bug-13** (previously unknown) -- the hub connection publishes
  itself to the transport before its ``handshakeProtocol`` field is
  initialized; the receive pump dereferences it on the first inbound
  frame. The pump path is also a (join-protected) use-after-free
  candidate, so WaffleBasic's delays cancel (the Figure 4a structure).
"""

from __future__ import annotations

from typing import Generator

from ..sim.api import Simulation
from . import patterns as P
from .base import Application, KnownBug

PREFIX = "signalr"


def test_hub_connection_negotiation(sim: Simulation) -> Generator:
    """Bug-13: handshake protocol initialized after the pump starts."""
    return P.interfering_bugs(
        sim,
        PREFIX,
        ref_name="handshake_protocol",
        init_site="signalr.HubConnection.StartAsync:112",
        use_site="signalr.HubConnection.ProcessMessages:167",
        dispose_site="signalr.HubConnection.DisposeAsync:201",
        init_at_ms=0.5,
        first_use_at_ms=1.3,
        use_spacing_ms=2.0,
        use_count=110,
    )


# -- Benign traffic -----------------------------------------------------


def test_broadcast_fanout(sim: Simulation) -> Generator:
    return P.synchronized_pipeline(sim, PREFIX + ".broadcast", items=12, stage_cost_ms=0.3)


def test_group_membership_cache(sim: Simulation) -> Generator:
    return P.unsafe_collection_traffic(sim, PREFIX + ".groups", workers=3, ops_per_worker=4)


def test_connection_heartbeats(sim: Simulation) -> Generator:
    return P.locked_counter_workers(sim, PREFIX + ".heartbeats", workers=3, increments=4)


def test_transport_fallback_chain(sim: Simulation) -> Generator:
    preamble, threads = P.fork_ordered_preamble(sim, PREFIX + ".transports", count=4, worker_uses=2)

    def root() -> Generator:
        yield from preamble
        yield from sim.join_all(threads)

    return root()


def test_streaming_invocations(sim: Simulation) -> Generator:
    return P.synchronized_pipeline(sim, PREFIX + ".streams", items=9, stage_cost_ms=0.5)


def test_reconnect_policy(sim: Simulation) -> Generator:
    return P.dense_connection_churn(
        sim, PREFIX + ".reconnect", workers=2, conns_per_worker=6, uses_per_conn=2
    )


def test_hub_method_tasks(sim: Simulation) -> Generator:
    return P.task_fanout(sim, PREFIX + ".hubtasks", workers=2, tasks=8)


def test_presence_tracker_lock(sim: Simulation) -> Generator:
    return P.locked_counter_workers(sim, PREFIX + ".presence", workers=3, increments=5)


def test_backplane_fanout(sim: Simulation) -> Generator:
    """A scale-out backplane relays messages to several node channels."""
    node_channels = [sim.channel("signalr.node%d" % n) for n in range(3)]
    inbox = sim.channel("signalr.backplane")
    messages = 8

    def publisher(sim_: Simulation) -> Generator:
        for i in range(messages):
            yield from sim.sleep(0.8)
            msg = sim.ref("bp_%d" % i, sim.new("signalr.Envelope", seq=i))
            yield from sim.use(msg, member="Seal", loc="signalr.Backplane.publish:33")
            inbox.put(msg)
        inbox.close()

    def relay(sim_: Simulation) -> Generator:
        while True:
            msg = yield from inbox.get()
            if msg is None:
                for channel in node_channels:
                    channel.close()
                return
            for channel in node_channels:
                channel.put(msg)

    def node(sim_: Simulation, index: int) -> Generator:
        while True:
            msg = yield from node_channels[index].get()
            if msg is None:
                return
            yield from sim.use(msg, member="Deliver", loc="signalr.Node.deliver:%d" % index)
            yield from sim.compute(0.2)

    def root() -> Generator:
        nodes = [sim.fork(node(sim, n), name="signalr-node-%d" % n) for n in range(3)]
        r = sim.fork(relay(sim), name="signalr-relay")
        p = sim.fork(publisher(sim), name="signalr-publisher")
        yield from sim.join(p)
        yield from sim.join(r)
        yield from sim.join_all(nodes)

    return root()


def test_typed_hub_proxies(sim: Simulation) -> Generator:
    return P.task_fanout(sim, PREFIX + ".typedhubs", workers=2, tasks=8, task_cost_ms=0.4)


def build_app() -> Application:
    app = Application(
        name="signalr",
        display_name="SignalR",
        paper_loc_kloc=51.8,
        paper_multithreaded_tests=52,
        paper_stars_k=8.5,
    )
    app.add_test("hub_connection_negotiation", test_hub_connection_negotiation)
    app.add_test("broadcast_fanout", test_broadcast_fanout)
    app.add_test("group_membership_cache", test_group_membership_cache)
    app.add_test("connection_heartbeats", test_connection_heartbeats)
    app.add_test("transport_fallback_chain", test_transport_fallback_chain)
    app.add_test("streaming_invocations", test_streaming_invocations)
    app.add_test("reconnect_policy", test_reconnect_policy)
    app.add_test("hub_method_tasks", test_hub_method_tasks)
    app.add_test("presence_tracker_lock", test_presence_tracker_lock)
    app.add_test("backplane_fanout", test_backplane_fanout)
    app.add_test("typed_hub_proxies", test_typed_hub_proxies)

    app.add_bug(
        KnownBug(
            bug_id="Bug-13",
            app="signalr",
            issue_id="n/a",
            kind="use_before_init",
            previously_known=False,
            description=(
                "HubConnection publishes itself to the transport before "
                "handshakeProtocol is initialized; the receive pump "
                "dereferences it on the first inbound frame."
            ),
            fault_sites=frozenset({"signalr.HubConnection.ProcessMessages:167"}),
            test_name="hub_connection_negotiation",
            paper_runs_basic=None,
            paper_runs_waffle=2,
            paper_slowdown_waffle=1.3,
        )
    )
    return app
