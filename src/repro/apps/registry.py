"""Global registry of the 11 benchmark applications and 18 bugs."""

from __future__ import annotations

from typing import Dict, List, Optional

from .base import Application, AppTestCase, KnownBug
from . import (
    appinsights,
    fluentassertions,
    kubernetesnet,
    litedb,
    mqttnet,
    netmq,
    npgsql,
    nsubstitute,
    nswag,
    signalr,
    sshnet,
)

_BUILDERS = (
    appinsights.build_app,
    fluentassertions.build_app,
    kubernetesnet.build_app,
    litedb.build_app,
    mqttnet.build_app,
    netmq.build_app,
    npgsql.build_app,
    nsubstitute.build_app,
    nswag.build_app,
    signalr.build_app,
    sshnet.build_app,
)

_REGISTRY: Optional[Dict[str, Application]] = None


def all_apps() -> Dict[str, Application]:
    """Build (once) and return the full application registry."""
    global _REGISTRY
    if _REGISTRY is None:
        registry: Dict[str, Application] = {}
        for builder in _BUILDERS:
            app = builder()
            if app.name in registry:
                raise RuntimeError("duplicate application name %r" % app.name)
            registry[app.name] = app
        _REGISTRY = registry
    return _REGISTRY


def get_app(name: str) -> Application:
    apps = all_apps()
    if name not in apps:
        if name.startswith("gen-"):
            # Generated applications (repro.gen) are addressable by
            # name but never enumerated: the paper tables stay pinned
            # to the 11 real apps while `detect`/`trace`/`replay` reach
            # the unbounded seeded family.
            from ..gen import registry as gen_registry

            app = gen_registry.resolve_app(name)
            if app is not None:
                return app
        raise KeyError(
            "unknown application %r (known: %s)" % (name, ", ".join(sorted(apps)))
        )
    return apps[name]


def all_bugs() -> List[KnownBug]:
    """All 18 Table 4 bugs, ordered Bug-1 .. Bug-18."""
    bugs: List[KnownBug] = []
    for app in all_apps().values():
        bugs.extend(app.known_bugs)
    bugs.sort(key=lambda bug: int(bug.bug_id.split("-")[1]))
    return bugs


def get_bug(bug_id: str) -> KnownBug:
    for bug in all_bugs():
        if bug.bug_id == bug_id:
            return bug
    raise KeyError("unknown bug %r" % bug_id)


def bug_workload(bug_id: str) -> AppTestCase:
    """The bug-triggering test input for a Table 4 bug."""
    bug = get_bug(bug_id)
    return get_app(bug.app).test(bug.test_name)
