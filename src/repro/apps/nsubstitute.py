"""NSubstitute model: a mocking library building proxies at run time.

Models NSubstitute's substitute factory: proxies are built per call,
call routers are swapped under configuration, and received-call
records are aggregated across threads.

Planted bugs (Table 4):

* **Bug-3** (issue #205, known) -- the proxy factory publishes each new
  substitute before its call router is initialized; a consuming thread
  routes a call through the half-built proxy. The race repeats on every
  substitute built, so an online tool can identify and expose it in a
  single run (the Table 4 row where WaffleBasic needs one run).
* **Bug-4** (issue #573, known) -- clearing received calls disposes the
  call stack while a checker thread still enumerates it.
"""

from __future__ import annotations

from typing import Generator

from ..sim.api import Simulation
from . import patterns as P
from .base import Application, KnownBug

PREFIX = "nsubstitute"


def test_substitute_factory_routing(sim: Simulation) -> Generator:
    """Bug-3: proxies published before their call router exists."""
    return P.multi_instance_ubi(
        sim,
        PREFIX,
        ref_name="call_router",
        init_site="nsubstitute.SubstituteFactory.Create:88",
        use_site="nsubstitute.CallRouter.Route:35",
        iterations=8,
        gap_ms=1.2,
        iteration_spacing_ms=4.0,
    )


def test_clear_received_calls_race(sim: Simulation) -> Generator:
    """Bug-4: ClearReceivedCalls disposes the stack mid-enumeration."""
    return P.plain_uaf(
        sim,
        PREFIX + ".calls",
        ref_name="received_stack",
        use_site="nsubstitute.ReceivedCalls.Enumerate:51",
        dispose_site="nsubstitute.CallRouter.Clear:19",
        init_site="nsubstitute.CallRouter.ctor:9",
        use_at_ms=3.0,
        dispose_at_ms=7.0,
    )


# -- Benign traffic -----------------------------------------------------


def test_argument_matcher_scope(sim: Simulation) -> Generator:
    return P.locked_counter_workers(sim, PREFIX + ".matchers", workers=2, increments=4)


def test_call_spec_cache(sim: Simulation) -> Generator:
    return P.unsafe_collection_traffic(sim, PREFIX + ".specs", workers=2, ops_per_worker=4)


def test_parallel_verification(sim: Simulation) -> Generator:
    return P.synchronized_pipeline(sim, PREFIX + ".verify", items=8, stage_cost_ms=0.4)


def test_auto_value_providers(sim: Simulation) -> Generator:
    preamble, threads = P.fork_ordered_preamble(sim, PREFIX + ".autovalues", count=4, worker_uses=2)

    def root() -> Generator:
        yield from preamble
        yield from sim.join_all(threads)

    return root()


def test_raise_event_handlers(sim: Simulation) -> Generator:
    return P.synchronized_pipeline(sim, PREFIX + ".events", items=6, stage_cost_ms=0.5)


def test_async_received_checks(sim: Simulation) -> Generator:
    return P.task_fanout(sim, PREFIX + ".asyncchecks", workers=2, tasks=6)


def test_when_do_callbacks(sim: Simulation) -> Generator:
    """When..Do callback registration and invocation through a channel
    (the callback list object is created before the invokers start)."""
    invocations = sim.channel("nsubstitute.invocations")

    def invoker(sim_: Simulation, invoker_id: int) -> Generator:
        for i in range(4):
            yield from sim.sleep(0.8)
            call = sim.ref("call_%d_%d" % (invoker_id, i),
                           sim.new("nsubstitute.Call", method="Do"))
            yield from sim.use(call, member="Capture",
                               loc="nsubstitute.WhenDo.capture:%d" % (invoker_id % 2))
            invocations.put(call)

    def callback_runner(sim_: Simulation) -> Generator:
        while True:
            call = yield from invocations.get()
            if call is None:
                return
            yield from sim.use(call, member="RunCallback", loc="nsubstitute.WhenDo.run:66")

    def root() -> Generator:
        runner = sim.fork(callback_runner(sim), name="nsub-callbacks")
        invokers = [sim.fork(invoker(sim, i), name="nsub-invoker-%d" % i) for i in range(2)]
        yield from sim.join_all(invokers)
        invocations.close()
        yield from sim.join(runner)

    return root()


def test_partial_substitute_pool(sim: Simulation) -> Generator:
    return P.task_fanout(sim, PREFIX + ".partials", workers=2, tasks=6, task_cost_ms=0.7)


def build_app() -> Application:
    app = Application(
        name="nsubstitute",
        display_name="NSubstitute",
        paper_loc_kloc=17.9,
        paper_multithreaded_tests=13,
        paper_stars_k=1.7,
    )
    app.add_test("substitute_factory_routing", test_substitute_factory_routing)
    app.add_test("clear_received_calls_race", test_clear_received_calls_race)
    app.add_test("argument_matcher_scope", test_argument_matcher_scope)
    app.add_test("call_spec_cache", test_call_spec_cache)
    app.add_test("parallel_verification", test_parallel_verification)
    app.add_test("auto_value_providers", test_auto_value_providers)
    app.add_test("raise_event_handlers", test_raise_event_handlers)
    app.add_test("async_received_checks", test_async_received_checks)
    app.add_test("when_do_callbacks", test_when_do_callbacks)
    app.add_test("partial_substitute_pool", test_partial_substitute_pool)

    app.add_bug(
        KnownBug(
            bug_id="Bug-3",
            app="nsubstitute",
            issue_id="205",
            kind="use_before_init",
            previously_known=True,
            description=(
                "Substitute proxies are published before their call router "
                "is initialized; routing a call through a half-built proxy "
                "dereferences null. Repeats per substitute, so single-run "
                "online identification suffices."
            ),
            fault_sites=frozenset({"nsubstitute.CallRouter.Route:35"}),
            test_name="substitute_factory_routing",
            paper_runs_basic=1,
            paper_runs_waffle=2,
            paper_slowdown_basic=3.3,
            paper_slowdown_waffle=5.1,
        )
    )
    app.add_bug(
        KnownBug(
            bug_id="Bug-4",
            app="nsubstitute",
            issue_id="573",
            kind="use_after_free",
            previously_known=True,
            description=(
                "ClearReceivedCalls disposes the received-call stack while "
                "another thread enumerates it."
            ),
            fault_sites=frozenset({"nsubstitute.ReceivedCalls.Enumerate:51"}),
            test_name="clear_received_calls_race",
            paper_runs_basic=2,
            paper_runs_waffle=2,
            paper_slowdown_basic=9.0,
            paper_slowdown_waffle=4.4,
        )
    )
    return app
