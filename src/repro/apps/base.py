"""Benchmark-application framework.

Each module in :mod:`repro.apps` models one of the paper's 11 C#
applications (Table 3): its concurrency structure, its multi-threaded
test suite, and its known MemOrder bugs (Table 4). An application is a
collection of :class:`AppTestCase` workloads plus :class:`KnownBug`
metadata.

Two invariants matter for experimental integrity:

* Detectors never see :class:`KnownBug` metadata -- it is used by the
  harness only to *label* bug reports post-hoc (by matching the
  report's faulting site against the bug's ``fault_sites``).
* Every planted bug requires rare timing: the delay-free stress control
  (section 6.2) must never trigger it. ``tests/apps`` enforces this for
  every bug-triggering test.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Generator, List, Optional, Sequence

from ..core.detector import Workload
from ..core.reports import BugReport
from ..sim.api import Simulation


@dataclass(frozen=True)
class KnownBug:
    """Metadata for one Table 4 row."""

    bug_id: str  # "Bug-1" .. "Bug-18"
    app: str  # registry key of the owning application
    issue_id: str  # upstream issue number ("80", "n/a", ...)
    kind: str  # "use_after_free" | "use_before_init" | "both"
    previously_known: bool
    description: str
    #: Static sites at which this bug's manifestation faults.
    fault_sites: frozenset
    #: Name of the bug-triggering test in the app's suite.
    test_name: str
    #: Paper-reported numbers, for EXPERIMENTS.md side-by-side tables.
    paper_runs_basic: Optional[int] = None  # None = "-" (missed in 50)
    paper_runs_waffle: Optional[int] = None
    paper_slowdown_basic: Optional[float] = None
    paper_slowdown_waffle: Optional[float] = None

    def matches(self, report: BugReport) -> bool:
        """Does a tool report correspond to this bug?"""
        return report.fault_site in self.fault_sites


class AppTestCase(Workload):
    """A multi-threaded test input of a benchmark application."""

    def __init__(
        self,
        name: str,
        build: Callable[[Simulation], Generator],
        multithreaded: bool = True,
        tags: Sequence[str] = (),
    ):
        super().__init__(name, build)
        self.multithreaded = multithreaded
        self.tags = tuple(tags)

    def __repr__(self) -> str:
        return "AppTestCase(%r)" % self.name


@dataclass
class Application:
    """One benchmark application and its test suite."""

    name: str  # registry key, e.g. "netmq"
    display_name: str  # e.g. "NetMQ"
    #: Table 3 metadata of the real application (reported, not claimed
    #: as properties of this synthetic model).
    paper_loc_kloc: float
    paper_multithreaded_tests: int
    paper_stars_k: float
    tests: List[AppTestCase] = field(default_factory=list)
    known_bugs: List[KnownBug] = field(default_factory=list)

    def add_test(
        self,
        name: str,
        build: Callable[[Simulation], Generator],
        multithreaded: bool = True,
        tags: Sequence[str] = (),
    ) -> AppTestCase:
        if any(t.name == name for t in self.tests):
            raise ValueError("duplicate test name %r in app %r" % (name, self.name))
        test = AppTestCase(name, build, multithreaded=multithreaded, tags=tags)
        self.tests.append(test)
        return test

    def add_bug(self, bug: KnownBug) -> KnownBug:
        if bug.app != self.name:
            raise ValueError("bug %s declares app %r, expected %r" % (bug.bug_id, bug.app, self.name))
        if not any(t.name == bug.test_name for t in self.tests):
            raise ValueError(
                "bug %s references unknown test %r in app %r"
                % (bug.bug_id, bug.test_name, self.name)
            )
        self.known_bugs.append(bug)
        return bug

    def test(self, name: str) -> AppTestCase:
        for candidate in self.tests:
            if candidate.name == name:
                return candidate
        raise KeyError("no test named %r in app %r" % (name, self.name))

    def bug(self, bug_id: str) -> KnownBug:
        for candidate in self.known_bugs:
            if candidate.bug_id == bug_id:
                return candidate
        raise KeyError("no bug %r in app %r" % (bug_id, self.name))

    @property
    def multithreaded_tests(self) -> List[AppTestCase]:
        return [t for t in self.tests if t.multithreaded]

    def bug_test(self, bug_id: str) -> AppTestCase:
        return self.test(self.bug(bug_id).test_name)


def match_bug(report: BugReport, bugs: Sequence[KnownBug]) -> Optional[KnownBug]:
    """Label a tool report with the known bug it manifests, if any."""
    for bug in bugs:
        if bug.matches(report):
            return bug
    return None
