"""ApplicationInsights model: telemetry SDK with background channels.

Models the concurrency structure of Microsoft's ApplicationInsights
.NET SDK: telemetry items are buffered and flushed by background
threads; diagnostics listeners subscribe to event sources during
construction; modules are initialized by a parent configuration thread.

Planted bugs (Table 4):

* **Bug-10** (issue #1106, known) -- the Figure 4a case study: the
  ``DiagnosticsListener`` constructor races the event-source pump that
  invokes ``OnEventWritten`` on the half-constructed listener, while a
  (join-protected) use-after-free candidate on the same object
  generates the interfering delays that blind WaffleBasic.
* **Bug-14** (issue #2261, previously unknown) -- the ``TelemetryBuffer``
  constructor publishes its ``OnFull`` handler before the last field is
  initialized; a buffer-full event from the pump thread dereferences
  the missing field.
"""

from __future__ import annotations

from typing import Generator

from ..sim.api import Simulation
from . import patterns as P
from .base import Application, KnownBug

PREFIX = "appinsights"


# ----------------------------------------------------------------------
# Bug-triggering tests
# ----------------------------------------------------------------------


def test_diagnostics_listener_lifecycle(sim: Simulation) -> Generator:
    """Bug-10: DiagnosticsListener ctor vs OnEventWritten (Fig. 4a)."""
    return P.interfering_bugs(
        sim,
        PREFIX,
        ref_name="lstnr",
        init_site="appinsights.DiagnosticsListener.ctor:2",
        use_site="appinsights.DiagnosticsEventListener.OnEventWritten:8",
        dispose_site="appinsights.DiagnosticsListener.Dispose:5",
        init_at_ms=0.5,
        first_use_at_ms=1.2,
        use_spacing_ms=2.0,
        use_count=110,
    )


def test_buffer_onfull_event(sim: Simulation) -> Generator:
    """Bug-14: TelemetryBuffer.OnFull fires before construction completes."""
    return P.plain_ubi(
        sim,
        PREFIX,
        ref_name="onfull_handler",
        init_site="appinsights.TelemetryBuffer.ctor:31",
        use_site="appinsights.TelemetryBuffer.OnFull:57",
        init_at_ms=1.0,
        first_use_at_ms=3.0,
        use_count=4,
        use_spacing_ms=1.0,
    )


# ----------------------------------------------------------------------
# Benign multi-threaded tests
# ----------------------------------------------------------------------


def test_track_event_burst(sim: Simulation) -> Generator:
    return P.synchronized_pipeline(sim, PREFIX + ".track", items=12, stage_cost_ms=0.3)


def test_telemetry_channel_flush(sim: Simulation) -> Generator:
    return P.locked_counter_workers(sim, PREFIX + ".channel", workers=3, increments=5)


def test_metrics_aggregation_cache(sim: Simulation) -> Generator:
    return P.unsafe_collection_traffic(sim, PREFIX + ".metrics", workers=2, ops_per_worker=5)


def test_module_initialization(sim: Simulation) -> Generator:
    preamble, threads = P.fork_ordered_preamble(sim, PREFIX + ".modules", count=5, worker_uses=2)

    def root() -> Generator:
        yield from preamble
        yield from sim.join_all(threads)

    return root()


def test_quick_pulse_stream(sim: Simulation) -> Generator:
    """QuickPulse: a sampler thread reading counters a writer updates,
    synchronized through an event the tools cannot see."""
    counters = sim.ref("qp_counters")
    published = sim.event("qp.published")

    def sampler() -> Generator:
        yield from published.wait()
        for i in range(6):
            yield from sim.read(counters, "request_rate", loc="appinsights.QuickPulse.sample:12")
            yield from sim.sleep(1.5)

    def root() -> Generator:
        obj = sim.new("appinsights.QuickPulseCounters", request_rate=0)
        yield from sim.assign(counters, obj, loc="appinsights.QuickPulse.ctor:4")
        thread = sim.fork(sampler(), name="qp-sampler")
        published.set()
        for i in range(6):
            yield from sim.write(counters, "request_rate", i, loc="appinsights.QuickPulse.update:9")
            yield from sim.sleep(1.5)
        yield from sim.join(thread)

    return root()


def test_sampling_processor_chain(sim: Simulation) -> Generator:
    return P.synchronized_pipeline(sim, PREFIX + ".sampling", items=8, stage_cost_ms=0.5)


def test_heartbeat_provider(sim: Simulation) -> Generator:
    """Heartbeat fields are registered by workers under a lock."""
    return P.locked_counter_workers(sim, PREFIX + ".heartbeat", workers=2, increments=4)


def test_dependency_collector(sim: Simulation) -> Generator:
    preamble, threads = P.fork_ordered_preamble(
        sim, PREFIX + ".depcollect", count=4, worker_uses=3, use_spacing_ms=1.5
    )

    def root() -> Generator:
        yield from preamble
        yield from sim.join_all(threads)

    return root()


def test_context_tag_cache(sim: Simulation) -> Generator:
    return P.unsafe_collection_traffic(
        sim, PREFIX + ".tags", workers=3, ops_per_worker=3, spacing_ms=2.5
    )


def test_telemetry_task_fanout(sim: Simulation) -> Generator:
    return P.task_fanout(sim, PREFIX + ".tasks", workers=2, tasks=8)


def test_flush_burst_large(sim: Simulation) -> Generator:
    return P.synchronized_pipeline(sim, PREFIX + ".flushburst", items=18, stage_cost_ms=0.25)


def test_sampling_ratio_sweep(sim: Simulation) -> Generator:
    return P.locked_counter_workers(sim, PREFIX + ".ratios", workers=4, increments=4)


def test_adaptive_sampling_feedback(sim: Simulation) -> Generator:
    """The sampler adjusts its rate from feedback a throttler publishes
    under a condition variable."""
    lock = sim.lock("appinsights.sampling.lock")
    changed = sim.condition(lock, "appinsights.sampling.changed")
    config = sim.ref("sampling_config")
    rounds = 5

    def throttler(sim_: Simulation) -> Generator:
        for i in range(rounds):
            yield from sim.sleep(1.4)
            yield from lock.acquire()
            yield from sim.write(config, "rate", 100 - 10 * i,
                                 loc="appinsights.Throttler.adjust:91")
            changed.notify_all()
            lock.release()

    def sampler(sim_: Simulation) -> Generator:
        seen = 0
        yield from lock.acquire()
        while seen < rounds:
            yield from changed.wait()
            yield from sim.read(config, "rate", loc="appinsights.Sampler.rate:44")
            seen += 1
        lock.release()

    def root() -> Generator:
        yield from sim.assign(config, sim.new("appinsights.SamplingConfig", rate=100),
                              loc="appinsights.Sampler.ctor:12")
        a = sim.fork(sampler(sim), name="ai-sampler")
        yield from sim.sleep(0.2)
        b = sim.fork(throttler(sim), name="ai-throttler")
        yield from sim.join(b)
        yield from sim.join(a)

    return root()


def test_live_metrics_post_batch(sim: Simulation) -> Generator:
    return P.synchronized_pipeline(sim, PREFIX + ".livemetrics", items=15, stage_cost_ms=0.3)


def test_operation_correlation_tasks(sim: Simulation) -> Generator:
    """W3C operation correlation: child tasks carry the parent's
    operation id through async-local context."""
    return P.task_fanout(sim, PREFIX + ".correlation", workers=3, tasks=9, task_cost_ms=0.5)


def build_app() -> Application:
    app = Application(
        name="appinsights",
        display_name="ApplicationInsights",
        paper_loc_kloc=151.2,
        paper_multithreaded_tests=156,
        paper_stars_k=0.5,
    )
    app.add_test("track_event_burst", test_track_event_burst)
    app.add_test("telemetry_channel_flush", test_telemetry_channel_flush)
    app.add_test("metrics_aggregation_cache", test_metrics_aggregation_cache)
    app.add_test("module_initialization", test_module_initialization)
    app.add_test("diagnostics_listener_lifecycle", test_diagnostics_listener_lifecycle)
    app.add_test("buffer_onfull_event", test_buffer_onfull_event)
    app.add_test("quick_pulse_stream", test_quick_pulse_stream)
    app.add_test("sampling_processor_chain", test_sampling_processor_chain)
    app.add_test("heartbeat_provider", test_heartbeat_provider)
    app.add_test("dependency_collector", test_dependency_collector)
    app.add_test("context_tag_cache", test_context_tag_cache)
    app.add_test("telemetry_task_fanout", test_telemetry_task_fanout)
    app.add_test("flush_burst_large", test_flush_burst_large)
    app.add_test("sampling_ratio_sweep", test_sampling_ratio_sweep)
    app.add_test("adaptive_sampling_feedback", test_adaptive_sampling_feedback)
    app.add_test("live_metrics_post_batch", test_live_metrics_post_batch)
    app.add_test("operation_correlation_tasks", test_operation_correlation_tasks)

    app.add_bug(
        KnownBug(
            bug_id="Bug-10",
            app="appinsights",
            issue_id="1106",
            kind="both",
            previously_known=True,
            description=(
                "DiagnosticsListener constructor races OnEventWritten; the "
                "interfering use-after-free candidate on the same listener "
                "cancels WaffleBasic's delays (Figure 4a)."
            ),
            fault_sites=frozenset(
                {
                    "appinsights.DiagnosticsEventListener.OnEventWritten:8",
                }
            ),
            test_name="diagnostics_listener_lifecycle",
            paper_runs_basic=None,
            paper_runs_waffle=2,
            paper_slowdown_waffle=4.9,
        )
    )
    app.add_bug(
        KnownBug(
            bug_id="Bug-14",
            app="appinsights",
            issue_id="2261",
            kind="use_before_init",
            previously_known=False,
            description=(
                "TelemetryBuffer publishes its OnFull handler before the "
                "last constructor field is initialized; the buffer-full "
                "event dereferences the missing field."
            ),
            fault_sites=frozenset({"appinsights.TelemetryBuffer.OnFull:57"}),
            test_name="buffer_onfull_event",
            paper_runs_basic=2,
            paper_runs_waffle=2,
            paper_slowdown_basic=1.5,
            paper_slowdown_waffle=1.3,
        )
    )
    return app
