"""MQTT.Net model: an MQTT broker and client library.

A protocol-communication application with very dense heap-object
traffic: per-packet session objects, subscription tables and keep-alive
monitors. Under WaffleBasic's fixed 100 ms delays, most of its tests
accumulate enough injected delay to exceed their harness timeout --
the "TimeOut" rows of Tables 5 and 6.

Planted bugs (Table 4):

* **Bug-16** (issue #1187, previously unknown) -- the client publishes
  its packet dispatcher before initializing the acknowledgement table;
  the broker's first PUBACK dereferences it. Interfering candidates on
  the inbound path blind WaffleBasic (Figure 4a structure).
* **Bug-17** (issue #1188, previously unknown) -- a disconnecting
  session's pending-message store is disposed while a retained-message
  worker holds a read 100+ ms upstream: only variable-length delays
  bridge the gap.
"""

from __future__ import annotations

from typing import Generator

from ..sim.api import Simulation
from . import patterns as P
from .base import Application, KnownBug

PREFIX = "mqttnet"


def test_client_connect_ack_race(sim: Simulation) -> Generator:
    """Bug-16: ack table initialized after the dispatcher goes live.

    The inbound dispatcher pump interleaves subscription-cache lookups
    with dispatches on the shared ack table (the
    ``interfering_bugs_with_partner`` structure), under background
    connection churn.
    """

    def composed() -> Generator:
        background = sim.fork(
            P.dense_connection_churn(
                sim, PREFIX + ".inbound", workers=2, conns_per_worker=10, uses_per_conn=3
            ),
            name="mqttnet-inbound",
        )
        yield from P.interfering_bugs_with_partner(
            sim,
            PREFIX,
            ref_name="ack_table",
            init_site="mqttnet.MqttClient.ConnectAsync:204",
            use_site="mqttnet.MqttPacketDispatcher.Dispatch:77",
            dispose_site="mqttnet.MqttClient.Disconnect:233",
            init_at_ms=0.5,
            use_offset_ms=1.2,
            cycle_rest_ms=0.8,
            cycles=60,
        )
        yield from sim.join(background)

    return composed()


def test_session_takeover_teardown(sim: Simulation) -> Generator:
    """Bug-17: pending-message store disposed under a slow reader."""

    def composed() -> Generator:
        background = sim.fork(
            P.dense_connection_churn(
                sim, PREFIX + ".takeover", workers=2, conns_per_worker=8, uses_per_conn=3
            ),
            name="mqttnet-background",
        )
        yield from P.long_gap_uaf(
            sim,
            PREFIX,
            ref_name="pending_store",
            init_site="mqttnet.MqttSession.ctor:58",
            use_site="mqttnet.RetainedMessages.Read:119",
            dispose_site="mqttnet.MqttSession.Dispose:164",
            vulnerable_gap_ms=108.0,
            observed_gap_ms=97.0,
            vulnerable_use_at_ms=3.0,
        )
        yield from sim.join(background)

    return composed()


# -- Benign traffic (dense) ----------------------------------------------


def test_publish_qos1_storm(sim: Simulation) -> Generator:
    return P.dense_connection_churn(
        sim,
        PREFIX + ".qos1",
        workers=3,
        conns_per_worker=40,
        uses_per_conn=5,
        use_spacing_ms=0.3,
    )


def test_subscription_table(sim: Simulation) -> Generator:
    """Subscription lookups over the unsafe table while sessions churn."""

    def composed() -> Generator:
        churn = sim.fork(
            P.dense_connection_churn(
                sim, PREFIX + ".subs", workers=2, conns_per_worker=15,
                uses_per_conn=4, use_spacing_ms=0.3,
            ),
            name="mqttnet-subs-churn",
        )
        yield from P.unsafe_collection_traffic(
            sim, PREFIX + ".subs", workers=3, ops_per_worker=6, spacing_ms=1.0
        )
        yield from sim.join(churn)

    return composed()


def test_broker_fanout_pipeline(sim: Simulation) -> Generator:
    return P.synchronized_pipeline(sim, PREFIX + ".fanout", items=30, stage_cost_ms=0.15)


def test_keepalive_monitor(sim: Simulation) -> Generator:
    """Keep-alive bookkeeping while monitored sessions come and go."""

    def composed() -> Generator:
        churn = sim.fork(
            P.dense_connection_churn(
                sim, PREFIX + ".keepalive", workers=2, conns_per_worker=12,
                uses_per_conn=4, use_spacing_ms=0.3,
            ),
            name="mqttnet-keepalive-churn",
        )
        yield from P.locked_counter_workers(
            sim, PREFIX + ".keepalive", workers=4, increments=6
        )
        yield from sim.join(churn)

    return composed()


def test_retained_message_store(sim: Simulation) -> Generator:
    return P.dense_connection_churn(
        sim,
        PREFIX + ".retained",
        workers=2,
        conns_per_worker=35,
        uses_per_conn=5,
        use_spacing_ms=0.3,
    )


def test_packet_serializer_pool(sim: Simulation) -> Generator:
    preamble, threads = P.fork_ordered_preamble(
        sim, PREFIX + ".serializers", count=18, worker_uses=4, use_spacing_ms=0.5
    )

    def root() -> Generator:
        yield from preamble
        yield from sim.join_all(threads)

    return root()


def test_websocket_channel_adapter(sim: Simulation) -> Generator:
    return P.synchronized_pipeline(sim, PREFIX + ".ws", items=45, stage_cost_ms=0.25)


def test_inflight_task_dispatch(sim: Simulation) -> Generator:
    return P.task_fanout(sim, PREFIX + ".inflight", workers=3, tasks=14, task_cost_ms=0.4)


def test_qos2_handshake_storm(sim: Simulation) -> Generator:
    return (lambda: P.dense_connection_churn(
        sim, PREFIX + ".qos2", workers=3, conns_per_worker=35, uses_per_conn=5,
        use_spacing_ms=0.3,
    ))()


def test_topic_filter_matching(sim: Simulation) -> Generator:
    """Topic-filter evaluation over the unsafe subscription table while
    matching workers run against a stable snapshot."""

    def composed() -> Generator:
        churn = sim.fork(
            P.dense_connection_churn(
                sim, PREFIX + ".topicchurn", workers=2, conns_per_worker=12,
                uses_per_conn=4, use_spacing_ms=0.3,
            ),
            name="mqttnet-topic-churn",
        )
        yield from P.unsafe_collection_traffic(
            sim, PREFIX + ".topics", workers=2, ops_per_worker=5, spacing_ms=1.2
        )
        yield from sim.join(churn)

    return composed()


def test_will_message_delivery(sim: Simulation) -> Generator:
    """Last-will messages delivered through a channel when sessions
    drop; the will payload is created at connect time."""
    wills = sim.channel("mqttnet.wills")

    def session(sim_: Simulation, session_id: int) -> Generator:
        will = sim.ref("will_%d" % session_id,
                       sim.new("mqttnet.WillMessage", topic="state/%d" % session_id))
        yield from sim.use(will, member="Validate", loc="mqttnet.Connect.will:%d" % (session_id % 4))
        yield from sim.compute(1.0 + 0.3 * session_id)
        wills.put(will)  # connection dropped: enqueue the will

    def broker(sim_: Simulation) -> Generator:
        while True:
            will = yield from wills.get()
            if will is None:
                return
            yield from sim.use(will, member="Publish", loc="mqttnet.Broker.publishWill:88")

    def root() -> Generator:
        b = sim.fork(broker(sim), name="mqttnet-will-broker")
        sessions = [sim.fork(session(sim, i), name="mqttnet-session-%d" % i) for i in range(6)]
        yield from sim.join_all(sessions)
        wills.close()
        yield from sim.join(b)

    return root()


def test_packet_id_rollover(sim: Simulation) -> Generator:
    return P.locked_counter_workers(sim, PREFIX + ".packetids", workers=4, increments=8)


def build_app() -> Application:
    app = Application(
        name="mqttnet",
        display_name="MQTT.Net",
        paper_loc_kloc=27.1,
        paper_multithreaded_tests=126,
        paper_stars_k=2.2,
    )
    app.add_test("client_connect_ack_race", test_client_connect_ack_race)
    app.add_test("session_takeover_teardown", test_session_takeover_teardown)
    app.add_test("publish_qos1_storm", test_publish_qos1_storm)
    app.add_test("subscription_table", test_subscription_table)
    app.add_test("broker_fanout_pipeline", test_broker_fanout_pipeline)
    app.add_test("keepalive_monitor", test_keepalive_monitor)
    app.add_test("retained_message_store", test_retained_message_store)
    app.add_test("packet_serializer_pool", test_packet_serializer_pool)
    app.add_test("websocket_channel_adapter", test_websocket_channel_adapter)
    app.add_test("inflight_task_dispatch", test_inflight_task_dispatch)
    app.add_test("qos2_handshake_storm", test_qos2_handshake_storm)
    app.add_test("topic_filter_matching", test_topic_filter_matching)
    app.add_test("will_message_delivery", test_will_message_delivery)
    app.add_test("packet_id_rollover", test_packet_id_rollover)

    app.add_bug(
        KnownBug(
            bug_id="Bug-16",
            app="mqttnet",
            issue_id="1187",
            kind="use_before_init",
            previously_known=False,
            description=(
                "The client publishes its packet dispatcher before the "
                "acknowledgement table is initialized; the first PUBACK "
                "dereferences it. Interfering inbound candidates blind "
                "WaffleBasic."
            ),
            fault_sites=frozenset({"mqttnet.MqttPacketDispatcher.Dispatch:77"}),
            test_name="client_connect_ack_race",
            paper_runs_basic=None,
            paper_runs_waffle=4,
            paper_slowdown_waffle=5.4,
        )
    )
    app.add_bug(
        KnownBug(
            bug_id="Bug-17",
            app="mqttnet",
            issue_id="1188",
            kind="use_after_free",
            previously_known=False,
            description=(
                "A disconnecting session's pending-message store is "
                "disposed while a retained-message worker holds a read "
                "100+ ms upstream; only variable-length delays expose it."
            ),
            fault_sites=frozenset({"mqttnet.RetainedMessages.Read:119"}),
            test_name="session_takeover_teardown",
            paper_runs_basic=None,
            paper_runs_waffle=3,
            paper_slowdown_waffle=6.2,
        )
    )
    return app
