"""NSwag model: an OpenAPI toolchain generating documents and clients.

Models NSwag's document generator: schema resolvers shared across
generator workers, a document registry, and the disposal of generator
state when a CLI invocation finishes.

Planted bug (Table 4):

* **Bug-5** (issue #3015, known) -- the CLI tears down the shared
  ``JsonSchemaResolver`` while a generator worker is still appending
  one last operation schema.
"""

from __future__ import annotations

from typing import Generator

from ..sim.api import Simulation
from . import patterns as P
from .base import Application, KnownBug

PREFIX = "nswag"


def test_generator_teardown_race(sim: Simulation) -> Generator:
    """Bug-5: schema resolver disposed under a straggling worker."""
    return P.plain_uaf(
        sim,
        PREFIX,
        ref_name="schema_resolver",
        use_site="nswag.OperationProcessor.Append:142",
        dispose_site="nswag.DocumentGenerator.Dispose:88",
        init_site="nswag.DocumentGenerator.ctor:23",
        use_at_ms=5.0,
        dispose_at_ms=11.0,
        extra_uses=1,
        extra_use_spacing_ms=1.5,
    )


# -- Benign traffic -----------------------------------------------------


def test_parallel_document_generation(sim: Simulation) -> Generator:
    return P.synchronized_pipeline(sim, PREFIX + ".docs", items=10, stage_cost_ms=0.5)


def test_schema_reference_cache(sim: Simulation) -> Generator:
    return P.unsafe_collection_traffic(sim, PREFIX + ".schemacache", workers=2, ops_per_worker=5)


def test_client_template_rendering(sim: Simulation) -> Generator:
    return P.synchronized_pipeline(sim, PREFIX + ".templates", items=8, stage_cost_ms=0.7)


def test_settings_snapshot(sim: Simulation) -> Generator:
    return P.locked_counter_workers(sim, PREFIX + ".settings", workers=2, increments=5)


def test_controller_discovery(sim: Simulation) -> Generator:
    preamble, threads = P.fork_ordered_preamble(sim, PREFIX + ".discovery", count=5, worker_uses=2)

    def root() -> Generator:
        yield from preamble
        yield from sim.join_all(threads)

    return root()


def test_swagger_route_probe(sim: Simulation) -> Generator:
    return P.synchronized_pipeline(sim, PREFIX + ".routes", items=6, stage_cost_ms=0.4)


def test_operation_task_fanout(sim: Simulation) -> Generator:
    return P.task_fanout(sim, PREFIX + ".ops", workers=2, tasks=8)


def test_typescript_client_emit(sim: Simulation) -> Generator:
    return P.synchronized_pipeline(sim, PREFIX + ".tsclient", items=12, stage_cost_ms=0.5)


def test_document_cache_semaphore(sim: Simulation) -> Generator:
    """Concurrent document requests deduplicated behind a semaphore."""
    gate = sim.semaphore(initial=2, name="nswag.docgate")
    document = sim.ref("openapi_document")

    def requester(sim_: Simulation, requester_id: int) -> Generator:
        yield from sim.sleep(0.3 * requester_id)
        yield from gate.acquire()
        try:
            yield from sim.read(document, "version",
                                loc="nswag.DocCache.get:%d" % (requester_id % 3))
            yield from sim.compute(0.6)
        finally:
            gate.release()

    def root() -> Generator:
        yield from sim.assign(document, sim.new("nswag.Document", version="v1"),
                              loc="nswag.DocCache.ctor:8")
        threads = [sim.fork(requester(sim, r), name="nswag-req-%d" % r) for r in range(5)]
        yield from sim.join_all(threads)

    return root()


def build_app() -> Application:
    app = Application(
        name="nswag",
        display_name="NSwag",
        paper_loc_kloc=101.5,
        paper_multithreaded_tests=18,
        paper_stars_k=4.9,
    )
    app.add_test("generator_teardown_race", test_generator_teardown_race)
    app.add_test("parallel_document_generation", test_parallel_document_generation)
    app.add_test("schema_reference_cache", test_schema_reference_cache)
    app.add_test("client_template_rendering", test_client_template_rendering)
    app.add_test("settings_snapshot", test_settings_snapshot)
    app.add_test("controller_discovery", test_controller_discovery)
    app.add_test("swagger_route_probe", test_swagger_route_probe)
    app.add_test("operation_task_fanout", test_operation_task_fanout)
    app.add_test("typescript_client_emit", test_typescript_client_emit)
    app.add_test("document_cache_semaphore", test_document_cache_semaphore)

    app.add_bug(
        KnownBug(
            bug_id="Bug-5",
            app="nswag",
            issue_id="3015",
            kind="use_after_free",
            previously_known=True,
            description=(
                "The CLI disposes the shared JsonSchemaResolver while a "
                "generator worker appends a final operation schema."
            ),
            fault_sites=frozenset(
                {"nswag.OperationProcessor.Append:142", "nswag.early:0"}
            ),
            test_name="generator_teardown_race",
            paper_runs_basic=2,
            paper_runs_waffle=2,
            paper_slowdown_basic=2.1,
            paper_slowdown_waffle=1.8,
        )
    )
    return app
