"""NetMQ model: a message-queue library with socket pollers.

Models NetMQ's runtime: sockets owned by a poller thread, message
queues drained by worker threads, and the abrupt-teardown paths that
produced the real issues.

Planted bugs (Table 4):

* **Bug-11** (issue #814, known) -- the Figure 4b case study: abrupt
  connection termination disposes ``m_poller`` while a worker still
  checks it; the cleanup thread exercises the *same* ``ChkDisposed``
  site right before the dispose, so WaffleBasic's delays at both
  dynamic instances shift both threads equally.
* **Bug-15** (issue #975, previously unknown) -- the message queue of a
  terminated connection is disposed while a slow worker still holds a
  dequeue in flight, 108 ms upstream: only a variable-length delay can
  bridge the gap.
"""

from __future__ import annotations

from typing import Generator

from ..sim.api import Simulation
from . import patterns as P
from .base import Application, KnownBug

PREFIX = "netmq"


def test_runtime_abrupt_termination(sim: Simulation) -> Generator:
    """Bug-11: NetMQRuntime.Cleanup vs TryExecuteTaskInline (Fig. 4b)."""
    return P.interfering_instances(
        sim,
        PREFIX,
        ref_name="m_poller",
        init_site="netmq.NetMQRuntime.ctor:2",
        check_site="netmq.NetMQRuntime.ChkDisposed:11",
        dispose_site="netmq.NetMQRuntime.Cleanup:8",
        worker_check_at_ms=7.0,
        cleanup_at_ms=10.0,
    )


def test_queue_disposed_during_processing(sim: Simulation) -> Generator:
    """Bug-15: message queue torn down while a dequeue is in flight."""
    return P.long_gap_uaf(
        sim,
        PREFIX,
        ref_name="msg_queue",
        init_site="netmq.NetMQQueue.ctor:3",
        use_site="netmq.NetMQQueue.TryDequeue:41",
        dispose_site="netmq.NetMQQueue.Dispose:77",
        vulnerable_gap_ms=108.0,
        observed_gap_ms=97.0,
        vulnerable_use_at_ms=3.0,
    )


# -- Benign traffic -----------------------------------------------------


def test_pub_sub_fanout(sim: Simulation) -> Generator:
    return P.synchronized_pipeline(sim, PREFIX + ".pubsub", items=15, stage_cost_ms=0.2)


def test_router_dealer_exchange(sim: Simulation) -> Generator:
    return P.synchronized_pipeline(sim, PREFIX + ".routerdealer", items=10, stage_cost_ms=0.4)


def test_poller_socket_registry(sim: Simulation) -> Generator:
    return P.unsafe_collection_traffic(sim, PREFIX + ".registry", workers=3, ops_per_worker=4)


def test_socket_option_updates(sim: Simulation) -> Generator:
    return P.locked_counter_workers(sim, PREFIX + ".options", workers=3, increments=4)


def test_proactor_startup(sim: Simulation) -> Generator:
    preamble, threads = P.fork_ordered_preamble(sim, PREFIX + ".proactor", count=6, worker_uses=2)

    def root() -> Generator:
        yield from preamble
        yield from sim.join_all(threads)

    return root()


def test_mailbox_churn(sim: Simulation) -> Generator:
    return P.dense_connection_churn(
        sim, PREFIX + ".mailbox", workers=2, conns_per_worker=8, uses_per_conn=2
    )


def test_monitor_events(sim: Simulation) -> Generator:
    """Socket monitor: an event thread reads states the poller writes,
    paced so the windows never overlap without injection."""
    state = sim.ref("monitor_state")
    attached = sim.event("netmq.monitor-attached")

    def monitor() -> Generator:
        yield from attached.wait()
        for i in range(5):
            yield from sim.read(state, "last_event", loc="netmq.Monitor.poll:23")
            yield from sim.sleep(2.0)

    def root() -> Generator:
        obj = sim.new("netmq.MonitorState", last_event="none")
        yield from sim.assign(state, obj, loc="netmq.Monitor.attach:7")
        thread = sim.fork(monitor(), name="netmq-monitor")
        attached.set()
        for i in range(5):
            yield from sim.write(state, "last_event", "evt-%d" % i, loc="netmq.Socket.emit:19")
            yield from sim.sleep(2.0)
        yield from sim.join(thread)

    return root()


def test_beacon_broadcast(sim: Simulation) -> Generator:
    return P.synchronized_pipeline(sim, PREFIX + ".beacon", items=6, stage_cost_ms=0.8)


def test_task_based_sockets(sim: Simulation) -> Generator:
    return P.task_fanout(sim, PREFIX + ".socktasks", workers=2, tasks=8)


def test_xpub_xsub_bridge(sim: Simulation) -> Generator:
    return P.synchronized_pipeline(sim, PREFIX + ".bridge", items=14, stage_cost_ms=0.3)


def test_poller_add_remove_cycle(sim: Simulation) -> Generator:
    """Sockets registered and unregistered from a poller under a lock
    while the poll loop reads the registry snapshot."""
    lock = sim.lock("netmq.poller.lock")
    registry = sim.ref("poller_registry")
    stop = sim.event("netmq.poller.stop")

    def registrar(sim_: Simulation) -> Generator:
        for i in range(5):
            yield from lock.acquire()
            yield from sim.write(registry, "count", i + 1, loc="netmq.Poller.add:52")
            lock.release()
            yield from sim.sleep(1.5)
        stop.set()

    def poll_loop(sim_: Simulation) -> Generator:
        while not stop.is_set:
            yield from lock.acquire()
            yield from sim.read(registry, "count", loc="netmq.Poller.snapshot:67")
            lock.release()
            yield from sim.sleep(1.0)

    def root() -> Generator:
        yield from sim.assign(registry, sim.new("netmq.Registry", count=0),
                              loc="netmq.Poller.ctor:18")
        a = sim.fork(registrar(sim), name="netmq-registrar")
        b = sim.fork(poll_loop(sim), name="netmq-poll-loop")
        yield from sim.join(a)
        yield from sim.join(b)

    return root()


def test_req_rep_lockstep(sim: Simulation) -> Generator:
    """REQ/REP strict alternation through a pair of channels."""
    requests = sim.channel("netmq.req")
    replies = sim.channel("netmq.rep")

    def requester(sim_: Simulation) -> Generator:
        for i in range(8):
            payload = sim.ref("req_%d" % i, sim.new("netmq.Msg", seq=i))
            yield from sim.use(payload, member="Frame", loc="netmq.Req.send:31")
            requests.put(payload)
            reply = yield from replies.get()
            yield from sim.use(reply, member="Unframe", loc="netmq.Req.recv:39")
        requests.close()

    def replier(sim_: Simulation) -> Generator:
        while True:
            msg = yield from requests.get()
            if msg is None:
                return
            yield from sim.use(msg, member="Unframe", loc="netmq.Rep.recv:55")
            yield from sim.compute(0.3)
            out = sim.ref("rep", sim.new("netmq.Msg"))
            yield from sim.use(out, member="Frame", loc="netmq.Rep.send:61")
            replies.put(out)

    def root() -> Generator:
        a = sim.fork(requester(sim), name="netmq-req")
        b = sim.fork(replier(sim), name="netmq-rep")
        yield from sim.join(a)
        yield from sim.join(b)

    return root()


def test_inproc_pair_burst(sim: Simulation) -> Generator:
    return P.synchronized_pipeline(sim, PREFIX + ".inproc", items=20, stage_cost_ms=0.2)


def test_curve_handshake_pool(sim: Simulation) -> Generator:
    return P.task_fanout(sim, PREFIX + ".curve", workers=3, tasks=9, task_cost_ms=0.8)


def test_proactor_start_barrier(sim: Simulation) -> Generator:
    """IO-thread proactors rendezvous at a barrier before serving, then
    each touches its own completion port."""
    barrier = sim.barrier(3, "netmq.proactor.barrier")

    def io_thread(sim_: Simulation, index: int) -> Generator:
        port = sim.ref("port_%d" % index, sim.new("netmq.CompletionPort", index=index))
        yield from sim.sleep(0.5 * (index + 1))  # staggered startup
        yield from sim.use(port, member="Bind", loc="netmq.Proactor.bind:%d" % index)
        yield from barrier.wait()
        for _ in range(3):
            yield from sim.use(port, member="Poll", loc="netmq.Proactor.poll:%d" % index)
            yield from sim.sleep(0.8)

    def root() -> Generator:
        threads = [sim.fork(io_thread(sim, i), name="netmq-io-%d" % i) for i in range(3)]
        yield from sim.join_all(threads)

    return root()


def build_app() -> Application:
    app = Application(
        name="netmq",
        display_name="NetMQ",
        paper_loc_kloc=20.7,
        paper_multithreaded_tests=101,
        paper_stars_k=2.3,
    )
    app.add_test("runtime_abrupt_termination", test_runtime_abrupt_termination)
    app.add_test("queue_disposed_during_processing", test_queue_disposed_during_processing)
    app.add_test("pub_sub_fanout", test_pub_sub_fanout)
    app.add_test("router_dealer_exchange", test_router_dealer_exchange)
    app.add_test("poller_socket_registry", test_poller_socket_registry)
    app.add_test("socket_option_updates", test_socket_option_updates)
    app.add_test("proactor_startup", test_proactor_startup)
    app.add_test("mailbox_churn", test_mailbox_churn)
    app.add_test("monitor_events", test_monitor_events)
    app.add_test("beacon_broadcast", test_beacon_broadcast)
    app.add_test("task_based_sockets", test_task_based_sockets)
    app.add_test("xpub_xsub_bridge", test_xpub_xsub_bridge)
    app.add_test("poller_add_remove_cycle", test_poller_add_remove_cycle)
    app.add_test("req_rep_lockstep", test_req_rep_lockstep)
    app.add_test("inproc_pair_burst", test_inproc_pair_burst)
    app.add_test("curve_handshake_pool", test_curve_handshake_pool)
    app.add_test("proactor_start_barrier", test_proactor_start_barrier)

    app.add_bug(
        KnownBug(
            bug_id="Bug-11",
            app="netmq",
            issue_id="814",
            kind="use_after_free",
            previously_known=True,
            description=(
                "Abrupt termination disposes m_poller while a worker checks "
                "it; the cleanup thread executes the same ChkDisposed site "
                "right before Dispose (Figure 4b interfering instances)."
            ),
            fault_sites=frozenset({"netmq.NetMQRuntime.ChkDisposed:11"}),
            test_name="runtime_abrupt_termination",
            paper_runs_basic=5,
            paper_runs_waffle=2,
            paper_slowdown_basic=5.1,
            paper_slowdown_waffle=2.2,
        )
    )
    app.add_bug(
        KnownBug(
            bug_id="Bug-15",
            app="netmq",
            issue_id="975",
            kind="use_after_free",
            previously_known=False,
            description=(
                "Message queue disposed while messages are still being "
                "processed; the use-dispose gap exceeds the fixed delay "
                "length, so only variable-length delays expose it."
            ),
            fault_sites=frozenset({"netmq.NetMQQueue.TryDequeue:41"}),
            test_name="queue_disposed_during_processing",
            paper_runs_basic=None,
            paper_runs_waffle=3,
            paper_slowdown_waffle=12.2,
        )
    )
    return app
