"""FluentAssertions model: an assertion library with ambient scopes.

Models FluentAssertions' ``AssertionScope`` machinery: scopes are
ambient (thread-local with parent propagation), assertion strategies
are swapped per scope, and failure collectors aggregate across threads.

Planted bugs (Table 4):

* **Bug-6** (issue #664, known) -- every parallel assertion batch
  creates a fresh scope whose strategy field is published before being
  initialized; a checker thread consults the strategy immediately. The
  per-batch repetition lets an online tool expose it in one run.
* **Bug-7** (issue #862, known) -- the shared failure collector is
  constructed in two phases; a worker flushing early dereferences the
  not-yet-initialized formatter.
"""

from __future__ import annotations

from typing import Generator

from ..sim.api import Simulation
from . import patterns as P
from .base import Application, KnownBug

PREFIX = "fluentassertions"


def test_parallel_assertion_scopes(sim: Simulation) -> Generator:
    """Bug-6: scope strategy published before initialization, per batch."""
    return P.multi_instance_ubi(
        sim,
        PREFIX,
        ref_name="strategy",
        init_site="fluentassertions.AssertionScope.ctor:44",
        use_site="fluentassertions.AssertionScope.Check:61",
        iterations=7,
        gap_ms=1.0,
        iteration_spacing_ms=5.0,
    )


def test_failure_collector_flush(sim: Simulation) -> Generator:
    """Bug-7: two-phase collector construction races an early flush."""
    return P.plain_ubi(
        sim,
        PREFIX + ".collector",
        ref_name="formatter",
        init_site="fluentassertions.FailureCollector.ctor:18",
        use_site="fluentassertions.FailureCollector.Flush:73",
        init_at_ms=1.5,
        first_use_at_ms=4.0,
        use_count=3,
        use_spacing_ms=1.5,
    )


# -- Benign traffic -----------------------------------------------------


def test_equivalency_tree_walk(sim: Simulation) -> Generator:
    return P.synchronized_pipeline(sim, PREFIX + ".equivalency", items=9, stage_cost_ms=0.4)


def test_formatter_registry(sim: Simulation) -> Generator:
    return P.unsafe_collection_traffic(sim, PREFIX + ".formatters", workers=2, ops_per_worker=4)


def test_scope_context_data(sim: Simulation) -> Generator:
    return P.locked_counter_workers(sim, PREFIX + ".context", workers=3, increments=4)


def test_subject_identification(sim: Simulation) -> Generator:
    preamble, threads = P.fork_ordered_preamble(
        sim, PREFIX + ".subjects", count=4, worker_uses=2, use_spacing_ms=1.2
    )

    def root() -> Generator:
        yield from preamble
        yield from sim.join_all(threads)

    return root()


def test_async_assertion_batches(sim: Simulation) -> Generator:
    return P.synchronized_pipeline(sim, PREFIX + ".asyncbatch", items=7, stage_cost_ms=0.6)


def test_async_scope_tasks(sim: Simulation) -> Generator:
    return P.task_fanout(sim, PREFIX + ".tasks", workers=2, tasks=6)


def test_collection_equivalency_deep(sim: Simulation) -> Generator:
    return P.synchronized_pipeline(sim, PREFIX + ".deepeq", items=14, stage_cost_ms=0.3)


def test_caller_identification_lock(sim: Simulation) -> Generator:
    """Caller-name extraction caches stack info under a lock."""
    return P.locked_counter_workers(sim, PREFIX + ".callers", workers=3, increments=6)


def test_execution_time_assertions(sim: Simulation) -> Generator:
    """ExecuteTime assertions time worker actions against budgets
    announced through events."""
    started = sim.event("fluentassertions.exec.started")
    measurement = sim.ref("exec_measurement")

    def measured_action(sim_: Simulation) -> Generator:
        yield from started.wait()
        yield from sim.compute(2.0)
        yield from sim.write(measurement, "elapsed", 2.0,
                             loc="fluentassertions.ExecTime.record:37")

    def root() -> Generator:
        yield from sim.assign(measurement, sim.new("fluentassertions.Measurement", elapsed=0.0),
                              loc="fluentassertions.ExecTime.ctor:15")
        worker = sim.fork(measured_action(sim), name="fa-measured")
        started.set()
        yield from sim.join(worker)
        yield from sim.read(measurement, "elapsed", loc="fluentassertions.ExecTime.assert:52")

    return root()


def build_app() -> Application:
    app = Application(
        name="fluentassertions",
        display_name="FluentAssertions",
        paper_loc_kloc=47.7,
        paper_multithreaded_tests=41,
        paper_stars_k=2.5,
    )
    app.add_test("parallel_assertion_scopes", test_parallel_assertion_scopes)
    app.add_test("failure_collector_flush", test_failure_collector_flush)
    app.add_test("equivalency_tree_walk", test_equivalency_tree_walk)
    app.add_test("formatter_registry", test_formatter_registry)
    app.add_test("scope_context_data", test_scope_context_data)
    app.add_test("subject_identification", test_subject_identification)
    app.add_test("async_assertion_batches", test_async_assertion_batches)
    app.add_test("async_scope_tasks", test_async_scope_tasks)
    app.add_test("collection_equivalency_deep", test_collection_equivalency_deep)
    app.add_test("caller_identification_lock", test_caller_identification_lock)
    app.add_test("execution_time_assertions", test_execution_time_assertions)

    app.add_bug(
        KnownBug(
            bug_id="Bug-6",
            app="fluentassertions",
            issue_id="664",
            kind="use_before_init",
            previously_known=True,
            description=(
                "AssertionScope publishes its strategy field before "
                "initializing it; a parallel checker dereferences null. "
                "Repeats per assertion batch."
            ),
            fault_sites=frozenset({"fluentassertions.AssertionScope.Check:61"}),
            test_name="parallel_assertion_scopes",
            paper_runs_basic=1,
            paper_runs_waffle=2,
            paper_slowdown_basic=1.4,
            paper_slowdown_waffle=2.7,
        )
    )
    app.add_bug(
        KnownBug(
            bug_id="Bug-7",
            app="fluentassertions",
            issue_id="862",
            kind="use_before_init",
            previously_known=True,
            description=(
                "Two-phase FailureCollector construction races a worker's "
                "early flush, which dereferences the missing formatter."
            ),
            fault_sites=frozenset({"fluentassertions.FailureCollector.Flush:73"}),
            test_name="failure_collector_flush",
            paper_runs_basic=2,
            paper_runs_waffle=2,
            paper_slowdown_basic=1.2,
            paper_slowdown_waffle=2.5,
        )
    )
    return app
