"""The Waffle detector: preparation run -> analysis -> detection runs.

This is the orchestration of Figure 3. ``Waffle.detect`` executes the
workload once delay-free while recording a trace, analyzes the trace
into an :class:`InjectionPlan`, then repeatedly re-executes the workload
with the :class:`PlannedInjectionHook` until a MemOrder bug manifests or
the run budget is exhausted. Decay state and the (mutable) candidate
set persist across detection runs, mirroring the on-disk bootstrap
described in section 5.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Generator, List, Optional

from .. import obs
from ..sim.api import Simulation
from ..sim.errors import NullReferenceError
from ..sim.scheduler import RunResult
from .analyzer import InjectionPlan, analyze_trace
from .config import DEFAULT_CONFIG, WaffleConfig
from .delay_policy import DecayState, ProportionalDelayPolicy
from .reports import BugReport, build_report
from .runtime import OnlineInjectionHook, PlannedInjectionHook, _BaseInjectionHook
from .trace import RecordingHook, Trace


class Workload:
    """A named, re-runnable test input.

    ``build(sim)`` must return a fresh root generator for the given
    simulation; it is called once per run. Plain generator functions
    taking a single ``sim`` argument can be wrapped with
    :func:`as_workload`.
    """

    def __init__(self, name: str, build: Callable[[Simulation], Generator]):
        self.name = name
        self._build = build

    def build(self, sim: Simulation) -> Generator:
        return self._build(sim)

    def __repr__(self) -> str:
        return "Workload(%r)" % self.name


def as_workload(obj: Any) -> Workload:
    """Coerce a Workload, or a callable ``f(sim) -> generator``, to Workload."""
    if isinstance(obj, Workload):
        return obj
    if callable(obj):
        return Workload(getattr(obj, "__name__", "workload"), obj)
    if hasattr(obj, "name") and hasattr(obj, "build"):
        return Workload(obj.name, obj.build)
    raise TypeError("cannot interpret %r as a workload" % (obj,))


@dataclass
class RunRecord:
    """Measurements of one run within a detection session."""

    kind: str  # "prep" | "detect"
    index: int  # 1-based position in the session
    virtual_time_ms: float
    delays_injected: int = 0
    total_delay_ms: float = 0.0
    overlap_ratio: float = 0.0
    op_count: int = 0
    crashed: bool = False
    timed_out: bool = False
    bug_found: bool = False
    skipped_interference: int = 0
    skipped_decay: int = 0
    skipped_budget: int = 0


@dataclass
class DetectionOutcome:
    """Everything a detection session produced."""

    tool: str
    workload: str
    runs: List[RunRecord] = field(default_factory=list)
    reports: List[BugReport] = field(default_factory=list)
    plan: Optional[InjectionPlan] = None
    trace: Optional[Trace] = None
    #: One :class:`repro.obs.dossier.BugDossier` per report, assembled
    #: only while a flight recorder is installed (``obs.flightrec``).
    dossiers: List[Any] = field(default_factory=list)
    #: The session's coverage record (``repro.obs.coverage``): which
    #: candidate pairs were delayed vs. planned vs. pruned.
    coverage: Optional[dict] = None

    @property
    def bug_found(self) -> bool:
        return bool(self.reports)

    @property
    def runs_to_expose(self) -> Optional[int]:
        """Total runs executed up to and including the exposing run
        (Waffle's count includes the preparation run, matching Table 4
        where 'bug reliably exposed in the first detection run after a
        preparation run' is reported as 2)."""
        for record in self.runs:
            if record.bug_found:
                return record.index
        return None

    @property
    def total_time_ms(self) -> float:
        return sum(record.virtual_time_ms for record in self.runs)

    @property
    def total_delays(self) -> int:
        return sum(record.delays_injected for record in self.runs)

    @property
    def total_delay_ms(self) -> float:
        return sum(record.total_delay_ms for record in self.runs)

    @property
    def timed_out(self) -> bool:
        return any(record.timed_out for record in self.runs)

    def slowdown_vs(self, baseline_ms: float) -> float:
        """End-to-end detection slowdown vs one uninstrumented run."""
        if baseline_ms <= 0:
            return float("inf")
        return self.total_time_ms / baseline_ms


class ToolDriver:
    """Base class for detection tools (Waffle, WaffleBasic, Tsvd)."""

    name = "tool"

    def __init__(self, config: Optional[WaffleConfig] = None):
        self.config = config if config is not None else DEFAULT_CONFIG

    # -- Common helpers -------------------------------------------------

    def _simulate(
        self, workload: Workload, hook, seed: int, kind: Optional[str] = None
    ) -> RunResult:
        session = obs.session()
        started = time.perf_counter()
        sim = Simulation(
            seed=seed,
            hook=hook,
            time_limit_ms=self.config.run_time_limit_ms,
            stop_on_failure=True,
            name=workload.name,
        )
        result = sim.run(workload.build(sim), name="main")
        if session is not None:
            obs.collect_run_telemetry(
                session,
                kind if kind is not None else self._run_kind(hook),
                workload.name,
                seed,
                (time.perf_counter() - started) * 1000.0,
                result,
                hook=hook,
                scheduler=sim.scheduler,
            )
        return result

    @staticmethod
    def _run_kind(hook) -> str:
        """Classify a run by its hook when the caller gave no kind."""
        if isinstance(hook, RecordingHook):
            return "prep"
        if isinstance(hook, PlannedInjectionHook):
            return "detect"
        if isinstance(hook, OnlineInjectionHook):
            return "online"
        return "baseline"

    def _record(
        self,
        kind: str,
        index: int,
        result: RunResult,
        hook: Optional[_BaseInjectionHook] = None,
        bug_found: bool = False,
    ) -> RunRecord:
        return RunRecord(
            kind=kind,
            index=index,
            virtual_time_ms=result.virtual_time,
            delays_injected=hook.delays_injected if hook else 0,
            total_delay_ms=hook.total_delay_ms if hook else 0.0,
            overlap_ratio=hook.overlap_ratio() if hook else 0.0,
            op_count=result.op_count,
            crashed=result.crashed,
            timed_out=result.timed_out,
            bug_found=bug_found,
            skipped_interference=(
                hook.engine.skipped_interference if hook and hook.engine else 0
            ),
            skipped_decay=hook.engine.skipped_decay if hook and hook.engine else 0,
            skipped_budget=hook.engine.skipped_budget if hook and hook.engine else 0,
        )

    def _memorder_failure(self, result: RunResult) -> Optional[BaseException]:
        for _, error in result.failures:
            if isinstance(error, NullReferenceError):
                return error
        return None

    def _harvest(
        self,
        workload: Workload,
        hook: _BaseInjectionHook,
        result: RunResult,
        run_index: int,
    ) -> Optional[BugReport]:
        """Turn a crashed run into a bug report, if the crash is a
        delay-induced MemOrder manifestation."""
        error = self._memorder_failure(result)
        if error is None:
            return None
        if hook.delays_injected == 0:
            # Zero false positives: a crash the tool did not cause is
            # not claimed (and, in this reproduction, indicates a
            # mis-constructed benchmark -- surfaced by tests).
            return None
        context = hook.failure
        return build_report(
            tool=self.name,
            workload=workload.name,
            error=error,
            run_index=run_index,
            fault_time_ms=context.fault_time_ms if context else result.virtual_time,
            matched_pairs=hook.matched_pairs_for(error),
            active_delays=context.active_delays if context else [],
            delays_injected=hook.delays_injected,
            stacks=context.stacks if context else {},
        )

    def _assemble_dossier(
        self,
        workload: Workload,
        report: BugReport,
        hook: _BaseInjectionHook,
        sim_seed: int,
        recorder,
    ):
        """Build a replay-verified bug dossier (flight recorder on)."""
        from ..obs import dossier as dossier_mod

        built = dossier_mod.assemble_dossier(
            tool=self.name,
            workload=workload.name,
            report=report,
            hook=hook,
            config=self.config,
            sim_seed=sim_seed,
            recorder=recorder,
            build=workload.build,
        )
        session = obs.session()
        if session is not None:
            dossier_mod.write_dossier(built, session.directory)
        return built

    def _finish_coverage(
        self,
        outcome: DetectionOutcome,
        candidates,
        decay,
        site_injections: Dict[str, int],
    ) -> None:
        """Attach the session's coverage record; emit it to the obs dir."""
        from ..obs import coverage as coverage_mod

        record = coverage_mod.build_coverage(
            tool=self.name,
            test=outcome.workload,
            candidates=candidates,
            decay=decay,
            runs=outcome.runs,
            site_injections=site_injections,
            bug_found=outcome.bug_found or getattr(outcome, "tsv_found", False),
        )
        outcome.coverage = record
        session = obs.session()
        if session is not None:
            # Queued, not written: the session batches coverage I/O into
            # its next flush (per-cell atomic writes were measurable on
            # the enabled path).
            session.queue_coverage(record)

    @staticmethod
    def _count_site_injections(hook, site_injections: Dict[str, int]) -> None:
        """Fold one run's ledger history into per-site injection counts."""
        if hook.engine is None:
            return
        for interval in hook.engine.ledger.history:
            site_injections[interval.site] = site_injections.get(interval.site, 0) + 1

    def detect(self, workload: Any, max_detection_runs: Optional[int] = None) -> DetectionOutcome:
        raise NotImplementedError


class Waffle(ToolDriver):
    """The paper's tool: prepare once, analyze, then inject (Figure 3).

    With ``config.preparation_run`` disabled (the Table 7 ablation),
    Waffle degenerates to a single-phase online tool that keeps its
    other design points: variable-length delays learned online,
    parent-child pruning via live vector clocks, and online
    interference discovery.
    """

    name = "waffle"

    def detect(self, workload: Any, max_detection_runs: Optional[int] = None) -> DetectionOutcome:
        workload = as_workload(workload)
        config = self.config
        budget = max_detection_runs if max_detection_runs is not None else config.max_detection_runs
        outcome = DetectionOutcome(tool=self.name, workload=workload.name)
        decay = DecayState(config.decay_lambda)
        run_index = 0
        flight = obs.flightrec.recorder()
        site_injections: Dict[str, int] = {}

        plan: Optional[InjectionPlan] = None
        if config.preparation_run:
            run_index += 1
            if flight is not None:
                flight.begin_run(kind="prep", test=workload.name, seed=config.seed)
            recorder = RecordingHook(
                record_overhead_ms=config.record_overhead_ms,
                track_vector_clocks=config.parent_child_analysis,
                hb_engine=config.hb_engine,
            )
            result = self._simulate(workload, recorder, seed=config.seed)
            outcome.trace = recorder.trace
            plan = analyze_trace(recorder.trace, config)
            outcome.plan = plan
            record = RunRecord(
                kind="prep",
                index=run_index,
                virtual_time_ms=result.virtual_time,
                op_count=result.op_count,
                crashed=result.crashed,
                timed_out=result.timed_out,
            )
            outcome.runs.append(record)

        # State shared by the online (no-prep) configuration.
        online_candidates = None
        online_policy = None
        if plan is None:
            from .candidates import CandidateSet

            online_candidates = CandidateSet()
            online_policy = ProportionalDelayPolicy({}, config.alpha, config.min_delay_ms)

        for attempt in range(1, budget + 1):
            run_index += 1
            sim_seed = config.seed + attempt
            if flight is not None:
                flight.begin_run(kind="detect", test=workload.name, seed=sim_seed)
            if plan is not None:
                hook: _BaseInjectionHook = PlannedInjectionHook(
                    plan, config, decay, seed=config.seed * 7919 + attempt
                )
            else:
                hook = OnlineInjectionHook(
                    config,
                    decay,
                    candidates=online_candidates,
                    seed=config.seed * 7919 + attempt,
                    variable_delays=True,
                    hb_inference=False,
                    parent_child=config.parent_child_analysis,
                    online_interference=config.interference_control,
                    shared_policy=online_policy,
                )
            result = self._simulate(workload, hook, seed=sim_seed)
            report = self._harvest(workload, hook, result, run_index)
            self._count_site_injections(hook, site_injections)
            outcome.runs.append(
                self._record("detect", run_index, result, hook, bug_found=report is not None)
            )
            if report is not None:
                outcome.reports.append(report)
                if flight is not None:
                    outcome.dossiers.append(
                        self._assemble_dossier(workload, report, hook, sim_seed, flight)
                    )
                if config.stop_at_first_bug:
                    break
        self._finish_coverage(
            outcome,
            plan.candidates if plan is not None else online_candidates,
            decay,
            site_injections,
        )
        return outcome
