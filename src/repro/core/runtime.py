"""Delay-injection runtime hooks.

Two hooks implement the "Step 2: injecting delays at run time" half of
Figure 1:

* :class:`PlannedInjectionHook` -- Waffle's detection-run runtime,
  bootstrapped from the preparation run's :class:`InjectionPlan`
  (candidate set S, per-location delay lengths, interference set I).
* :class:`OnlineInjectionHook` -- the single-phase runtime shared by
  WaffleBasic, Tsvd and the no-preparation-run ablation: it identifies
  candidate locations with near-miss tracking *in the same run* it
  injects delays, optionally running happens-before inference,
  parent-child vector-clock pruning and online interference discovery.

Both share :class:`InjectionEngine`, the delay-or-not decision process:
probability decay -> random draw -> interference guard -> delay length.
"""

from __future__ import annotations

import random
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Set, Tuple

from .. import obs
from ..sim.instrument import AccessEvent, AccessType, InstrumentationHook, PendingAccess
from .analyzer import InjectionPlan
from .candidates import CandidatePair, CandidateSet
from .config import WaffleConfig
from .delay_policy import (
    DecayState,
    DelayLengthPolicy,
    FixedDelayPolicy,
    ProportionalDelayPolicy,
)
from .interference import ActiveDelayLedger, DelayInterval, InterferenceIndex
from .nearmiss import NearMissTracker, TsvNearMissTracker
from .tree_clock import make_clock
from .vector_clock import TLS_KEY, ThreadVectorClock, ordered  # noqa: F401


@dataclass
class FailureContext:
    """Crash context captured by ``on_failure`` for report assembly."""

    error: BaseException
    thread_name: str
    fault_time_ms: float
    active_delays: List[DelayInterval]
    stacks: Dict[str, List[str]] = field(default_factory=dict)


class InjectionEngine:
    """The delay-or-not decision process shared by all runtimes."""

    def __init__(
        self,
        config: WaffleConfig,
        candidates: CandidateSet,
        decay: DecayState,
        delay_policy: DelayLengthPolicy,
        interference: Optional[InterferenceIndex],
        rng: random.Random,
    ):
        self.config = config
        self.candidates = candidates
        self.decay = decay
        self.delay_policy = delay_policy
        self.interference = interference
        self.rng = rng
        self.ledger = ActiveDelayLedger()
        #: Decision accounting, always on (plain int adds): every skip
        #: is attributed to exactly one reason tag so runs are
        #: explainable from emitted data (docs/OBSERVABILITY.md).
        self.considered: int = 0
        #: Delays whose injection was skipped by the interference guard.
        self.skipped_interference: int = 0
        #: Skips where the probability-decay draw failed.
        self.skipped_decay: int = 0
        #: Skips where the location's injection budget was exhausted
        #: (decayed to probability 0 and retired) or its length was 0.
        self.skipped_budget: int = 0
        self._obs = obs.session()
        self.obs_run_seq = self._obs.next_run_seq() if self._obs is not None else 0
        self._fr = obs.flightrec.recorder()

    @property
    def skipped_total(self) -> int:
        return self.skipped_decay + self.skipped_interference + self.skipped_budget

    def decide(self, pending: PendingAccess) -> float:
        """Return the delay to inject before ``pending`` (0 for none)."""
        site = pending.location.site
        if not self.candidates.has_delay_location(pending.location):
            return 0.0
        ses = self._obs
        self.considered += 1
        probability = self.decay.register(site)
        if probability <= 0.0:
            # Retired location: drop its pairs from S (Tsvd rule).
            self.candidates.remove_with_delay_location(pending.location)
            self.skipped_budget += 1
            if ses is not None:
                ses.decision(
                    self.obs_run_seq, site, pending.timestamp,
                    reason="budget", detail="retired",
                )
            if self._fr is not None:
                self._fr.record(
                    "skip", pending.timestamp, site=site,
                    reason="budget", detail="retired",
                )
            return 0.0
        if self.rng.random() >= probability:
            self.skipped_decay += 1
            if ses is not None:
                ses.decision(
                    self.obs_run_seq, site, pending.timestamp,
                    reason="decay", detail="p=%.3f" % probability,
                )
            if self._fr is not None:
                self._fr.record(
                    "skip", pending.timestamp, site=site,
                    reason="decay", p=round(probability, 4),
                )
            return 0.0
        now = pending.timestamp
        if self.interference is not None and self.config.interference_control:
            active = self.ledger.active_sites(now)
            if active and self.interference.conflicts_with_any(site, active):
                self.skipped_interference += 1
                if ses is not None:
                    ses.decision(
                        self.obs_run_seq, site, now,
                        reason="interference",
                        detail=",".join(sorted(set(active))),
                    )
                if self._fr is not None:
                    self._fr.record(
                        "skip", now, site=site, reason="interference",
                        active=sorted(set(active)),
                    )
                return 0.0
        length = self.delay_policy.length_for(site)
        if length <= 0.0:
            self.skipped_budget += 1
            if ses is not None:
                ses.decision(
                    self.obs_run_seq, site, now,
                    reason="budget", detail="zero_length",
                )
            if self._fr is not None:
                self._fr.record(
                    "skip", now, site=site, reason="budget", detail="zero_length",
                )
            return 0.0
        self.ledger.register(site, pending.thread_id, now, length)
        remaining = self.decay.decay(site)
        if remaining <= 0.0:
            self.candidates.remove_with_delay_location(pending.location)
        if ses is not None:
            ses.decision(self.obs_run_seq, site, now, length_ms=length)
        if self._fr is not None:
            self._fr.record(
                "inject", now, site=site, tid=pending.thread_id,
                len_ms=round(length, 4), p=round(probability, 4),
            )
        return length


class _BaseInjectionHook(InstrumentationHook):
    """Shared scaffolding: engine wiring, stats, failure capture."""

    def __init__(self, config: WaffleConfig):
        self.config = config
        self.per_op_overhead_ms = config.inject_overhead_ms
        self.failure: Optional[FailureContext] = None
        self._threads: Dict[int, object] = {}
        self.engine: Optional[InjectionEngine] = None
        #: Injection schedule keyed by per-site dynamic occurrence, only
        #: maintained while a flight recorder is installed (the dossier
        #: builder replays it deterministically). ``_site_occurrences``
        #: stays None when recording is off so the hot path pays a
        #: single ``is None`` check per instrumented access.
        self._site_occurrences: Optional[Dict[str, int]] = (
            {} if obs.flightrec.recorder() is not None else None
        )
        self.injection_schedule: List[Dict[str, object]] = []

    def _traced_decide(self, pending: PendingAccess) -> float:
        """Engine decision plus (site, nth-occurrence) schedule capture."""
        occurrences = self._site_occurrences
        site = pending.location.site
        nth = occurrences.get(site, 0)
        occurrences[site] = nth + 1
        length = self.engine.decide(pending)
        if length > 0.0:
            self.injection_schedule.append(
                {
                    "site": site,
                    "nth": nth,
                    "len_ms": round(length, 6),
                    "t_ms": round(pending.timestamp, 4),
                    "thread_id": pending.thread_id,
                }
            )
        return length

    # -- Stats accessors used by the harness ---------------------------

    @property
    def delays_injected(self) -> int:
        return self.engine.ledger.count if self.engine else 0

    @property
    def total_delay_ms(self) -> float:
        return self.engine.ledger.total_delay_ms if self.engine else 0.0

    @property
    def delay_intervals(self) -> List[DelayInterval]:
        return list(self.engine.ledger.history) if self.engine else []

    def overlap_ratio(self) -> float:
        return self.engine.ledger.overlap_ratio() if self.engine else 0.0

    # -- Hook callbacks -------------------------------------------------

    def on_thread_start(self, thread) -> None:
        self._threads[thread.tid] = thread

    def on_failure(self, thread, error: BaseException) -> None:
        if self.failure is not None:
            return
        now = thread.end_time if thread.end_time is not None else 0.0
        stacks = {
            t.name: t.snapshot_stack() for t in self._threads.values() if t.is_alive or t is thread
        }
        self.failure = FailureContext(
            error=error,
            thread_name=thread.name,
            fault_time_ms=now,
            active_delays=self.engine.ledger.active_intervals(now) if self.engine else [],
            stacks=stacks,
        )

    def matched_pairs_for(self, error: BaseException) -> List[CandidatePair]:
        """Candidate pairs that involve the faulting location."""
        location = getattr(error, "location", None)
        if location is None or self.engine is None:
            return []
        matched = self.engine.candidates.pairs_for_delay_location(location)
        matched += self.engine.candidates.pairs_watching(location)
        # Deduplicate while preserving order.
        seen: Set[Tuple[str, str, str]] = set()
        unique: List[CandidatePair] = []
        for pair in matched:
            if pair.key() not in seen:
                seen.add(pair.key())
                unique.append(pair)
        return unique


class PlannedInjectionHook(_BaseInjectionHook):
    """Waffle's detection-run runtime (sections 4.3-4.4).

    The plan's candidate set, delay lengths and interference set come
    from the preparation run; the decay state persists across detection
    runs. The hook performs no identification work of its own, which is
    why its per-operation overhead is the low proxy-dispatch cost.
    """

    def __init__(
        self,
        plan: InjectionPlan,
        config: WaffleConfig,
        decay: DecayState,
        seed: int = 0,
    ):
        super().__init__(config)
        self.plan = plan
        if config.custom_delay_length:
            policy: DelayLengthPolicy = ProportionalDelayPolicy(
                plan.delay_lengths, config.alpha, config.min_delay_ms
            )
        else:
            policy = FixedDelayPolicy(config.fixed_delay_ms)
        interference = (
            InterferenceIndex(plan.interference) if config.interference_control else None
        )
        self.engine = InjectionEngine(
            config=config,
            candidates=plan.candidates,
            decay=decay,
            delay_policy=policy,
            interference=interference,
            rng=random.Random(seed),
        )

    def before_access(self, pending: PendingAccess) -> float:
        if not pending.access_type.is_memorder:
            return 0.0
        if self._site_occurrences is None:
            return self.engine.decide(pending)
        return self._traced_decide(pending)


class OnlineInjectionHook(_BaseInjectionHook):
    """Single-phase runtime: identify candidates and inject in one run.

    Configuration degrees of freedom (all combinations are meaningful):

    * ``tsv_mode`` -- track thread-unsafe API calls instead of MemOrder
      operations (the Tsvd baseline).
    * ``variable_delays`` -- learn per-location delay lengths from the
      gaps observed online (the no-preparation-run Waffle ablation);
      otherwise use the fixed length (WaffleBasic/Tsvd).
    * ``hb_inference`` -- Tsvd's happens-before inference: a candidate
      pair is dropped when a delay at l1 is followed by l2 executing
      just after the delay ends without having executed during it.
    * ``parent_child`` -- maintain TLS vector clocks online and refuse
      pairs whose operations are fork-ordered.
    * ``online_interference`` -- build the interference index on the
      fly from per-thread recent-operation windows.

    State that persists across runs (S, probabilities, learned delay
    lengths) is carried by the objects passed in, so a tool driver can
    thread them through successive runs.
    """

    def __init__(
        self,
        config: WaffleConfig,
        decay: DecayState,
        candidates: Optional[CandidateSet] = None,
        seed: int = 0,
        tsv_mode: bool = False,
        variable_delays: bool = False,
        hb_inference: bool = True,
        parent_child: bool = False,
        online_interference: bool = False,
        shared_policy: Optional[ProportionalDelayPolicy] = None,
    ):
        super().__init__(config)
        self.tsv_mode = tsv_mode
        self.hb_inference = hb_inference
        self.parent_child = parent_child
        self.online_interference = online_interference

        candidate_set = candidates if candidates is not None else CandidateSet()
        if variable_delays:
            policy: DelayLengthPolicy = shared_policy or ProportionalDelayPolicy(
                {}, config.alpha, config.min_delay_ms
            )
        else:
            policy = FixedDelayPolicy(config.fixed_delay_ms)
        self._variable_policy = policy if variable_delays else None

        interference = InterferenceIndex() if online_interference else None
        self.engine = InjectionEngine(
            config=config,
            candidates=candidate_set,
            decay=decay,
            delay_policy=policy,
            interference=interference,
            rng=random.Random(seed),
        )

        order_filter = self._vc_filter if parent_child else None
        if tsv_mode:
            self._tracker = TsvNearMissTracker(
                config.near_miss_window_ms,
                candidates=candidate_set,
                on_pair=self._on_pair,
            )
        else:
            self._tracker = NearMissTracker(
                config.near_miss_window_ms,
                candidates=candidate_set,
                order_filter=order_filter,
                on_pair=self._on_pair,
            )

        #: Per-thread recent memorder operations, for online
        #: interference discovery: deque of (timestamp, site).
        self._thread_recent: Dict[int, Deque[Tuple[float, str]]] = {}
        #: HB-inference: open delay windows per delay site:
        #: site -> (start, end, thread_id, sites_seen_during).
        self._windows: Dict[str, Tuple[float, float, int, Set[str]]] = {}

    # -- Candidate bookkeeping ------------------------------------------

    def _on_pair(self, pair: CandidatePair, is_new: bool) -> None:
        # Rediscovered pairs are fresh: no tombstones, probability
        # resets to 1 (see delay_policy.DecayState.register).
        self.engine.decay.register(pair.delay_location.site, reset=is_new)
        if self._variable_policy is not None:
            gap = self.engine.candidates.max_gap(pair)
            self._variable_policy.update(pair.delay_location.site, gap)
        if self.online_interference and self.engine.interference is not None and is_new:
            self._discover_interference(pair)

    def _discover_interference(self, pair: CandidatePair) -> None:
        """Scan l2's thread-recent window for interfering delay sites."""
        observations = self.engine.candidates.observations(pair)
        if not observations:
            return
        obs = observations[-1]
        recent = self._thread_recent.get(obs.thread_second, ())
        delay_sites = {loc.site for loc in self.engine.candidates.delay_locations}
        window_start = obs.timestamp_first - self.config.near_miss_window_ms
        for ts, site in recent:
            if ts < window_start or ts > obs.timestamp_second:
                continue
            if site in delay_sites:
                if ts == obs.timestamp_second and site == pair.other_location.site:
                    continue
                self.engine.interference.add(frozenset((pair.delay_location.site, site)))

    def _vc_filter(self, earlier: AccessEvent, later: AccessEvent) -> bool:
        return ordered(earlier.vc_snapshot, later.vc_snapshot)

    # -- Hook callbacks -------------------------------------------------

    def on_thread_start(self, thread) -> None:
        super().on_thread_start(thread)
        if self.parent_child and TLS_KEY not in thread.itls:
            thread.itls.set(TLS_KEY, make_clock(self.config.hb_engine, thread.tid))

    def before_access(self, pending: PendingAccess) -> float:
        if self.tsv_mode:
            if pending.access_type is not AccessType.UNSAFE_CALL:
                return 0.0
        elif not pending.access_type.is_memorder:
            return 0.0
        if self._site_occurrences is None:
            return self.engine.decide(pending)
        return self._traced_decide(pending)

    def after_access(self, event: AccessEvent) -> None:
        if self.parent_child:
            thread = self._threads.get(event.thread_id)
            if thread is not None:
                clock = thread.itls.get(TLS_KEY)
                if clock is not None:
                    event.vc_snapshot = clock.capture()
        if self.hb_inference:
            self._hb_observe(event)
        if self.online_interference and event.access_type.is_memorder:
            recent = self._thread_recent.setdefault(event.thread_id, deque())
            recent.append((event.timestamp, event.location.site))
            horizon = event.timestamp - 2 * self.config.near_miss_window_ms
            while recent and recent[0][0] < horizon:
                recent.popleft()
        if event.injected_delay > 0 and self.hb_inference:
            # Open an inference window for the delay that just elapsed:
            # the delay occupied [ts - delay, ts).
            self._windows[event.location.site] = (
                event.timestamp - event.injected_delay,
                event.timestamp,
                event.thread_id,
                set(),
            )
        self._tracker.observe(event)

    def _hb_observe(self, event: AccessEvent) -> None:
        """Happens-before inference (section 2, 'removing from S').

        If location l2 of a pair {l1, l2} executes within the grace
        window right after a delay at l1 ends -- and never executed
        *during* the delay -- the delay propagated: l1 happens-before
        l2, so the pair is removed. Note the deliberate fragility the
        paper highlights (section 4.1): a concurrent delay in l2's own
        thread produces the same timing signature, so dense injection
        makes this heuristic unreliable.
        """
        if not self._windows:
            return
        ts = event.timestamp
        grace = self.config.hb_inference_grace_ms
        stale: List[str] = []
        for l1_site, (start, end, tid, seen_during) in self._windows.items():
            if ts > end + grace:
                stale.append(l1_site)
                continue
            if event.thread_id == tid:
                continue
            if start <= ts < end:
                seen_during.add(event.location.site)
            elif end <= ts <= end + grace and event.location.site not in seen_during:
                from ..sim.instrument import Location

                l1 = Location(l1_site)
                for pair in self.engine.candidates.pairs_for_delay_location(l1):
                    if pair.other_location == event.location:
                        self.engine.candidates.remove(pair, reason="hb_inference")
                        self.engine.candidates.pruned_hb_inference += 1
                        if self.engine._obs is not None:
                            self.engine._obs.c_pruned_hb.inc()
                        if self.engine._fr is not None:
                            self.engine._fr.record(
                                "prune_hb", ts,
                                delay_site=l1_site,
                                other_site=event.location.site,
                                window=[round(start, 4), round(end, 4)],
                            )
        for site in stale:
            self._windows.pop(site, None)

    # -- Exposed for tests ----------------------------------------------

    @property
    def candidates(self) -> CandidateSet:
        return self.engine.candidates
