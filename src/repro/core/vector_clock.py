"""Fork-ordering vector clocks implemented over inheritable TLS.

Section 4.1 of the paper: Waffle "tracks happens-before relationships
induced by thread forks by implementing vector clocks on top of the TLS
mechanism. ... Waffle creates and stores a tailored thread-local vector
clock object in the TLS memory region of each thread. This vector clock
is represented by a set of tuples {(tid1, &rctr1), (tid2, &rctr2), ...}
... When a child thread is created, the TLS memory region of the parent
thread gets automatically propagated to the child thread. At this point
Waffle allocates a vector clock for the child thread ... (1) append a
tuple (tidk, &rctrk = 1) ... and (2) increment the logical counter of
the parent using the counter reference passed through the TLS."

We implement exactly that, with one clarification the paper leaves
implicit: the entries a child *copies* from its parent must be frozen at
their fork-time values (otherwise later forks by the parent would
retroactively advance the child's view and wrongly order concurrent
events). Each thread therefore holds a live counter cell only for its
own entry; inherited entries are snapshots. The parent's live cell is
incremented through the shared reference during propagation, so parent
operations after the fork are correctly *not* ordered before child
operations -- the standard fork rule.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..sim.tls import Inheritable

#: Key under which the vector clock lives in inheritable TLS.
TLS_KEY = "waffle.vector_clock"


class CounterCell:
    """A mutable logical-time counter shared by reference."""

    __slots__ = ("value",)

    def __init__(self, value: int = 1):
        self.value = value

    def increment(self) -> None:
        self.value += 1

    def __repr__(self) -> str:
        return "CounterCell(%d)" % self.value


class ThreadVectorClock(Inheritable):
    """The per-thread vector clock object stored in inheritable TLS."""

    __slots__ = ("tid", "own_cell", "inherited")

    def __init__(self, tid: int, inherited: Optional[Dict[int, int]] = None):
        self.tid = tid
        #: Live counter for this thread's own entry; incremented each
        #: time this thread forks a child.
        self.own_cell = CounterCell(1)
        #: Frozen fork-time snapshots of every ancestor entry.
        self.inherited: Dict[int, int] = dict(inherited or {})

    # -- Inheritable protocol ------------------------------------------

    def inherit_to(self, parent_thread, child_thread) -> "ThreadVectorClock":
        """Called by the TLS propagation machinery at thread fork.

        Builds the child's clock from the parent's *pre-increment*
        values, appends the child's fresh ``(tid, counter=1)`` entry,
        then bumps the parent's counter through the shared cell --
        the sequence described in section 4.1.
        """
        inherited = dict(self.inherited)
        inherited[self.tid] = self.own_cell.value
        child_clock = ThreadVectorClock(child_thread.tid, inherited=inherited)
        self.own_cell.increment()
        return child_clock

    # -- Snapshots and ordering ----------------------------------------

    def snapshot(self) -> Dict[int, int]:
        """Current component values ``{tid: counter}`` for this thread."""
        snap = dict(self.inherited)
        snap[self.tid] = self.own_cell.value
        return snap

    def capture(self) -> Dict[int, int]:
        """The event-attachable representation (a snapshot dict).

        Uniform entry point shared with
        :class:`~repro.core.tree_clock.ThreadTreeClock`, whose capture
        is an O(1) stamp instead of an O(threads) dict.
        """
        return self.snapshot()

    def __repr__(self) -> str:
        return "ThreadVectorClock(tid=%d, %r)" % (self.tid, self.snapshot())


def leq(a, b) -> bool:
    """Component-wise <= on clock captures (missing entries read as 0).

    Accepts ``{tid: counter}`` snapshot dicts, tree-clock stamps
    (:class:`~repro.core.tree_clock.TreeClockStamp`), or a mix: stamps
    compare structurally against each other and fall back to their dict
    view against dicts, so both representations are interchangeable on
    ``AccessEvent.vc_snapshot``.
    """
    a_is_dict = type(a) is dict
    b_is_dict = type(b) is dict
    if a_is_dict and b_is_dict:
        return all(value <= b.get(tid, 0) for tid, value in a.items())
    if not a_is_dict and not b_is_dict:
        return a.leq(b)
    if a_is_dict:
        b = b.mapping()
    else:
        a = a.mapping()
    return all(value <= b.get(tid, 0) for tid, value in a.items())


def ordered(a, b) -> bool:
    """True when the two captures are comparable (a <= b or b <= a).

    Comparable captures mean the two operations are ordered by the
    parent-child fork relation, so a MemOrder candidate between them is
    impossible and gets pruned (section 4.1). Missing captures (tools
    that do not track clocks) are conservatively treated as unordered.
    """
    if a is None or b is None:
        return False
    if type(a) is dict or type(b) is dict:
        return leq(a, b) or leq(b, a)
    # Tree-clock fast path: one structural query answers both directions.
    return a.ordered_with(b)


def concurrent(a, b) -> bool:
    """True when neither capture happens-before the other."""
    return not ordered(a, b)
