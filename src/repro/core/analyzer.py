"""Waffle's trace analyzer (Figure 3, middle box).

Consumes the preparation-run trace and produces the *injection plan*
used to bootstrap detection runs:

1. the candidate set S, built with near-miss tracking and pruned of
   pairs ordered by parent-child fork relationships (section 4.1);
2. per-location delay lengths, ``len(l1) = max |tau1 - tau2|`` over the
   pair gaps observed at ``l1`` (section 4.3);
3. the interference set I (section 4.4).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Set

from ..sim.instrument import AccessEvent
from .candidates import CandidateSet
from .config import WaffleConfig
from .interference import InterferencePair, build_interference_set
from .nearmiss import NearMissTracker
from .trace import Trace
from .vector_clock import ordered


@dataclass
class AnalysisStats:
    """Census numbers reported alongside the plan (Tables 2, section 3.3)."""

    memorder_sites: int = 0
    tsv_sites: int = 0
    memorder_ops: int = 0
    candidate_pairs: int = 0
    injection_sites: int = 0
    pruned_parent_child: int = 0
    interference_pairs: int = 0
    init_instance_counts: List[int] = field(default_factory=list)

    @property
    def median_init_instances(self) -> float:
        counts = self.init_instance_counts
        if not counts:
            return 0.0
        mid = len(counts) // 2
        if len(counts) % 2:
            return float(counts[mid])
        return (counts[mid - 1] + counts[mid]) / 2.0


@dataclass
class InjectionPlan:
    """Everything a detection run needs, distilled from the preparation run."""

    candidates: CandidateSet
    delay_lengths: Dict[str, float]
    interference: Set[InterferencePair]
    stats: AnalysisStats

    @property
    def delay_sites(self) -> Set[str]:
        return {loc.site for loc in self.candidates.delay_locations}

    def to_dict(self) -> dict:
        stats = self.stats
        return {
            "candidates": self.candidates.to_dict(),
            "delay_lengths": dict(self.delay_lengths),
            "interference": [sorted(pair) for pair in self.interference],
            # Full census round-trip: a plan rehydrated from cache must
            # report the same table numbers as the cold analysis.
            "stats": {
                "memorder_sites": stats.memorder_sites,
                "tsv_sites": stats.tsv_sites,
                "memorder_ops": stats.memorder_ops,
                "candidate_pairs": stats.candidate_pairs,
                "injection_sites": stats.injection_sites,
                "pruned_parent_child": stats.pruned_parent_child,
                "interference_pairs": stats.interference_pairs,
                "init_instance_counts": list(stats.init_instance_counts),
            },
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "InjectionPlan":
        candidates = CandidateSet.from_dict(payload.get("candidates", {}))
        recorded = payload.get("stats")
        if recorded is not None:
            stats = AnalysisStats(
                memorder_sites=recorded.get("memorder_sites", 0),
                tsv_sites=recorded.get("tsv_sites", 0),
                memorder_ops=recorded.get("memorder_ops", 0),
                candidate_pairs=recorded.get("candidate_pairs", len(candidates)),
                injection_sites=recorded.get(
                    "injection_sites", len(candidates.delay_locations)
                ),
                pruned_parent_child=recorded.get("pruned_parent_child", 0),
                interference_pairs=recorded.get("interference_pairs", 0),
                init_instance_counts=list(recorded.get("init_instance_counts", ())),
            )
        else:
            # Legacy payloads (pre-stats serialization): reconstruct
            # what the candidate set alone can tell us.
            stats = AnalysisStats(
                candidate_pairs=len(candidates),
                injection_sites=len(candidates.delay_locations),
            )
        plan = cls(
            candidates=candidates,
            delay_lengths=dict(payload.get("delay_lengths", {})),
            interference={frozenset(pair) for pair in payload.get("interference", ())},
            stats=stats,
        )
        return plan


def _parent_child_filter(earlier: AccessEvent, later: AccessEvent) -> bool:
    """Prune when the two operations' vector clocks are comparable."""
    return ordered(earlier.vc_snapshot, later.vc_snapshot)


def analyze_trace(trace: Trace, config: WaffleConfig) -> InjectionPlan:
    """Build the injection plan from a preparation-run trace."""
    events = trace.sorted_events()

    order_filter = _parent_child_filter if config.parent_child_analysis else None
    tracker = NearMissTracker(
        window_ms=config.near_miss_window_ms,
        order_filter=order_filter,
    )
    memorder_events = [e for e in events if e.access_type.is_memorder]
    if config.batched_analysis:
        candidates = tracker.observe_batch(memorder_events)
    else:
        candidates = tracker.observe_all(memorder_events)

    delay_lengths: Dict[str, float] = {}
    for pair in candidates:
        site = pair.delay_location.site
        gap = candidates.max_gap(pair)
        if gap > delay_lengths.get(site, 0.0):
            delay_lengths[site] = gap

    if config.interference_control:
        interference = build_interference_set(
            memorder_events, candidates, config.near_miss_window_ms
        )
    else:
        interference = set()

    stats = AnalysisStats(
        memorder_sites=len(trace.static_sites(memorder=True)),
        tsv_sites=len(trace.static_sites(memorder=False)),
        memorder_ops=len(memorder_events),
        candidate_pairs=len(candidates),
        injection_sites=len(candidates.delay_locations),
        pruned_parent_child=candidates.pruned_parent_child,
        interference_pairs=len(interference),
        init_instance_counts=trace.init_instance_counts(),
    )
    return InjectionPlan(
        candidates=candidates,
        delay_lengths=delay_lengths,
        interference=interference,
        stats=stats,
    )
