"""Near-miss tracking.

The near-miss heuristic (paper sections 2 and 3.1) is the sole
candidate-*generation* mechanism of the whole tool family: two
operations form a candidate iff they touch the same object from
different threads within a physical-time window delta.

Patterns:

* MemOrder mode -- ``(INIT at tau1, USE at tau2)`` with
  ``0 <= tau2 - tau1 <= delta`` yields a use-before-initialization
  candidate delaying the INIT; ``(USE at tau1, DISPOSE at tau2)`` yields
  a use-after-free candidate delaying the USE.
* TSV mode (Tsvd baseline) -- two ``UNSAFE_CALL`` operations within
  delta of each other; both call sites become delay locations.

The tracker is incremental so the same code serves the offline trace
analysis (Waffle's preparation phase) and the online identification of
WaffleBasic/Tsvd (fed from ``after_access``).
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Dict, List, Optional

from .. import obs
from ..sim.instrument import AccessEvent, AccessType
from .candidates import CandidateKind, CandidatePair, CandidateSet, GapObservation

#: Optional filter deciding whether a would-be pair is already ordered
#: (and must be pruned). Receives (earlier_event, later_event); returns
#: True to prune. Waffle plugs its vector-clock comparison in here.
OrderFilter = Callable[[AccessEvent, AccessEvent], bool]

#: Callback fired when a pair is added; receives (pair, is_new).
PairSink = Callable[[CandidatePair, bool], None]

# Dense access-type codes for the batched sweeps: classifying an
# (earlier, later) pair becomes one table lookup instead of an enum
# method call. The table must agree with CandidateKind.from_access_pair.
_CODE_INIT = 0
_CODE_USE = 1
_CODE_DISPOSE = 2
_CODE_UNSAFE = 3
_ACCESS_CODE = {
    AccessType.INIT: _CODE_INIT,
    AccessType.USE: _CODE_USE,
    AccessType.DISPOSE: _CODE_DISPOSE,
    AccessType.UNSAFE_CALL: _CODE_UNSAFE,
}
_KIND_TABLE: List[Optional[CandidateKind]] = [None] * 16
_KIND_TABLE[_CODE_INIT * 4 + _CODE_USE] = CandidateKind.USE_BEFORE_INIT
_KIND_TABLE[_CODE_USE * 4 + _CODE_DISPOSE] = CandidateKind.USE_AFTER_FREE


class NearMissTracker:
    """Incremental MemOrder near-miss matching over an event stream."""

    def __init__(
        self,
        window_ms: float,
        candidates: Optional[CandidateSet] = None,
        order_filter: Optional[OrderFilter] = None,
        on_pair: Optional[PairSink] = None,
    ):
        if window_ms <= 0:
            raise ValueError("near-miss window must be positive")
        self.window_ms = window_ms
        self.candidates = candidates if candidates is not None else CandidateSet()
        self.order_filter = order_filter
        self.on_pair = on_pair
        #: Per-object recent-event windows (object id -> deque).
        self._recent: Dict[int, Deque[AccessEvent]] = {}
        #: Near-miss matches emitted over the tracker's lifetime (every
        #: (re)added pair vs. first-time-seen pairs only).
        self.pairs_observed: int = 0
        self.pairs_new: int = 0
        self._obs = obs.session()
        self._fr = obs.flightrec.recorder()

    #: Shared empty result so delay-free streams allocate nothing.
    _NO_PAIRS: List[CandidatePair] = []

    def observe(self, event: AccessEvent) -> List[CandidatePair]:
        """Feed one event (in timestamp order); returns pairs (re)added."""
        if event.access_type is AccessType.UNSAFE_CALL:
            return self._NO_PAIRS
        object_id = event.object_id
        if object_id < 0:
            # A faulting access through a null reference carries no
            # object identity; it cannot participate in near-miss
            # matching (the bug already manifested anyway).
            return self._NO_PAIRS
        recent = self._recent
        window = recent.get(object_id)
        if window is None:
            window = recent[object_id] = deque()
        timestamp = event.timestamp
        horizon = timestamp - self.window_ms
        while window and window[0].timestamp < horizon:
            window.popleft()

        if not window:
            window.append(event)
            return self._NO_PAIRS

        thread_id = event.thread_id
        access_type = event.access_type
        order_filter = self.order_filter
        candidates = self.candidates
        on_pair = self.on_pair
        added: List[CandidatePair] = []
        for earlier in window:
            if earlier.thread_id == thread_id:
                continue
            kind = CandidateKind.from_access_pair(earlier.access_type, access_type)
            if kind is None:
                continue
            if order_filter is not None and order_filter(earlier, event):
                candidates.pruned_parent_child += 1
                if self._obs is not None:
                    self._obs.c_pruned_parent_child.inc()
                if self._fr is not None:
                    # The verdict plus the vector clocks that justify it
                    # (fork-ordered: vc(earlier) <= vc(later)).
                    self._fr.record(
                        "prune_parent_child", timestamp,
                        delay_site=earlier.location.site,
                        other_site=event.location.site,
                        vc_earlier={str(k): v for k, v in (earlier.vc_snapshot or {}).items()},
                        vc_later={str(k): v for k, v in (event.vc_snapshot or {}).items()},
                    )
                continue
            pair = CandidatePair(
                kind=kind,
                delay_location=earlier.location,
                other_location=event.location,
            )
            observation = GapObservation(
                gap_ms=timestamp - earlier.timestamp,
                timestamp_first=earlier.timestamp,
                timestamp_second=timestamp,
                object_id=object_id,
                thread_first=earlier.thread_id,
                thread_second=thread_id,
            )
            is_new = candidates.add(pair, observation)
            self.pairs_observed += 1
            if is_new:
                self.pairs_new += 1
            if self._obs is not None:
                self._obs.c_pairs_observed.inc()
                self._obs.h_gap_ms.observe(observation.gap_ms)
                if is_new:
                    self._obs.c_pairs_new.inc()
            if self._fr is not None:
                self._fr.record(
                    "near_miss", timestamp,
                    kind=kind.value,
                    delay_site=pair.delay_location.site,
                    other_site=pair.other_location.site,
                    gap_ms=round(observation.gap_ms, 4),
                    object_id=object_id,
                    new=is_new,
                )
            if on_pair is not None:
                on_pair(pair, is_new)
            added.append(pair)

        window.append(event)
        return added

    def observe_all(self, events) -> CandidateSet:
        """Feed a whole (sorted) event sequence; returns the candidate set."""
        observe = self.observe
        for event in events:
            observe(event)
        return self.candidates

    def observe_batch(self, events) -> CandidateSet:
        """Columnar sweep over a whole sorted event sequence.

        Bit-identical to feeding every event through :meth:`observe`:
        same candidate-set insertion order (events are swept in global
        time order, not object by object), same prune/pair counters,
        same flight-recorder records and callback sequence. The wins
        over the per-event path: timestamps/threads/access codes are
        extracted into parallel arrays once, per-object windows are
        (index-list, lo-pointer) pairs instead of deques, and objects
        that can never produce a candidate -- fewer than two events, a
        single thread, or no INIT-before-USE / USE-before-DISPOSE
        access combination -- are skipped without touching their events
        (skipping is observation-free: such events never fire a filter,
        counter or callback on the per-event path either).
        """
        ts: List[float] = []
        tids: List[int] = []
        codes: List[int] = []
        evs: List[AccessEvent] = []
        #: object id -> [event indices, cursor, window-lo] (cursor and
        #: lo index into the object's own index list).
        groups: Dict[int, List] = {}
        #: object id -> [first tid or -1 for many, seen-code bitmask].
        census: Dict[int, List[int]] = {}

        unsafe = AccessType.UNSAFE_CALL
        code_of = _ACCESS_CODE
        index = 0
        for event in events:
            access_type = event.access_type
            if access_type is unsafe:
                continue
            object_id = event.object_id
            if object_id < 0:
                continue
            code = code_of[access_type]
            ts.append(event.timestamp)
            tids.append(event.thread_id)
            codes.append(code)
            evs.append(event)
            group = groups.get(object_id)
            if group is None:
                groups[object_id] = [[index], 0, 0]
                census[object_id] = [event.thread_id, 1 << code]
            else:
                group[0].append(index)
                entry = census[object_id]
                if entry[0] != event.thread_id:
                    entry[0] = -1
                entry[1] |= 1 << code
            index += 1

        init_use = (1 << _CODE_INIT) | (1 << _CODE_USE)
        use_dispose = (1 << _CODE_USE) | (1 << _CODE_DISPOSE)
        active: Dict[int, List] = {}
        for object_id, (first_tid, mask) in census.items():
            group = groups[object_id]
            if len(group[0]) < 2 or first_tid != -1:
                continue
            if (mask & init_use) != init_use and (mask & use_dispose) != use_dispose:
                continue
            active[object_id] = group

        if not active:
            return self.candidates

        window_ms = self.window_ms
        kind_table = _KIND_TABLE
        order_filter = self.order_filter
        candidates = self.candidates
        cand_add = candidates.add
        on_pair = self.on_pair
        ses = self._obs
        fr = self._fr

        for j in range(index):
            event = evs[j]
            group = active.get(event.object_id)
            if group is None:
                continue
            idxs, pos, lo = group[0], group[1], group[2]
            tsj = ts[j]
            horizon = tsj - window_ms
            while lo < pos and ts[idxs[lo]] < horizon:
                lo += 1
            group[1] = pos + 1
            group[2] = lo
            if lo == pos:
                continue
            tidj = tids[j]
            codej = codes[j]
            for k in range(lo, pos):
                i = idxs[k]
                if tids[i] == tidj:
                    continue
                kind = kind_table[codes[i] * 4 + codej]
                if kind is None:
                    continue
                earlier = evs[i]
                if order_filter is not None and order_filter(earlier, event):
                    candidates.pruned_parent_child += 1
                    if ses is not None:
                        ses.c_pruned_parent_child.inc()
                    if fr is not None:
                        fr.record(
                            "prune_parent_child", tsj,
                            delay_site=earlier.location.site,
                            other_site=event.location.site,
                            vc_earlier={str(k2): v for k2, v in (earlier.vc_snapshot or {}).items()},
                            vc_later={str(k2): v for k2, v in (event.vc_snapshot or {}).items()},
                        )
                    continue
                pair = CandidatePair(
                    kind=kind,
                    delay_location=earlier.location,
                    other_location=event.location,
                )
                observation = GapObservation(
                    gap_ms=tsj - ts[i],
                    timestamp_first=ts[i],
                    timestamp_second=tsj,
                    object_id=event.object_id,
                    thread_first=tids[i],
                    thread_second=tidj,
                )
                is_new = cand_add(pair, observation)
                self.pairs_observed += 1
                if is_new:
                    self.pairs_new += 1
                if ses is not None:
                    ses.c_pairs_observed.inc()
                    ses.h_gap_ms.observe(observation.gap_ms)
                    if is_new:
                        ses.c_pairs_new.inc()
                if fr is not None:
                    fr.record(
                        "near_miss", tsj,
                        kind=kind.value,
                        delay_site=pair.delay_location.site,
                        other_site=pair.other_location.site,
                        gap_ms=round(observation.gap_ms, 4),
                        object_id=event.object_id,
                        new=is_new,
                    )
                if on_pair is not None:
                    on_pair(pair, is_new)
        return self.candidates


class TsvNearMissTracker:
    """Near-miss matching for thread-safety violations (Tsvd, section 2).

    Both locations of a TSV pair become delay locations: reversing
    either side can make the two call windows overlap.
    """

    def __init__(
        self,
        window_ms: float,
        candidates: Optional[CandidateSet] = None,
        on_pair: Optional[PairSink] = None,
    ):
        if window_ms <= 0:
            raise ValueError("near-miss window must be positive")
        self.window_ms = window_ms
        self.candidates = candidates if candidates is not None else CandidateSet()
        self.on_pair = on_pair
        self._recent: Dict[int, Deque[AccessEvent]] = {}
        self.pairs_observed: int = 0
        self.pairs_new: int = 0
        self._obs = obs.session()
        self._fr = obs.flightrec.recorder()

    def observe(self, event: AccessEvent) -> List[CandidatePair]:
        if event.access_type is not AccessType.UNSAFE_CALL:
            return NearMissTracker._NO_PAIRS
        recent = self._recent
        window = recent.get(event.object_id)
        if window is None:
            window = recent[event.object_id] = deque()
        horizon = event.timestamp - self.window_ms
        while window and window[0].timestamp < horizon:
            window.popleft()

        added: List[CandidatePair] = []
        for earlier in window:
            if earlier.thread_id == event.thread_id:
                continue
            observation = GapObservation(
                gap_ms=event.timestamp - earlier.timestamp,
                timestamp_first=earlier.timestamp,
                timestamp_second=event.timestamp,
                object_id=event.object_id,
                thread_first=earlier.thread_id,
                thread_second=event.thread_id,
            )
            for delay_loc, other_loc in (
                (earlier.location, event.location),
                (event.location, earlier.location),
            ):
                pair = CandidatePair(
                    kind=CandidateKind.THREAD_SAFETY,
                    delay_location=delay_loc,
                    other_location=other_loc,
                )
                is_new = self.candidates.add(pair, observation)
                self.pairs_observed += 1
                if is_new:
                    self.pairs_new += 1
                if self._obs is not None:
                    self._obs.c_pairs_observed.inc()
                    self._obs.h_gap_ms.observe(observation.gap_ms)
                    if is_new:
                        self._obs.c_pairs_new.inc()
                if self._fr is not None:
                    self._fr.record(
                        "near_miss", event.timestamp,
                        kind=pair.kind.value,
                        delay_site=delay_loc.site,
                        other_site=other_loc.site,
                        gap_ms=round(observation.gap_ms, 4),
                        object_id=event.object_id,
                        new=is_new,
                    )
                if self.on_pair is not None:
                    self.on_pair(pair, is_new)
                added.append(pair)

        window.append(event)
        return added

    def observe_all(self, events) -> CandidateSet:
        observe = self.observe
        for event in events:
            observe(event)
        return self.candidates

    def observe_batch(self, events) -> CandidateSet:
        """Columnar TSV sweep, bit-identical to per-event observe().

        Mirrors :meth:`NearMissTracker.observe_batch`; the activity
        prefilter here is simpler (two UNSAFE_CALL events from two
        threads on the same object).
        """
        ts: List[float] = []
        tids: List[int] = []
        evs: List[AccessEvent] = []
        groups: Dict[int, List] = {}
        census: Dict[int, int] = {}

        unsafe = AccessType.UNSAFE_CALL
        index = 0
        for event in events:
            if event.access_type is not unsafe:
                continue
            object_id = event.object_id
            ts.append(event.timestamp)
            tids.append(event.thread_id)
            evs.append(event)
            group = groups.get(object_id)
            if group is None:
                groups[object_id] = [[index], 0, 0]
                census[object_id] = event.thread_id
            else:
                group[0].append(index)
                if census[object_id] != event.thread_id:
                    census[object_id] = -1
            index += 1

        active: Dict[int, List] = {
            object_id: groups[object_id]
            for object_id, first_tid in census.items()
            if first_tid == -1
        }
        if not active:
            return self.candidates

        window_ms = self.window_ms
        candidates = self.candidates
        cand_add = candidates.add
        on_pair = self.on_pair
        ses = self._obs
        fr = self._fr

        for j in range(index):
            event = evs[j]
            group = active.get(event.object_id)
            if group is None:
                continue
            idxs, pos, lo = group[0], group[1], group[2]
            tsj = ts[j]
            horizon = tsj - window_ms
            while lo < pos and ts[idxs[lo]] < horizon:
                lo += 1
            group[1] = pos + 1
            group[2] = lo
            if lo == pos:
                continue
            tidj = tids[j]
            for k in range(lo, pos):
                i = idxs[k]
                if tids[i] == tidj:
                    continue
                earlier = evs[i]
                observation = GapObservation(
                    gap_ms=tsj - ts[i],
                    timestamp_first=ts[i],
                    timestamp_second=tsj,
                    object_id=event.object_id,
                    thread_first=tids[i],
                    thread_second=tidj,
                )
                for delay_loc, other_loc in (
                    (earlier.location, event.location),
                    (event.location, earlier.location),
                ):
                    pair = CandidatePair(
                        kind=CandidateKind.THREAD_SAFETY,
                        delay_location=delay_loc,
                        other_location=other_loc,
                    )
                    is_new = cand_add(pair, observation)
                    self.pairs_observed += 1
                    if is_new:
                        self.pairs_new += 1
                    if ses is not None:
                        ses.c_pairs_observed.inc()
                        ses.h_gap_ms.observe(observation.gap_ms)
                        if is_new:
                            ses.c_pairs_new.inc()
                    if fr is not None:
                        fr.record(
                            "near_miss", tsj,
                            kind=pair.kind.value,
                            delay_site=delay_loc.site,
                            other_site=other_loc.site,
                            gap_ms=round(observation.gap_ms, 4),
                            object_id=event.object_id,
                            new=is_new,
                        )
                    if on_pair is not None:
                        on_pair(pair, is_new)
        return self.candidates
