"""Execution traces and the preparation-run recording hook.

The :class:`RecordingHook` is what Waffle attaches during its
*preparation run* (Figure 3): it injects no delays, logs every
instrumented operation, and maintains the TLS vector clocks so that
each event carries the fork-ordering snapshot the analyzer needs for
parent-child pruning (section 4.1).
"""

from __future__ import annotations

from typing import IO, Dict, List, Optional, Set

from ..sim.instrument import AccessEvent, AccessType, InstrumentationHook, Location
from .events import dump_events, load_events
from .tree_clock import make_clock
from .vector_clock import TLS_KEY, ThreadVectorClock  # noqa: F401  (re-export)


class Trace:
    """An ordered list of :class:`AccessEvent` plus thread metadata."""

    def __init__(self) -> None:
        self.events: List[AccessEvent] = []
        #: tid -> thread name (for reports and debugging).
        self.thread_names: Dict[int, str] = {}
        #: tid -> parent tid (the fork tree; None/absent for roots).
        self.parents: Dict[int, Optional[int]] = {}
        #: Virtual end-to-end duration of the recorded run.
        self.duration_ms: float = 0.0
        self._sorted: Optional[List[AccessEvent]] = None

    def __len__(self) -> int:
        return len(self.events)

    def append(self, event: AccessEvent) -> None:
        self.events.append(event)
        self._sorted = None

    def sorted_events(self) -> List[AccessEvent]:
        """Events in timestamp order (stable on event id for ties).

        The simulator appends events as virtual time advances, so the
        list is almost always already ordered: verify with one linear
        scan and only fall back to a real sort when it is not. The
        result is cached until the next :meth:`append`.
        """
        cached = self._sorted
        if cached is not None:
            return cached
        events = self.events
        is_sorted = True
        prev_ts = float("-inf")
        prev_id = -1
        for event in events:
            ts = event.timestamp
            if ts < prev_ts or (ts == prev_ts and event.event_id < prev_id):
                is_sorted = False
                break
            prev_ts = ts
            prev_id = event.event_id
        if is_sorted:
            ordered = list(events)
        else:
            ordered = sorted(events, key=lambda e: (e.timestamp, e.event_id))
        self._sorted = ordered
        return ordered

    def memorder_events(self) -> List[AccessEvent]:
        return [e for e in self.events if e.access_type.is_memorder]

    def unsafe_call_events(self) -> List[AccessEvent]:
        return [e for e in self.events if e.access_type is AccessType.UNSAFE_CALL]

    # -- Census helpers used by Table 2 and section 3.3 ----------------

    def static_sites(self, memorder: bool = True) -> Set[Location]:
        """Unique static instrumentation sites of one class."""
        return {
            e.location
            for e in self.events
            if e.access_type.is_memorder == memorder
        }

    def dynamic_instances(self, location: Location) -> int:
        return sum(1 for e in self.events if e.location == location)

    def init_instance_counts(self) -> List[int]:
        """Dynamic-instance counts of every initialization site --
        the paper's 'median number of dynamic instances for all object
        initialization operations is 2' census (section 3.3)."""
        counts: Dict[Location, int] = {}
        for event in self.events:
            if event.access_type is AccessType.INIT:
                counts[event.location] = counts.get(event.location, 0) + 1
        return sorted(counts.values())

    # -- Serialization ---------------------------------------------------

    def dump(self, fp: IO[str]) -> int:
        return dump_events(self.sorted_events(), fp)

    @classmethod
    def load(cls, fp: IO[str]) -> "Trace":
        trace = cls()
        for event in load_events(fp):
            trace.append(event)
        if trace.events:
            trace.duration_ms = max(e.end_timestamp for e in trace.events)
        for event in trace.events:
            trace.thread_names.setdefault(event.thread_id, "thread-%d" % event.thread_id)
        return trace


class RecordingHook(InstrumentationHook):
    """Delay-free tracing hook (Waffle's preparation run).

    ``track_vector_clocks`` controls whether the TLS clock machinery is
    installed; the no-parent-child ablation turns it off, which also
    removes its (small) share of the recording overhead. ``hb_engine``
    selects the clock representation: ``"vector"`` captures a
    ``{tid: counter}`` dict per event, ``"tree"`` an O(1) tree-clock
    stamp (see :mod:`repro.core.tree_clock`).
    """

    def __init__(
        self,
        record_overhead_ms: float = 0.02,
        track_vector_clocks: bool = True,
        hb_engine: str = "vector",
    ):
        self.trace = Trace()
        self.per_op_overhead_ms = record_overhead_ms
        self.track_vector_clocks = track_vector_clocks
        self.hb_engine = hb_engine
        self._threads: Dict[int, object] = {}

    # -- Thread lifecycle -------------------------------------------------

    def on_thread_start(self, thread) -> None:
        self._threads[thread.tid] = thread
        self.trace.thread_names[thread.tid] = thread.name
        self.trace.parents[thread.tid] = thread.parent.tid if thread.parent else None
        if self.track_vector_clocks and TLS_KEY not in thread.itls:
            # Root threads get a fresh clock; children already received
            # theirs through inheritable-TLS propagation at fork.
            thread.itls.set(TLS_KEY, make_clock(self.hb_engine, thread.tid))

    # -- Event recording --------------------------------------------------

    def after_access(self, event: AccessEvent) -> None:
        if self.track_vector_clocks:
            thread = self._threads.get(event.thread_id)
            if thread is not None:
                clock = thread.itls.get(TLS_KEY)
                if clock is not None:
                    event.vc_snapshot = clock.capture()
        self.trace.append(event)

    def on_run_end(self, sim) -> None:
        self.trace.duration_ms = sim.clock.now
