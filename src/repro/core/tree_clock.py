"""Tree-clock happens-before engine for fork orderings.

A drop-in alternative to the dict-based vector clocks of
:mod:`repro.core.vector_clock`, after Mathur et al., "A Tree Clock Data
Structure for Causal Orderings in Concurrent Executions" (PAPERS.md).
The insight carried over here: when the happens-before relation is
induced *only* by thread forks (section 4.1 of the Waffle paper), each
thread's clock is fully described by

* its **own** live counter (bumped once per fork it performs), and
* a **frozen chain** of ``(ancestor tid, fork-time counter)`` entries --
  the path from the thread to the root of the fork tree.

The chain never changes after the thread is created, so a child can
share its parent's chain *by reference* and prepend a single node: clock
propagation at fork is O(1) instead of the O(depth) dict copy
``ThreadVectorClock.inherit_to`` performs, and capturing a per-event
timestamp (:meth:`ThreadTreeClock.stamp`) is O(1) instead of the
O(depth) dict materialization of ``snapshot()``.

Ordering queries exploit the tree shape directly.  For stamps ``a`` of
thread A and ``b`` of thread B:

* same thread -- always ordered (program order);
* ``depth(A) == depth(B)``, different threads -- never ordered (neither
  can be the other's ancestor);
* otherwise walk the deeper stamp's chain up to the shallower stamp's
  depth (the *direct-ancestry fast path* is a single hop; long walks
  take O(log) skip-pointer jumps, see :class:`_ChainNode`) and compare
  one ``(tid, counter)`` entry.

This answers ``ordered``/``concurrent`` in O(log |depth(A) - depth(B)|)
with no allocation, against O(chain) dict compares (plus an O(chain)
dict build per event) for the vector-clock engine.  The two engines are
observationally equivalent: ``tests/core/test_tree_clock.py`` asserts
equal verdicts on every event pair of seeded random fork trees.
"""

from __future__ import annotations

from typing import Dict, ItemsView, Optional

from ..sim.tls import Inheritable

#: Tree clocks live under the same TLS key as vector clocks: exactly one
#: happens-before engine is active per run.
from .vector_clock import TLS_KEY, ThreadVectorClock  # noqa: F401  (re-export)

#: Recognized values of the ``hb_engine`` config switch.
HB_ENGINES = ("vector", "tree")


class _ChainNode:
    """One frozen ``(tid, counter)`` entry of an ancestor chain.

    ``depth`` is the ancestor's own depth in the fork tree (roots are
    0), so a descendant can jump straight to the node a query needs by
    walking while ``node.depth > target`` -- chains are strictly
    decreasing in depth, one per level.

    ``jump`` is a skip pointer (the classic jump-pointer scheme for
    purely functional lists): it points to the ancestor ``jump(jump(
    parent))`` when the two hops below it span equal depths, and to
    ``parent`` otherwise. Computed in O(1) at creation, it makes
    level-ancestor walks O(log depth difference) instead of O(depth
    difference) -- deep fork spines stay cheap to query.
    """

    __slots__ = ("tid", "value", "parent", "depth", "jump")

    def __init__(self, tid: int, value: int, parent: Optional["_ChainNode"], depth: int):
        self.tid = tid
        self.value = value
        self.parent = parent
        self.depth = depth
        jump = parent
        if parent is not None:
            pj = parent.jump
            if pj is not None and pj.jump is not None:
                if parent.depth - pj.depth == pj.depth - pj.jump.depth:
                    jump = pj.jump
        self.jump = jump

    def __repr__(self) -> str:
        return "_ChainNode(tid=%d, value=%d, depth=%d)" % (self.tid, self.value, self.depth)


class TreeClockStamp:
    """An O(1) frozen capture of one thread's tree clock at one event.

    Plays the role ``ThreadVectorClock.snapshot()`` dicts play on
    ``AccessEvent.vc_snapshot``: :func:`repro.core.vector_clock.ordered`
    accepts either representation (and mixes of the two).  ``mapping()``
    / ``items()`` materialize the equivalent ``{tid: counter}`` dict on
    demand, so serialization and flight-recorder call sites that expect
    dict-shaped clocks keep working unchanged.
    """

    __slots__ = ("tid", "own", "chain", "depth")

    def __init__(self, tid: int, own: int, chain: Optional[_ChainNode], depth: int):
        self.tid = tid
        self.own = own
        self.chain = chain
        self.depth = depth

    # -- Ordering -------------------------------------------------------

    def leq(self, other: "TreeClockStamp") -> bool:
        """Component-wise <=, computed from tree structure."""
        if self.tid == other.tid:
            return self.own <= other.own
        if self.depth >= other.depth:
            # An ancestor is strictly shallower than its descendants.
            return False
        node = other.chain
        target = self.depth
        while node is not None and node.depth > target:
            jump = node.jump
            node = jump if jump is not None and jump.depth >= target else node.parent
        if node is None or node.tid != self.tid:
            return False
        # ``node.value`` froze this thread's counter when it forked
        # toward ``other``; the stamp precedes everything ``other`` did
        # iff it was taken at or before that fork.
        return self.own <= node.value

    def ordered_with(self, other: "TreeClockStamp") -> bool:
        """True when the two stamps are fork-ordered either way."""
        if self.tid == other.tid:
            return True
        da = self.depth
        db = other.depth
        if da == db:
            return False
        if da < db:
            return self.leq(other)
        return other.leq(self)

    # -- Dict-compatible views -----------------------------------------

    def mapping(self) -> Dict[int, int]:
        """The equivalent ``{tid: counter}`` vector-clock dict."""
        out: Dict[int, int] = {self.tid: self.own}
        node = self.chain
        while node is not None:
            out[node.tid] = node.value
            node = node.parent
        return out

    def items(self) -> ItemsView[int, int]:
        """Dict-shaped iteration, for serializers and flight records."""
        return self.mapping().items()

    def __repr__(self) -> str:
        return "TreeClockStamp(tid=%d, %r)" % (self.tid, self.mapping())


class ThreadTreeClock(Inheritable):
    """The per-thread tree clock stored in inheritable TLS.

    Implements the same section 4.1 fork protocol as
    :class:`~repro.core.vector_clock.ThreadVectorClock` -- child copies
    the parent's pre-increment entries, appends its own ``(tid, 1)``
    entry, parent's counter is bumped -- but the "copy" is a shared
    reference plus one prepended chain node.
    """

    __slots__ = ("tid", "own", "chain", "depth")

    def __init__(self, tid: int, chain: Optional[_ChainNode] = None):
        self.tid = tid
        #: Live counter for this thread's own entry, bumped per fork.
        self.own = 1
        #: Frozen ancestor chain (None for root threads).
        self.chain = chain
        self.depth = 0 if chain is None else chain.depth + 1

    # -- Inheritable protocol ------------------------------------------

    def inherit_to(self, parent_thread, child_thread) -> "ThreadTreeClock":
        """O(1) clock propagation at thread fork."""
        node = _ChainNode(self.tid, self.own, self.chain, self.depth)
        child = ThreadTreeClock(child_thread.tid, chain=node)
        self.own += 1
        return child

    # -- Captures -------------------------------------------------------

    def stamp(self) -> TreeClockStamp:
        """O(1) frozen capture for ``AccessEvent.vc_snapshot``."""
        return TreeClockStamp(self.tid, self.own, self.chain, self.depth)

    def snapshot(self) -> Dict[int, int]:
        """Dict view matching ``ThreadVectorClock.snapshot()`` exactly."""
        return self.stamp().mapping()

    def capture(self):
        """The cheapest event-attachable representation (a stamp)."""
        return self.stamp()

    def __repr__(self) -> str:
        return "ThreadTreeClock(tid=%d, %r)" % (self.tid, self.snapshot())


def make_clock(hb_engine: str, tid: int):
    """Construct a root clock for the configured happens-before engine."""
    if hb_engine == "tree":
        return ThreadTreeClock(tid)
    if hb_engine == "vector":
        return ThreadVectorClock(tid)
    raise ValueError(
        "unknown hb_engine %r (expected one of %s)" % (hb_engine, ", ".join(HB_ENGINES))
    )
