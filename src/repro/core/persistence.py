"""On-disk persistence of analysis results and decay state.

Section 5: the candidate set S, the interference set I and the
per-location delay lengths "are saved after analyzing the execution
traces recorded during the preparation run and used to bootstrap future
detection runs"; likewise "after each detection run, the new delay
probabilities are saved on disk and used to bootstrap the next
detection run." The in-process drivers thread these objects through
runs directly; this module provides the equivalent file round-trip for
CLI workflows and for tests that assert the bootstrap is lossless.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Tuple, Union

from .analyzer import InjectionPlan
from .delay_policy import DecayState
from .reports import BugReport

PathLike = Union[str, Path]

FORMAT_VERSION = 1


def save_plan(plan: InjectionPlan, path: PathLike) -> None:
    payload = {"version": FORMAT_VERSION, "plan": plan.to_dict()}
    Path(path).write_text(json.dumps(payload, indent=2, sort_keys=True))


def load_plan(path: PathLike) -> InjectionPlan:
    payload = json.loads(Path(path).read_text())
    _check_version(payload)
    return InjectionPlan.from_dict(payload["plan"])


def save_decay(decay: DecayState, path: PathLike) -> None:
    payload = {"version": FORMAT_VERSION, "decay": decay.to_dict()}
    Path(path).write_text(json.dumps(payload, indent=2, sort_keys=True))


def load_decay(path: PathLike) -> DecayState:
    payload = json.loads(Path(path).read_text())
    _check_version(payload)
    return DecayState.from_dict(payload["decay"])


def save_session(plan: InjectionPlan, decay: DecayState, path: PathLike) -> None:
    """Persist a full detection session bootstrap in one file."""
    payload = {
        "version": FORMAT_VERSION,
        "plan": plan.to_dict(),
        "decay": decay.to_dict(),
    }
    Path(path).write_text(json.dumps(payload, indent=2, sort_keys=True))


def load_session(path: PathLike) -> Tuple[InjectionPlan, DecayState]:
    payload = json.loads(Path(path).read_text())
    _check_version(payload)
    return (
        InjectionPlan.from_dict(payload["plan"]),
        DecayState.from_dict(payload["decay"]),
    )


def save_report(report: BugReport, path: PathLike) -> None:
    """Persist a bug report (the dossier/detect-record shared schema)."""
    save_record({"report": report.to_dict()}, path)


def load_report(path: PathLike) -> BugReport:
    return BugReport.from_dict(load_record(path)["report"])


def save_record(payload: dict, path: PathLike, fsync: bool = False) -> None:
    """Persist an arbitrary JSON-safe record with the format version.

    Backs the harness trace/plan cache: entries are written atomically
    via a temp file in the *same directory* as the target (so the
    ``os.replace`` is a same-filesystem rename -- a cross-device rename
    would raise EXDEV and, on network filesystems, forfeit atomicity)
    followed by a rename, so concurrent workers racing on the same
    cache key never observe a torn file.

    ``fsync=True`` additionally flushes the file contents (and, best
    effort, the directory entry) to stable storage before the rename is
    allowed to make the record visible -- the durability a *shared*
    store needs so a reader on another host never sees a named-but-
    empty record after a crash. It costs ~0.5ms per record, so the
    single-host cache leaves it off.
    """
    target = Path(path)
    body = json.dumps({"version": FORMAT_VERSION, "record": payload}, sort_keys=True)
    tmp = target.with_name(target.name + ".tmp.%d" % os.getpid())
    if fsync:
        with open(tmp, "w") as fp:
            fp.write(body)
            fp.flush()
            os.fsync(fp.fileno())
    else:
        tmp.write_text(body)
    os.replace(tmp, target)
    if fsync:
        fsync_dir(target.parent)


def fsync_dir(directory: PathLike) -> None:
    """Flush a directory entry to stable storage, best effort.

    Needed after an ``os.replace`` that must be durable: the rename
    itself lives in the directory inode. Platforms that cannot open a
    directory for fsync (e.g. Windows) are silently tolerated -- the
    data fsync already happened and this is the weaker half.
    """
    try:
        fd = os.open(str(directory), os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def load_record(path: PathLike) -> dict:
    payload = json.loads(Path(path).read_text())
    _check_version(payload)
    return payload["record"]


def _check_version(payload: dict) -> None:
    version = payload.get("version")
    if version != FORMAT_VERSION:
        raise ValueError(
            "unsupported persistence format version %r (expected %d)"
            % (version, FORMAT_VERSION)
        )
