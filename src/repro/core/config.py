"""Configuration for Waffle and the baseline tools.

Defaults follow the paper's evaluation setup (section 6.1): a near-miss
window of 100 ms, a fixed delay of 100 ms for WaffleBasic/Tsvd, and a
delay-scaling factor of alpha = 1.15 for Waffle's variable-length delays
(section 4.3).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
@dataclass(frozen=True)
class WaffleConfig:
    """Tuning knobs shared by Waffle, WaffleBasic, Tsvd and ablations."""

    #: Near-miss window delta in ms (paper: 100 ms, the Tsvd default).
    near_miss_window_ms: float = 100.0

    #: Fixed delay length for WaffleBasic/Tsvd in ms (paper: 100 ms).
    fixed_delay_ms: float = 100.0

    #: Waffle's delay multiplier: inject ``alpha * len(l)`` (paper: 1.15).
    alpha: float = 1.15

    #: Lower bound on an injected variable-length delay, in ms. Gaps in
    #: the preparation run can be arbitrarily small; a floor keeps the
    #: injected delay long enough to actually reorder operations under
    #: timing jitter.
    min_delay_ms: float = 0.5

    #: Probability-decay constant lambda: each injection at a location
    #: that fails to expose a bug lowers that location's injection
    #: probability by this amount (section 2, "probability decay").
    decay_lambda: float = 0.1

    #: Grace window for the happens-before inference heuristic used by
    #: WaffleBasic/Tsvd: if the watched location executes within this
    #: many ms after a delay ends (and never during it), the pair is
    #: deemed ordered and removed from S.
    hb_inference_grace_ms: float = 2.0

    #: Maximum number of detection runs before giving up (the paper uses
    #: 50 as the "fails to expose" cutoff).
    max_detection_runs: int = 50

    #: Per-run virtual-time limit in ms; runs beyond it are "TimeOut"
    #: entries as in Tables 5 and 6.
    run_time_limit_ms: float = 60_000.0

    #: Extra virtual-time cost per instrumented operation while tracing
    #: (Waffle's preparation run) -- the cost of logging every access.
    record_overhead_ms: float = 0.5

    #: Extra virtual-time cost per instrumented operation during
    #: detection runs (the proxy-function dispatch cost).
    inject_overhead_ms: float = 0.020

    #: Base random seed; run ``i`` of a detection session uses
    #: ``seed + i`` so repetitions are reproducible.
    seed: int = 0

    #: Stop after the first manifested bug (the run has crashed anyway;
    #: the paper restarts the tool to hunt for further bugs).
    stop_at_first_bug: bool = True

    #: Happens-before engine backing the parent-child analysis:
    #: ``"vector"`` materializes a ``{tid: counter}`` dict per event
    #: (the paper's section 4.1 representation); ``"tree"`` captures an
    #: O(1) structurally-shared tree-clock stamp instead (Mathur et
    #: al.), which answers ordering queries in O(depth difference).
    #: Both engines prune exactly the same pairs.
    hb_engine: str = "vector"

    #: Run the prep-run analyzer (`analyze_trace`) through the batched
    #: columnar passes instead of per-event ``observe()`` dispatch.
    #: The two modes produce bit-identical injection plans; the switch
    #: exists for differential testing and benchmarking.
    batched_analysis: bool = True

    # ---- Design-point switches (Table 7 ablations) -------------------

    #: Prune candidate pairs ordered by parent-child fork relationships
    #: using TLS vector clocks (section 4.1).
    parent_child_analysis: bool = True

    #: Use a dedicated delay-free preparation run (section 4.2). When
    #: disabled, Waffle degenerates to online identification.
    preparation_run: bool = True

    #: Use per-location variable-length delays (section 4.3). When
    #: disabled, every injection uses ``fixed_delay_ms``.
    custom_delay_length: bool = True

    #: Skip delays that would interfere with an ongoing delay, using the
    #: interference set I (section 4.4).
    interference_control: bool = True

    def without(self, design_point: str) -> "WaffleConfig":
        """Return a copy with one Table 7 design point disabled."""
        flags = {
            "parent_child_analysis": "parent_child_analysis",
            "preparation_run": "preparation_run",
            "custom_delay_length": "custom_delay_length",
            "interference_control": "interference_control",
        }
        if design_point not in flags:
            raise ValueError(
                "unknown design point %r (expected one of %s)"
                % (design_point, ", ".join(sorted(flags)))
            )
        return replace(self, **{flags[design_point]: False})

    def with_seed(self, seed: int) -> "WaffleConfig":
        return replace(self, seed=seed)


DEFAULT_CONFIG = WaffleConfig()
