"""Serialization of trace events (JSONL).

The preparation run writes "an unperturbed execution trace containing
every access to heap objects" (section 5). This module round-trips
:class:`~repro.sim.instrument.AccessEvent` records through plain dicts
so traces can be stored as JSON Lines files, inspected, and re-analyzed
without re-running the program.
"""

from __future__ import annotations

import json
from typing import IO, Dict, Iterable, Iterator, Optional

from ..sim.instrument import AccessEvent, AccessType, Location


def event_to_dict(event: AccessEvent) -> dict:
    payload = {
        "loc": event.location.site,
        "type": event.access_type.value,
        "oid": event.object_id,
        "tid": event.thread_id,
        "ts": round(event.timestamp, 6),
        "ref": event.ref_name,
        "member": event.member,
    }
    if event.duration:
        payload["dur"] = round(event.duration, 6)
    if event.injected_delay:
        payload["delay"] = round(event.injected_delay, 6)
    if event.vc_snapshot is not None:
        # JSON object keys must be strings; thread ids are ints.
        payload["vc"] = {str(tid): counter for tid, counter in event.vc_snapshot.items()}
    return payload


def event_from_dict(payload: dict) -> AccessEvent:
    vc: Optional[Dict[int, int]] = None
    if "vc" in payload:
        vc = {int(tid): counter for tid, counter in payload["vc"].items()}
    return AccessEvent(
        location=Location(payload["loc"]),
        access_type=AccessType(payload["type"]),
        object_id=payload["oid"],
        thread_id=payload["tid"],
        timestamp=payload["ts"],
        ref_name=payload.get("ref", ""),
        member=payload.get("member", ""),
        duration=payload.get("dur", 0.0),
        injected_delay=payload.get("delay", 0.0),
        vc_snapshot=vc,
    )


def dump_events(events: Iterable[AccessEvent], fp: IO[str]) -> int:
    """Write events as JSON Lines; returns the number written."""
    count = 0
    for event in events:
        fp.write(json.dumps(event_to_dict(event), separators=(",", ":")))
        fp.write("\n")
        count += 1
    return count


def load_events(fp: IO[str]) -> Iterator[AccessEvent]:
    """Yield events from a JSON Lines stream, skipping blank lines."""
    for line in fp:
        line = line.strip()
        if line:
            yield event_from_dict(json.loads(line))
