"""Seeded synthetic preparation-run traces for analyzer benchmarking.

The real benchmark applications produce traces of a few thousand events
-- useful for correctness, useless for measuring how the analyzer scales.
This module procedurally generates trace shapes with the same
statistical structure the analyzer cares about (fork trees, shared
objects touched by several threads inside the near-miss window,
parent-child ordered accesses that exercise the section 4.1 pruning
path) at 100-1000x those event counts, from a single seed.

Two-phase design, which is what makes engine comparisons fair:

1. :func:`generate_trace` builds the event list and the *fork schedule*
   (a replay script interleaving thread forks with events in global
   time order) **without** any clock captures.  Object ids, event ids,
   timestamps and thread ids are fixed here, once.
2. :func:`attach_clocks` replays the schedule under a chosen
   ``hb_engine`` and stamps ``vc_snapshot`` onto the *same* event
   objects.

Because both engines annotate one shared event list, their injection
plans can be compared bit-for-bit without the process-global object-id
counter confound that back-to-back simulation runs suffer from.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Tuple

from ..sim.instrument import AccessEvent, AccessType, Location
from .tree_clock import make_clock
from .trace import Trace

#: Fork-schedule opcodes: ``("fork", parent_tid, child_tid)`` or
#: ``("event", index_into_trace_events)``.
ScheduleOp = Tuple


@dataclass
class SyntheticTrace:
    """A generated trace plus the replay schedule that clocks need."""

    trace: Trace
    schedule: List[ScheduleOp] = field(default_factory=list)
    #: Generation parameters, echoed for benchmark records.
    params: dict = field(default_factory=dict)

    @property
    def event_count(self) -> int:
        return len(self.trace.events)

    @property
    def thread_count(self) -> int:
        return len(self.trace.thread_names)


class _SynthThread:
    """The minimal thread shape ``inherit_to`` needs (a tid)."""

    __slots__ = ("tid",)

    def __init__(self, tid: int):
        self.tid = tid


def generate_trace(
    seed: int = 0,
    n_threads: int = 256,
    n_objects: int = 4_000,
    n_classes: int = 40,
    window_ms: float = 5.0,
    fork_bias: float = 0.6,
    uses_per_object: int = 4,
    related_fraction: float = 0.5,
) -> SyntheticTrace:
    """Build a clock-less synthetic preparation trace.

    Each object gets a lifecycle in one burst of virtual time: INIT by a
    creator thread, a handful of USEs by other threads inside the
    near-miss window (candidate material), sometimes a fork of a fresh
    child right after INIT whose USE is parent-child ordered (pruning
    material), and usually a DISPOSE closing the lifecycle (use-after-
    free material).  Bursts are spaced further apart than ``window_ms``
    so candidate structure stays local to a burst.

    ``fork_bias`` is the probability a new thread forks off the *most
    recently created* thread rather than a uniformly random live one;
    higher values grow deeper fork chains, which is exactly what
    separates O(depth) vector-clock dict captures from O(1) tree-clock
    stamps.  ``related_fraction`` is the probability a follow-up USE
    comes from a fork-chain ancestor of the creator instead of a random
    live thread: ancestor accesses are happens-before ordered, so they
    drive the section 4.1 pruning comparisons where the engines differ
    most (a full O(depth) dict scan versus an O(|depth difference|)
    chain walk).
    """
    rng = random.Random(seed)
    trace = Trace()
    schedule: List[ScheduleOp] = []
    events = trace.events

    root_tid = 1
    trace.thread_names[root_tid] = "synth-root"
    trace.parents[root_tid] = None
    alive: List[int] = [root_tid]
    next_tid = 2

    # Pre-build static site labels: objects of one class share sites, so
    # sites accumulate many dynamic instances like real traces do.
    init_sites = [Location("synth.C%d.__init__:%d" % (c, 10 + c)) for c in range(n_classes)]
    use_sites = [
        [Location("synth.C%d.use%d:%d" % (c, u, 30 + 3 * u)) for u in range(3)]
        for c in range(n_classes)
    ]
    dispose_sites = [Location("synth.C%d.dispose:%d" % (c, 90 + c)) for c in range(n_classes)]

    def emit(location, access_type, oid, tid, ts, duration=0.0) -> None:
        schedule.append(("event", len(events)))
        events.append(
            AccessEvent(
                location=location,
                access_type=access_type,
                object_id=oid,
                thread_id=tid,
                timestamp=ts,
                duration=duration,
            )
        )

    def fork(parent_tid: int) -> int:
        nonlocal next_tid
        child = next_tid
        next_tid += 1
        schedule.append(("fork", parent_tid, child))
        trace.thread_names[child] = "synth-%d" % child
        trace.parents[child] = parent_tid
        alive.append(child)
        return child

    # Pre-fork most of the thread budget into a spine-biased tree: each
    # new thread extends the *previous* one with probability
    # ``fork_bias`` (growing one long chain -- the shape that separates
    # O(depth) dict captures from O(1) stamps) and branches off a
    # random earlier thread otherwise. The remaining quarter of the
    # budget is spent on in-burst forks below, which create the
    # fork-ordered accesses the pruning path needs.
    prefork = max(1, (3 * n_threads) // 4)
    depths = {root_tid: 0}
    deepest = root_tid
    while len(alive) < prefork:
        parent = deepest if rng.random() < fork_bias else rng.choice(alive)
        child = fork(parent)
        depths[child] = depths[parent] + 1
        if depths[child] > depths[deepest]:
            deepest = child

    now = 0.0
    for oid in range(1, n_objects + 1):
        cls = rng.randrange(n_classes)
        # Creators come from the most recently forked (deepest) threads:
        # deep clocks are where the engines' costs diverge.
        creator = alive[rng.randrange(max(0, len(alive) - 64), len(alive))]

        emit(init_sites[cls], AccessType.INIT, oid, creator, now)

        # Fork-ordered follow-ups: each child's USE happens-after the
        # INIT through the fork, so the analyzer must prune it (section
        # 4.1); USEs of two sibling children are concurrent candidates.
        if len(alive) < n_threads and rng.random() < 0.5:
            for _ in range(rng.randrange(1, 3)):
                if len(alive) >= n_threads:
                    break
                child = fork(creator)
                now += rng.uniform(0.05, 0.4)
                emit(use_sites[cls][0], AccessType.USE, oid, child, now)

        # Concurrent USEs from already-live threads within the window:
        # genuine near-miss candidates. A ``related_fraction`` of them
        # come from a nearby fork-chain ancestor of the creator -- their
        # clock captures share a long common prefix with the creator's,
        # the worst case for dict comparison and the best for a chain
        # walk.
        for _ in range(rng.randrange(1, uses_per_object + 1)):
            other = None
            if rng.random() < related_fraction:
                node = creator
                for _ in range(rng.randrange(1, 11)):
                    parent = trace.parents.get(node)
                    if parent is None:
                        break
                    node = parent
                if node != creator:
                    other = node
            if other is None:
                other = rng.choice(alive)
            now += rng.uniform(0.05, window_ms / 3.0)
            emit(use_sites[cls][rng.randrange(3)], AccessType.USE, oid, other, now)

        # Close most lifecycles; a DISPOSE shortly after a USE by another
        # thread is the use-after-free near miss.
        if rng.random() < 0.8:
            now += rng.uniform(0.05, window_ms / 3.0)
            emit(dispose_sites[cls], AccessType.DISPOSE, oid, rng.choice(alive), now)

        # Space bursts beyond the window so objects stay independent.
        now += window_ms * rng.uniform(1.1, 2.0)

    trace.duration_ms = now
    return SyntheticTrace(
        trace=trace,
        schedule=schedule,
        params={
            "seed": seed,
            "n_threads": n_threads,
            "n_objects": n_objects,
            "n_classes": n_classes,
            "window_ms": window_ms,
            "fork_bias": fork_bias,
            "uses_per_object": uses_per_object,
            "related_fraction": related_fraction,
        },
    )


def attach_clocks(synth: SyntheticTrace, hb_engine: str) -> None:
    """Replay the fork schedule under ``hb_engine`` and stamp every event.

    Mutates ``vc_snapshot`` in place on the shared event list; calling
    again with the other engine swaps every capture while object ids,
    event ids and timestamps stay untouched -- the equal-footing setup
    for bit-identical plan comparisons.

    This is also the benchmark's proxy for the recording hook's clock
    work: one ``inherit_to`` per fork, one ``capture()`` per event,
    exactly what :class:`~repro.core.trace.RecordingHook` performs
    during a real preparation run.
    """
    events = synth.trace.events
    clocks = {1: make_clock(hb_engine, 1)}
    for op in synth.schedule:
        if op[0] == "event":
            event = events[op[1]]
            event.vc_snapshot = clocks[event.thread_id].capture()
        else:
            _, parent_tid, child_tid = op
            child = _SynthThread(child_tid)
            clocks[child_tid] = clocks[parent_tid].inherit_to(None, child)
