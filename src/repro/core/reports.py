"""Bug reports.

Section 5: "Waffle reports a bug only when the target binary raises a
NULL reference exception as a consequence of the delay injection
performed. At that time, the relevant run-time context (i.e., faulty
input, candidate locations involved, stack traces for all threads, and
delay value information) is recorded as part of the bug report."
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..sim.errors import NullReferenceError
from ..sim.instrument import Location
from .candidates import CandidateKind, CandidatePair
from .interference import DelayInterval


@dataclass
class BugReport:
    """A manifested MemOrder bug and the context that exposed it."""

    #: Name of the tool that produced the report.
    tool: str
    #: Name of the test input that triggered the bug ("faulty input").
    workload: str
    #: Static location of the faulting access.
    fault_location: Optional[Location]
    #: Name of the reference that was null/disposed.
    ref_name: str
    #: Thread that performed the faulting access.
    thread_name: str
    #: Exception class name (NullReferenceError / ObjectDisposedError).
    error_type: str
    #: Virtual time of the manifestation within its run.
    fault_time_ms: float
    #: 1-based index of the run (within the tool session) that crashed.
    run_index: int
    #: Candidate pairs involving the faulting location.
    matched_pairs: List[CandidatePair] = field(default_factory=list)
    #: Delays that were ongoing when the bug manifested.
    active_delays: List[DelayInterval] = field(default_factory=list)
    #: Total delays injected in the crashing run up to the fault.
    delays_injected: int = 0
    #: Whether any delay was injected before the fault (a report with
    #: False would be a spontaneous crash, which the tools never claim
    #: credit for -- the zero-false-positive property of section 6.4).
    delay_induced: bool = False
    #: Per-thread stack labels at crash time.
    stacks: Dict[str, List[str]] = field(default_factory=dict)

    @property
    def fault_site(self) -> str:
        return self.fault_location.site if self.fault_location else ""

    def to_dict(self) -> dict:
        """JSON-safe form; the shared schema of cached detect records
        and bug dossiers (round-tripped by ``core.persistence``)."""
        return {
            "tool": self.tool,
            "workload": self.workload,
            "fault_location": self.fault_location.site if self.fault_location else None,
            "ref_name": self.ref_name,
            "thread_name": self.thread_name,
            "error_type": self.error_type,
            "fault_time_ms": self.fault_time_ms,
            "run_index": self.run_index,
            "matched_pairs": [
                {
                    "kind": pair.kind.value,
                    "delay_location": pair.delay_location.site,
                    "other_location": pair.other_location.site,
                }
                for pair in self.matched_pairs
            ],
            "active_delays": [
                {
                    "site": interval.site,
                    "thread_id": interval.thread_id,
                    "start": interval.start,
                    "end": interval.end,
                }
                for interval in self.active_delays
            ],
            "delays_injected": self.delays_injected,
            "delay_induced": self.delay_induced,
            "stacks": {name: list(frames) for name, frames in self.stacks.items()},
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "BugReport":
        fault_location = payload.get("fault_location")
        return cls(
            tool=payload["tool"],
            workload=payload["workload"],
            fault_location=Location(fault_location) if fault_location else None,
            ref_name=payload.get("ref_name", ""),
            thread_name=payload.get("thread_name", ""),
            error_type=payload["error_type"],
            fault_time_ms=payload.get("fault_time_ms", 0.0),
            run_index=payload.get("run_index", 0),
            matched_pairs=[
                CandidatePair(
                    kind=CandidateKind(entry["kind"]),
                    delay_location=Location(entry["delay_location"]),
                    other_location=Location(entry["other_location"]),
                )
                for entry in payload.get("matched_pairs", ())
            ],
            active_delays=[
                DelayInterval(
                    site=entry["site"],
                    thread_id=entry["thread_id"],
                    start=entry["start"],
                    end=entry["end"],
                )
                for entry in payload.get("active_delays", ())
            ],
            delays_injected=payload.get("delays_injected", 0),
            delay_induced=payload.get("delay_induced", False),
            stacks={
                name: list(frames)
                for name, frames in payload.get("stacks", {}).items()
            },
        )

    def summary(self) -> str:
        pairs = "; ".join(str(p) for p in self.matched_pairs) or "(no matched pair)"
        return (
            "%s: %s on ref %r at %s (thread %s, t=%.2fms, run %d) -- %s"
            % (
                self.tool,
                self.error_type,
                self.ref_name,
                self.fault_site or "?",
                self.thread_name,
                self.fault_time_ms,
                self.run_index,
                pairs,
            )
        )


def build_report(
    tool: str,
    workload: str,
    error: BaseException,
    run_index: int,
    fault_time_ms: float,
    matched_pairs: List[CandidatePair],
    active_delays: List[DelayInterval],
    delays_injected: int,
    stacks: Optional[Dict[str, List[str]]] = None,
) -> BugReport:
    """Assemble a report from a captured thread failure."""
    location = getattr(error, "location", None)
    return BugReport(
        tool=tool,
        workload=workload,
        fault_location=location,
        ref_name=getattr(error, "ref_name", "") or "",
        thread_name=getattr(error, "thread_name", "") or "",
        error_type=type(error).__name__,
        fault_time_ms=fault_time_ms,
        run_index=run_index,
        matched_pairs=list(matched_pairs),
        active_delays=list(active_delays),
        delays_injected=delays_injected,
        delay_induced=delays_injected > 0,
        stacks=dict(stacks or {}),
    )
