"""Injection-probability decay and delay-length policies.

*Probability decay* (section 2, inherited from Tsvd by every tool in
the family): each delay location starts with injection probability 1.0;
every injection that fails to expose a bug lowers it by a constant
lambda; at 0 the location is retired and all candidate pairs delayed at
it are removed from S.

*Delay length* (section 4.3): WaffleBasic/Tsvd inject a fixed-length
delay; Waffle injects ``alpha * len(l)`` where ``len(l)`` is the largest
init-use / use-dispose gap observed at ``l`` during the delay-free
preparation run.
"""

from __future__ import annotations

from typing import Dict


class DecayState:
    """Per-location injection probabilities, persisted across runs.

    Section 5: "After each detection run, the new delay probabilities
    are saved on disk and used to bootstrap the next detection run."
    The same object is threaded through a tool's successive runs (and
    can be serialized via :meth:`to_dict`).
    """

    def __init__(self, decay_lambda: float = 0.1):
        if not 0 < decay_lambda <= 1:
            raise ValueError("decay lambda must be in (0, 1]")
        self.decay_lambda = decay_lambda
        self._probabilities: Dict[str, float] = {}

    def register(self, site: str, reset: bool = False) -> float:
        """Ensure ``site`` has a probability; optionally reset it to 1.

        Online tools reset to 1.0 when a pair is (re)added to S after a
        removal -- there are no tombstones, matching Tsvd's behavior of
        treating a rediscovered candidate as fresh.
        """
        if reset or site not in self._probabilities:
            self._probabilities[site] = 1.0
        return self._probabilities[site]

    def probability(self, site: str) -> float:
        return self._probabilities.get(site, 0.0)

    #: Probabilities below this threshold are clamped to exactly zero,
    #: so repeated float subtraction cannot leave a location limping
    #: along at p = 1e-16 instead of being retired.
    EPSILON = 1e-9

    def decay(self, site: str) -> float:
        """Apply one failed-injection decay; returns the new probability."""
        current = self._probabilities.get(site, 0.0)
        updated = current - self.decay_lambda
        if updated < self.EPSILON:
            updated = 0.0
        self._probabilities[site] = updated
        return updated

    def retired(self, site: str) -> bool:
        return self._probabilities.get(site, 1.0) <= 0.0

    def known_sites(self):
        return list(self._probabilities)

    def to_dict(self) -> dict:
        return {
            "decay_lambda": self.decay_lambda,
            "probabilities": dict(self._probabilities),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "DecayState":
        state = cls(decay_lambda=payload.get("decay_lambda", 0.1))
        state._probabilities = dict(payload.get("probabilities", {}))
        return state


class DelayLengthPolicy:
    """Chooses how long a delay at a given location should be."""

    def length_for(self, site: str) -> float:
        raise NotImplementedError


class FixedDelayPolicy(DelayLengthPolicy):
    """WaffleBasic/Tsvd: one fixed length for every location."""

    def __init__(self, fixed_delay_ms: float):
        if fixed_delay_ms <= 0:
            raise ValueError("fixed delay must be positive")
        self.fixed_delay_ms = fixed_delay_ms

    def length_for(self, site: str) -> float:
        return self.fixed_delay_ms


class ProportionalDelayPolicy(DelayLengthPolicy):
    """Waffle: ``alpha * len(site)``, clamped below by a minimum.

    ``lengths`` maps site -> the largest gap observed in the preparation
    run; locations absent from the map (which should not be delayed at
    all under Waffle's plan) fall back to the minimum.
    """

    def __init__(self, lengths: Dict[str, float], alpha: float, min_delay_ms: float):
        if alpha < 1.0:
            raise ValueError("alpha must be >= 1 (delay must cover the observed gap)")
        self.lengths = dict(lengths)
        self.alpha = alpha
        self.min_delay_ms = min_delay_ms

    def length_for(self, site: str) -> float:
        base = self.lengths.get(site, 0.0)
        return max(self.min_delay_ms, self.alpha * base)

    def update(self, site: str, gap_ms: float) -> None:
        """Fold in a newly observed gap (used by the online/no-prep
        ablation, which learns lengths while injecting)."""
        if gap_ms > self.lengths.get(site, 0.0):
            self.lengths[site] = gap_ms
