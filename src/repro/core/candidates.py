"""MemOrder bug candidates and the candidate set S.

A candidate is an (ordered) pair of static locations {l1, l2} such that
delaying the operation at l1 may reverse its order with the operation at
l2 and expose a MemOrder bug (section 3.1):

* **use-before-initialization** -- l1 is an *initialization*, l2 is a
  *use* that followed it closely; delaying the initialization may push
  it after the use.
* **use-after-free** -- l1 is a *use*, l2 is a *disposal* that followed
  it closely; delaying the use may push it after the disposal.

In both cases l1 is the **delay location**.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Set, Tuple

from ..sim.instrument import AccessType, Location


class CandidateKind(enum.Enum):
    USE_BEFORE_INIT = "use_before_init"
    USE_AFTER_FREE = "use_after_free"
    #: Thread-safety violation candidates (the Tsvd baseline): two
    #: thread-unsafe API calls on the same object from different
    #: threads. Kept in the same container so Table 2's site counts are
    #: computed uniformly.
    THREAD_SAFETY = "thread_safety"

    @staticmethod
    def from_access_pair(first: AccessType, second: AccessType) -> Optional["CandidateKind"]:
        """Classify an (earlier, later) access pair, or None if it is not
        a MemOrder near-miss pattern."""
        if first is AccessType.INIT and second is AccessType.USE:
            return CandidateKind.USE_BEFORE_INIT
        if first is AccessType.USE and second is AccessType.DISPOSE:
            return CandidateKind.USE_AFTER_FREE
        return None


@dataclass(frozen=True)
class CandidatePair:
    """One entry of the candidate set S.

    ``delay_location`` is l1 (where delays are injected) and
    ``other_location`` is l2 (whose operation the delay tries to get
    reordered against). Pairs are deduplicated at static-location
    granularity; dynamic gap observations are aggregated separately.
    """

    kind: CandidateKind
    delay_location: Location
    other_location: Location

    def key(self) -> Tuple[str, str, str]:
        return (self.kind.value, self.delay_location.site, self.other_location.site)

    def __str__(self) -> str:
        return "%s{delay@%s, vs %s}" % (
            self.kind.value,
            self.delay_location.site,
            self.other_location.site,
        )


@dataclass
class GapObservation:
    """One dynamic near-miss occurrence backing a candidate pair."""

    gap_ms: float
    timestamp_first: float
    timestamp_second: float
    object_id: int
    thread_first: int
    thread_second: int


#: Shared empty observation list for pairs recorded without gaps.
_NO_OBSERVATIONS: List[GapObservation] = []


class CandidateSet:
    """The mutable candidate set S with per-pair gap observations.

    Waffle builds it offline from the preparation trace; WaffleBasic and
    Tsvd mutate it online while the program runs. Both use the same
    container so the harness can report candidate/injection-site counts
    uniformly (Table 2).
    """

    def __init__(self) -> None:
        self._pairs: Dict[Tuple[str, str, str], CandidatePair] = {}
        self._gaps: Dict[Tuple[str, str, str], List[GapObservation]] = {}
        #: Running per-pair max gap, so the section 4.3 delay-length
        #: query is O(1) instead of a scan over every observation.
        self._max_gap: Dict[Tuple[str, str, str], float] = {}
        #: Site-keyed indices so the per-access hot path (is this
        #: location a delay location? which pairs watch it?) is a dict
        #: lookup instead of a scan over all of S.
        self._by_delay: Dict[str, Dict[Tuple[str, str, str], CandidatePair]] = {}
        self._by_other: Dict[str, Dict[Tuple[str, str, str], CandidatePair]] = {}
        #: Pairs removed by pruning/inference, kept for statistics.
        self.pruned_parent_child: int = 0
        self.pruned_hb_inference: int = 0
        #: Lifetime churn: pairs ever added/removed (telemetry; a pair
        #: re-added after removal counts again).
        self.added_total: int = 0
        self.removed_total: int = 0
        #: Removal provenance for the coverage observatory: one
        #: ``(pair_key, reason)`` per removal, in order. Reasons:
        #: ``retired`` (injection budget exhausted, the Tsvd rule),
        #: ``hb_inference`` (happens-before inference dropped the pair),
        #: or ``""`` for untagged removals.
        self.removal_log: List[Tuple[Tuple[str, str, str], str]] = []
        from .. import obs

        self._obs = obs.session()
        self._fr = obs.flightrec.recorder()

    def __len__(self) -> int:
        return len(self._pairs)

    def __iter__(self) -> Iterator[CandidatePair]:
        return iter(list(self._pairs.values()))

    def __contains__(self, pair: CandidatePair) -> bool:
        return pair.key() in self._pairs

    def add(self, pair: CandidatePair, observation: Optional[GapObservation] = None) -> bool:
        """Insert (or refresh) a pair; returns True if it was new."""
        key = pair.key()
        is_new = key not in self._pairs
        self._pairs[key] = pair
        if is_new:
            self._by_delay.setdefault(pair.delay_location.site, {})[key] = pair
            self._by_other.setdefault(pair.other_location.site, {})[key] = pair
            self.added_total += 1
            if self._obs is not None:
                self._obs.c_cand_added.inc()
        if observation is not None:
            self._record_gap(key, observation)
        return is_new

    def _record_gap(self, key: Tuple[str, str, str], observation: GapObservation) -> None:
        self._gaps.setdefault(key, []).append(observation)
        gap = observation.gap_ms
        if gap > self._max_gap.get(key, 0.0):
            self._max_gap[key] = gap

    def remove(self, pair: CandidatePair, reason: str = "") -> None:
        key = pair.key()
        removed = self._pairs.pop(key, None)
        self._gaps.pop(key, None)
        self._max_gap.pop(key, None)
        if removed is not None:
            self._unindex(removed, key)
            self.removed_total += 1
            self.removal_log.append((key, reason))
            if self._obs is not None:
                self._obs.c_cand_removed.inc()
            if self._fr is not None:
                self._fr.record(
                    "pair_removed",
                    kind=key[0], delay_site=key[1], other_site=key[2],
                    reason=reason,
                )

    def _unindex(self, pair: CandidatePair, key: Tuple[str, str, str]) -> None:
        for index, site in (
            (self._by_delay, pair.delay_location.site),
            (self._by_other, pair.other_location.site),
        ):
            bucket = index.get(site)
            if bucket is not None:
                bucket.pop(key, None)
                if not bucket:
                    del index[site]

    def remove_with_delay_location(
        self, location: Location, reason: str = "retired"
    ) -> List[CandidatePair]:
        """Drop every pair whose delay location is ``location`` (the
        Tsvd rule when a location's injection probability reaches 0)."""
        doomed = list(self._by_delay.get(location.site, {}).values())
        for pair in doomed:
            self.remove(pair, reason=reason)
        return doomed

    def has_delay_location(self, location: Location) -> bool:
        """O(1) hot-path check: is any pair injecting at ``location``?"""
        return location.site in self._by_delay

    def pairs_for_delay_location(self, location: Location) -> List[CandidatePair]:
        bucket = self._by_delay.get(location.site)
        return list(bucket.values()) if bucket else []

    def pairs_watching(self, location: Location) -> List[CandidatePair]:
        """Pairs whose *other* location is ``location``."""
        bucket = self._by_other.get(location.site)
        return list(bucket.values()) if bucket else []

    def observations(self, pair: CandidatePair) -> List[GapObservation]:
        return list(self._gaps.get(pair.key(), ()))

    def iter_gap_items(self) -> Iterator[Tuple[CandidatePair, List[GapObservation]]]:
        """(pair, observations) without defensive copies; read-only use.

        The batched interference pass iterates every observation of
        every pair -- copying each list first would dominate it.
        """
        gaps = self._gaps
        for key, pair in self._pairs.items():
            yield pair, gaps.get(key, _NO_OBSERVATIONS)

    def max_gap(self, pair: CandidatePair) -> float:
        """Largest observed |tau1 - tau2| for the pair (section 4.3)."""
        return self._max_gap.get(pair.key(), 0.0)

    @property
    def delay_locations(self) -> Set[Location]:
        """The injection sites: every pair's l1 (Table 2, "Injection Sites")."""
        return {Location(site) for site in self._by_delay}

    @property
    def locations(self) -> Set[Location]:
        out: Set[Location] = set()
        for pair in self._pairs.values():
            out.add(pair.delay_location)
            out.add(pair.other_location)
        return out

    def merge(self, other: "CandidateSet") -> None:
        for pair in other:
            self.add(pair)
            key = pair.key()
            for obs in other.observations(pair):
                self._record_gap(key, obs)

    def to_dict(self) -> dict:
        """JSON-serializable form (section 5: the analysis results are
        saved on disk and bootstrap future detection runs)."""
        return {
            "pairs": [
                {
                    "kind": pair.kind.value,
                    "delay_location": pair.delay_location.site,
                    "other_location": pair.other_location.site,
                    "gaps": [
                        {
                            "gap_ms": obs.gap_ms,
                            "t1": obs.timestamp_first,
                            "t2": obs.timestamp_second,
                            "object_id": obs.object_id,
                            "thread_first": obs.thread_first,
                            "thread_second": obs.thread_second,
                        }
                        for obs in self._gaps.get(pair.key(), ())
                    ],
                }
                for pair in self._pairs.values()
            ],
            "pruned_parent_child": self.pruned_parent_child,
            "pruned_hb_inference": self.pruned_hb_inference,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "CandidateSet":
        out = cls()
        for entry in payload.get("pairs", ()):
            pair = CandidatePair(
                kind=CandidateKind(entry["kind"]),
                delay_location=Location(entry["delay_location"]),
                other_location=Location(entry["other_location"]),
            )
            out.add(pair)
            key = pair.key()
            for gap in entry.get("gaps", ()):
                out._record_gap(
                    key,
                    GapObservation(
                        gap_ms=gap["gap_ms"],
                        timestamp_first=gap["t1"],
                        timestamp_second=gap["t2"],
                        object_id=gap["object_id"],
                        thread_first=gap["thread_first"],
                        thread_second=gap["thread_second"],
                    ),
                )
        out.pruned_parent_child = payload.get("pruned_parent_child", 0)
        out.pruned_hb_inference = payload.get("pruned_hb_inference", 0)
        return out
