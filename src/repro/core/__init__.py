"""Waffle core: trace analysis and delay-injection runtimes.

See DESIGN.md section 3.2. Public entry point: :class:`Waffle`.
"""

from .analyzer import AnalysisStats, InjectionPlan, analyze_trace
from .candidates import CandidateKind, CandidatePair, CandidateSet, GapObservation
from .config import DEFAULT_CONFIG, WaffleConfig
from .delay_policy import (
    DecayState,
    DelayLengthPolicy,
    FixedDelayPolicy,
    ProportionalDelayPolicy,
)
from .detector import DetectionOutcome, RunRecord, ToolDriver, Waffle, Workload, as_workload
from .interference import (
    ActiveDelayLedger,
    DelayInterval,
    InterferenceIndex,
    build_interference_set,
)
from .nearmiss import NearMissTracker, TsvNearMissTracker
from .reports import BugReport, build_report
from .runtime import InjectionEngine, OnlineInjectionHook, PlannedInjectionHook
from .trace import RecordingHook, Trace
from .vector_clock import ThreadVectorClock, concurrent, leq, ordered

__all__ = [
    "AnalysisStats",
    "InjectionPlan",
    "analyze_trace",
    "CandidateKind",
    "CandidatePair",
    "CandidateSet",
    "GapObservation",
    "DEFAULT_CONFIG",
    "WaffleConfig",
    "DecayState",
    "DelayLengthPolicy",
    "FixedDelayPolicy",
    "ProportionalDelayPolicy",
    "DetectionOutcome",
    "RunRecord",
    "ToolDriver",
    "Waffle",
    "Workload",
    "as_workload",
    "ActiveDelayLedger",
    "DelayInterval",
    "InterferenceIndex",
    "build_interference_set",
    "NearMissTracker",
    "TsvNearMissTracker",
    "BugReport",
    "build_report",
    "InjectionEngine",
    "OnlineInjectionHook",
    "PlannedInjectionHook",
    "RecordingHook",
    "Trace",
    "ThreadVectorClock",
    "concurrent",
    "leq",
    "ordered",
]
