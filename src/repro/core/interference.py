"""Delay-interference analysis and the runtime interference guard.

Section 4.4: a delay planned for location ``l*`` on thread Thd2
interferes with a delay planned for ``l1`` on thread Thd1 when, for a
candidate pair {l1, l2}, (1) ``l*`` executes before ``l2`` on Thd2 --
so delaying it would block Thd2 and cancel the reordering the ``l1``
delay is trying to achieve -- and (2) ``l*`` executes shortly before
``l1`` or between ``l1`` and ``l2`` (the *interference window*,
Figure 5).

Waffle computes the interference set I from the preparation trace:
when a pair {l1, l2} is identified at the moment ``l2`` executes (time
tau2), it scans the operations performed by ``l2``'s thread in the
window [tau1 - delta, tau2]; any candidate delay location found there
becomes an interference partner of ``l1``. Self-interference (another
dynamic instance of ``l1`` itself, the Figure 4b pattern) is included.

At run time, a delay is *skipped* (not deferred) when any currently
ongoing delay was injected at an interfering location.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Set, Tuple

from ..sim.instrument import AccessEvent
from .candidates import CandidateSet

#: An interference pair is an unordered set of one or two sites (one
#: site only for self-interference).
InterferencePair = FrozenSet[str]


def build_interference_set(
    events: List[AccessEvent],
    candidates: CandidateSet,
    window_ms: float,
) -> Set[InterferencePair]:
    """Compute I from a (sorted) preparation-run event list.

    Runs as a second pass with the *final* candidate set, which catches
    strictly more interference than the paper's single online pass
    (where ``l*`` must already be a candidate when ``l2`` executes);
    the difference only adds conservatism.

    The scan is columnar: per-thread timelines hold *only* occurrences
    of candidate delay sites (anything else can never join I), split
    into a float timestamp array -- so the window bisects compare
    primitives, not tuples -- and a parallel site array. Restricting
    the timeline and bisecting on bare floats is observation-preserving:
    non-delay-site entries were skipped inside the window loop anyway,
    and the tuple sentinels ``(x, "")`` / ``(x, "\\uffff")`` bounded the
    very same index range a plain-timestamp bisect yields.
    """
    delay_sites = {loc.site for loc in candidates.delay_locations}
    if not delay_sites:
        return set()

    # Per-thread delay-site timelines, timestamps and sites in parallel.
    ts_by_thread: Dict[int, List[float]] = {}
    site_by_thread: Dict[int, List[str]] = {}
    for event in events:
        if event.access_type.is_memorder:
            site = event.location.site
            if site in delay_sites:
                thread_id = event.thread_id
                stamps = ts_by_thread.get(thread_id)
                if stamps is None:
                    stamps = ts_by_thread[thread_id] = []
                    site_by_thread[thread_id] = []
                stamps.append(event.timestamp)
                site_by_thread[thread_id].append(site)

    interference: Set[InterferencePair] = set()
    add = interference.add
    for pair, observations in candidates.iter_gap_items():
        if not observations:
            continue
        l1_site = pair.delay_location.site
        l2_site = pair.other_location.site
        for obs in observations:
            stamps = ts_by_thread.get(obs.thread_second)
            if not stamps:
                continue
            t2 = obs.timestamp_second
            lo = bisect_left(stamps, obs.timestamp_first - window_ms)
            hi = bisect_right(stamps, t2)
            if lo == hi:
                continue
            sites = site_by_thread[obs.thread_second]
            for index in range(lo, hi):
                site = sites[index]
                if stamps[index] == t2 and site == l2_site:
                    # This is the l2 occurrence itself, not a preceding op.
                    continue
                add(frozenset((l1_site, site)))
    return interference


class InterferenceIndex:
    """Fast site -> conflicting-sites lookup built from I."""

    def __init__(self, pairs: Iterable[InterferencePair] = ()):
        self._conflicts: Dict[str, Set[str]] = {}
        for pair in pairs:
            self.add(pair)

    def add(self, pair: InterferencePair) -> None:
        sites = list(pair)
        if len(sites) == 1:
            a = b = sites[0]
        else:
            a, b = sites
        self._conflicts.setdefault(a, set()).add(b)
        self._conflicts.setdefault(b, set()).add(a)

    def conflicts_of(self, site: str) -> Set[str]:
        return self._conflicts.get(site, set())

    def conflicts_with_any(self, site: str, active_sites: Iterable[str]) -> bool:
        conflicts = self._conflicts.get(site)
        if not conflicts:
            return False
        return any(active in conflicts for active in active_sites)

    def __len__(self) -> int:
        return sum(len(v) for v in self._conflicts.values())

    def pairs(self) -> Set[InterferencePair]:
        out: Set[InterferencePair] = set()
        for site, conflicts in self._conflicts.items():
            for other in conflicts:
                out.add(frozenset((site, other)))
        return out


@dataclass
class DelayInterval:
    """One injected delay, for ledger bookkeeping and overlap metrics."""

    site: str
    thread_id: int
    start: float
    end: float

    @property
    def duration(self) -> float:
        return self.end - self.start


class ActiveDelayLedger:
    """Tracks which delays are ongoing at the current virtual time.

    Used by the runtime both to enforce interference control ("no delay
    gets injected at l* as long as there is another delay concurrently
    injected at a location interfering with l*") and to account for the
    delay-overlap statistics of section 3.3.
    """

    def __init__(self) -> None:
        self._active: List[DelayInterval] = []
        #: Complete history of injected delays (for metrics).
        self.history: List[DelayInterval] = []

    def register(self, site: str, thread_id: int, start: float, duration: float) -> DelayInterval:
        interval = DelayInterval(site=site, thread_id=thread_id, start=start, end=start + duration)
        self._active.append(interval)
        self.history.append(interval)
        return interval

    def active_sites(self, now: float) -> List[str]:
        self._prune(now)
        return [interval.site for interval in self._active]

    def active_intervals(self, now: float) -> List[DelayInterval]:
        self._prune(now)
        return list(self._active)

    def _prune(self, now: float) -> None:
        if self._active:
            self._active = [interval for interval in self._active if interval.end > now]

    # -- Metrics (section 3.3's overlap ratio) -------------------------

    @property
    def total_delay_ms(self) -> float:
        return sum(interval.duration for interval in self.history)

    @property
    def count(self) -> int:
        return len(self.history)

    def projection_ms(self) -> float:
        """Length of the union ("time projection") of all delay intervals."""
        if not self.history:
            return 0.0
        spans = sorted((i.start, i.end) for i in self.history)
        total = 0.0
        cur_start, cur_end = spans[0]
        for start, end in spans[1:]:
            if start > cur_end:
                total += cur_end - cur_start
                cur_start, cur_end = start, end
            else:
                cur_end = max(cur_end, end)
        total += cur_end - cur_start
        return total

    def overlap_ratio(self) -> float:
        """1 - projection/total: 0 when no delays overlap, -> 1 when all do."""
        total = self.total_delay_ms
        if total <= 0:
            return 0.0
        return max(0.0, 1.0 - self.projection_ms() / total)
