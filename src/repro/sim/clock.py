"""Virtual clock for the concurrency simulator.

All timing in the reproduction -- near-miss windows, delay lengths,
overhead measurements -- is expressed in *virtual milliseconds*. Using a
virtual clock instead of wall-clock time makes every experiment
deterministic and makes the "slowdown" numbers of the paper's tables
reproducible ratios rather than noisy measurements.
"""

from __future__ import annotations


class VirtualClock:
    """A monotonically advancing clock measured in float milliseconds."""

    __slots__ = ("_now",)

    def __init__(self, start: float = 0.0):
        self._now = float(start)

    @property
    def now(self) -> float:
        """Current virtual time in milliseconds."""
        return self._now

    def advance(self, delta_ms: float) -> float:
        """Move the clock forward by ``delta_ms`` milliseconds.

        Returns the new time. Negative deltas are rejected: virtual time,
        like physical time in the instrumented runs of the paper, only
        moves forward.
        """
        if delta_ms < 0:
            raise ValueError("virtual clock cannot move backwards (delta=%r)" % delta_ms)
        self._now += delta_ms
        return self._now

    def advance_to(self, timestamp_ms: float) -> float:
        """Jump the clock forward to an absolute timestamp.

        Used by the scheduler when the next runnable thread wakes in the
        future. A timestamp in the past is a no-op rather than an error,
        because several threads may share the same wake time.
        """
        if timestamp_ms > self._now:
            self._now = float(timestamp_ms)
        return self._now

    def __repr__(self) -> str:
        return "VirtualClock(now=%.4fms)" % self._now
