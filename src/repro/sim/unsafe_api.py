"""Thread-unsafe collection APIs (the TSVD instrumentation class).

Tsvd (paper section 2) instruments *call sites of thread-unsafe APIs*
and reports a thread-safety violation (TSV) when the execution windows
of two such calls on the same object overlap. To reproduce the Table 2
comparison between TSV and MemOrder instrumentation densities -- and to
host a working TSVD baseline -- the simulator provides thread-unsafe
collections whose operations have non-zero execution windows.

The collections *function* correctly in the simulator (we do not model
torn internal state); what matters for the reproduction is the overlap
oracle, which the simulation records as :class:`TsvOccurrence` values.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional

from .instrument import Location
from .refs import HeapObject

#: API names considered thread-unsafe, mirroring the paper's examples of
#: non-thread-safe .NET collection operations.
THREAD_UNSAFE_APIS = frozenset(
    {
        "add",
        "remove",
        "get",
        "set",
        "clear",
        "append",
        "pop",
        "insert",
        "resize",
        "enumerate",
    }
)


@dataclass(frozen=True)
class TsvOccurrence:
    """Two thread-unsafe calls whose execution windows overlapped."""

    location_a: Location
    location_b: Location
    object_id: int
    thread_a: int
    thread_b: int
    timestamp: float


class UnsafeCollection(HeapObject):
    """Base class for collections with thread-unsafe operations."""

    __slots__ = ()

    def apply(self, api: str, *args: Any) -> Any:
        """Execute the semantic effect of ``api`` (at call-window end)."""
        raise NotImplementedError


class UnsafeDict(UnsafeCollection):
    """A dictionary whose operations are thread-unsafe."""

    __slots__ = ()

    def __init__(self, type_name: str = "UnsafeDict"):
        super().__init__(type_name)
        self.fields["data"] = {}

    @property
    def data(self) -> Dict[Any, Any]:
        return self.fields["data"]

    def apply(self, api: str, *args: Any) -> Any:
        data = self.data
        if api == "add" or api == "set":
            key, value = args
            data[key] = value
            return None
        if api == "get":
            (key,) = args
            return data.get(key)
        if api == "remove":
            (key,) = args
            return data.pop(key, None)
        if api == "clear":
            data.clear()
            return None
        if api == "enumerate":
            return list(data.items())
        raise ValueError("UnsafeDict does not support API %r" % api)


class UnsafeList(UnsafeCollection):
    """A list whose operations are thread-unsafe."""

    __slots__ = ()

    def __init__(self, type_name: str = "UnsafeList"):
        super().__init__(type_name)
        self.fields["items"] = []

    @property
    def items(self) -> List[Any]:
        return self.fields["items"]

    def apply(self, api: str, *args: Any) -> Any:
        items = self.items
        if api == "add" or api == "append":
            (value,) = args
            items.append(value)
            return None
        if api == "pop":
            return items.pop() if items else None
        if api == "get":
            (index,) = args
            return items[index] if 0 <= index < len(items) else None
        if api == "remove":
            (value,) = args
            if value in items:
                items.remove(value)
            return None
        if api == "clear":
            items.clear()
            return None
        if api == "insert":
            index, value = args
            items.insert(index, value)
            return None
        if api == "enumerate":
            return list(items)
        raise ValueError("UnsafeList does not support API %r" % api)


class ActiveCallTable:
    """Tracks in-flight thread-unsafe calls to detect window overlaps."""

    def __init__(self) -> None:
        #: object id -> list of (thread_id, location, end_time)
        self._active: Dict[int, List[Any]] = {}
        self.occurrences: List[TsvOccurrence] = []

    def begin(
        self,
        object_id: int,
        thread_id: int,
        location: Location,
        now: float,
        end_time: float,
    ) -> Optional[TsvOccurrence]:
        """Register a call start; report an overlap with any live call
        on the same object from a *different* thread."""
        calls = self._active.setdefault(object_id, [])
        # Garbage-collect calls whose windows already closed.
        calls[:] = [entry for entry in calls if entry[2] > now]
        hit: Optional[TsvOccurrence] = None
        for other_tid, other_loc, _ in calls:
            if other_tid != thread_id:
                hit = TsvOccurrence(
                    location_a=other_loc,
                    location_b=location,
                    object_id=object_id,
                    thread_a=other_tid,
                    thread_b=thread_id,
                    timestamp=now,
                )
                self.occurrences.append(hit)
                break
        calls.append((thread_id, location, end_time))
        return hit

    def end(self, object_id: int, thread_id: int, location: Location) -> None:
        calls = self._active.get(object_id)
        if not calls:
            return
        for index, (tid, loc, _) in enumerate(calls):
            if tid == thread_id and loc == location:
                del calls[index]
                break
