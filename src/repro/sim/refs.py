"""Heap objects and nullable reference slots.

The paper's MemOrder bugs are defined over *reference-type variables*:
an **initialization** changes a reference from null to non-null, a
**disposal** changes it from non-null to null (or calls ``Dispose()``),
and a **use** is any member-field access or member-method call through
the reference (section 3.1). This module provides those semantics:

* :class:`HeapObject` -- an allocated object with fields and an id;
* :class:`Ref` -- a named, nullable slot holding a :class:`HeapObject`.

Dereferencing a null :class:`Ref` raises
:class:`~repro.sim.errors.NullReferenceError`; using a disposed object
raises :class:`~repro.sim.errors.ObjectDisposedError` (a subclass).
These are the bug oracles.
"""

from __future__ import annotations

import itertools
from typing import Any, Dict, Optional

from .errors import NullReferenceError, ObjectDisposedError


class HeapObject:
    """A simulated heap allocation.

    Fields are plain Python values; reference-typed state is modeled by
    storing :class:`Ref` instances in fields or in application objects.
    ``disposed`` marks objects whose ``Dispose()`` ran: member access on
    a disposed object fails even if some reference still points at it.
    """

    __slots__ = ("oid", "type_name", "fields", "disposed")

    _oid_counter = itertools.count(1)

    def __init__(self, type_name: str, **fields: Any):
        self.oid = next(HeapObject._oid_counter)
        self.type_name = type_name
        self.fields: Dict[str, Any] = dict(fields)
        self.disposed = False

    def __repr__(self) -> str:
        return "<%s #%d%s>" % (self.type_name, self.oid, " (disposed)" if self.disposed else "")


class Ref:
    """A named nullable reference slot.

    The *name* identifies the variable in bug reports (e.g.
    ``"m_poller"``); the slot's identity is irrelevant to the detection
    algorithms, which key on the ids of the objects flowing through it.
    """

    __slots__ = ("name", "value")

    def __init__(self, name: str, value: Optional[HeapObject] = None):
        self.name = name
        self.value = value

    @property
    def is_null(self) -> bool:
        return self.value is None

    def require(self, location=None, thread_name: str = "") -> HeapObject:
        """Dereference, raising the appropriate MemOrder failure when invalid."""
        value = self.value
        if value is None:
            raise NullReferenceError(
                "null reference %r dereferenced at %s" % (self.name, location),
                location=location,
                ref_name=self.name,
                thread_name=thread_name,
            )
        if value.disposed:
            raise ObjectDisposedError(
                "disposed object %r used through %r at %s" % (value, self.name, location),
                location=location,
                ref_name=self.name,
                thread_name=thread_name,
            )
        return value

    def __repr__(self) -> str:
        return "Ref(%s=%r)" % (self.name, self.value)
