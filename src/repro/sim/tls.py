"""Thread-local storage with parent-to-child inheritance.

Waffle's parent-child happens-before analysis (paper section 4.1) rests
on one language feature: "a special type of thread-local storage (TLS)
that automatically gets copied from a parent to all child threads at the
moment of thread creation" (C#'s ``LogicalCallContext``, Java's
``InheritableThreadLocal``). The simulator provides the same feature so
that Waffle's vector clocks can be implemented *exactly* as the paper
describes -- as objects living in inheritable TLS whose construction
hook runs when the region is propagated to a child.
"""

from __future__ import annotations

from typing import Any, Dict


class Inheritable:
    """Protocol for values that customize their propagation at fork time.

    When a thread is forked, every value in the parent's inheritable TLS
    map that implements ``inherit_to`` is replaced in the *child's* map
    by the return value of ``inherit_to(parent_thread, child_thread)``.
    Values without the method are shared by reference, matching the
    shallow-copy semantics of ``LogicalCallContext``.

    Waffle's vector-clock object implements this protocol: its
    ``inherit_to`` appends the child's ``(tid, &counter)`` tuple and
    increments the parent's counter through the shared reference
    (section 4.1).
    """

    def inherit_to(self, parent_thread: Any, child_thread: Any) -> "Inheritable":
        raise NotImplementedError


class TlsMap:
    """Plain (non-inheritable) thread-local storage: a per-thread dict."""

    __slots__ = ("_data",)

    def __init__(self) -> None:
        self._data: Dict[str, Any] = {}

    def get(self, key: str, default: Any = None) -> Any:
        return self._data.get(key, default)

    def set(self, key: str, value: Any) -> None:
        self._data[key] = value

    def pop(self, key: str, default: Any = None) -> Any:
        return self._data.pop(key, default)

    def __contains__(self, key: str) -> bool:
        return key in self._data

    def __len__(self) -> int:
        return len(self._data)


class InheritableTlsMap(TlsMap):
    """TLS map that is propagated from parent to child at thread fork."""

    def propagate_to_child(self, parent_thread: Any, child_thread: Any) -> "InheritableTlsMap":
        """Build the child's map from this (the parent's) map.

        The copy is shallow; values implementing :class:`Inheritable`
        control their own propagation. This runs *at the moment of
        thread creation*, before the child executes its first operation,
        which is the window in which the paper notes the parent's vector
        clock is briefly inaccurate but never compared.
        """
        child_map = InheritableTlsMap()
        for key, value in self._data.items():
            if isinstance(value, Inheritable):
                child_map._data[key] = value.inherit_to(parent_thread, child_thread)
            else:
                child_map._data[key] = value
        return child_map
