"""The public facade of the concurrency simulator.

A :class:`Simulation` bundles a scheduler, a clock, a seeded RNG, an
instrumentation hook and the factories for threads, synchronization
primitives and heap objects. Benchmark applications receive a
``Simulation`` and write their thread bodies as generator functions::

    def worker(sim, conn):
        yield from sim.sleep(5)
        session = yield from sim.use(conn.session, loc="app.Worker.run:3")
        yield from sim.write(conn.session, "bytes_sent", 42, loc="app.Worker.run:4")

Every ``use``/``read``/``write``/``call``/``assign``/``dispose``/
``unsafe_call`` is an instrumented operation: the attached hook sees it
before it runs and may inject a delay -- the entire control surface the
paper's tools need (Figure 1: identify locations, then delay at run
time).
"""

from __future__ import annotations

from typing import Any, Generator, Iterable, Optional, Union

from .errors import NullReferenceError
from .instrument import (
    AccessEvent,
    AccessType,
    CostModel,
    InstrumentationHook,
    Location,
    PendingAccess,
)
from .refs import HeapObject, Ref
from .scheduler import RunResult, Scheduler, Sleep, YIELD
from .sync import Barrier, Channel, Condition, Event, Lock, RLock, Semaphore
from .thread import SimThread
from .unsafe_api import ActiveCallTable, UnsafeCollection, UnsafeDict, UnsafeList

LocationLike = Union[str, Location]


def _loc(value: LocationLike) -> Location:
    if isinstance(value, Location):
        return value
    return Location(str(value))


class Simulation:
    """One simulated execution of a multi-threaded program."""

    def __init__(
        self,
        seed: int = 0,
        hook: Optional[InstrumentationHook] = None,
        cost_model: Optional[CostModel] = None,
        time_limit_ms: float = 600_000.0,
        stop_on_failure: bool = True,
        name: str = "",
    ):
        self.name = name
        self.scheduler = Scheduler(
            seed=seed,
            hook=hook,
            cost_model=cost_model,
            time_limit_ms=time_limit_ms,
            stop_on_failure=stop_on_failure,
        )
        self._unsafe_calls = ActiveCallTable()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def now(self) -> float:
        """Current virtual time in milliseconds."""
        return self.scheduler.clock.now

    @property
    def hook(self) -> InstrumentationHook:
        return self.scheduler.hook

    @property
    def rng(self):
        return self.scheduler.rng

    @property
    def current_thread(self) -> SimThread:
        thread = self.scheduler.current
        if thread is None:
            raise RuntimeError("no simulated thread is currently running")
        return thread

    # ------------------------------------------------------------------
    # Thread management
    # ------------------------------------------------------------------

    def fork(self, gen: Generator[Any, Any, Any], name: str = "") -> SimThread:
        """Spawn a child of the current thread (or a root thread).

        Forking propagates the parent's inheritable TLS to the child --
        the mechanism Waffle's vector clocks piggyback on (section 4.1).
        """
        parent = self.scheduler.current
        return self.scheduler.spawn(gen, name=name, parent=parent)

    def join(self, thread: SimThread) -> Generator[Any, Any, Any]:
        """Wait until ``thread`` terminates; returns its result."""
        me = self.current_thread
        while thread.is_alive:
            thread.joiners.append(me)
            from .scheduler import BLOCK

            yield BLOCK
        return thread.result

    def join_all(self, threads: Iterable[SimThread]) -> Generator[Any, Any, None]:
        for thread in list(threads):
            yield from self.join(thread)

    def run(self, root: Generator[Any, Any, Any], name: str = "main") -> RunResult:
        """Spawn ``root`` and drive the simulation to completion."""
        self.scheduler.spawn(root, name=name, parent=None)
        result = self.scheduler.run()
        result.tsv_occurrences = list(self._unsafe_calls.occurrences)
        return result

    # ------------------------------------------------------------------
    # Time
    # ------------------------------------------------------------------

    def sleep(self, duration_ms: float) -> Generator[Any, Any, None]:
        """Suspend the current thread for ``duration_ms`` virtual ms."""
        yield Sleep(duration_ms)

    def compute(self, duration_ms: float, jitter: bool = True) -> Generator[Any, Any, None]:
        """Model CPU work; jittered by the cost model's noise factor."""
        if jitter:
            frac = self.scheduler.cost_model.jitter_frac
            duration_ms *= self.scheduler.rng.uniform(1.0 - frac, 1.0 + frac)
        yield Sleep(duration_ms)

    def pause(self) -> Generator[Any, Any, None]:
        """Cooperatively yield the processor without advancing time."""
        yield YIELD

    # ------------------------------------------------------------------
    # Factories
    # ------------------------------------------------------------------

    def lock(self, name: str = "") -> Lock:
        return Lock(self.scheduler, name)

    def rlock(self, name: str = "") -> RLock:
        return RLock(self.scheduler, name)

    def barrier(self, parties: int, name: str = "") -> Barrier:
        return Barrier(self.scheduler, parties, name)

    def event(self, name: str = "") -> Event:
        return Event(self.scheduler, name)

    def semaphore(self, initial: int = 1, name: str = "") -> Semaphore:
        return Semaphore(self.scheduler, initial, name)

    def condition(self, lock: Lock, name: str = "") -> Condition:
        return Condition(self.scheduler, lock, name)

    def channel(self, name: str = "") -> Channel:
        return Channel(self.scheduler, name)

    def task_pool(self, workers: int = 2, name: str = "pool"):
        """A task-parallel execution pool with async-local storage (the
        .NET Task/AsyncLocal analogue noted in paper section 4.1). Must
        be created from within a running simulated thread."""
        from .tasks import TaskPool

        return TaskPool(self, workers=workers, name=name)

    def new(self, type_name: str, **fields: Any) -> HeapObject:
        """Allocate a heap object (allocation itself is not instrumented;
        the *assignment* of the object into a reference is, per section
        3.1's definition of initialization)."""
        return HeapObject(type_name, **fields)

    def ref(self, name: str, value: Optional[HeapObject] = None) -> Ref:
        return Ref(name, value)

    def unsafe_dict(self, type_name: str = "UnsafeDict") -> UnsafeDict:
        return UnsafeDict(type_name)

    def unsafe_list(self, type_name: str = "UnsafeList") -> UnsafeList:
        return UnsafeList(type_name)

    # ------------------------------------------------------------------
    # Thread-local storage
    # ------------------------------------------------------------------

    def tls_get(self, key: str, default: Any = None) -> Any:
        return self.current_thread.tls.get(key, default)

    def tls_set(self, key: str, value: Any) -> None:
        self.current_thread.tls.set(key, value)

    def itls_get(self, key: str, default: Any = None) -> Any:
        return self.current_thread.itls.get(key, default)

    def itls_set(self, key: str, value: Any) -> None:
        self.current_thread.itls.set(key, value)

    # ------------------------------------------------------------------
    # Instrumented operations on references (MemOrder surface)
    # ------------------------------------------------------------------

    def assign(
        self, ref: Ref, obj: Optional[HeapObject], loc: LocationLike
    ) -> Generator[Any, Any, Optional[HeapObject]]:
        """Store ``obj`` into ``ref``.

        null -> non-null is an **initialization**; non-null -> null is a
        **disposal** (section 3.1). non-null -> non-null re-assignment is
        treated as an initialization of the new object.
        """
        location = _loc(loc)
        old = ref.value
        if obj is None:
            if old is None:
                # null -> null: not a state change; still a USE-class
                # touch of the reference variable, but the paper's
                # categories only cover the three transitions, so we
                # record nothing and charge nothing.
                return None
            access = AccessType.DISPOSE
            object_id = old.oid
        else:
            access = AccessType.INIT
            object_id = obj.oid

        def action() -> Optional[HeapObject]:
            ref.value = obj
            return obj

        return (yield from self._instrumented(location, access, object_id, ref.name, "", action))

    def dispose(
        self, ref: Ref, loc: LocationLike, null_out: bool = False
    ) -> Generator[Any, Any, None]:
        """Explicitly dispose the object behind ``ref`` (``Dispose()``).

        With ``null_out`` the reference is also cleared, so later uses
        fail the null check; otherwise they fail the disposed check.
        Either way the failure surfaces as a null-reference-class error,
        matching the paper's oracle.
        """
        location = _loc(loc)
        target = ref.value
        if target is None:
            # Disposing through a null reference is itself a faulty use.
            return (
                yield from self.use(ref, member="Dispose", loc=location)
            )
        object_id = target.oid

        def action() -> None:
            target.disposed = True
            if null_out:
                ref.value = None

        return (
            yield from self._instrumented(
                location, AccessType.DISPOSE, object_id, ref.name, "Dispose", action
            )
        )

    def use(
        self,
        ref: Ref,
        member: str = "",
        loc: LocationLike = "",
        duration: float = 0.0,
    ) -> Generator[Any, Any, HeapObject]:
        """Access a member of the object behind ``ref``.

        The null/disposed check happens when the operation *executes*
        (after any injected delay), which is exactly how a delay exposes
        a MemOrder bug: push the use past the disposal, or the
        initialization past the use.
        """
        location = _loc(loc)
        object_id = ref.value.oid if ref.value is not None else -1
        thread_name = self.current_thread.name

        def action() -> HeapObject:
            return ref.require(location=location, thread_name=thread_name)

        obj = yield from self._instrumented(
            location,
            AccessType.USE,
            object_id,
            ref.name,
            member,
            action,
            oid_from_result=True,
        )
        if duration > 0:
            yield Sleep(duration)
        return obj

    def call(
        self,
        ref: Ref,
        method: str,
        loc: LocationLike,
        duration: float = 0.0,
    ) -> Generator[Any, Any, HeapObject]:
        """Call a member method: sugar over :meth:`use` for readability."""
        return (yield from self.use(ref, member=method, loc=loc, duration=duration))

    def read(self, ref: Ref, field: str, loc: LocationLike) -> Generator[Any, Any, Any]:
        """Read a member field through ``ref`` (a USE)."""
        obj = yield from self.use(ref, member=field, loc=loc)
        return obj.fields.get(field)

    def write(
        self, ref: Ref, field: str, value: Any, loc: LocationLike
    ) -> Generator[Any, Any, None]:
        """Write a member field through ``ref`` (a USE)."""
        obj = yield from self.use(ref, member=field, loc=loc)
        obj.fields[field] = value

    def unsafe_call(
        self,
        collection: UnsafeCollection,
        api: str,
        *args: Any,
        loc: LocationLike,
        duration: float = 0.5,
    ) -> Generator[Any, Any, Any]:
        """Invoke a thread-unsafe API with a non-zero execution window.

        Overlapping windows on the same object from different threads
        are recorded as thread-safety violations (the Tsvd oracle).
        """
        location = _loc(loc)
        sched = self.scheduler
        thread = self.current_thread
        pending = PendingAccess(
            location,
            AccessType.UNSAFE_CALL,
            collection.oid,
            thread.tid,
            sched.clock.now,
            ref_name=collection.type_name,
            member=api,
        )
        injected = self._maybe_delay(pending)
        if injected > 0:
            yield Sleep(injected)
        cost = sched.cost_model.sample_op_cost(sched.rng) + sched.hook.per_op_overhead_ms
        yield Sleep(cost)
        start = sched.clock.now
        self._unsafe_calls.begin(collection.oid, thread.tid, location, start, start + duration)
        event = AccessEvent(
            location=location,
            access_type=AccessType.UNSAFE_CALL,
            object_id=collection.oid,
            thread_id=thread.tid,
            timestamp=start,
            ref_name=collection.type_name,
            member=api,
            duration=duration,
            injected_delay=injected,
        )
        sched.hook.after_access(event)
        self.scheduler.result.op_count += 1
        if duration > 0:
            yield Sleep(duration)
        self._unsafe_calls.end(collection.oid, thread.tid, location)
        return collection.apply(api, *args)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _maybe_delay(self, pending: PendingAccess) -> float:
        delay = self.scheduler.hook.before_access(pending)
        try:
            delay = float(delay)
        except (TypeError, ValueError):
            raise TypeError("hook.before_access must return a number, got %r" % (delay,))
        return max(0.0, delay)

    def _instrumented(
        self,
        location: Location,
        access_type: AccessType,
        object_id: int,
        ref_name: str,
        member: str,
        action,
        oid_from_result: bool = False,
    ) -> Generator[Any, Any, Any]:
        """Common path of every instrumented MemOrder-surface operation.

        Order of events (matching the instrumented proxy functions of
        section 5): consult the hook -> optionally sleep the injected
        delay -> pay the operation's execution cost -> execute -> report
        the final event to the hook.

        ``oid_from_result`` re-resolves the event's object id from the
        action's result: a delayed USE may start while the reference is
        still null (object id unknown) but execute after an
        initialization landed -- the recorded event must carry the
        identity observed at *execution* time.
        """
        sched = self.scheduler
        thread = self.current_thread
        pending = PendingAccess(
            location,
            access_type,
            object_id,
            thread.tid,
            sched.clock.now,
            ref_name=ref_name,
            member=member,
        )
        injected = self._maybe_delay(pending)
        if injected > 0:
            yield Sleep(injected)
        cost = sched.cost_model.sample_op_cost(sched.rng) + sched.hook.per_op_overhead_ms
        yield Sleep(cost)
        event = AccessEvent(
            location=location,
            access_type=access_type,
            object_id=object_id,
            thread_id=thread.tid,
            timestamp=sched.clock.now,
            ref_name=ref_name,
            member=member,
            injected_delay=injected,
        )
        self.scheduler.result.op_count += 1
        try:
            result = action()
        except NullReferenceError:
            # The faulting access is still reported to the hook: the
            # runtime needs it to attribute the manifestation to the
            # delays it injected (section 5's bug reports).
            event.object_id = -1
            sched.hook.after_access(event)
            raise
        if oid_from_result and isinstance(result, HeapObject):
            event.object_id = result.oid
        sched.hook.after_access(event)
        return result
