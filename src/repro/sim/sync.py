"""Synchronization primitives built on the scheduler.

These provide the *real* synchronization present in the benchmark
applications -- locks, events, semaphores, condition variables and
queues. Crucially, the delay-injection tools are **not** told about
them: like Tsvd and Waffle, they must infer ordering from physical
(virtual) time and, in Waffle's case, from parent-child thread
relationships only. Synchronization that the tools fail to infer is
what produces wasted delays; synchronization they wrongly assume is
what produces missed bugs.

All blocking methods are generator functions; call them with
``yield from``. Fast paths (uncontended acquire, non-empty queue get)
run through without yielding, so they cost no virtual time -- matching
the negligible cost of uncontended synchronization on real hardware.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Generator, List, Optional

from .scheduler import BLOCK, Scheduler
from .thread import SimThread


class _Primitive:
    """Common plumbing: primitives hold a scheduler and wake waiters."""

    __slots__ = ("_scheduler", "name")

    def __init__(self, scheduler: Scheduler, name: str = ""):
        self._scheduler = scheduler
        self.name = name

    def _me(self) -> SimThread:
        thread = self._scheduler.current
        if thread is None:
            raise RuntimeError("synchronization primitive used outside a simulated thread")
        return thread

    def _wake(self, thread: SimThread) -> None:
        self._scheduler.wake(thread)


class Lock(_Primitive):
    """A non-reentrant mutual-exclusion lock with FIFO handoff."""

    __slots__ = ("_owner", "_waiters")

    def __init__(self, scheduler: Scheduler, name: str = ""):
        super().__init__(scheduler, name)
        self._owner: Optional[SimThread] = None
        self._waiters: Deque[SimThread] = deque()

    @property
    def locked(self) -> bool:
        return self._owner is not None

    def acquire(self) -> Generator[Any, Any, None]:
        me = self._me()
        while self._owner is not None:
            if self._owner is me:
                raise RuntimeError("Lock %r is not reentrant" % (self.name,))
            self._waiters.append(me)
            yield BLOCK
        self._owner = me

    def release(self) -> None:
        me = self._me()
        if self._owner is not me:
            raise RuntimeError(
                "Lock %r released by %r but owned by %r"
                % (self.name, me.name, self._owner.name if self._owner else None)
            )
        self._owner = None
        while self._waiters:
            waiter = self._waiters.popleft()
            if waiter.is_alive:
                self._wake(waiter)
                break

    def holding(self) -> "_LockContext":
        """``yield from`` helper is not possible for context managers in
        generators; instead use::

            yield from lock.acquire()
            try:
                ...
            finally:
                lock.release()

        ``holding()`` exists only to document that idiom.
        """
        raise NotImplementedError("use acquire()/release() explicitly in generator code")


class _LockContext:  # pragma: no cover - documentation aid only
    pass


class Event(_Primitive):
    """A one-way latch: threads wait until some thread sets it."""

    __slots__ = ("_is_set", "_waiters")

    def __init__(self, scheduler: Scheduler, name: str = ""):
        super().__init__(scheduler, name)
        self._is_set = False
        self._waiters: List[SimThread] = []

    @property
    def is_set(self) -> bool:
        return self._is_set

    def set(self) -> None:
        self._is_set = True
        waiters, self._waiters = self._waiters, []
        for waiter in waiters:
            if waiter.is_alive:
                self._wake(waiter)

    def clear(self) -> None:
        self._is_set = False

    def wait(self) -> Generator[Any, Any, None]:
        me = self._me()
        while not self._is_set:
            self._waiters.append(me)
            yield BLOCK


class Semaphore(_Primitive):
    """A counting semaphore."""

    __slots__ = ("_count", "_waiters")

    def __init__(self, scheduler: Scheduler, initial: int = 1, name: str = ""):
        super().__init__(scheduler, name)
        if initial < 0:
            raise ValueError("semaphore initial count must be >= 0")
        self._count = initial
        self._waiters: Deque[SimThread] = deque()

    @property
    def count(self) -> int:
        return self._count

    def acquire(self) -> Generator[Any, Any, None]:
        me = self._me()
        while self._count == 0:
            self._waiters.append(me)
            yield BLOCK
        self._count -= 1

    def release(self) -> None:
        self._count += 1
        while self._waiters:
            waiter = self._waiters.popleft()
            if waiter.is_alive:
                self._wake(waiter)
                break


class Condition(_Primitive):
    """A condition variable bound to a :class:`Lock`."""

    __slots__ = ("_lock", "_waiters")

    def __init__(self, scheduler: Scheduler, lock: Lock, name: str = ""):
        super().__init__(scheduler, name)
        self._lock = lock
        self._waiters: Deque[SimThread] = deque()

    def wait(self) -> Generator[Any, Any, None]:
        me = self._me()
        if self._lock._owner is not me:
            raise RuntimeError("Condition.wait called without holding the lock")
        self._waiters.append(me)
        self._lock.release()
        yield BLOCK
        yield from self._lock.acquire()

    def notify(self, n: int = 1) -> None:
        for _ in range(n):
            if not self._waiters:
                break
            waiter = self._waiters.popleft()
            if waiter.is_alive:
                self._wake(waiter)

    def notify_all(self) -> None:
        self.notify(len(self._waiters))


class Channel(_Primitive):
    """An unbounded FIFO queue with blocking ``get``.

    Named ``Channel`` rather than ``Queue`` to avoid confusion with the
    *thread-unsafe* collections in :mod:`repro.sim.unsafe_api`: this one
    is properly synchronized, so the tools should (ideally) never expose
    bugs through it.
    """

    __slots__ = ("_items", "_getters", "_closed")

    def __init__(self, scheduler: Scheduler, name: str = ""):
        super().__init__(scheduler, name)
        self._items: Deque[Any] = deque()
        self._getters: Deque[SimThread] = deque()
        self._closed = False

    def __len__(self) -> int:
        return len(self._items)

    @property
    def closed(self) -> bool:
        return self._closed

    def put(self, item: Any) -> None:
        if self._closed:
            raise RuntimeError("put on closed channel %r" % (self.name,))
        self._items.append(item)
        while self._getters:
            getter = self._getters.popleft()
            if getter.is_alive:
                self._wake(getter)
                break

    def close(self) -> None:
        """Close the channel; blocked and future ``get`` calls return ``None``."""
        self._closed = True
        getters, self._getters = self._getters, deque()
        for getter in getters:
            if getter.is_alive:
                self._wake(getter)

    def get(self) -> Generator[Any, Any, Any]:
        me = self._me()
        while not self._items:
            if self._closed:
                return None
            self._getters.append(me)
            yield BLOCK
        return self._items.popleft()

    def try_get(self) -> Any:
        """Non-blocking get; returns ``None`` when empty."""
        if self._items:
            return self._items.popleft()
        return None


class RLock(Lock):
    """A reentrant lock: the owner may re-acquire, paired releases."""

    __slots__ = ("_depth",)

    def __init__(self, scheduler: Scheduler, name: str = ""):
        super().__init__(scheduler, name)
        self._depth = 0

    def acquire(self) -> Generator[Any, Any, None]:
        me = self._me()
        if self._owner is me:
            self._depth += 1
            return
        while self._owner is not None:
            self._waiters.append(me)
            yield BLOCK
        self._owner = me
        self._depth = 1

    def release(self) -> None:
        me = self._me()
        if self._owner is not me:
            raise RuntimeError(
                "RLock %r released by %r but owned by %r"
                % (self.name, me.name, self._owner.name if self._owner else None)
            )
        self._depth -= 1
        if self._depth > 0:
            return
        self._owner = None
        while self._waiters:
            waiter = self._waiters.popleft()
            if waiter.is_alive:
                self._wake(waiter)
                break


class Barrier(_Primitive):
    """A cyclic barrier: the Nth arriving thread releases all parties.

    ``wait`` returns the arrival index (0-based within the generation),
    like :class:`threading.Barrier`.
    """

    __slots__ = ("parties", "_arrived", "_generation")

    def __init__(self, scheduler: Scheduler, parties: int, name: str = ""):
        if parties < 1:
            raise ValueError("a barrier needs at least one party")
        super().__init__(scheduler, name)
        self.parties = parties
        self._arrived: List[SimThread] = []
        self._generation = 0

    def wait(self) -> Generator[Any, Any, int]:
        me = self._me()
        generation = self._generation
        index = len(self._arrived)
        if index + 1 == self.parties:
            # Last arrival: trip the barrier, wake everyone, reset.
            arrived, self._arrived = self._arrived, []
            self._generation += 1
            for waiter in arrived:
                if waiter.is_alive:
                    self._wake(waiter)
            return index
        self._arrived.append(me)
        while self._generation == generation:
            yield BLOCK
        return index
