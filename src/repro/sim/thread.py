"""Simulated threads.

A :class:`SimThread` wraps a Python generator. The scheduler drives the
generator with ``send``/``throw``; each ``yield`` is a scheduling point.
Benchmark applications never touch this class directly -- they spawn
threads through :meth:`repro.sim.api.Simulation.spawn` and write their
bodies as generator functions that ``yield from`` the simulation API.
"""

from __future__ import annotations

import enum
from typing import Any, Generator, List, Optional

from .tls import InheritableTlsMap, TlsMap


class ThreadState(enum.Enum):
    NEW = "new"
    RUNNABLE = "runnable"
    SLEEPING = "sleeping"
    BLOCKED = "blocked"
    DONE = "done"
    FAILED = "failed"

    @property
    def is_terminal(self) -> bool:
        return self in (ThreadState.DONE, ThreadState.FAILED)


class SimThread:
    """One simulated thread of control.

    Attributes of note:

    * ``tls`` / ``itls`` -- plain and inheritable thread-local storage;
      the inheritable map is built from the parent's at fork time
      (see :mod:`repro.sim.tls`).
    * ``parent`` -- the forking thread, or ``None`` for the root. The
      parent/child tree is what Waffle's vector clocks capture.
    * ``result`` / ``exception`` -- outcome once the thread terminates.
    """

    def __init__(
        self,
        tid: int,
        name: str,
        gen: Generator[Any, Any, Any],
        parent: Optional["SimThread"] = None,
    ):
        self.tid = tid
        self.name = name
        self.gen = gen
        self.parent = parent
        self.state = ThreadState.NEW
        self.tls = TlsMap()
        if parent is None:
            self.itls = InheritableTlsMap()
        else:
            self.itls = parent.itls.propagate_to_child(parent, self)
        self.result: Any = None
        self.exception: Optional[BaseException] = None
        #: Threads blocked in ``join`` on this thread.
        self.joiners: List["SimThread"] = []
        #: Timestamp at which the thread was created (set by scheduler).
        self.spawn_time: float = 0.0
        #: Timestamp at which the thread terminated (set by scheduler).
        self.end_time: Optional[float] = None
        #: Stack of location labels, maintained by the tracing helpers so
        #: that bug reports can include a per-thread "stack trace".
        self.call_stack: List[str] = []

    @property
    def is_alive(self) -> bool:
        return not self.state.is_terminal

    def snapshot_stack(self) -> List[str]:
        """Copy of the current call-stack labels (for bug reports)."""
        return list(self.call_stack)

    def __repr__(self) -> str:
        return "SimThread(tid=%d, name=%r, state=%s)" % (self.tid, self.name, self.state.value)
