"""Deterministic virtual-time concurrency simulator.

This package is the substrate of the Waffle reproduction: it plays the
role of the instrumented C# runtime in the paper. See DESIGN.md section
3.1 for the inventory and the substitution rationale.
"""

from .api import Simulation
from .clock import VirtualClock
from .errors import (
    DeadlockError,
    NullReferenceError,
    ObjectDisposedError,
    SimulationError,
    SimulationTimeout,
)
from .instrument import (
    AccessEvent,
    AccessType,
    CostModel,
    InstrumentationHook,
    Location,
    NoopHook,
    PendingAccess,
)
from .refs import HeapObject, Ref
from .scheduler import RunResult, Scheduler
from .sync import Barrier, Channel, Condition, Event, Lock, RLock, Semaphore
from .tasks import TaskHandle, TaskPool
from .thread import SimThread, ThreadState
from .tls import Inheritable, InheritableTlsMap, TlsMap
from .unsafe_api import THREAD_UNSAFE_APIS, TsvOccurrence, UnsafeDict, UnsafeList

__all__ = [
    "Simulation",
    "VirtualClock",
    "DeadlockError",
    "NullReferenceError",
    "ObjectDisposedError",
    "SimulationError",
    "SimulationTimeout",
    "AccessEvent",
    "AccessType",
    "CostModel",
    "InstrumentationHook",
    "Location",
    "NoopHook",
    "PendingAccess",
    "HeapObject",
    "Ref",
    "RunResult",
    "Scheduler",
    "Channel",
    "Condition",
    "Event",
    "Barrier",
    "Lock",
    "RLock",
    "Semaphore",
    "TaskHandle",
    "TaskPool",
    "SimThread",
    "ThreadState",
    "Inheritable",
    "InheritableTlsMap",
    "TlsMap",
    "THREAD_UNSAFE_APIS",
    "TsvOccurrence",
    "UnsafeDict",
    "UnsafeList",
]
