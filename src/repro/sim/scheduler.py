"""Discrete-event cooperative scheduler.

The scheduler drives :class:`~repro.sim.thread.SimThread` generators.
Every time-consuming action in the simulated program -- computing,
sleeping, the execution cost of an instrumented operation, and the
delays injected by the tools under test -- is expressed as a ``Sleep``
command, so the simulation reduces to a priority queue ordered by
virtual wake time. Threads blocked on synchronization primitives leave
the queue entirely and are re-inserted by :meth:`Scheduler.wake`.

Determinism: the queue breaks ties by insertion sequence (FIFO), and all
randomness (operation-cost jitter) flows from a single seeded RNG, so a
given (program, seed) pair always produces the same interleaving --
while different seeds, or injected delays, produce different ones. This
mirrors the probabilistic manifestation of MemOrder bugs that the paper
exploits.
"""

from __future__ import annotations

import heapq
import itertools
import random
from typing import Any, Dict, Generator, List, Optional, Tuple

from .. import obs
from .clock import VirtualClock
from .errors import DeadlockError, SimulationTimeout
from .instrument import CostModel, InstrumentationHook, NoopHook
from .thread import SimThread, ThreadState


class Command:
    """Base class for values yielded by simulated thread generators."""

    __slots__ = ()


class Sleep(Command):
    """Suspend the current thread for ``duration_ms`` of virtual time."""

    __slots__ = ("duration_ms",)

    def __init__(self, duration_ms: float):
        self.duration_ms = max(0.0, float(duration_ms))


class Block(Command):
    """Remove the current thread from the run queue until woken."""

    __slots__ = ()


class YieldNow(Command):
    """Reschedule the current thread at the current time (cooperative yield)."""

    __slots__ = ()


BLOCK = Block()
YIELD = YieldNow()


class RunResult:
    """Outcome of one simulated run.

    ``failures`` holds ``(thread, exception)`` pairs for every exception
    that escaped a thread -- in particular the ``NullReferenceError``
    that signals a manifested MemOrder bug. ``virtual_time`` is the
    end-to-end execution time in virtual milliseconds, the quantity from
    which all of the paper's overhead/slowdown numbers are computed.
    """

    def __init__(self) -> None:
        self.virtual_time: float = 0.0
        self.failures: List[Tuple[SimThread, BaseException]] = []
        self.timed_out: bool = False
        self.op_count: int = 0
        self.thread_count: int = 0
        #: Times the scheduler resumed a different thread than the one
        #: it last ran -- the virtual-time analogue of a context switch.
        self.context_switches: int = 0
        self.tsv_occurrences: List[Any] = []

    @property
    def crashed(self) -> bool:
        return bool(self.failures)

    def first_failure(self) -> Optional[BaseException]:
        return self.failures[0][1] if self.failures else None

    def __repr__(self) -> str:
        return "RunResult(t=%.2fms, failures=%d, ops=%d%s)" % (
            self.virtual_time,
            len(self.failures),
            self.op_count,
            ", TIMEOUT" if self.timed_out else "",
        )


class Scheduler:
    """Runs a tree of simulated threads to completion.

    Parameters
    ----------
    seed:
        Seeds the RNG used for operation-cost jitter; fully determines
        the run together with the program and hook behavior.
    hook:
        The attached :class:`InstrumentationHook` (a delay-injection
        tool, a trace recorder, or :class:`NoopHook` for baseline runs).
    cost_model:
        Virtual-time cost of simulated operations.
    time_limit_ms:
        Abort the run (marking it timed out) once the virtual clock
        passes this limit; models the test-case timeouts that
        WaffleBasic triggers on MQTT.Net in Table 5.
    stop_on_failure:
        When true (the default), the first exception escaping any thread
        stops the whole run -- matching the paper's setting where a
        NULL-reference exception crashes the test process and "halts the
        detection run prematurely" (section 6.3).
    """

    def __init__(
        self,
        seed: int = 0,
        hook: Optional[InstrumentationHook] = None,
        cost_model: Optional[CostModel] = None,
        time_limit_ms: float = 600_000.0,
        stop_on_failure: bool = True,
        max_steps: int = 5_000_000,
    ):
        self.clock = VirtualClock()
        self.rng = random.Random(seed)
        self.hook = hook if hook is not None else NoopHook()
        self.cost_model = cost_model if cost_model is not None else CostModel()
        self.time_limit_ms = time_limit_ms
        self.stop_on_failure = stop_on_failure
        self.max_steps = max_steps

        self._queue: List[Tuple[float, int, SimThread]] = []
        self._seq = itertools.count()
        self._tid_counter = itertools.count(1)
        self.threads: Dict[int, SimThread] = {}
        self.current: Optional[SimThread] = None
        self.result = RunResult()
        self._stopping = False
        self._last_run: Optional[SimThread] = None
        self._obs = obs.session()
        self._fr = obs.flightrec.recorder()

    # ------------------------------------------------------------------
    # Thread lifecycle
    # ------------------------------------------------------------------

    def spawn(
        self,
        gen: Generator[Any, Any, Any],
        name: str = "",
        parent: Optional[SimThread] = None,
    ) -> SimThread:
        """Create a thread around ``gen`` and make it runnable now."""
        tid = next(self._tid_counter)
        thread = SimThread(tid, name or ("thread-%d" % tid), gen, parent=parent)
        thread.spawn_time = self.clock.now
        thread.state = ThreadState.RUNNABLE
        self.threads[tid] = thread
        self.result.thread_count += 1
        self._push(thread, self.clock.now)
        if self._fr is not None:
            self._fr.record(
                "thread_start", self.clock.now, tid=tid, name=thread.name,
                parent=parent.tid if parent is not None else None,
            )
        self.hook.on_thread_start(thread)
        return thread

    def wake(self, thread: SimThread, at: Optional[float] = None) -> None:
        """Make a blocked thread runnable at time ``at`` (default: now).

        Only threads in the BLOCKED state are woken: waking a thread
        that is already queued (RUNNABLE/SLEEPING) would enqueue it
        twice and let it run "in two places at once".
        """
        if thread.state is not ThreadState.BLOCKED:
            return
        thread.state = ThreadState.RUNNABLE
        self._push(thread, self.clock.now if at is None else at)

    def _push(self, thread: SimThread, wake_time: float) -> None:
        heapq.heappush(self._queue, (wake_time, next(self._seq), thread))

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------

    def run(self) -> RunResult:
        """Drive all threads until completion, deadlock, crash or timeout."""
        self.hook.on_run_start(self)
        steps = 0
        try:
            while self._queue and not self._stopping:
                steps += 1
                if steps > self.max_steps:
                    raise SimulationTimeout(
                        "exceeded %d scheduler steps" % self.max_steps, self.clock.now
                    )
                wake_time, _, thread = heapq.heappop(self._queue)
                if thread.state.is_terminal:
                    continue
                self.clock.advance_to(wake_time)
                if self.clock.now > self.time_limit_ms:
                    self.result.timed_out = True
                    break
                if thread is not self._last_run:
                    self.result.context_switches += 1
                    self._last_run = thread
                    if self._fr is not None:
                        self._fr.record("switch", self.clock.now, tid=thread.tid)
                self._step(thread)
            if not self._stopping and not self.result.timed_out:
                self._check_deadlock()
        except SimulationTimeout:
            self.result.timed_out = True
        finally:
            self.result.virtual_time = self.clock.now
            self.hook.on_run_end(self)
            if self._obs is not None:
                self._obs.c_sched_runs.inc()
                self._obs.c_context_switches.inc(self.result.context_switches)
                self._obs.g_virtual_ms.set(self.result.virtual_time)
                self._obs.g_virtual_ms_total.add(self.result.virtual_time)
        return self.result

    def _step(self, thread: SimThread) -> None:
        """Resume ``thread`` until its next yield and act on the command."""
        self.current = thread
        try:
            command = thread.gen.send(None)
        except StopIteration as stop:
            self._finish(thread, result=getattr(stop, "value", None))
            return
        except BaseException as exc:  # noqa: BLE001 - faithful crash capture
            self._fail(thread, exc)
            return
        finally:
            self.current = None

        if isinstance(command, Sleep):
            thread.state = ThreadState.SLEEPING
            self._push(thread, self.clock.now + command.duration_ms)
        elif isinstance(command, Block):
            thread.state = ThreadState.BLOCKED
        elif isinstance(command, YieldNow):
            thread.state = ThreadState.RUNNABLE
            self._push(thread, self.clock.now)
        else:
            self._fail(
                thread,
                TypeError("thread %r yielded a non-command value: %r" % (thread.name, command)),
            )

    def _finish(self, thread: SimThread, result: Any) -> None:
        thread.state = ThreadState.DONE
        thread.result = result
        thread.end_time = self.clock.now
        if self._fr is not None:
            self._fr.record("thread_end", self.clock.now, tid=thread.tid, failed=False)
        self._wake_joiners(thread)
        self.hook.on_thread_end(thread)

    def _fail(self, thread: SimThread, exc: BaseException) -> None:
        thread.state = ThreadState.FAILED
        thread.exception = exc
        thread.end_time = self.clock.now
        self.result.failures.append((thread, exc))
        if self._fr is not None:
            location = getattr(exc, "location", None)
            self._fr.record(
                "fault", self.clock.now, tid=thread.tid, thread=thread.name,
                error=type(exc).__name__,
                site=location.site if location is not None else None,
            )
            self._fr.record("thread_end", self.clock.now, tid=thread.tid, failed=True)
        self._wake_joiners(thread)
        self.hook.on_failure(thread, exc)
        self.hook.on_thread_end(thread)
        if self.stop_on_failure:
            self._stopping = True

    def _wake_joiners(self, thread: SimThread) -> None:
        for joiner in thread.joiners:
            self.wake(joiner)
        thread.joiners.clear()

    def _check_deadlock(self) -> None:
        blocked = [t for t in self.threads.values() if t.state is ThreadState.BLOCKED]
        if blocked:
            error = DeadlockError(
                "deadlock: %d thread(s) blocked with empty run queue: %s"
                % (len(blocked), ", ".join(t.name for t in blocked)),
                blocked_threads=blocked,
            )
            # A deadlock is a run failure attributed to the first blocked
            # thread; the harness surfaces it like any other crash.
            self.result.failures.append((blocked[0], error))
