"""Instrumentation layer of the simulator.

The paper's Waffle instruments C# binaries with Mono.Cecil, wrapping
"every access to object member fields or calls to member methods in a
proxy function" that transfers control to the runtime library (section
5). Our simulator plays the role of that instrumented binary: every
operation on a heap reference is routed through an
:class:`InstrumentationHook` before it executes, and the hook may ask
for a delay to be injected first -- exactly the control surface the
delay-injection algorithms need.

The event vocabulary follows section 3.1 of the paper:

* ``INIT``    -- a reference slot changes from null to non-null;
* ``DISPOSE`` -- a slot changes from non-null to null, or ``Dispose()``
  is called explicitly;
* ``USE``     -- a member field access or member method call;
* ``UNSAFE_CALL`` -- a call to a thread-unsafe API (the TSVD
  instrumentation class, kept for the Table 2 comparison).
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple


class AccessType(enum.Enum):
    """Categories of instrumented operations (paper section 3.1)."""

    INIT = "init"
    DISPOSE = "dispose"
    USE = "use"
    UNSAFE_CALL = "unsafe_call"

    @property
    def is_memorder(self) -> bool:
        """True for the operation classes that MemOrder bugs involve."""
        return self is not AccessType.UNSAFE_CALL


@dataclass(frozen=True, order=True, slots=True)
class Location:
    """A unique *static* program location.

    In the paper this is a code address produced by binary
    instrumentation; here it is a dotted label written in the benchmark
    application source, e.g. ``"netmq.NetMQRuntime.Cleanup:8"``. Two
    dynamic operations share a Location iff they come from the same
    static site -- the granularity at which the candidate set S, delay
    lengths, and injection probabilities are maintained.
    """

    site: str

    def __str__(self) -> str:
        return self.site

    @property
    def app(self) -> str:
        """The application component of the site label (before the first dot)."""
        return self.site.split(".", 1)[0]


_event_seq = itertools.count()


def _next_event_id() -> int:
    return next(_event_seq)


@dataclass(slots=True)
class AccessEvent:
    """One dynamic instrumented operation.

    Carries everything the paper's runtime records during the
    preparation run (section 5): object id, physical (virtual) timestamp,
    operation type, and the active thread -- plus the static location and
    optional extras used by specific analyses (vector-clock snapshot for
    parent-child pruning, call duration for TSV overlap detection, and
    the delay that was injected before the operation, if any).
    """

    location: Location
    access_type: AccessType
    object_id: int
    thread_id: int
    timestamp: float
    ref_name: str = ""
    member: str = ""
    duration: float = 0.0
    injected_delay: float = 0.0
    #: Fork-ordering capture: a ``{tid: counter}`` vector-clock dict or
    #: a :class:`~repro.core.tree_clock.TreeClockStamp`, depending on
    #: the configured ``hb_engine`` (``vector_clock.ordered`` accepts
    #: both).
    vc_snapshot: Optional[Any] = None
    event_id: int = field(default_factory=_next_event_id)

    @property
    def end_timestamp(self) -> float:
        """Timestamp at which the operation's execution window closes."""
        return self.timestamp + self.duration

    def key(self) -> Tuple[str, str, int, int]:
        """Compact identity tuple used in tests and dedup logic."""
        return (self.location.site, self.access_type.value, self.object_id, self.thread_id)


@dataclass(slots=True)
class PendingAccess:
    """The *intent* to perform an operation, shown to hooks beforehand.

    Hooks decide whether to delay based on the static location, object,
    access type and thread -- the same information TSVD and Waffle see at
    a proxy-function entry. The timestamp is the time at which the
    operation would start if no delay is injected.
    """

    location: Location
    access_type: AccessType
    object_id: int
    thread_id: int
    timestamp: float
    ref_name: str = ""
    member: str = ""


class InstrumentationHook:
    """Interface between the simulator and a delay-injection tool.

    The default implementations are no-ops so that tools override only
    what they need. All callbacks run synchronously inside the
    simulation loop; ``before_access`` returning a positive number causes
    the simulator to put the issuing thread to sleep for that many
    virtual milliseconds before the operation executes (the
    ``Thread.Sleep`` injection of the paper).
    """

    #: Extra virtual-time cost added to every instrumented operation
    #: while this hook is attached, modeling the proxy-function and
    #: logging overhead of the instrumented binary. Subclasses tune it.
    per_op_overhead_ms: float = 0.0

    def on_run_start(self, sim: "Any") -> None:
        """Called once before the root thread starts."""

    def on_thread_start(self, thread: "Any") -> None:
        """Called when a simulated thread begins executing."""

    def on_thread_end(self, thread: "Any") -> None:
        """Called when a simulated thread finishes (normally or not)."""

    def before_access(self, pending: PendingAccess) -> float:
        """Return the delay (ms) to inject before the operation; 0 for none."""
        return 0.0

    def after_access(self, event: AccessEvent) -> None:
        """Called after the operation executed, with its final record."""

    def on_failure(self, thread: "Any", error: BaseException) -> None:
        """Called when an exception escapes a simulated thread."""

    def on_run_end(self, sim: "Any") -> None:
        """Called once after the simulation stops."""


class NoopHook(InstrumentationHook):
    """Uninstrumented execution: the 'Base' configuration of Table 5."""


class CostModel:
    """Virtual-time costs of simulated operations.

    ``op_cost_ms`` is the execution cost of one instrumented operation in
    the *uninstrumented* binary; hooks add their own ``per_op_overhead_ms``
    on top. ``jitter_frac`` scales a uniform perturbation drawn from the
    scheduler's seeded RNG, modeling the run-to-run timing noise that
    makes MemOrder bugs probabilistic in the first place.
    """

    __slots__ = ("op_cost_ms", "jitter_frac")

    def __init__(self, op_cost_ms: float = 0.3, jitter_frac: float = 0.35):
        if op_cost_ms <= 0:
            raise ValueError("op_cost_ms must be positive")
        if not 0 <= jitter_frac < 1:
            raise ValueError("jitter_frac must be in [0, 1)")
        self.op_cost_ms = op_cost_ms
        self.jitter_frac = jitter_frac

    def sample_op_cost(self, rng) -> float:
        """Draw the cost of one operation, with seeded jitter."""
        if self.jitter_frac == 0:
            return self.op_cost_ms
        lo = 1.0 - self.jitter_frac
        hi = 1.0 + self.jitter_frac
        return self.op_cost_ms * rng.uniform(lo, hi)
