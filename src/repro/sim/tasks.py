"""Task-parallel programming with async-local storage.

Section 4.1's note: "while Waffle only considers threads, .NET provides
a similar mechanism for task-oriented programming -- async-local
storage -- which supports state propagation from a parent to a child
task irrespective of which thread these tasks are scheduled to run on."

This module adds that programming model to the simulator: a
:class:`TaskPool` multiplexes submitted tasks over a fixed set of
worker threads. Each task carries an *async-local context* cloned from
its submitting task (or thread) at submission time, honoring the same
:class:`~repro.sim.tls.Inheritable` protocol the thread-level TLS uses
-- so Waffle's vector clocks propagate across task boundaries without
any change to the analyzers.

The trick that keeps the existing hooks oblivious: while a worker
thread executes a task, the task's context is *installed into the
worker's inheritable TLS* (and restored afterwards). Recording and
injection hooks read clocks from ``thread.itls`` exactly as for plain
threads; they cannot tell tasks are involved. Two tasks that run
sequentially on the same worker thread share a thread id -- and are
genuinely ordered by that serialization, so treating their operations
as same-thread is semantically correct for near-miss tracking.
"""

from __future__ import annotations

import itertools
from typing import Any, Generator, List, Optional

from .scheduler import BLOCK
from .tls import Inheritable, InheritableTlsMap

#: Task ids live in their own space so vector-clock entries for tasks
#: can never collide with thread ids.
_TASK_ID_BASE = 100_000


class TaskHandle:
    """Submission receipt: await it, read the result or the exception."""

    def __init__(self, task_id: int, name: str):
        self.task_id = task_id
        self.name = name
        self.done = False
        self.result: Any = None
        self.exception: Optional[BaseException] = None
        #: Threads blocked waiting for completion.
        self._waiters: List[Any] = []

    def __repr__(self) -> str:
        state = "done" if self.done else "pending"
        return "TaskHandle(%d, %r, %s)" % (self.task_id, self.name, state)


class _Task:
    def __init__(self, task_id: int, name: str, gen: Generator, context: InheritableTlsMap):
        self.task_id = task_id
        self.name = name
        self.gen = gen
        self.context = context
        self.handle = TaskHandle(task_id, name)


class _TaskIdentity:
    """Duck-typed stand-in for a thread when inheriting context values
    (the Inheritable protocol only reads ``tid``)."""

    __slots__ = ("tid",)

    def __init__(self, tid: int):
        self.tid = tid


class TaskPool:
    """A fixed pool of worker threads executing submitted tasks in FIFO
    order. Create via :meth:`repro.sim.api.Simulation.task_pool`."""

    def __init__(self, sim, workers: int = 2, name: str = "pool"):
        if workers < 1:
            raise ValueError("a task pool needs at least one worker")
        self._sim = sim
        self.name = name
        self._queue = sim.channel("%s.tasks" % name)
        self._task_ids = itertools.count(_TASK_ID_BASE + 1)
        self._workers = [
            sim.fork(self._worker_loop(), name="%s-worker-%d" % (name, index))
            for index in range(workers)
        ]
        self._closed = False

    # ------------------------------------------------------------------
    # Submission and completion
    # ------------------------------------------------------------------

    def submit(self, gen: Generator, name: str = "") -> TaskHandle:
        """Queue a task; its async-local context is cloned *now*, from
        the submitting task (or, outside any task, the submitting
        thread's inheritable TLS)."""
        if self._closed:
            raise RuntimeError("submit on closed task pool %r" % self.name)
        task_id = next(self._task_ids)
        parent_context, parent_identity = self._current_context()
        context = parent_context.propagate_to_child(
            parent_identity, _TaskIdentity(task_id)
        )
        task = _Task(task_id, name or ("task-%d" % task_id), gen, context)
        self._queue.put(task)
        return task.handle

    def wait(self, handle: TaskHandle) -> Generator[Any, Any, Any]:
        """Block until the task completes; returns its result. A task
        that crashed re-raises its exception in the waiter -- the
        ``await`` semantics of task-parallel runtimes."""
        me = self._sim.current_thread
        while not handle.done:
            handle._waiters.append(me)
            yield BLOCK
        if handle.exception is not None:
            raise handle.exception
        return handle.result

    def wait_all(self, handles) -> Generator[Any, Any, None]:
        for handle in list(handles):
            yield from self.wait(handle)

    def close(self) -> Generator[Any, Any, None]:
        """Stop accepting tasks, drain the queue, join the workers."""
        self._closed = True
        self._queue.close()
        yield from self._sim.join_all(self._workers)

    # ------------------------------------------------------------------
    # Async-local storage
    # ------------------------------------------------------------------

    def alocal_get(self, key: str, default: Any = None) -> Any:
        context, _ = self._current_context()
        return context.get(key, default)

    def alocal_set(self, key: str, value: Any) -> None:
        context, _ = self._current_context()
        context.set(key, value)

    def _current_context(self):
        """The async-local context in scope: the running task's when a
        worker is mid-task, else the calling thread's inheritable TLS."""
        thread = self._sim.current_thread
        task = thread.tls.get("%s.current_task" % self.name)
        if task is not None:
            return task.context, _TaskIdentity(task.task_id)
        return thread.itls, thread

    # ------------------------------------------------------------------
    # Worker loop
    # ------------------------------------------------------------------

    def _worker_loop(self) -> Generator:
        sim = self._sim
        while True:
            task = yield from self._queue.get()
            if task is None:
                return
            thread = sim.current_thread
            # Install the task's context into the worker's inheritable
            # TLS so hooks (vector-clock snapshots in particular) see
            # the *task's* causal state, not the worker's.
            saved_itls = thread.itls
            thread.itls = task.context
            thread.tls.set("%s.current_task" % self.name, task)
            handle = task.handle
            try:
                handle.result = yield from task.gen
            except GeneratorExit:
                # The worker generator itself is being closed (a crashed
                # run abandoned the pool and the interpreter is
                # collecting it); swallowing this into handle.exception
                # would loop back into queue.get() outside any simulated
                # thread. Let the close proceed.
                raise
            except BaseException as exc:  # noqa: BLE001 - crash capture
                handle.exception = exc
            finally:
                thread.tls.pop("%s.current_task" % self.name)
                thread.itls = saved_itls
                handle.done = True
                waiters, handle._waiters = handle._waiters, []
                for waiter in waiters:
                    sim.scheduler.wake(waiter)
            if (
                handle.exception is not None
                and not waiters
                and sim.scheduler.stop_on_failure
            ):
                # No one was awaiting the task when it crashed: surface
                # it as an unobserved task exception tearing the worker
                # (and, under stop_on_failure, the run) down, like an
                # unhandled task exception in .NET. Awaited exceptions
                # are re-raised in the waiter instead (see wait()).
                raise handle.exception
