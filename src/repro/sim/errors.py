"""Exception types raised by the concurrency simulator.

The exception hierarchy mirrors the failure modes of the managed runtime
that the paper instruments: ``NullReferenceError`` corresponds to .NET's
``NullReferenceException`` -- the oracle Waffle uses to report MemOrder
bugs (paper section 5, "Waffle reports a bug only when the target binary
raises a NULL reference exception").
"""

from __future__ import annotations


class SimulationError(Exception):
    """Base class for all simulator-raised errors."""


class NullReferenceError(SimulationError):
    """A member access went through a null reference.

    This is the manifestation of a MemOrder bug: either a use executed
    before the reference was initialized (use-before-initialization), or
    after it was disposed (use-after-free).
    """

    def __init__(self, message, location=None, ref_name=None, thread_name=None):
        super().__init__(message)
        #: Static location (``Location``) of the faulting access, if known.
        self.location = location
        #: Name of the reference slot that was null.
        self.ref_name = ref_name
        #: Name of the thread that performed the faulting access.
        self.thread_name = thread_name


class ObjectDisposedError(NullReferenceError):
    """A member access targeted an object that was explicitly disposed.

    Subclassing :class:`NullReferenceError` keeps the detection oracle
    uniform: both flavors of MemOrder bug manifest as a null-reference
    failure, exactly as in the paper's C# targets where a disposed object
    either nulls its backing field or throws on use.
    """


class DeadlockError(SimulationError):
    """No thread is runnable but some threads are still blocked."""

    def __init__(self, message, blocked_threads=()):
        super().__init__(message)
        self.blocked_threads = list(blocked_threads)


class ThreadCrashed(SimulationError):
    """Wrapper carrying an exception that escaped a simulated thread."""

    def __init__(self, thread_name, original):
        super().__init__("thread %r crashed: %r" % (thread_name, original))
        self.thread_name = thread_name
        self.original = original


class SimulationTimeout(SimulationError):
    """The virtual clock exceeded the configured time limit."""

    def __init__(self, message, virtual_time=0.0):
        super().__init__(message)
        self.virtual_time = virtual_time
