"""Procedural workload generator with ground-truth bug oracles.

The eleven hand-ported applications (:mod:`repro.apps`) give the
reproduction its paper-faithful rows, but they cap scenario diversity
at 18 fixed bugs. This package turns the same motif vocabulary
(:mod:`repro.apps.patterns`) into an *unbounded, seed-reproducible*
workload family:

* :mod:`repro.gen.spec` -- a seeded sampler producing a declarative
  :class:`~repro.gen.spec.WorkloadSpec`: concurrency topology (fan-out,
  worker pool, pipeline, diamond join), shared-access density, and
  planted bug specs with *analytically known* happens-before gaps;
* :mod:`repro.gen.builder` -- compiles a spec into an
  :class:`~repro.apps.base.AppTestCase` conforming to the apps
  contract, with per-bug *defused* variants used by the oracle loop;
* :mod:`repro.gen.oracle` -- the machine-checkable ground truth:
  ``planted_bugs()`` site pairs plus expected detectability under the
  config's near-miss window, evaluated by running the real
  :class:`~repro.core.detector.Waffle` detector and checking recall
  (every detectable planted bug found within budget) and soundness
  (no detection outside the planted set);
* :mod:`repro.gen.shrink` -- bisects a failing spec to a minimal
  reproducer for the ``tests/gen/regressions/`` corpus;
* :mod:`repro.gen.registry` -- name resolution (``gen-<seed>``) so
  generated workloads flow through ``get_app``, ``detect``, ``trace``
  and dossier ``replay`` exactly like the hand-ported apps.

Engine/RNG separation (SNIPPETS.md Snippet 3): all sampling draws from
one injected seeded RNG, so a spec is a pure function of its seed and
the whole family is content-addressable by ``(seed, spec_hash)``.
"""

from .spec import WorkloadSpec, PlantedBugSpec, ComponentSpec, generate_spec, spec_hash
from .builder import build_workload, workload_name, parse_workload_name
from .oracle import OracleResult, evaluate_spec

__all__ = [
    "WorkloadSpec",
    "PlantedBugSpec",
    "ComponentSpec",
    "generate_spec",
    "spec_hash",
    "build_workload",
    "workload_name",
    "parse_workload_name",
    "OracleResult",
    "evaluate_spec",
]
