"""Compile a :class:`~repro.gen.spec.WorkloadSpec` into a runnable test.

The builder reuses the validated motif vocabulary of
:mod:`repro.apps.patterns` for both the benign topology skeleton and
the *armed* planted bugs, and supplies properly-synchronized *defused*
variants of each bug kind for the oracle's defuse-and-rerun loop:

* ``use_before_init`` defused: initialize before forking the handler,
  so the (init, use) pair becomes fork-ordered and is pruned;
* ``use_after_dispose`` defused: join the user thread before the
  disposal -- the (use, dispose) near-miss survives as a *false*
  candidate (realistic noise) but no delay can expose it;
* ``racy_publication`` defused: finish the payload initialization
  before publishing through the channel, so the consumer can never
  observe the uninitialized state.

Every component is forked as its own thread subtree with its own refs
and sites (prefix ``gen<seed>.c<index>``), so delays at one component's
sites can never shift another component's threads -- the isolation that
makes per-bug detectability compositional.
"""

from __future__ import annotations

import re
from typing import Dict, FrozenSet, Generator, List

from ..apps import patterns
from ..apps.base import AppTestCase
from ..sim.api import Simulation
from .spec import WorkloadSpec, PlantedBugSpec, ComponentSpec

#: Stagger between component starts (ms): spreads the components'
#: delay-free phases apart for realism without touching any bug gap.
COMPONENT_STAGGER_MS = 0.4

_NAME_RE = re.compile(r"^gen-(-?\d+):workload(?:\+defused\[([^\]]*)\])?$")


def workload_name(spec: WorkloadSpec, defused: FrozenSet[str] = frozenset()) -> str:
    base = "gen-%d:workload" % spec.seed
    if defused:
        base += "+defused[%s]" % ",".join(sorted(defused))
    return base


def parse_workload_name(name: str):
    """Inverse of :func:`workload_name`: ``(seed, defused)`` or None."""
    match = _NAME_RE.match(name)
    if match is None:
        return None
    seed = int(match.group(1))
    defused = frozenset(x for x in (match.group(2) or "").split(",") if x)
    return seed, defused


def component_prefix(spec: WorkloadSpec, index: int) -> str:
    return "gen%d.c%d" % (spec.seed, index)


def bug_sites(spec: WorkloadSpec, bug: PlantedBugSpec) -> Dict[str, str]:
    """The static sites of one planted bug (deterministic in the spec)."""
    prefix = component_prefix(spec, bug.component)
    return {
        "init": "%s.Init:1" % prefix,
        "use": "%s.Use:2" % prefix,
        "dispose": "%s.Dispose:3" % prefix,
    }


def planted_oracle(spec: WorkloadSpec, near_miss_window_ms: float = 100.0) -> List[dict]:
    """``planted_bugs()``: site pairs + expected detectability under SC.

    The racing pair is (init, use) for the init races and (use, dispose)
    for the disposal race; the manifestation always faults at the use
    site. Detectability is a pure function of the engineered gap vs the
    near-miss window (section 3.1): inside the window the pair becomes a
    candidate and Waffle's ``alpha x gap`` delay covers the gap.
    """
    entries: List[dict] = []
    for bug in spec.bugs:
        sites = bug_sites(spec, bug)
        if bug.kind == "use_after_dispose":
            pair = (sites["use"], sites["dispose"])
        else:
            pair = (sites["init"], sites["use"])
        entries.append(
            {
                "bug_id": bug.bug_id,
                "kind": bug.kind,
                "pair": pair,
                "fault_site": sites["use"],
                "gap_ms": bug.gap_ms,
                "detectable": bug.detectable_under(near_miss_window_ms),
            }
        )
    return entries


# ----------------------------------------------------------------------
# Bug components: armed and defused variants
# ----------------------------------------------------------------------


def _armed_bug(sim: Simulation, spec: WorkloadSpec, bug: PlantedBugSpec) -> Generator:
    prefix = component_prefix(spec, bug.component)
    sites = bug_sites(spec, bug)
    if bug.kind == "use_before_init":
        return patterns.plain_ubi(
            sim,
            prefix,
            "%s_ref" % prefix.replace(".", "_"),
            init_site=sites["init"],
            use_site=sites["use"],
            init_at_ms=1.0,
            first_use_at_ms=1.0 + bug.gap_ms,
            use_count=3,
            use_spacing_ms=1.0,
        )
    if bug.kind == "use_after_dispose":
        return patterns.plain_uaf(
            sim,
            prefix,
            "%s_ref" % prefix.replace(".", "_"),
            use_site=sites["use"],
            dispose_site=sites["dispose"],
            init_site=sites["init"],
            use_at_ms=3.0,
            dispose_at_ms=3.0 + bug.gap_ms,
        )
    if bug.kind == "racy_publication":
        return patterns.multi_instance_ubi(
            sim,
            prefix,
            "%s_ref" % prefix.replace(".", "_"),
            init_site=sites["init"],
            use_site=sites["use"],
            iterations=bug.iterations or 4,
            gap_ms=bug.gap_ms,
            iteration_spacing_ms=4.0,
        )
    raise ValueError("unknown bug kind %r" % bug.kind)


def _defused_bug(sim: Simulation, spec: WorkloadSpec, bug: PlantedBugSpec) -> Generator:
    """The properly-synchronized variant: same sites, same traffic
    shape, no exposable race. This is what the oracle substitutes after
    a bug is found, so later sessions hunt the *remaining* bugs."""
    prefix = component_prefix(spec, bug.component)
    sites = bug_sites(spec, bug)
    ref_name = "%s_ref" % prefix.replace(".", "_")
    if bug.kind == "use_before_init":

        def ubi_root() -> Generator:
            ref = sim.ref(ref_name)
            obj = sim.new("%s.Handler" % prefix)
            yield from sim.assign(ref, obj, loc=sites["init"])

            def handler() -> Generator:
                yield from sim.sleep(1.0 + bug.gap_ms)
                for _ in range(3):
                    yield from sim.use(ref, member="OnEvent", loc=sites["use"])
                    yield from sim.sleep(1.0)

            # Initialization precedes the fork: the (init, use) pair is
            # parent-ordered and pruned by the happens-before analysis.
            pump = sim.fork(handler(), name="%s-pump" % prefix)
            yield from sim.join(pump)

        return ubi_root()
    if bug.kind == "use_after_dispose":

        def uaf_root() -> Generator:
            ref = sim.ref(ref_name)
            obj = sim.new("%s.Session" % prefix)
            yield from sim.assign(ref, obj, loc=sites["init"])

            def user() -> Generator:
                yield from sim.sleep(3.0)
                yield from sim.use(ref, member="Send", loc=sites["use"])

            worker = sim.fork(user(), name="%s-user" % prefix)
            # Join before disposing: the (use, dispose) near-miss is
            # still observed (a realistic false candidate) but the join
            # the tools cannot see protects it.
            yield from sim.join(worker)
            yield from sim.dispose(ref, loc=sites["dispose"])

        return uaf_root()
    if bug.kind == "racy_publication":

        def racy_root() -> Generator:
            requests = sim.channel("%s.requests" % prefix)

            def consumer() -> Generator:
                while True:
                    payload_ref = yield from requests.get()
                    if payload_ref is None:
                        return
                    yield from sim.sleep(bug.gap_ms)
                    yield from sim.use(payload_ref, member="Route", loc=sites["use"])

            worker = sim.fork(consumer(), name="%s-consumer" % prefix)
            for i in range(bug.iterations or 4):
                yield from sim.sleep(4.0)
                payload_ref = sim.ref("%s_payload_%d" % (ref_name, i))
                obj = sim.new("%s.Payload" % prefix, seq=i)
                # Initialize *before* publishing: a delayed init delays
                # the publication with it, so the consumer can never
                # observe the uninitialized payload.
                yield from sim.assign(payload_ref, obj, loc=sites["init"])
                requests.put(payload_ref)
            requests.close()
            yield from sim.join(worker)

        return racy_root()
    raise ValueError("unknown bug kind %r" % bug.kind)


# ----------------------------------------------------------------------
# Benign components
# ----------------------------------------------------------------------


def _benign_component(sim: Simulation, spec: WorkloadSpec, comp: ComponentSpec) -> Generator:
    prefix = component_prefix(spec, comp.index)
    if comp.motif == "fork_ordered_preamble":

        def preamble() -> Generator:
            gen, threads = patterns.fork_ordered_preamble(
                sim, prefix, count=int(comp.param("count", 2))
            )
            yield from gen
            yield from sim.join_all(threads)

        return preamble()
    if comp.motif == "task_fanout":
        return patterns.task_fanout(
            sim,
            prefix,
            workers=int(comp.param("workers", 2)),
            tasks=int(comp.param("tasks", 4)),
        )
    if comp.motif == "locked_counter_workers":
        return patterns.locked_counter_workers(
            sim,
            prefix,
            workers=int(comp.param("workers", 2)),
            increments=int(comp.param("increments", 3)),
        )
    if comp.motif == "unsafe_collection_traffic":
        return patterns.unsafe_collection_traffic(
            sim,
            prefix,
            workers=int(comp.param("workers", 2)),
            ops_per_worker=int(comp.param("ops", 3)),
        )
    if comp.motif == "synchronized_pipeline":
        return patterns.synchronized_pipeline(sim, prefix, items=int(comp.param("items", 5)))
    raise ValueError("unknown benign motif %r" % comp.motif)


def _component_generator(
    sim: Simulation, spec: WorkloadSpec, comp: ComponentSpec, defused: FrozenSet[str]
) -> Generator:
    bug = next((b for b in spec.bugs if b.component == comp.index), None)
    if bug is not None:
        inner = _defused_bug(sim, spec, bug) if bug.bug_id in defused else _armed_bug(sim, spec, bug)
    else:
        inner = _benign_component(sim, spec, comp)

    def staggered() -> Generator:
        offset = comp.index * COMPONENT_STAGGER_MS
        if offset:
            yield from sim.sleep(offset)
        yield from inner

    return staggered()


def _root(sim: Simulation, spec: WorkloadSpec, defused: FrozenSet[str]) -> Generator:
    bug_indices = {b.component for b in spec.bugs}
    benign = [c for c in spec.components if c.index not in bug_indices]
    bug_comps = [c for c in spec.components if c.index in bug_indices]

    # Bug components always run concurrently with everything else.
    threads = [
        sim.fork(_component_generator(sim, spec, comp, defused), name="gen-bug-%d" % comp.index)
        for comp in bug_comps
    ]
    if spec.topology == "diamond" and len(benign) >= 3:
        # Diamond join: both pipeline branches complete before the
        # fan-out stage starts.
        branches = [
            sim.fork(_component_generator(sim, spec, comp, defused), name="gen-branch-%d" % comp.index)
            for comp in benign[:-1]
        ]
        yield from sim.join_all(branches)
        yield from _component_generator(sim, spec, benign[-1], defused)
    else:
        threads.extend(
            sim.fork(_component_generator(sim, spec, comp, defused), name="gen-comp-%d" % comp.index)
            for comp in benign
        )
    yield from sim.join_all(threads)


def build_workload(spec: WorkloadSpec, defused: FrozenSet[str] = frozenset()) -> AppTestCase:
    """Compile a spec (plus a defused-bug set) into an AppTestCase."""
    unknown = defused - {b.bug_id for b in spec.bugs}
    if unknown:
        raise ValueError("defused ids not planted in spec: %s" % ", ".join(sorted(unknown)))

    def build(sim: Simulation) -> Generator:
        return _root(sim, spec, defused)

    test = AppTestCase(
        workload_name(spec, defused),
        build,
        multithreaded=True,
        tags=("generated", spec.topology),
    )
    # The machine-checkable ground truth rides on the test object so
    # harness code can consume it without re-deriving the spec.
    test.spec = spec
    test.planted_bugs = lambda near_miss_window_ms=100.0: planted_oracle(
        spec, near_miss_window_ms
    )
    return test
