"""Machine-checkable ground truth for generated workloads.

:func:`evaluate_spec` runs the *real* :class:`~repro.core.detector.Waffle`
detector against one generated workload and checks it against the
spec's planted-bug oracle:

* **recall** -- every planted *detectable* bug is found within the
  per-session run budget. Waffle stops at the first manifested bug per
  session (``stop_at_first_bug``), so the loop defuses each found bug
  (substituting its properly-synchronized variant, same sites and
  traffic) and re-runs until a session finds nothing;
* **soundness** -- every reported fault site belongs to a planted,
  still-armed bug. The detector's zero-false-positive harvest plus the
  crash-proof benign motifs make any other site a generator bug;
* **detectability model** -- a planted *undetectable* bug (gap beyond
  the near-miss window) must never be found;
* **replay** (optional) -- every detection's dossier, replayed through
  :func:`repro.obs.dossier.replay_dossier`, reproduces the same error
  at the same site.

The result carries only deterministic fields (virtual times, run
counts, sites), so a fuzz row is a pure function of
``(seed, config, budget)`` -- the bit-identity the fuzz CLI digests.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from ..core.config import WaffleConfig
from ..core.detector import Waffle
from .builder import build_workload, bug_sites, planted_oracle
from .spec import WorkloadSpec

#: Sessions beyond the number of detectable bugs: one confirming
#: session that must come back empty.
_EXTRA_SESSIONS = 1


@dataclass
class OracleResult:
    """The verdict of one spec's oracle evaluation."""

    seed: int
    topology: str
    planted: List[dict] = field(default_factory=list)
    #: bug_id -> {"session": int, "runs_to_expose": int}
    found: Dict[str, dict] = field(default_factory=dict)
    sessions: int = 0
    total_runs: int = 0
    virtual_ms: float = 0.0
    #: Invariant violations, each a human-readable string. Empty == ok.
    violations: List[str] = field(default_factory=list)
    #: Dossier replay verdicts (bug_id -> reproduced), when checked.
    replays: Dict[str, bool] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not self.violations

    @property
    def detectable_planted(self) -> int:
        return sum(1 for p in self.planted if p["detectable"])

    @property
    def recall(self) -> float:
        planted = self.detectable_planted
        if not planted:
            return 1.0
        return len([b for b in self.found if b in self._detectable_ids()]) / planted

    def _detectable_ids(self) -> Set[str]:
        return {p["bug_id"] for p in self.planted if p["detectable"]}

    def to_row(self) -> dict:
        """The deterministic fuzz-table row for this workload."""
        return {
            "seed": self.seed,
            "topology": self.topology,
            "planted": len(self.planted),
            "detectable": self.detectable_planted,
            "found": sorted(self.found),
            "sessions": self.sessions,
            "runs": self.total_runs,
            "virtual_ms": round(self.virtual_ms, 2),
            "violations": list(self.violations),
            "replays": {k: self.replays[k] for k in sorted(self.replays)},
            "ok": self.ok,
        }


def evaluate_spec(
    spec: WorkloadSpec,
    config: WaffleConfig,
    budget: int = 8,
    check_replay: bool = False,
) -> OracleResult:
    """Run the defuse-and-rerun oracle loop for one spec."""
    oracle = planted_oracle(spec, config.near_miss_window_ms)
    result = OracleResult(seed=spec.seed, topology=spec.topology, planted=oracle)
    by_fault_site = {entry["fault_site"]: entry for entry in oracle}
    detectable_ids = {entry["bug_id"] for entry in oracle if entry["detectable"]}

    recorder = None
    if check_replay:
        from ..obs import flightrec

        # Dossiers need the flight recorder's provenance; install it
        # only for the evaluation (and only if nobody else owns it).
        if not flightrec.active():
            recorder = flightrec.install()
    try:
        defused: Set[str] = set()
        max_sessions = len(detectable_ids) + _EXTRA_SESSIONS
        for session_index in range(1, max_sessions + 1):
            test = build_workload(spec, frozenset(defused))
            outcome = Waffle(config).detect(test, max_detection_runs=budget)
            result.sessions = session_index
            result.total_runs += len(outcome.runs)
            result.virtual_ms += outcome.total_time_ms
            if not outcome.bug_found:
                break
            report = outcome.reports[0]
            entry = by_fault_site.get(report.fault_site)
            if entry is None:
                result.violations.append(
                    "soundness: fault at unplanted site %s (session %d)"
                    % (report.fault_site, session_index)
                )
                break
            bug_id = entry["bug_id"]
            if bug_id in defused:
                result.violations.append(
                    "soundness: defused bug %s manifested again at %s (session %d)"
                    % (bug_id, report.fault_site, session_index)
                )
                break
            if not entry["detectable"]:
                result.violations.append(
                    "detectability: undetectable bug %s (gap %.1f ms) was found (session %d)"
                    % (bug_id, entry["gap_ms"], session_index)
                )
            result.found[bug_id] = {
                "session": session_index,
                "runs_to_expose": outcome.runs_to_expose,
                "fault_site": report.fault_site,
            }
            if check_replay:
                _check_replay(result, test, outcome, bug_id)
            defused.add(bug_id)
        missed = sorted(detectable_ids - set(result.found))
        for bug_id in missed:
            entry = next(e for e in oracle if e["bug_id"] == bug_id)
            result.violations.append(
                "recall: detectable bug %s (%s, gap %.1f ms) not found within %d run(s)/session"
                % (bug_id, entry["kind"], entry["gap_ms"], budget)
            )
    finally:
        if recorder is not None:
            from ..obs import flightrec

            flightrec.uninstall()
    return result


def _check_replay(result: OracleResult, test, outcome, bug_id: str) -> None:
    """Replay every dossier the session assembled; record the verdict."""
    from ..obs import dossier as dossier_mod

    if not outcome.dossiers:
        result.violations.append("replay: no dossier assembled for %s" % bug_id)
        result.replays[bug_id] = False
        return
    reproduced = True
    for built in outcome.dossiers:
        _, ok = dossier_mod.replay_dossier(built, test.build)
        reproduced = reproduced and ok
    result.replays[bug_id] = reproduced
    if not reproduced:
        result.violations.append("replay: dossier for %s did not reproduce" % bug_id)


def expected_fault_sites(spec: WorkloadSpec) -> Set[str]:
    """All sites at which an armed planted bug may legally fault."""
    return {bug_sites(spec, bug)["use"] for bug in spec.bugs}
