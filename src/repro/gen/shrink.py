"""Spec shrinking: bisect a failing workload to a minimal reproducer.

When the fuzz verifier finds an invariant violation for some seed, the
raw spec can carry several components and bugs that have nothing to do
with the failure. :func:`shrink_spec` greedily applies structural
reductions -- drop a benign component, drop a planted bug, halve a
size parameter -- keeping a candidate only if the caller-supplied
predicate still classifies it as failing, and repeats until no
reduction survives. Greedy delta debugging over a hand-ordered
transformation list; deterministic because the candidate order is.

The surviving spec is persisted under ``tests/gen/regressions/`` (see
:func:`save_regression` / :func:`load_regression`) where CI replays it
forever, so a once-found detector or generator defect can never
silently return.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Callable, Iterator, List, Optional

from .spec import ComponentSpec, WorkloadSpec, spec_hash, shrunk_copy

#: Upper bound on predicate evaluations per shrink, so a pathological
#: predicate cannot spin the fuzz CLI forever.
MAX_SHRINK_EVALS = 200

#: Size parameters eligible for halving, per motif family.
_HALVABLE = ("items", "tasks", "ops", "increments", "count", "workers")


def _drop_component(spec: WorkloadSpec, index: int) -> Optional[WorkloadSpec]:
    """Remove one benign component (bug hosts are dropped with their bug)."""
    comp = spec.components[index]
    if any(b.component == comp.index for b in spec.bugs):
        return None
    remaining = tuple(c for i, c in enumerate(spec.components) if i != index)
    if not remaining:
        return None
    return shrunk_copy(spec, components=remaining)


def _drop_bug(spec: WorkloadSpec, bug_index: int) -> Optional[WorkloadSpec]:
    bug = spec.bugs[bug_index]
    bugs = tuple(b for i, b in enumerate(spec.bugs) if i != bug_index)
    components = tuple(c for c in spec.components if c.index != bug.component)
    if not components:
        return None
    return shrunk_copy(spec, bugs=bugs, components=components)


def _halve_param(spec: WorkloadSpec, index: int, name: str) -> Optional[WorkloadSpec]:
    comp = spec.components[index]
    value = comp.param(name)
    if value < 2:
        return None
    halved = tuple(
        (k, float(max(1, int(v // 2))) if k == name else v) for k, v in comp.params
    )
    if halved == comp.params:
        return None
    components = list(spec.components)
    components[index] = ComponentSpec(comp.index, comp.motif, halved)
    return shrunk_copy(spec, components=tuple(components))


def _reduce_iterations(spec: WorkloadSpec, bug_index: int) -> Optional[WorkloadSpec]:
    bug = spec.bugs[bug_index]
    if bug.iterations <= 2:
        return None
    bugs = list(spec.bugs)
    bugs[bug_index] = shrunk_copy(bug, iterations=max(2, bug.iterations // 2))
    return shrunk_copy(spec, bugs=tuple(bugs))


def _candidates(spec: WorkloadSpec) -> Iterator[WorkloadSpec]:
    """All one-step reductions, most aggressive first."""
    for bug_index in range(len(spec.bugs)):
        reduced = _drop_bug(spec, bug_index)
        if reduced is not None:
            yield reduced
    for index in range(len(spec.components)):
        reduced = _drop_component(spec, index)
        if reduced is not None:
            yield reduced
    for index in range(len(spec.components)):
        for name in _HALVABLE:
            reduced = _halve_param(spec, index, name)
            if reduced is not None:
                yield reduced
    for bug_index in range(len(spec.bugs)):
        reduced = _reduce_iterations(spec, bug_index)
        if reduced is not None:
            yield reduced


def shrink_spec(
    spec: WorkloadSpec,
    still_fails: Callable[[WorkloadSpec], bool],
    max_evals: int = MAX_SHRINK_EVALS,
) -> WorkloadSpec:
    """Greedily minimize ``spec`` while ``still_fails`` holds.

    ``still_fails`` must be deterministic (re-run the oracle and compare
    the violation class); the returned spec is 1-minimal with respect to
    the candidate moves, or the best reduction reached within
    ``max_evals`` predicate calls.
    """
    current = spec
    evals = 0
    progress = True
    while progress and evals < max_evals:
        progress = False
        for candidate in _candidates(current):
            evals += 1
            if still_fails(candidate):
                current = candidate
                progress = True
                break
            if evals >= max_evals:
                break
    return current


# ----------------------------------------------------------------------
# Regression fixtures
# ----------------------------------------------------------------------


def save_regression(
    spec: WorkloadSpec,
    directory,
    reason: str,
    invariant: str,
    source_seed: int,
) -> Path:
    """Persist a shrunken failing spec as a replayable fixture."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    digest = spec_hash(spec)[:12]
    path = directory / ("regression-%s.json" % digest)
    payload = {
        "spec": spec.to_dict(),
        "spec_hash": spec_hash(spec),
        "reason": reason,
        "invariant": invariant,  # "recall" | "soundness" | "identity" | "replay"
        "source_seed": source_seed,
    }
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path


def load_regression(path) -> dict:
    """Load one fixture; raises if its spec hash no longer matches."""
    payload = json.loads(Path(path).read_text())
    spec = WorkloadSpec.from_dict(payload["spec"])
    recorded = payload.get("spec_hash")
    actual = spec_hash(spec)
    if recorded and recorded != actual:
        raise ValueError(
            "%s: spec hash drift (recorded %s, rebuilt %s) -- the spec "
            "schema changed under a committed fixture" % (path, recorded, actual)
        )
    payload["spec_obj"] = spec
    return payload


def load_regression_dir(directory) -> List[dict]:
    directory = Path(directory)
    if not directory.is_dir():
        return []
    return [load_regression(p) for p in sorted(directory.glob("regression-*.json"))]
