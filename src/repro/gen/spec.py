"""Seeded workload-spec sampler: the declarative half of the generator.

A :class:`WorkloadSpec` describes one synthetic concurrent application:
a topology of benign components drawn from the motif vocabulary of
:mod:`repro.apps.patterns`, plus zero or more :class:`PlantedBugSpec`
entries whose happens-before gaps are chosen *analytically*:

* detectable bugs get gaps in ``DETECTABLE_GAP_MS`` -- far inside the
  default 100 ms near-miss window, and wide enough that Waffle's
  ``alpha x gap`` delay covers the gap with margin against the
  simulator's per-op cost jitter;
* undetectable bugs get gaps in ``UNDETECTABLE_GAP_MS`` -- beyond the
  near-miss window, so under the default (SC) configuration the racing
  pair is never even identified as a candidate.

Every bug lives in its own component with its own threads and sites, so
delays injected for one component can never shift another component's
threads -- which is what makes the per-bug detectability claim
compositional and machine-checkable (:mod:`repro.gen.oracle`).

Determinism contract: :func:`generate_spec` samples through one seeded
``random.Random`` and touches no other state, so ``spec == f(seed)``
and :func:`spec_hash` content-addresses the whole family.
"""

from __future__ import annotations

import hashlib
import json
import random
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Tuple

#: Bump when spec semantics change; persisted specs carry it so stale
#: regression fixtures fail loudly instead of rebuilding a different
#: workload under an old hash.
SPEC_SCHEMA_VERSION = 1

TOPOLOGIES = ("fanout", "pool", "pipeline", "diamond")

BUG_KINDS = ("use_before_init", "use_after_dispose", "racy_publication")

#: Gap range (ms) for detectable planted bugs. The lower bound keeps
#: ``(alpha - 1) x gap`` margin comfortably above the simulator's
#: per-op cost jitter; the upper bound stays far inside the default
#: 100 ms near-miss window.
DETECTABLE_GAP_MS = (4.0, 40.0)

#: Gap range (ms) for undetectable planted bugs: beyond the near-miss
#: window, so the racing pair is never identified under SC defaults.
UNDETECTABLE_GAP_MS = (140.0, 240.0)


@dataclass(frozen=True)
class PlantedBugSpec:
    """One planted MemOrder bug with an analytically known gap."""

    bug_id: str  # "B1", "B2", ... (unique within the workload)
    kind: str  # one of BUG_KINDS
    component: int  # index of the (dedicated) component hosting it
    gap_ms: float  # the engineered happens-before gap
    detectable: bool  # sampler intent; cross-checked by the oracle
    #: racy_publication repeats the race on a fresh object each
    #: iteration (the multi-instance shape); 0 for the other kinds.
    iterations: int = 0

    def detectable_under(self, near_miss_window_ms: float) -> bool:
        """Ground truth from the gap alone: a planted pair becomes a
        delay candidate iff its delay-free gap sits inside the window."""
        return self.gap_ms < near_miss_window_ms


@dataclass(frozen=True)
class ComponentSpec:
    """One component of the workload: a benign motif or a bug host.

    ``params`` is a sorted tuple of (name, value) pairs so the spec
    stays hashable and canonically serializable.
    """

    index: int
    motif: str  # patterns motif name or a BUG_KINDS entry
    params: Tuple[Tuple[str, float], ...] = ()

    def param(self, name: str, default: float = 0.0) -> float:
        for key, value in self.params:
            if key == name:
                return value
        return default


@dataclass(frozen=True)
class WorkloadSpec:
    """A complete declarative description of one generated workload."""

    seed: int
    topology: str
    density: float  # scales benign op counts (shared-access density)
    components: Tuple[ComponentSpec, ...]
    bugs: Tuple[PlantedBugSpec, ...]
    version: int = SPEC_SCHEMA_VERSION

    @property
    def detectable_bugs(self) -> Tuple[PlantedBugSpec, ...]:
        return tuple(b for b in self.bugs if b.detectable)

    @property
    def thread_estimate(self) -> int:
        """Rough thread count (component roots + per-motif workers);
        analytics labeling only, never a correctness input."""
        total = 1  # the root
        for comp in self.components:
            total += 1  # the component's own root thread
            total += int(
                comp.param("workers", 0)
                or comp.param("count", 0)
                or (1 if comp.motif in BUG_KINDS else 1)
            )
        return total

    def to_dict(self) -> dict:
        return {
            "version": self.version,
            "seed": self.seed,
            "topology": self.topology,
            "density": self.density,
            "components": [
                {"index": c.index, "motif": c.motif, "params": dict(c.params)}
                for c in self.components
            ],
            "bugs": [
                {
                    "bug_id": b.bug_id,
                    "kind": b.kind,
                    "component": b.component,
                    "gap_ms": b.gap_ms,
                    "detectable": b.detectable,
                    "iterations": b.iterations,
                }
                for b in self.bugs
            ],
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "WorkloadSpec":
        version = int(payload.get("version", 0))
        if version != SPEC_SCHEMA_VERSION:
            raise ValueError(
                "spec schema version %d != supported %d" % (version, SPEC_SCHEMA_VERSION)
            )
        components = tuple(
            ComponentSpec(
                index=int(c["index"]),
                motif=str(c["motif"]),
                params=tuple(sorted((str(k), float(v)) for k, v in c.get("params", {}).items())),
            )
            for c in payload.get("components", [])
        )
        bugs = tuple(
            PlantedBugSpec(
                bug_id=str(b["bug_id"]),
                kind=str(b["kind"]),
                component=int(b["component"]),
                gap_ms=float(b["gap_ms"]),
                detectable=bool(b["detectable"]),
                iterations=int(b.get("iterations", 0)),
            )
            for b in payload.get("bugs", [])
        )
        return cls(
            seed=int(payload["seed"]),
            topology=str(payload["topology"]),
            density=float(payload["density"]),
            components=components,
            bugs=bugs,
            version=version,
        )


def spec_hash(spec: WorkloadSpec) -> str:
    """Content address of one spec: sha256 over its canonical JSON."""
    canonical = json.dumps(spec.to_dict(), sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def _round(value: float, digits: int = 3) -> float:
    """Spec parameters are rounded so canonical JSON round-trips
    bit-identically through to_dict/from_dict."""
    return round(value, digits)


def _benign_components(rng: random.Random, topology: str, density: float) -> List[ComponentSpec]:
    """The topology's benign skeleton, op counts scaled by density."""

    def scaled(low: int, high: int) -> float:
        return float(max(1, int(rng.randint(low, high) * density)))

    comps: List[ComponentSpec] = []
    if topology == "fanout":
        comps.append(
            ComponentSpec(0, "fork_ordered_preamble", (("count", float(rng.randint(2, 4))),))
        )
        comps.append(
            ComponentSpec(
                1,
                "task_fanout",
                tuple(sorted({"workers": float(rng.randint(2, 3)), "tasks": scaled(4, 8)}.items())),
            )
        )
    elif topology == "pool":
        comps.append(
            ComponentSpec(
                0,
                "locked_counter_workers",
                tuple(
                    sorted(
                        {"workers": float(rng.randint(2, 4)), "increments": scaled(3, 6)}.items()
                    )
                ),
            )
        )
        comps.append(
            ComponentSpec(
                1,
                "unsafe_collection_traffic",
                tuple(
                    sorted({"workers": float(rng.randint(2, 3)), "ops": scaled(3, 5)}.items())
                ),
            )
        )
    elif topology == "pipeline":
        for index in range(rng.randint(1, 2)):
            comps.append(
                ComponentSpec(index, "synchronized_pipeline", (("items", scaled(5, 10)),))
            )
    else:  # diamond: two pipeline branches joined, then a fan-out stage
        comps.append(ComponentSpec(0, "synchronized_pipeline", (("items", scaled(4, 7)),)))
        comps.append(ComponentSpec(1, "synchronized_pipeline", (("items", scaled(4, 7)),)))
        comps.append(
            ComponentSpec(
                2,
                "task_fanout",
                tuple(sorted({"workers": float(rng.randint(2, 3)), "tasks": scaled(3, 6)}.items())),
            )
        )
    return comps


def _sample_bug(
    rng: random.Random, bug_index: int, component: int, detectable: bool
) -> PlantedBugSpec:
    kind = rng.choice(BUG_KINDS if detectable else BUG_KINDS[:2])
    low, high = DETECTABLE_GAP_MS if detectable else UNDETECTABLE_GAP_MS
    if kind == "racy_publication":
        # The multi-instance race runs every iteration; its per-instance
        # gap is kept small (the Table 4 "one run" shape) but still
        # inside the detectable band's spirit.
        gap = _round(rng.uniform(2.0, 8.0))
        iterations = rng.randint(4, 7)
    else:
        gap = _round(rng.uniform(low, high))
        iterations = 0
    return PlantedBugSpec(
        bug_id="B%d" % bug_index,
        kind=kind,
        component=component,
        gap_ms=gap,
        detectable=detectable,
        iterations=iterations,
    )


def generate_spec(seed: int, rng: Optional[random.Random] = None) -> WorkloadSpec:
    """Sample one workload spec as a pure function of ``seed``.

    All randomness flows through the injected ``rng`` (engine/RNG
    separation), defaulting to a Random derived from the seed alone.
    """
    if rng is None:
        rng = random.Random(seed * 1_000_003 + 17)
    topology = TOPOLOGIES[seed % len(TOPOLOGIES)] if seed >= 0 else rng.choice(TOPOLOGIES)
    density = _round(rng.uniform(0.6, 1.5), 2)
    components = _benign_components(rng, topology, density)

    # 0-2 detectable bugs (about one in seven workloads plants none,
    # exercising the no-false-positive side of the oracle) plus 0-1
    # undetectable control bugs.
    detectable_count = rng.choice((0, 1, 1, 1, 2, 2, 1))
    undetectable_count = rng.choice((0, 0, 1))
    bugs: List[PlantedBugSpec] = []
    bug_index = 1
    next_component = len(components)
    for _ in range(detectable_count):
        bug = _sample_bug(rng, bug_index, next_component, detectable=True)
        bugs.append(bug)
        components.append(ComponentSpec(next_component, bug.kind))
        bug_index += 1
        next_component += 1
    for _ in range(undetectable_count):
        bug = _sample_bug(rng, bug_index, next_component, detectable=False)
        bugs.append(bug)
        components.append(ComponentSpec(next_component, bug.kind))
        bug_index += 1
        next_component += 1
    return WorkloadSpec(
        seed=seed,
        topology=topology,
        density=density,
        components=tuple(components),
        bugs=tuple(bugs),
    )


def shrunk_copy(spec: WorkloadSpec, **changes) -> WorkloadSpec:
    """dataclasses.replace that renumbers nothing: the shrinker edits
    components/bugs wholesale and keeps indices stable so site names
    (hence detections and dossiers) survive the reduction."""
    return replace(spec, **changes)
