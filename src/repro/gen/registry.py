"""Name resolution for generated workloads.

Generated applications are addressable exactly like the hand-ported
ones -- ``get_app("gen-42")`` returns a synthetic
:class:`~repro.apps.base.Application` whose single test is the seed's
workload and whose :class:`~repro.apps.base.KnownBug` entries mirror
the planted-bug oracle -- but they are *not* enumerated by
``all_apps()``/``all_bugs()``: the paper tables stay pinned to the 11
real applications, and the unbounded family is reached by name only.

``resolve_test`` additionally understands the defused-variant names the
oracle loop produces (``gen-42:workload+defused[B1]``), which is what
lets ``repro replay`` re-execute any dossier a fuzz campaign wrote.
"""

from __future__ import annotations

import re
from typing import Optional

from ..apps.base import Application, AppTestCase, KnownBug
from .builder import build_workload, bug_sites, parse_workload_name, workload_name
from .spec import generate_spec

_APP_RE = re.compile(r"^gen-(-?\d+)$")

#: KnownBug.kind values for the planted kinds (racy publication is a
#: use-before-init observed through a channel).
_KIND_MAP = {
    "use_before_init": "use_before_init",
    "use_after_dispose": "use_after_free",
    "racy_publication": "use_before_init",
}


def is_generated_name(name: str) -> bool:
    return bool(_APP_RE.match(name)) or parse_workload_name(name) is not None


def gen_app(seed: int) -> Application:
    """Build the synthetic Application for one generator seed."""
    spec = generate_spec(seed)
    app = Application(
        name="gen-%d" % seed,
        display_name="Generated/%d (%s)" % (seed, spec.topology),
        paper_loc_kloc=0.0,
        paper_multithreaded_tests=1,
        paper_stars_k=0.0,
    )
    test = build_workload(spec)
    app.tests.append(test)
    for bug in spec.bugs:
        sites = bug_sites(spec, bug)
        app.add_bug(
            KnownBug(
                bug_id="gen-%d:%s" % (seed, bug.bug_id),
                app=app.name,
                issue_id="n/a",
                kind=_KIND_MAP[bug.kind],
                previously_known=False,
                description="planted %s, gap %.1f ms (%s)"
                % (bug.kind, bug.gap_ms, "detectable" if bug.detectable else "undetectable"),
                fault_sites=frozenset({sites["use"]}),
                test_name=test.name,
            )
        )
    return app


def resolve_app(name: str) -> Optional[Application]:
    """``gen-<seed>`` -> Application, else None."""
    match = _APP_RE.match(name)
    if match is None:
        return None
    return gen_app(int(match.group(1)))


def resolve_test(name: str) -> Optional[AppTestCase]:
    """A workload (or defused-variant) name -> AppTestCase, else None."""
    parsed = parse_workload_name(name)
    if parsed is None:
        return None
    seed, defused = parsed
    spec = generate_spec(seed)
    test = build_workload(spec, defused)
    assert test.name == name or workload_name(spec, defused) == name
    return test
