"""Shared artifact store: cross-worker publication of finalized cells.

The fleet (:mod:`repro.harness.fleet`) runs one campaign across N
independent processes -- possibly on different hosts -- coordinated
only through a shared directory. The store is the half of that
coordination that carries *results*: once any worker finalizes a cell,
it publishes the outcome here and every other worker (and the
coordinator's merge) reads it back instead of re-executing. Because
every cell is a deterministic function of its content-addressed key
(see :func:`repro.harness.supervisor.cell_key`), a fetched result is
bit-identical to local re-execution -- the same soundness argument the
run cache makes, extended across processes.

Record format -- one ``cell-<key>.res`` file per finalized cell:

* line 1: a JSON header ``{"v", "key", "status", "attempts", "worker",
  "sha256"}`` where ``sha256`` digests the body;
* the rest: a pickle of the cell's result (empty for degraded cells).

Durability and integrity discipline:

* **atomic, same-directory publication** -- temp file + ``os.replace``
  in the store directory itself, with an fsync before the rename
  (matching ``save_record(..., fsync=True)``): a record that *exists*
  is whole, even across a host crash on a network filesystem;
* **first writer wins** -- publication is idempotent; a second worker
  racing to publish the same key (both executed it before either saw
  the other's lease) keeps the existing record, which is byte-identical
  anyway by determinism;
* **checksum-verified fetch** -- a record that fails its digest, fails
  to parse, or names the wrong key is quarantined (``*.corrupt``
  rename, the cache's convention) and reported as a miss, never an
  exception: the fetching worker simply executes the cell itself.

Degraded cells (``quarantined`` / ``failed``) publish *tombstones* --
status-only records with a None result -- so workers waiting on a cell
another worker gave up on see the verdict instead of spinning forever.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import pickle
from pathlib import Path
from typing import Any, Iterator, Optional

from ..obs import eventbus
from . import faults

#: Store record naming convention (one file per finalized cell).
RESULT_PREFIX = "cell-"
RESULT_SUFFIX = ".res"

#: Store record format version (the header's ``v`` field).
STORE_FORMAT_VERSION = 1


@dataclasses.dataclass
class CellRecord:
    """One fetched store record."""

    key: str
    status: str  # ok | quarantined | failed
    result: Any
    attempts: int = 1
    worker: str = "?"
    sha256: str = ""

    @property
    def ok(self) -> bool:
        return self.status == "ok"


@dataclasses.dataclass
class StoreStats:
    """Traffic counters for one store handle (tests and the bench)."""

    publishes: int = 0
    races: int = 0  # publish found the record already present
    hits: int = 0
    misses: int = 0
    corrupt: int = 0


class ArtifactStore:
    """File-backed result exchange over a shared directory."""

    def __init__(self, directory: os.PathLike, fsync: bool = True):
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.fsync = fsync
        self.stats = StoreStats()

    def path(self, key: str) -> Path:
        return self.directory / ("%s%s%s" % (RESULT_PREFIX, key, RESULT_SUFFIX))

    # -- Publication ---------------------------------------------------

    def publish(self, key: str, status: str, result: Any,
                attempts: int = 1, worker: str = "?") -> CellRecord:
        """Make a finalized cell visible to the whole fleet, atomically.

        Idempotent: when the record already exists (another worker won
        the race), the existing bytes stand -- by determinism they
        describe the same result. Returns the record as published (or
        as already present).
        """
        target = self.path(key)
        if target.exists():
            self.stats.races += 1
            existing = self.fetch(key, count_stats=False)
            if existing is not None:
                return existing
            # The existing record was corrupt (and is now quarantined):
            # fall through and publish the good copy.
        payload = pickle.dumps(result, protocol=pickle.HIGHEST_PROTOCOL)
        header = {
            "v": STORE_FORMAT_VERSION,
            "key": key,
            "status": status,
            "attempts": attempts,
            "worker": worker,
            "sha256": hashlib.sha256(payload).hexdigest(),
        }
        body = json.dumps(header, sort_keys=True).encode("utf-8") + b"\n" + payload
        tmp = target.with_name(target.name + ".tmp.%d" % os.getpid())
        with open(tmp, "wb") as fp:
            fp.write(body)
            if self.fsync:
                fp.flush()
                os.fsync(fp.fileno())
        os.replace(tmp, target)
        if self.fsync:
            from ..core.persistence import fsync_dir

            fsync_dir(self.directory)
        self.stats.publishes += 1
        eventbus.emit("store", action="publish", cell=key[:16], status=status)
        return CellRecord(
            key=key, status=status, result=result, attempts=attempts,
            worker=worker, sha256=header["sha256"],
        )

    # -- Fetch ---------------------------------------------------------

    def fetch(self, key: str, count_stats: bool = True) -> Optional[CellRecord]:
        """Read a published record back, checksum-verified.

        Any integrity failure -- unreadable file, torn header, checksum
        or key mismatch, unpicklable body -- quarantines the record
        (``*.corrupt``) and returns None: a corrupt remote record is a
        miss the fetching worker repairs by executing the cell itself.

        ``count_stats=False`` suppresses the hit/miss accounting for
        internal probes (publish-race reads, waiters polling).
        """
        target = self.path(key)
        if not target.exists():
            if count_stats:
                self.stats.misses += 1
            return None
        # Chaos site: deterministically corrupt the record before the
        # read, exercising the quarantine path (same site the run cache
        # uses, keyed by file name).
        faults.maybe_corrupt_record(target)
        try:
            blob = target.read_bytes()
            head, _, payload = blob.partition(b"\n")
            header = json.loads(head.decode("utf-8"))
            if header.get("v") != STORE_FORMAT_VERSION:
                raise ValueError("store record version %r" % header.get("v"))
            if header.get("key") != key:
                raise ValueError("store record names key %r" % header.get("key"))
            if hashlib.sha256(payload).hexdigest() != header.get("sha256"):
                raise ValueError("store record failed checksum")
            result = pickle.loads(payload)
        except (OSError, ValueError, KeyError, EOFError, pickle.PickleError,
                UnicodeDecodeError):
            self._quarantine(target)
            if count_stats:
                self.stats.misses += 1
            return None
        if count_stats:
            self.stats.hits += 1
            eventbus.emit("store", action="hit", cell=key[:16],
                          status=header.get("status", "?"))
        return CellRecord(
            key=key,
            status=str(header.get("status", "ok")),
            result=result,
            attempts=int(header.get("attempts", 1)),
            worker=str(header.get("worker", "?")),
            sha256=str(header.get("sha256", "")),
        )

    def _quarantine(self, target: Path) -> None:
        self.stats.corrupt += 1
        eventbus.emit("store", action="corrupt", cell=target.name[:32])
        try:
            os.replace(target, target.with_name(target.name + ".corrupt"))
        except OSError:
            pass  # the quarantine rename itself must never crash a worker

    # -- Enumeration (the coordinator's merge walks the store) ---------

    def keys(self) -> Iterator[str]:
        """Every published cell key, sorted (deterministic merge order)."""
        for path in sorted(self.directory.glob(RESULT_PREFIX + "*" + RESULT_SUFFIX)):
            yield path.name[len(RESULT_PREFIX):-len(RESULT_SUFFIX)]
