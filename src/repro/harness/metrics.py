"""Statistics helpers for the experiment harness.

Implements the paper's reporting conventions (section 6.1): each
experiment repeats 15 times; "found in N runs" is claimed only when a
majority of attempts (>= 10 of 15) agree; flakier bugs report the
median; overheads are averages across test inputs.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence


def _empty(stat: str, context: Optional[str]) -> ValueError:
    """An empty-sequence error that names the offending experiment cell
    (e.g. ``mean of empty sequence (table5: mqttnet/PublishRoundtrip)``)
    instead of making the operator reverse-engineer a bare ValueError."""
    if context:
        return ValueError("%s of empty sequence (%s)" % (stat, context))
    return ValueError("%s of empty sequence" % stat)


def median(values: Sequence[float], context: Optional[str] = None) -> float:
    if not values:
        raise _empty("median", context)
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return float(ordered[mid])
    return (ordered[mid - 1] + ordered[mid]) / 2.0


def mean(values: Sequence[float], context: Optional[str] = None) -> float:
    if not values:
        raise _empty("mean", context)
    return sum(values) / len(values)


def majority_runs_to_expose(
    runs: Sequence[Optional[int]],
    majority_fraction: float = 2.0 / 3.0,
) -> Optional[int]:
    """The paper's Table 4 run-count convention.

    ``runs`` holds one entry per attempt: the number of runs the tool
    needed, or None when the bug was not exposed within the budget.
    Returns None when a majority of attempts missed the bug ("-" in
    Table 4). When a single run-count is reached in a majority of
    attempts, that count is reported; otherwise (a flakier bug) the
    median over the successful attempts is reported, matching "for
    those bugs, we report the median number of runs" (section 6.2).
    """
    if not runs:
        return None
    attempts = len(runs)
    successes = [r for r in runs if r is not None]
    if len(successes) < attempts * majority_fraction:
        return None
    counts = {}
    for value in successes:
        counts[value] = counts.get(value, 0) + 1
    value, count = max(counts.items(), key=lambda item: item[1])
    if count >= attempts * majority_fraction:
        return value
    return int(round(median(successes)))


def _bad_baseline(baseline_ms: float, context: Optional[str]) -> ValueError:
    """A non-positive-baseline error that names the offending experiment
    cell (app/test), same convention as :func:`_empty`."""
    if context:
        return ValueError(
            "baseline must be positive, got %r (%s)" % (baseline_ms, context)
        )
    return ValueError("baseline must be positive, got %r" % baseline_ms)


def overhead_percent(
    measured_ms: float, baseline_ms: float, context: Optional[str] = None
) -> float:
    """Overhead over baseline in percent (Table 5's convention)."""
    if baseline_ms <= 0:
        raise _bad_baseline(baseline_ms, context)
    return (measured_ms / baseline_ms - 1.0) * 100.0


def slowdown(
    measured_ms: float, baseline_ms: float, context: Optional[str] = None
) -> float:
    if baseline_ms <= 0:
        raise _bad_baseline(baseline_ms, context)
    return measured_ms / baseline_ms


def overlap_ratio_from_intervals(intervals: Iterable) -> float:
    """Section 3.3's delay-overlap metric over (start, end) pairs:
    ``1 - projection / total``; 0 with no overlap, -> 1 as all overlap."""
    spans = sorted((float(start), float(end)) for start, end in intervals)
    total = sum(end - start for start, end in spans)
    if total <= 0:
        return 0.0
    projection = 0.0
    cur_start, cur_end = spans[0]
    for start, end in spans[1:]:
        if start > cur_end:
            projection += cur_end - cur_start
            cur_start, cur_end = start, end
        else:
            cur_end = max(cur_end, end)
    projection += cur_end - cur_start
    return max(0.0, 1.0 - projection / total)
