"""Fault taxonomy and deterministic chaos injection for the harness.

Waffle's evaluation deliberately drives target programs into crashes,
deadlocks and timeouts, so the harness itself must survive every such
outcome. This module is the vocabulary the campaign supervisor
(:mod:`repro.harness.supervisor`) speaks:

* a **taxonomy** of faults a cell execution can suffer, split into
  *retryable* faults (a killed pool worker, a wedged cell, transient
  cache I/O, a torn or corrupted record) and *deterministic* ones
  (assertion failures, schema errors) that would fail identically on
  every retry and are quarantined instead;
* a **chaos harness** (``WAFFLE_CHAOS``) that deterministically injects
  exactly those faults -- worker crashes, hangs, cache-record
  corruption, partial-write truncation -- at configurable sites and
  rates, so the supervisor's guarantees are themselves tested. This is
  the same active-injection philosophy Waffle applies to target
  programs, turned on our own harness.

Determinism contract: whether a chaos site fires is a pure function of
``(chaos seed, site, key, attempt)`` via a SHA-256 draw, so a chaos
campaign is exactly reproducible. By default injected faults fire only
on a cell's first attempt (``attempts=1`` in the spec), so a supervised
campaign always converges: the retry runs clean.

This module is deliberately a **leaf**: stdlib imports only, so the
telemetry layer and the real-threads runtime can import the taxonomy
without dragging in the full harness package.

``WAFFLE_CHAOS`` spec format -- comma-separated ``key=value`` tokens::

    WAFFLE_CHAOS="seed=7,worker_crash=0.5,hang=0.25,hang_s=2.0,cache_corrupt=1.0"

Recognized keys: ``seed`` (int, default 0), ``attempts`` (last attempt
index on which injected faults still fire, default 1), ``hang_s``
(injected hang duration in seconds, default 3600), and one rate in
``[0, 1]`` per site in :data:`CHAOS_SITES`.
"""

from __future__ import annotations

import hashlib
import os
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Set, Tuple

#: Environment variable holding the chaos spec. Present-and-non-empty
#: means chaos is on for this process and every pool worker it forks.
CHAOS_ENV = "WAFFLE_CHAOS"

#: Canonical fault kinds. ``repro.obs.telemetry`` mirrors this tuple
#: (it cannot import this module at import time without initializing
#: the whole harness package); tests/harness/test_faults.py guards the
#: two copies against drifting apart.
WORKER_CRASH = "worker_crash"
HANG = "hang"
TRANSIENT_IO = "transient_io"
CORRUPT_RECORD = "corrupt_record"
DETERMINISTIC = "deterministic"
FAULT_KINDS = (WORKER_CRASH, HANG, TRANSIENT_IO, CORRUPT_RECORD, DETERMINISTIC)

#: Chaos injection sites. ``worker_crash`` and ``hang`` fire in the
#: cell fault boundary (killing / wedging the executing worker);
#: ``cache_corrupt`` flips bytes in a cache record before it is read;
#: ``truncate`` cuts the tail off a just-appended JSONL telemetry file,
#: emulating a worker killed mid-write.
CHAOS_SITES = ("worker_crash", "hang", "cache_corrupt", "truncate")

#: Exit code a chaos-crashed worker dies with (mimics an OOM-kill /
#: SIGKILL'd pool worker: no result, no traceback, nonzero exit).
CHAOS_CRASH_EXIT = 66


# ----------------------------------------------------------------------
# Fault taxonomy
# ----------------------------------------------------------------------


class HarnessFault(Exception):
    """Base class for faults the supervisor's boundary understands.

    ``kind`` is one of :data:`FAULT_KINDS`; ``retryable`` drives the
    retry-vs-quarantine decision.
    """

    kind: str = DETERMINISTIC
    retryable: bool = False


class WorkerCrashFault(HarnessFault):
    """A pool worker died without delivering a result (OOM kill,
    segfault, chaos crash). The work itself may be fine: retryable."""

    kind = WORKER_CRASH
    retryable = True

    def __init__(self, message: str, exitcode: Optional[int] = None):
        super().__init__(message)
        self.exitcode = exitcode


class CellHangFault(HarnessFault):
    """A cell exceeded its wall-clock watchdog and was killed."""

    kind = HANG
    retryable = True


class TransientIOFault(HarnessFault):
    """An I/O hiccup (cache read/write, journal append) that a retry
    can reasonably expect not to see again."""

    kind = TRANSIENT_IO
    retryable = True


class CorruptRecordFault(HarnessFault):
    """A record failed its integrity check (checksum mismatch,
    truncation, torn write). The file is quarantined; recomputing the
    record is sound, so the fault is retryable."""

    kind = CORRUPT_RECORD
    retryable = True


class HangError(RuntimeError):
    """Structured hang report from a real-threads ``join_all``.

    Names every thread still alive at the deadline and the last
    instrumented site each one was seen at, so a wedged run is
    attributable instead of silently falling through.
    """

    def __init__(self, threads: List[Dict[str, object]], timeout_s: float):
        self.threads = threads
        self.timeout_s = timeout_s
        detail = ", ".join(
            "%s (tid %s) at %s"
            % (t.get("name", "?"), t.get("tid", "?"), t.get("site") or "<no instrumented op yet>")
            for t in threads
        )
        super().__init__(
            "%d thread(s) still alive after %.3fs: %s" % (len(threads), timeout_s, detail)
        )


def classify(exc: BaseException) -> Tuple[str, bool]:
    """Map an exception to ``(fault kind, retryable)``.

    Harness faults carry their own verdict. OS-level errors are
    presumed transient; hangs are retryable by definition. Everything
    else -- assertion failures, schema/type errors, arbitrary
    application exceptions -- is deterministic: the same inputs would
    fail the same way, so retrying burns budget without new
    information and the cell is quarantined instead.
    """
    if isinstance(exc, HarnessFault):
        return exc.kind, exc.retryable
    if isinstance(exc, HangError):
        return HANG, True
    if isinstance(exc, (OSError, EOFError)):
        return TRANSIENT_IO, True
    if isinstance(exc, MemoryError):
        return WORKER_CRASH, True
    return DETERMINISTIC, False


def describe(exc: BaseException) -> Dict[str, object]:
    """A JSON-safe fault record for journals and crash dossiers."""
    kind, retryable = classify(exc)
    return {
        "kind": kind,
        "retryable": retryable,
        "error": type(exc).__name__,
        "detail": str(exc)[:500],
    }


# ----------------------------------------------------------------------
# Chaos configuration
# ----------------------------------------------------------------------


@dataclass
class ChaosConfig:
    """Parsed ``WAFFLE_CHAOS`` spec."""

    seed: int = 0
    #: Injected faults fire only while ``attempt <= max_attempt`` --
    #: the default of 1 makes every chaos campaign converge under
    #: retries (the retry runs clean).
    max_attempt: int = 1
    #: How long an injected hang sleeps (the watchdog must kill it).
    hang_s: float = 3600.0
    rates: Dict[str, float] = field(default_factory=dict)
    #: Sites that already fired this process, so file-level chaos
    #: (corruption/truncation) does not re-fire on every re-read of a
    #: record the supervisor just repaired.
    fired: Set[Tuple[str, str]] = field(default_factory=set)


def parse_chaos(spec: str) -> ChaosConfig:
    """Parse a ``WAFFLE_CHAOS`` spec string (raises ValueError)."""
    config = ChaosConfig()
    for token in spec.replace(";", ",").split(","):
        token = token.strip()
        if not token:
            continue
        if "=" not in token:
            raise ValueError("chaos token %r is not key=value" % token)
        key, _, value = token.partition("=")
        key = key.strip()
        value = value.strip()
        if key == "seed":
            config.seed = int(value)
        elif key == "attempts":
            config.max_attempt = int(value)
        elif key == "hang_s":
            config.hang_s = float(value)
        elif key in CHAOS_SITES:
            rate = float(value)
            if not 0.0 <= rate <= 1.0:
                raise ValueError("chaos rate for %r must be in [0,1], got %s" % (key, value))
            config.rates[key] = rate
        else:
            raise ValueError("unknown chaos key %r (sites: %s)" % (key, ", ".join(CHAOS_SITES)))
    return config


_chaos: Optional[ChaosConfig] = None

#: Observer called as ``on_chaos_fire(site, key, attempt)`` each time a
#: chaos site fires. Assigned from outside (the campaign event bus,
#: :mod:`repro.obs.eventbus`) so this module stays a stdlib-only leaf;
#: exceptions are swallowed -- observation must never perturb a chaos
#: campaign's determinism.
on_chaos_fire = None


def chaos() -> Optional[ChaosConfig]:
    """The active chaos config, or None when chaos is off."""
    return _chaos


def active() -> bool:
    return _chaos is not None


def configure(spec: str) -> ChaosConfig:
    global _chaos
    _chaos = parse_chaos(spec)
    return _chaos


def disable() -> None:
    global _chaos
    _chaos = None


def _configure_from_env() -> None:
    spec = os.environ.get(CHAOS_ENV)
    if spec:
        configure(spec)


def should_fire(site: str, key: str, attempt: int = 1) -> bool:
    """Deterministic chaos draw for ``(site, key, attempt)``.

    Pure function of the chaos seed and its arguments, except that a
    given ``(site, key)`` fires at most once per process (see
    :attr:`ChaosConfig.fired`) so repaired records are not re-broken in
    an endless loop.
    """
    config = _chaos
    if config is None:
        return False
    rate = config.rates.get(site, 0.0)
    if rate <= 0.0 or attempt > config.max_attempt:
        return False
    if (site, key) in config.fired:
        return False
    blob = "%d|%s|%s|%d" % (config.seed, site, key, attempt)
    digest = hashlib.sha256(blob.encode("utf-8")).digest()
    draw = int.from_bytes(digest[:8], "big") / float(1 << 64)
    if draw >= rate:
        return False
    config.fired.add((site, key))
    if on_chaos_fire is not None:
        try:
            on_chaos_fire(site, key, attempt)
        except Exception:
            pass
    return True


# ----------------------------------------------------------------------
# Chaos actuators (called from the guarded sites)
# ----------------------------------------------------------------------


def cell_prelude(key: str, attempt: int, in_child: bool) -> None:
    """The cell fault boundary's chaos hook: maybe crash or wedge.

    In a pool worker a crash is the real thing (``os._exit`` with no
    result, like an OOM-killed worker); on the serial path it is
    simulated by raising :class:`WorkerCrashFault`, which exercises the
    same retry machinery without taking down the campaign process. An
    injected hang sleeps for ``hang_s``; the supervisor's watchdog is
    expected to kill it.
    """
    config = _chaos
    if config is None:
        return
    if should_fire("worker_crash", key, attempt):
        if in_child:
            os._exit(CHAOS_CRASH_EXIT)
        raise WorkerCrashFault("chaos: injected worker crash (cell %s)" % key[:12])
    if should_fire("hang", key, attempt):
        time.sleep(config.hang_s)


def corrupt_file(path: os.PathLike, key: str) -> bool:
    """Deterministically flip one byte of ``path`` (chaos actuator).

    The position and the flip are derived from the chaos seed and
    ``key``, so a chaos campaign corrupts the same byte of the same
    record every time. Returns True when the file was modified.
    """
    config = _chaos
    target = Path(path)
    if config is None or not target.exists():
        return False
    data = target.read_bytes()
    if not data:
        return False
    blob = "%d|corrupt|%s" % (config.seed, key)
    digest = hashlib.sha256(blob.encode("utf-8")).digest()
    position = int.from_bytes(digest[:8], "big") % len(data)
    mutated = bytes(data[:position]) + bytes([data[position] ^ 0xFF]) + bytes(data[position + 1:])
    target.write_bytes(mutated)
    return True


def maybe_corrupt_record(path: os.PathLike) -> bool:
    """Chaos site for cache-record reads: corrupt the file first.

    Keyed by file name so the draw is stable regardless of which
    process or cell reads the record.
    """
    name = Path(path).name
    if should_fire("cache_corrupt", name):
        return corrupt_file(path, name)
    return False


def maybe_truncate_file(path: os.PathLike, drop_bytes: int = 16) -> bool:
    """Chaos site for partial writes: drop the tail of ``path``,
    emulating a worker killed mid-append (truncated final JSONL line).
    """
    name = Path(path).name
    if not should_fire("truncate", name):
        return False
    target = Path(path)
    if not target.exists():
        return False
    size = target.stat().st_size
    if size <= drop_bytes:
        return False
    with open(target, "rb+") as fp:
        fp.truncate(size - drop_bytes)
    return True


_configure_from_env()

if hasattr(os, "register_at_fork"):
    # A forked worker inherits the parent's fired-site memory; clear it
    # so the child's draws depend only on the seed and its own keys.
    os.register_at_fork(after_in_child=lambda: _chaos is not None and _chaos.fired.clear())
