"""Content-addressed trace/plan cache for the experiment harness.

Every run primitive in this reproduction is a deterministic function of
its inputs: the simulator is virtual-time with seeded RNGs, so a
preparation run, a baseline run or a whole detection session is fully
determined by (workload identity, configuration, seed). That makes
memoization sound: a cache hit returns *bit-identical* results to
re-execution, which is the correctness anchor the equivalence tests
guard.

Entries are keyed by a SHA-256 digest over a canonical JSON encoding of
(kind, test id, config hash, seed, extras) and stored as one JSON file
per entry via :mod:`repro.core.persistence`. Any change to a config
field -- delay lengths, windows, design-point flags -- changes the
config hash and therefore invalidates the entry; bumping
``persistence.FORMAT_VERSION`` invalidates everything. Records carry a
SHA-256 payload checksum written at ``put`` time and verified on every
file read: a corrupt or truncated entry (torn write, bit rot, chaos
injection) is quarantined (``*.corrupt`` rename) and treated as a
miss, never a crash -- every cached unit is deterministic, so
recomputation is always sound.

Cached kinds:

* ``baseline``  -- one uninstrumented run (:class:`SingleRun` fields);
* ``prep``      -- a preparation run: run stats, the analyzed
  :class:`~repro.core.analyzer.InjectionPlan`, and the trace censuses
  Table 2 / section 3.3 need (site counts, init-instance counts), so
  the trace is recorded once and the plan reused across tables;
* ``online_pair`` -- the two-run WaffleBasic/Tsvd unit shared by
  Tables 5/6 and the overlap census;
* ``detect``    -- one full detection attempt of one tool on one
  workload (matched? runs-to-expose, total time);
* ``perf``      -- one single-detection-run probe (Table 7's ablation
  slowdowns).
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
from pathlib import Path
from typing import Any, Dict, List, Optional

from .. import obs
from ..obs import eventbus
from ..core.analyzer import InjectionPlan
from ..core.config import WaffleConfig
from ..core.persistence import load_record, save_record
from . import faults

#: Environment variable consulted for a default cache directory.
CACHE_DIR_ENV = "WAFFLE_CACHE_DIR"

#: When "1", caches open in *shared* mode: puts fsync before their
#: atomic rename so a record named in the directory is durably whole
#: even across host crashes -- the contract fleet workers on a shared
#: filesystem rely on. The fleet coordinator exports this to workers.
CACHE_SHARED_ENV = "WAFFLE_CACHE_SHARED"


def config_hash(config: WaffleConfig, include_seed: bool = False) -> str:
    """Stable digest of every config field (optionally minus the seed).

    The seed is usually part of the cache key explicitly (run seeds are
    varied independently of the config), so by default it is excluded
    here; pass ``include_seed=True`` when the config's own seed drives
    the computation (whole detection sessions).
    """
    payload = dataclasses.asdict(config)
    if not include_seed:
        payload.pop("seed", None)
    blob = json.dumps(payload, sort_keys=True)
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:16]


@dataclasses.dataclass
class CacheStats:
    """Hit/miss counters, exposed for tests and the CLI."""

    hits: int = 0
    misses: int = 0
    writes: int = 0
    #: Entries that failed integrity validation and were quarantined
    #: (renamed to ``*.corrupt``); each also counts as a miss.
    corrupt: int = 0

    def absorb(self, other: "CacheStats") -> None:
        self.hits += other.hits
        self.misses += other.misses
        self.writes += other.writes
        self.corrupt += other.corrupt


#: Process-wide totals across every cache instance, so the CLI can print
#: one end-of-run summary line without threading cache objects through
#: each experiment. (Pool workers accumulate their own copy; their
#: numbers surface through the obs telemetry files instead.)
GLOBAL_STATS = CacheStats()


class PlanCache:
    """File-backed memo table for deterministic harness work units.

    A small in-process dict fronts the files so repeated lookups within
    one experiment (e.g. the same preparation trace consulted by
    Table 2 and Table 6) do not re-read or re-parse JSON.
    """

    def __init__(self, directory: os.PathLike, shared: bool = False) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        #: Shared-store mode: puts fsync before publication (crash-safe
        #: on a shared filesystem) at ~0.5ms/record; reads are the same
        #: either way -- the checksum already guards torn content.
        self.shared = shared
        self.stats = CacheStats()
        self._memo: Dict[str, Any] = {}
        self._obs = obs.session()
        self._bus = eventbus.bus()

    # -- Generic machinery ------------------------------------------------

    def _digest(self, kind: str, key: Dict[str, Any]) -> str:
        blob = json.dumps({"kind": kind, **key}, sort_keys=True)
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:32]

    def _path(self, kind: str, digest: str) -> Path:
        return self.directory / ("%s-%s.json" % (kind, digest))

    def _hit(self) -> None:
        self.stats.hits += 1
        GLOBAL_STATS.hits += 1
        if self._obs is not None:
            self._obs.c_cache_hits.inc()
        if self._bus is not None:
            self._bus.emit("cache", action="hit")
            self._bus.maybe_flush()

    def _miss(self) -> None:
        self.stats.misses += 1
        GLOBAL_STATS.misses += 1
        if self._obs is not None:
            self._obs.c_cache_misses.inc()
        if self._bus is not None:
            self._bus.emit("cache", action="miss")
            self._bus.maybe_flush()

    def _quarantine(self, path: Path, reason: str) -> None:
        """Move a record that failed integrity validation out of the
        cache's namespace (``*.corrupt``) so it is never re-read, and
        count it. A corrupt entry is a miss, never a crash: the work
        unit is deterministic, so recomputing it is always sound."""
        self.stats.corrupt += 1
        GLOBAL_STATS.corrupt += 1
        if self._obs is not None:
            self._obs.c_cache_corrupt.inc()
        try:
            os.replace(path, path.with_name(path.name + ".corrupt"))
        except OSError:
            pass  # the quarantine rename itself must never crash a run

    @staticmethod
    def _payload_checksum(payload: dict) -> str:
        blob = json.dumps(payload, sort_keys=True)
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:32]

    def get(self, kind: str, key: Dict[str, Any]) -> Optional[dict]:
        digest = self._digest(kind, key)
        if digest in self._memo:
            self._hit()
            return self._memo[digest]
        path = self._path(kind, digest)
        if path.exists():
            # Chaos site: deterministically corrupt the record before it
            # is read, exercising the quarantine path below.
            faults.maybe_corrupt_record(path)
            try:
                record = load_record(path)
                payload = record["payload"]
                if record.get("sha256") != self._payload_checksum(payload):
                    raise ValueError("cache record failed checksum: %s" % path.name)
            except (ValueError, KeyError, TypeError, OSError, json.JSONDecodeError):
                # Torn write, stale/un-checksummed format, corrupted
                # bytes, or an unreadable file (shared-filesystem
                # hiccup, permissions): quarantine and recompute --
                # a fetch failure is a miss, never a crash.
                self._quarantine(path, "integrity validation failed")
                self._miss()
                return None
            self._memo[digest] = payload
            self._hit()
            return payload
        self._miss()
        return None

    def put(self, kind: str, key: Dict[str, Any], payload: dict) -> None:
        digest = self._digest(kind, key)
        self._memo[digest] = payload
        save_record(
            {"payload": payload, "sha256": self._payload_checksum(payload)},
            self._path(kind, digest),
            fsync=self.shared,
        )
        self.stats.writes += 1
        GLOBAL_STATS.writes += 1
        if self._obs is not None:
            self._obs.c_cache_writes.inc()


def open_cache(
    cache_dir: Optional[os.PathLike], shared: Optional[bool] = None
) -> Optional[PlanCache]:
    """A :class:`PlanCache` for ``cache_dir``, the ``WAFFLE_CACHE_DIR``
    environment default, or None when caching is disabled. ``shared``
    defaults from ``WAFFLE_CACHE_SHARED`` (fleet campaigns set it)."""
    if cache_dir is None:
        cache_dir = os.environ.get(CACHE_DIR_ENV) or None
    if cache_dir is None:
        return None
    if shared is None:
        shared = os.environ.get(CACHE_SHARED_ENV) == "1"
    return PlanCache(cache_dir, shared=shared)


# ----------------------------------------------------------------------
# Typed views over the generic records
# ----------------------------------------------------------------------


@dataclasses.dataclass
class PrepResult:
    """Everything a preparation run yields, across all consuming tables.

    ``run`` carries the prep run's measurements (Table 5's R#1 column),
    ``plan`` the analyzed injection plan, and the remaining fields the
    trace censuses: unique static sites per instrumentation class and
    the TSV injection-site count (Table 2), plus init-site dynamic
    instance counts (section 3.3).
    """

    run: "SingleRunLike"
    plan: InjectionPlan
    mo_sites: int
    tsv_sites: int
    tsv_injection_sites: int
    init_instance_counts: List[int]
    event_count: int


# The harness's SingleRun is a plain dataclass of primitives; importing
# it here would be circular (runner imports this module), so the cache
# ships dicts and lets the runner reconstruct.
SingleRunLike = Any


def run_to_dict(run: Any) -> dict:
    return dataclasses.asdict(run)


def prep_to_record(prep: PrepResult) -> dict:
    return {
        "run": run_to_dict(prep.run),
        "plan": prep.plan.to_dict(),
        "mo_sites": prep.mo_sites,
        "tsv_sites": prep.tsv_sites,
        "tsv_injection_sites": prep.tsv_injection_sites,
        "init_instance_counts": list(prep.init_instance_counts),
        "event_count": prep.event_count,
    }


def prep_from_record(record: dict, run_factory) -> PrepResult:
    return PrepResult(
        run=run_factory(**record["run"]),
        plan=InjectionPlan.from_dict(record["plan"]),
        mo_sites=record["mo_sites"],
        tsv_sites=record["tsv_sites"],
        tsv_injection_sites=record["tsv_injection_sites"],
        init_instance_counts=list(record["init_instance_counts"]),
        event_count=record["event_count"],
    )
