"""Experiment harness: per-table drivers, metrics, renderers, CLI."""

from . import experiments, metrics, tables
from .runner import (
    SingleRun,
    analyze_test,
    run_baseline,
    run_online_detection,
    run_planned_detection,
    run_recording,
    test_time_limit,
)

__all__ = [
    "experiments",
    "metrics",
    "tables",
    "SingleRun",
    "analyze_test",
    "run_baseline",
    "run_online_detection",
    "run_planned_detection",
    "run_recording",
    "test_time_limit",
]
