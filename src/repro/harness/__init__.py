"""Experiment harness: per-table drivers, metrics, renderers, CLI."""

from . import experiments, metrics, tables
from .cache import CacheStats, PlanCache, PrepResult, config_hash, open_cache
from .parallel import map_units, resolve_jobs
from .runner import (
    SingleRun,
    analyze_test,
    baseline_run,
    online_pair,
    prepare_test,
    run_baseline,
    run_online_detection,
    run_planned_detection,
    run_recording,
    test_time_limit,
)

__all__ = [
    "experiments",
    "metrics",
    "tables",
    "CacheStats",
    "PlanCache",
    "PrepResult",
    "config_hash",
    "open_cache",
    "map_units",
    "resolve_jobs",
    "SingleRun",
    "analyze_test",
    "baseline_run",
    "online_pair",
    "prepare_test",
    "run_baseline",
    "run_online_detection",
    "run_planned_detection",
    "run_recording",
    "test_time_limit",
]
