"""Experiment harness: per-table drivers, metrics, renderers, CLI."""

from . import experiments, faults, metrics, supervisor, tables
from .cache import CacheStats, PlanCache, PrepResult, config_hash, open_cache
from .faults import FAULT_KINDS, HangError, HarnessFault, classify
from .parallel import map_units, resolve_jobs
from .supervisor import CampaignJournal, CampaignStats, RetryPolicy, Supervisor, supervised
from .runner import (
    SingleRun,
    analyze_test,
    baseline_run,
    online_pair,
    prepare_test,
    run_baseline,
    run_online_detection,
    run_planned_detection,
    run_recording,
    test_time_limit,
)

__all__ = [
    "experiments",
    "faults",
    "metrics",
    "supervisor",
    "tables",
    "FAULT_KINDS",
    "HangError",
    "HarnessFault",
    "classify",
    "CampaignJournal",
    "CampaignStats",
    "RetryPolicy",
    "Supervisor",
    "supervised",
    "CacheStats",
    "PlanCache",
    "PrepResult",
    "config_hash",
    "open_cache",
    "map_units",
    "resolve_jobs",
    "SingleRun",
    "analyze_test",
    "baseline_run",
    "online_pair",
    "prepare_test",
    "run_baseline",
    "run_online_detection",
    "run_planned_detection",
    "run_recording",
    "test_time_limit",
]
