"""The ``fuzz`` experiment driver: oracle-verified generated campaigns.

One *fuzz cell* evaluates one generated workload (one seed) against the
planted-bug oracle (:mod:`repro.gen.oracle`) and returns a row of
deterministic fields only -- so the whole table, and hence its digest,
is a pure function of ``(seed range, config, budget, replay flag)``:
bit-identical across ``--jobs 1`` vs ``--jobs N`` (submission-order
merge in :func:`~repro.harness.parallel.map_units`), across cold and
warm caches (rows are content-addressed by generator seed + spec hash),
and across the vector and tree happens-before engines (their plans are
bit-identical by construction).

Cells flow through :func:`map_units`, so fuzz campaigns inherit the
supervisor (watchdogs, retries, checkpoint-resume, chaos) and the
campaign event bus (one ``fuzz_workload`` event per workload, folded
into ``obs analytics``'s detection-rate-vs-topology table) for free.
"""

from __future__ import annotations

import hashlib
import json
from typing import Dict, List, Optional, Tuple

from ..core.config import DEFAULT_CONFIG, WaffleConfig
from ..gen.oracle import evaluate_spec
from ..gen.spec import WorkloadSpec, generate_spec, spec_hash
from ..obs import eventbus
from .cache import config_hash, open_cache
from .parallel import map_units

#: Bump when the fuzz row's fields change; part of the cache key so a
#: stale cached row can never satisfy a newer schema.
ROW_SCHEMA_VERSION = 1

#: Default per-session detection-run budget. Detectable gaps are sized
#: so Waffle exposes each planted bug in its first or second detection
#: run; the headroom covers interference-control skips in workloads
#: where several armed components race at once.
DEFAULT_BUDGET = 8

#: Failing seeds shrunk per fuzz invocation (shrinking re-runs the
#: oracle many times; the regression corpus only needs the minima).
MAX_SHRINKS = 5


def _workload_config(config: WaffleConfig, seed: int) -> WaffleConfig:
    """Each workload detects under its own derived seed, so a range
    sweep also sweeps the injection/jitter RNG space."""
    return config.with_seed(config.seed + seed)


def _fuzz_cell(
    seed: int,
    config: WaffleConfig,
    budget: int,
    check_replay: bool,
    cache_dir: Optional[str],
) -> dict:
    """One seed's oracle evaluation (module-level: picklable for pools)."""
    spec = generate_spec(seed)
    shash = spec_hash(spec)
    cfg = _workload_config(config, seed)
    cache = open_cache(cache_dir)
    key = None
    if cache is not None:
        key = {
            "seed": seed,
            "spec": shash,
            "config": config_hash(cfg, include_seed=True),
            "budget": budget,
            "replay": check_replay,
            "v": ROW_SCHEMA_VERSION,
        }
        record = cache.get("fuzz", key)
        if record is not None:
            _emit_fuzz(record["row"])
            return record["row"]
    result = evaluate_spec(spec, cfg, budget=budget, check_replay=check_replay)
    row = result.to_row()
    row["spec_hash"] = shash[:12]
    if cache is not None and key is not None:
        cache.put("fuzz", key, {"row": row})
    _emit_fuzz(row)
    return row


def _emit_fuzz(row: dict) -> None:
    """Campaign event for one evaluated workload (cache hit or fresh:
    the payload is deterministic either way, so the campaign view's
    whole-event dedup keeps exactly one per logical workload)."""
    bus = eventbus.bus()
    if bus is None:
        return
    bus.emit(
        "fuzz_workload",
        seed=row["seed"],
        spec=row.get("spec_hash", ""),
        topology=row["topology"],
        planted=row["planted"],
        detectable=row["detectable"],
        found=len(row["found"]),
        sessions=row["sessions"],
        runs=row["runs"],
        ok=row["ok"],
    )
    bus.maybe_flush()


def fuzz_range(
    start: int,
    stop: int,
    config: WaffleConfig = DEFAULT_CONFIG,
    budget: int = DEFAULT_BUDGET,
    jobs: Optional[int] = 1,
    cache_dir: Optional[str] = None,
    check_replay: bool = True,
) -> List[dict]:
    """Evaluate seeds ``[start, stop)``; rows in seed order."""
    units = [(seed, config, budget, check_replay, cache_dir) for seed in range(start, stop)]
    return map_units(_fuzz_cell, units, jobs)


def fuzz_digest(rows: List[dict]) -> str:
    """The campaign's identity: sha256 over the canonical row JSON."""
    canonical = json.dumps(rows, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def topology_table(rows: List[dict]) -> List[dict]:
    """Detection-rate-vs-topology rollup (the BENCH_gen curve)."""
    buckets: Dict[str, dict] = {}
    for row in rows:
        bucket = buckets.setdefault(
            row["topology"],
            {"topology": row["topology"], "workloads": 0, "planted": 0,
             "detectable": 0, "found": 0, "runs": 0, "violations": 0},
        )
        bucket["workloads"] += 1
        bucket["planted"] += row["planted"]
        bucket["detectable"] += row["detectable"]
        bucket["found"] += len(row["found"])
        bucket["runs"] += row["runs"]
        bucket["violations"] += len(row["violations"])
    out = []
    for name in sorted(buckets):
        bucket = buckets[name]
        bucket["detection_rate"] = (
            round(bucket["found"] / bucket["detectable"], 4) if bucket["detectable"] else 1.0
        )
        out.append(bucket)
    return out


def render_fuzz(rows: List[dict], digest: str) -> str:
    """The human-readable fuzz report."""
    lines: List[str] = []
    failures = [r for r in rows if not r["ok"]]
    detectable = sum(r["detectable"] for r in rows)
    found = sum(len(r["found"]) for r in rows)
    lines.append(
        "fuzz: %d workload(s)   planted %d (detectable %d)   found %d   "
        "recall %s   violations %d"
        % (
            len(rows),
            sum(r["planted"] for r in rows),
            detectable,
            found,
            "%.1f%%" % (100.0 * found / detectable) if detectable else "n/a",
            sum(len(r["violations"]) for r in rows),
        )
    )
    lines.append("")
    lines.append("detection rate vs topology")
    lines.append(
        "  %-10s %9s %8s %11s %6s %6s %9s"
        % ("topology", "workloads", "planted", "detectable", "found", "runs", "rate")
    )
    for bucket in topology_table(rows):
        lines.append(
            "  %-10s %9d %8d %11d %6d %6d %8.1f%%"
            % (
                bucket["topology"],
                bucket["workloads"],
                bucket["planted"],
                bucket["detectable"],
                bucket["found"],
                bucket["runs"],
                100.0 * bucket["detection_rate"],
            )
        )
    if failures:
        lines.append("")
        lines.append("INVARIANT VIOLATIONS (%d workload(s))" % len(failures))
        for row in failures:
            lines.append("  seed %d (%s, spec %s):" % (row["seed"], row["topology"],
                                                       row.get("spec_hash", "?")))
            for violation in row["violations"]:
                lines.append("    %s" % violation)
    lines.append("")
    lines.append("fuzz digest: %s" % digest)
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Failure shrinking
# ----------------------------------------------------------------------


def _violation_classes(violations: List[str]) -> frozenset:
    """'recall: ...' / 'soundness: ...' -> the class prefixes."""
    return frozenset(v.split(":", 1)[0] for v in violations)


def shrink_failures(
    rows: List[dict],
    config: WaffleConfig,
    budget: int,
    shrink_dir: str,
    max_shrinks: int = MAX_SHRINKS,
) -> List[str]:
    """Shrink up to ``max_shrinks`` failing rows to minimal regression
    fixtures under ``shrink_dir``; returns the written paths."""
    from ..gen.shrink import save_regression, shrink_spec

    written: List[str] = []
    for row in rows:
        if row["ok"] or len(written) >= max_shrinks:
            continue
        seed = row["seed"]
        classes = _violation_classes(row["violations"])
        cfg = _workload_config(config, seed)

        def still_fails(candidate: WorkloadSpec) -> bool:
            result = evaluate_spec(candidate, cfg, budget=budget)
            return bool(classes & _violation_classes(result.violations))

        minimal = shrink_spec(generate_spec(seed), still_fails)
        path = save_regression(
            minimal,
            shrink_dir,
            reason="; ".join(row["violations"]),
            invariant=",".join(sorted(classes)),
            source_seed=seed,
        )
        written.append(str(path))
    return written
