"""Render experiment results as paper-style text tables."""

from __future__ import annotations

from typing import List, Optional, Sequence

from .experiments import (
    DynamicInstanceRow,
    Figure2Point,
    OverlapRow,
    StressRow,
    Table2Row,
    Table4Row,
    Table5Row,
    Table6Row,
    Table7Row,
)


def _fmt(value: Optional[float], pattern: str = "%.1f", missing: str = "-") -> str:
    return missing if value is None else pattern % value


def _grid(header: Sequence[str], rows: Sequence[Sequence[str]]) -> str:
    widths = [len(h) for h in header]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    def line(cells: Sequence[str]) -> str:
        return "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells)).rstrip()
    sep = "  ".join("-" * w for w in widths)
    return "\n".join([line(header), sep] + [line(r) for r in rows])


def design_matrix() -> str:
    """Table 1: the qualitative design-decision matrix (static)."""
    header = ["Design decision", "RaceFuzzer", "CTrigger", "RaceMob", "DataCollider", "Tsvd", "Waffle"]
    rows = [
        ["Synchronization analysis?", "yes", "yes", "yes", "no", "no", "partial"],
        ["Synchronization inference?", "no", "no", "no", "no", "yes", "yes"],
        ["Identify during injection runs?", "no", "no", "no", "no", "yes", "no"],
        ["Fixed-length delay?", "yes", "yes", "no", "yes", "yes", "no"],
        ["Avoid delay interference?", "n/a", "n/a", "n/a", "n/a", "no", "yes"],
        ["Inject at sampled locations?", "yes", "yes", "yes", "yes", "no", "no"],
        ["Probabilistic injection?", "no", "no", "yes", "yes", "yes", "yes"],
    ]
    return "Table 1: design decisions of active delay-injection tools\n" + _grid(header, rows)


def render_table2(rows: List[Table2Row]) -> str:
    header = ["App", "TSV instr", "MO instr", "TSV inject", "MO inject", "MO/TSV instr"]
    body = [
        [
            r.app,
            "%.1f" % r.tsv_instr_sites,
            "%.1f" % r.mo_instr_sites,
            "%.1f" % r.tsv_injection_sites,
            "%.1f" % r.mo_injection_sites,
            "%.1fx" % (r.mo_instr_sites / r.tsv_instr_sites) if r.tsv_instr_sites else "-",
        ]
        for r in rows
    ]
    return (
        "Table 2: average unique static instrumentation and injection sites per test\n"
        + _grid(header, body)
    )


def render_figure2(points: List[Figure2Point]) -> str:
    header = ["delay (ms)", "TSV exposed", "MemOrder exposed"]
    body = [
        ["%.0f" % p.delay_ms, "yes" if p.tsv_exposed else "no", "yes" if p.memorder_exposed else "no"]
        for p in points
    ]
    return (
        "Figure 2: timing conditions -- a TSV needs a delay within a bounded\n"
        "range; a MemOrder bug needs a delay longer than the whole gap\n"
        + _grid(header, body)
    )


def render_overlap(rows: List[OverlapRow]) -> str:
    header = ["App", "Tsvd overlap", "WaffleBasic overlap"]
    body = [
        [r.app, "%.1f%%" % (100 * r.tsvd_overlap), "%.1f%%" % (100 * r.wafflebasic_overlap)]
        for r in rows
    ]
    return "Section 3.3: average delay-overlap ratio per application\n" + _grid(header, body)


def render_dynamic_instances(rows: List[DynamicInstanceRow], overall: float) -> str:
    header = ["App", "init sites", "median dynamic instances"]
    body = [[r.app, str(r.init_sites), "%.1f" % r.median_init_instances] for r in rows]
    return (
        "Section 3.3: dynamic instances of initialization sites "
        "(overall median: %.1f)\n" % overall + _grid(header, body)
    )


def render_table4(rows: List[Table4Row]) -> str:
    header = [
        "Bug", "App", "Issue", "Known", "Base(ms)",
        "runs Basic", "runs Waffle", "slowdn Basic", "slowdn Waffle",
        "paper Basic", "paper Waffle",
    ]
    body = []
    for r in rows:
        bug = r.bug
        body.append(
            [
                bug.bug_id,
                bug.app,
                bug.issue_id,
                "yes" if bug.previously_known else "no",
                "%.0f" % r.baseline_ms,
                _fmt(r.basic_runs, "%d"),
                _fmt(r.waffle_runs, "%d"),
                _fmt(r.basic_slowdown, "%.1fx"),
                _fmt(r.waffle_slowdown, "%.1fx"),
                _fmt(bug.paper_runs_basic, "%d"),
                _fmt(bug.paper_runs_waffle, "%d"),
            ]
        )
    return "Table 4: detection results (\"-\" = not exposed within budget)\n" + _grid(header, body)


def render_table5(rows: List[Table5Row]) -> str:
    header = ["App", "Base(ms)", "Basic R#1", "Basic R#2", "Waffle R#1", "Waffle R#2"]
    body = []
    for r in rows:
        if r.basic_timed_out:
            basic1 = basic2 = "TimeOut"
        else:
            basic1 = _fmt(r.basic_run1_pct, "%.0f%%")
            basic2 = _fmt(r.basic_run2_pct, "%.0f%%")
        body.append(
            [
                r.app,
                "%.0f" % r.baseline_ms,
                basic1,
                basic2,
                _fmt(r.waffle_run1_pct, "%.0f%%"),
                _fmt(r.waffle_run2_pct, "%.0f%%"),
            ]
        )
    return "Table 5: average overhead on all test inputs\n" + _grid(header, body)


def render_table6(rows: List[Table6Row]) -> str:
    header = ["App", "Basic #delays", "Basic dur(ms)", "Waffle #delays", "Waffle dur(ms)"]
    body = []
    for r in rows:
        if r.basic_timed_out:
            basic_n, basic_d = "TimeOut", "TimeOut"
        else:
            basic_n, basic_d = str(r.basic_delays), "%.0f" % r.basic_duration_ms
        body.append(
            [r.app, basic_n, basic_d, str(r.waffle_delays), "%.0f" % r.waffle_duration_ms]
        )
    return (
        "Table 6: cumulative delays injected across all test inputs "
        "(one detection run each)\n" + _grid(header, body)
    )


def render_table7(rows: List[Table7Row]) -> str:
    header = ["Alternative design", "# bugs missed", "slowdown over Waffle"]
    body = [[r.label, str(r.bugs_missed), "%.2fx" % r.slowdown_over_waffle] for r in rows]
    return "Table 7: single-design-point ablations\n" + _grid(header, body)


def render_stress(rows: List[StressRow]) -> str:
    header = ["Bug", "delay-free runs", "spontaneous manifestations"]
    body = [[r.bug_id, str(r.runs), str(r.spontaneous_manifestations)] for r in rows]
    return (
        "Section 6.2 control: no bug manifests without delay injection\n"
        + _grid(header, body)
    )


def render_related_tools(rows) -> str:
    tools = ["waffle", "racefuzzer", "ctrigger", "racemob", "datacollider"]
    header = ["Bug", "App"] + tools
    body = []
    for r in rows:
        body.append(
            [r.bug_id, r.app]
            + [("-" if r.runs.get(t) is None else str(r.runs[t])) for t in tools]
        )
    return (
        "Extension: runs to expose each bug across the Table 1 design space\n"
        "(simplified models of prior tools; '-' = not exposed within budget)\n"
        + _grid(header, body)
    )


def render_figure5(points) -> str:
    header = ["interferer at (ms)", "delay overlaps window", "bug exposed"]
    body = [
        [
            "%.0f" % p.interferer_at_ms,
            "yes" if p.interferer_delay_overlaps_window else "no",
            "yes" if p.bug_exposed else "no (canceled)",
        ]
        for p in points
    ]
    return (
        "Figure 5: the interference window -- a concurrent delay on the\n"
        "disposer's thread cancels the reordering delay; an early one is\n"
        "absorbed by slack and interferes with nothing\n" + _grid(header, body)
    )
